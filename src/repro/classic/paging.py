"""Classic capacity-bound caching (paging) — the Table I counterpart.

The paper's Table I contrasts *classic network caching* (fixed capacity
``k``, hit-ratio objective, Belady's MIN as the off-line optimum,
``k``-competitive online algorithms) with *cloud data caching* (no
capacity, monetary objective, the paper's algorithms).  To regenerate the
table quantitatively we need the classic side; this module implements the
canonical replacement policies from scratch:

* :class:`BeladyMIN` — evict the page whose next use is farthest in the
  future (off-line optimal for fault count, Belady 1966 [5]);
* :class:`LRU` — least recently used (``k``-competitive, Sleator &
  Tarjan [16]);
* :class:`LFU` — least frequently used;
* :class:`FIFO` — first in, first out.

All operate on integer page streams through :func:`simulate_paging`.
"""

from __future__ import annotations

import abc
from collections import OrderedDict, defaultdict
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

__all__ = [
    "PagingPolicy",
    "BeladyMIN",
    "LRU",
    "LFU",
    "FIFO",
    "PagingResult",
    "simulate_paging",
]


@dataclass
class PagingResult:
    """Outcome of a paging simulation.

    Attributes
    ----------
    hits, misses:
        Reference counts by outcome; cold-start faults count as misses.
    evictions:
        Number of pages evicted to make room.
    policy:
        Name of the replacement policy.
    capacity:
        Cache capacity ``k``.
    """

    hits: int
    misses: int
    evictions: int
    policy: str
    capacity: int

    @property
    def accesses(self) -> int:
        """Total references."""
        return self.hits + self.misses

    @property
    def hit_ratio(self) -> float:
        """Classic caching's objective: fraction of references served."""
        return self.hits / self.accesses if self.accesses else 0.0

    @property
    def fault_rate(self) -> float:
        """Complement of the hit ratio."""
        return 1.0 - self.hit_ratio


class PagingPolicy(abc.ABC):
    """A replacement policy over a fixed-capacity page cache."""

    name = "abstract"

    def __init__(self) -> None:
        self.cache: set = set()

    @abc.abstractmethod
    def victim(self, index: int) -> int:
        """Choose the page to evict when the cache is full at ``index``."""

    def on_access(self, page: int, index: int) -> None:
        """Bookkeeping hook called on every reference (hit or miss)."""

    def on_insert(self, page: int, index: int) -> None:
        """Bookkeeping hook called when ``page`` enters the cache."""

    def on_evict(self, page: int) -> None:
        """Bookkeeping hook called when ``page`` leaves the cache."""

    def prepare(self, pages: Sequence[int]) -> None:
        """Off-line policies may pre-scan the stream here."""


class LRU(PagingPolicy):
    """Evict the least recently used page."""

    name = "LRU"

    def __init__(self) -> None:
        super().__init__()
        self._order: "OrderedDict[int, None]" = OrderedDict()

    def on_access(self, page: int, index: int) -> None:
        if page in self._order:
            self._order.move_to_end(page)

    def on_insert(self, page: int, index: int) -> None:
        self._order[page] = None

    def on_evict(self, page: int) -> None:
        self._order.pop(page, None)

    def victim(self, index: int) -> int:
        return next(iter(self._order))


class FIFO(PagingPolicy):
    """Evict the page resident longest."""

    name = "FIFO"

    def __init__(self) -> None:
        super().__init__()
        self._order: "OrderedDict[int, None]" = OrderedDict()

    def on_insert(self, page: int, index: int) -> None:
        self._order[page] = None

    def on_evict(self, page: int) -> None:
        self._order.pop(page, None)

    def victim(self, index: int) -> int:
        return next(iter(self._order))


class LFU(PagingPolicy):
    """Evict the least frequently used page (FIFO tie-break)."""

    name = "LFU"

    def __init__(self) -> None:
        super().__init__()
        self._freq: Dict[int, int] = defaultdict(int)
        self._arrival: Dict[int, int] = {}

    def on_access(self, page: int, index: int) -> None:
        self._freq[page] += 1

    def on_insert(self, page: int, index: int) -> None:
        self._arrival[page] = index

    def on_evict(self, page: int) -> None:
        self._freq.pop(page, None)
        self._arrival.pop(page, None)

    def victim(self, index: int) -> int:
        return min(self.cache, key=lambda p: (self._freq[p], self._arrival[p]))


class BeladyMIN(PagingPolicy):
    """Belady's off-line optimum: evict the page used farthest ahead."""

    name = "Belady-MIN"

    def __init__(self) -> None:
        super().__init__()
        self._next_use: Dict[int, List[int]] = {}
        self._cursor: Dict[int, int] = {}

    def prepare(self, pages: Sequence[int]) -> None:
        self._next_use = defaultdict(list)
        for i, p in enumerate(pages):
            self._next_use[int(p)].append(i)
        self._cursor = {p: 0 for p in self._next_use}

    def _next_after(self, page: int, index: int) -> int:
        uses = self._next_use[page]
        c = self._cursor[page]
        while c < len(uses) and uses[c] <= index:
            c += 1
        self._cursor[page] = c
        return uses[c] if c < len(uses) else np.iinfo(np.int64).max

    def victim(self, index: int) -> int:
        return max(self.cache, key=lambda p: self._next_after(p, index))


def simulate_paging(
    pages: Sequence[int], capacity: int, policy: Optional[PagingPolicy] = None
) -> PagingResult:
    """Replay a page stream through a fixed-capacity cache.

    Parameters
    ----------
    pages:
        Integer page ids in reference order.
    capacity:
        Cache capacity ``k`` (must be positive).
    policy:
        Replacement policy instance; defaults to :class:`LRU`.
    """
    if capacity < 1:
        raise ValueError(f"capacity must be >= 1, got {capacity}")
    policy = policy if policy is not None else LRU()
    policy.cache = set()
    policy.prepare(pages)
    hits = misses = evictions = 0
    for index, page in enumerate(pages):
        page = int(page)
        if page in policy.cache:
            hits += 1
            policy.on_access(page, index)
            continue
        misses += 1
        policy.on_access(page, index)
        if len(policy.cache) >= capacity:
            victim = policy.victim(index)
            policy.cache.discard(victim)
            policy.on_evict(victim)
            evictions += 1
        policy.cache.add(page)
        policy.on_insert(page, index)
    return PagingResult(
        hits=hits,
        misses=misses,
        evictions=evictions,
        policy=policy.name,
        capacity=capacity,
    )
