"""Classic capacity-oriented caching (Table I's left-hand column)."""

from .paging import (
    FIFO,
    LFU,
    LRU,
    BeladyMIN,
    PagingPolicy,
    PagingResult,
    simulate_paging,
)

__all__ = [
    "FIFO",
    "LFU",
    "LRU",
    "BeladyMIN",
    "PagingPolicy",
    "PagingResult",
    "simulate_paging",
]
