"""Online baselines bracketing Speculative Caching.

These policies calibrate SC's empirical competitive ratio (benchmark A3):

* :class:`AlwaysTransfer` — a single copy that follows the requests
  (migration only, never replicate).  Cheap transfers-wise on local runs,
  pays a transfer for every server switch.
* :class:`NeverDelete` — replicate on demand and keep every copy forever.
  Optimal when every server keeps re-requesting, ruinous rent otherwise.
* :class:`RandomizedTTL` — SC with the window resampled per refresh from
  the classic randomized ski-rental density ``f(x) ∝ e^{μx/λ}`` on
  ``[0, λ/μ]``, whose expected rent-vs-buy loss factor is
  ``e/(e-1) ≈ 1.58`` instead of deterministic TTL's 2 against an
  oblivious adversary.  Included to probe whether randomisation helps in
  this richer (multi-server) setting.

All reuse the SC event machinery where sensible so cost accounting is
identical across policies.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from .base import OnlineAlgorithm
from .speculative import SpeculativeCaching

__all__ = ["AlwaysTransfer", "NeverDelete", "RandomizedTTL"]


class AlwaysTransfer(OnlineAlgorithm):
    """Single-copy migration: the item always sits on the last requester.

    Serving a request on another server transfers the copy there and
    deletes the source (a *migration*); requests on the current holder are
    free apart from rent.  This is exactly the migration-only baseline of
    :func:`repro.schedule.spacetime.migration_only_cost`, realised online
    — the two are asserted equal in the tests.
    """

    name = "always-transfer"

    def _setup(self) -> None:
        self.holder = self.origin
        self.rec.copy_created(self.origin, self.t0, created_by="initial")

    def advance(self, t: float) -> None:
        """No internal timers."""

    def serve(self, i: int, t: float, server: int) -> None:
        if server == self.holder:
            self.rec.counters["local_hits"] += 1
            self.rec.copy_refreshed(server, t)
            return
        self.rec.transfer(self.holder, server, t)
        self.rec.copy_deleted(self.holder, t, ended_by="migrate")
        self.rec.copy_created(server, t, created_by="transfer")
        self.holder = server


class NeverDelete(OnlineAlgorithm):
    """Replicate on demand, never evict.

    The caching bill grows with (number of touched servers) × time; the
    policy wins only when inter-request gaps per server stay short
    relative to ``λ/μ`` forever.
    """

    name = "never-delete"

    def _setup(self) -> None:
        self.rec.copy_created(self.origin, self.t0, created_by="initial")
        self.last_request_server = self.origin

    def advance(self, t: float) -> None:
        """No internal timers."""

    def serve(self, i: int, t: float, server: int) -> None:
        if self.rec.holds_copy(server):
            self.rec.counters["local_hits"] += 1
            self.rec.copy_refreshed(server, t)
        else:
            src = (
                self.last_request_server
                if self.rec.holds_copy(self.last_request_server)
                else self.rec.open_servers()[0]
            )
            self.rec.transfer(src, server, t)
            self.rec.copy_created(server, t, created_by="transfer")
        self.last_request_server = server


class RandomizedTTL(SpeculativeCaching):
    """SC with ski-rental-randomized speculative windows.

    Each refresh draws its window from the density
    ``f(x) = (μ/λ) e^{μx/λ} / (e - 1)`` on ``[0, λ/μ]`` via inverse-CDF
    sampling: ``X = (λ/μ)·ln(1 + U(e-1))``.

    Parameters
    ----------
    seed:
        RNG seed (runs are deterministic given the seed).
    epoch_size:
        As in :class:`SpeculativeCaching`.
    """

    name = "randomized-ttl"

    def __init__(self, seed: Optional[int] = None, epoch_size: Optional[int] = None):
        super().__init__(window_factor=1.0, epoch_size=epoch_size)
        self.name = "randomized-ttl"
        self._seed = seed
        self._rng = np.random.default_rng(seed)

    def _setup(self) -> None:
        # Re-seed per run so repeated runs over the same instance agree.
        self._rng = np.random.default_rng(self._seed)
        super()._setup()

    def _window(self) -> float:
        base = self.model.speculative_window
        u = float(self._rng.random())
        return base * math.log1p(u * (math.e - 1.0))
