"""The Speculative Caching (SC) online algorithm — paper Section V.

SC keeps a copy *speculatively* alive for ``Δt = λ/μ`` past its last
useful instant (serving a local request or sourcing a transfer): if the
next request lands within the window, serving it from cache costs at most
one transfer; beyond the window the copy is not worth its rent.  The paper
proves SC 3-competitive (Theorem 3).

Implementation follows the paper's per-epoch state machine literally:

* counter array ``C[m]`` of expiry instants (here ``expiry``),
* live-copy count ``c`` and per-epoch transfer count ``r``,
* request handling per step 3 (local window hit vs. transfer from the
  previous request's server, with source refresh),
* expiration handling per step 4, including the never-drop-the-last-copy
  rules: a lone copy's expiry is extended by ``Δt``; when the last two
  copies expire together (source and target of one transfer), the target
  survives.

One deliberate alignment with the paper's own Observation 4: a request on
a server whose copy is alive is served locally even when the copy
outlived its original window through lone-copy extensions (Observation 4
case 2, second bullet) — the algorithm listing's window test alone would
charge a pointless self-transfer there.

Two knobs generalise SC for the ablation studies (they default to the
paper's algorithm):

* ``window_factor`` scales the speculative window (``TTL(γ·λ/μ)``;
  ``γ = 1`` is SC) — benchmark A1 shows why ``λ/μ`` is the right rent
  horizon;
* ``epoch_size`` ends an epoch after that many transfers, resetting all
  state except the requester's copy (the paper's ``r = n`` reset);
  ``None`` runs a single unbounded epoch.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

from ..sim.events import Event, EventQueue
from .base import OnlineAlgorithm

__all__ = ["SpeculativeCaching"]


class SpeculativeCaching(OnlineAlgorithm):
    """The paper's 3-competitive online algorithm (and its TTL family).

    Parameters
    ----------
    window_factor:
        Multiplier ``γ`` on the speculative window ``λ/μ``.  The paper's
        SC is ``γ = 1``.
    epoch_size:
        Number of transfers per epoch (``None`` = one unbounded epoch).
    """

    name = "speculative-caching"

    def __init__(
        self, window_factor: float = 1.0, epoch_size: Optional[int] = None
    ):
        super().__init__()
        if window_factor <= 0:
            raise ValueError(f"window_factor must be positive, got {window_factor}")
        if epoch_size is not None and epoch_size < 1:
            raise ValueError(f"epoch_size must be >= 1, got {epoch_size}")
        self.window_factor = window_factor
        self.epoch_size = epoch_size
        if window_factor != 1.0:
            self.name = f"ttl({window_factor:g}x)"

    # -- window sampling (overridden by the randomized variant) ---------------

    def _window(self) -> float:
        """Speculative window granted at a refresh instant."""
        return self.window_factor * self.model.speculative_window

    # -- state ------------------------------------------------------------------

    def _setup(self) -> None:
        m = self.num_servers
        self.expiry: List[float] = [-math.inf] * m
        self.queue = EventQueue()
        self.c = 1
        self.r = 0
        self.last_request_server = self.origin
        # (kind, time) of each server's latest refresh; kind "dst" marks the
        # target of a transfer, which survives the two-copies tie (step 4).
        self._cause: Dict[int, Tuple[str, float]] = {self.origin: ("initial", self.t0)}
        self.rec.copy_created(self.origin, self.t0, created_by="initial")
        self._arm(self.origin, self.t0)

    def _extra_state(self) -> dict:
        """Expose the SC state machine to the runtime state digest.

        Everything that steers future decisions is here: the counter
        array ``C`` (``expiry``), live/epoch counters, the last
        requester, refresh causes, and the full expiration queue
        (including its tie-break counter — pop order matters).
        """
        return {
            "expiry": list(self.expiry),
            "c": self.c,
            "r": self.r,
            "last_request_server": self.last_request_server,
            "cause": {str(s): list(v) for s, v in sorted(self._cause.items())},
            "queue": self.queue.state_summary(),
        }

    def _window_for(self, server: int, now: float) -> float:
        """Window granted to ``server``'s copy at a refresh instant.

        Hook for informed variants (``PredictiveCaching`` shrinks it to
        zero when its predictor says the next use is beyond the rent
        horizon).  The base algorithm grants the flat window.
        """
        return self._window()

    def _arm(self, server: int, now: float, flat: bool = False) -> None:
        """(Re)schedule the expiration of ``server``'s copy.

        ``flat=True`` bypasses :meth:`_window_for` and grants the full
        base window — used for lone-copy extensions, where a zero-width
        informed window would spin the event loop without progress.
        """
        window = self._window() if flat else self._window_for(server, now)
        self.expiry[server] = now + window
        self.queue.push(self.expiry[server], kind="expire", server=server)

    def _valid(self, ev: Event) -> bool:
        return ev.kind == "expire" and self.expiry[ev.server] == ev.time

    # -- expiration machinery (step 4) --------------------------------------------

    def _copy_floor(self) -> int:
        """Minimum live-copy count expirations may not cross.

        SC's never-drop-the-last-copy rule is the ``1`` case; the
        fault-tolerant SC-R variant raises it to its replica target
        ``k`` (capped by the live-server count).
        """
        return 1

    def advance(self, t: float) -> None:
        """Process expiration events due strictly before ``t``.

        Expirations never take the live-copy count below
        :meth:`_copy_floor`: when a simultaneous group would, enough of
        its members survive with extended leases (paper step 4 — the
        lone-copy extension and the source/target tie are the two
        floor-1 shapes).
        """
        while True:
            group = self.queue.pop_group(t, self._valid)
            if group is None:
                return
            e, events = group
            # Re-arming a copy to the same due instant (possible with
            # zero-width informed windows) leaves duplicate queue entries
            # that all pass the staleness check — deduplicate by server.
            servers = list(dict.fromkeys(ev.server for ev in events))
            deletable = self.c - self._copy_floor()
            if deletable >= len(servers):
                # The floor holds even if every expiring copy goes.
                for s in servers:
                    self._delete(s, e)
            else:
                keep = self._extension_survivors(
                    servers, len(servers) - max(deletable, 0)
                )
                for s in servers:
                    if s not in keep:
                        self._delete(s, e)
                self.rec.counters["extensions"] += 1
                for s in keep:
                    self._arm(s, e, flat=True)

    def _extension_survivors(self, servers: List[int], count: int) -> List[int]:
        """Pick ``count`` survivors among simultaneously-expiring copies.

        Survivors are chosen by repeated application of the paper's tie
        rule (transfer targets outrank sources), so the ``count = 1``
        case is exactly SC's step 4.
        """
        if count >= len(servers):
            return list(servers)
        remaining = list(servers)
        keep: List[int] = []
        for _ in range(count):
            s = self._tie_survivor(remaining)
            keep.append(s)
            remaining.remove(s)
        return keep

    def _tie_survivor(self, servers: List[int]) -> int:
        """Pick the survivor among simultaneously-expiring last copies."""
        for s in servers:
            if self._cause.get(s, ("", 0.0))[0] == "dst":
                return s
        # Defensive fallback (cannot arise from the SC state machine):
        # keep the most recently created copy.
        return max(servers, key=lambda s: self._cause.get(s, ("", -math.inf))[1])

    def _delete(self, server: int, t: float) -> None:
        self.expiry[server] = -math.inf
        self.c -= 1
        self.rec.counters["expirations"] += 1
        self.rec.copy_deleted(server, t, ended_by="expire")

    def _pick_source(self, t: float, server: int) -> int:
        """Transfer source for a miss on ``server`` at ``t``.

        Deterministic SC always finds the previous request's server alive
        (the never-drop-the-last-copy rules guarantee it — Observation 4);
        window-randomised variants can see it expire early, in which case
        the freshest surviving copy substitutes (counted so the test
        suite can assert pure SC never takes the fallback).
        """
        src = self.last_request_server
        if self.expiry[src] >= t and src != server:
            return src
        self.rec.counters["source_fallbacks"] = (
            self.rec.counters.get("source_fallbacks", 0) + 1
        )
        alive = [
            s
            for s in range(self.num_servers)
            if s != server and self.expiry[s] >= t
        ]
        if not alive:  # pragma: no cover - the extension rule forbids this
            raise RuntimeError(
                f"no live copy anywhere at t={t}; the never-drop-the-last-"
                f"copy rule is broken"
            )
        return max(alive, key=lambda s: self.expiry[s])

    # -- request handling (step 3) ---------------------------------------------------

    def serve(self, i: int, t: float, server: int) -> None:
        """Serve ``r_i = (server, t)`` per the SC rules."""
        if self.expiry[server] >= t:
            # Local hit (window case, or lone-copy extension survivor).
            self.rec.counters["local_hits"] += 1
            self.rec.copy_refreshed(server, t)
            self._cause[server] = ("local", t)
            self._arm(server, t)
        else:
            src = self._pick_source(t, server)
            self.rec.transfer(src, server, t)
            self.rec.copy_created(server, t, created_by="transfer")
            self.c += 1
            self._cause[server] = ("dst", t)
            self._arm(server, t)
            # Source refresh: "if s^k performs a transfer at t_i, update
            # C[k] <- t_i + Δt" (step 3, second bullet).
            self.rec.copy_refreshed(src, t)
            self._cause[src] = ("src", t)
            self._arm(src, t)
            self.r += 1
            if self.epoch_size is not None and self.r >= self.epoch_size:
                self._epoch_reset(server, t)
        self.last_request_server = server

    def _epoch_reset(self, keep: int, t: float) -> None:
        """End the epoch: only the requester's copy crosses the boundary."""
        for s in range(self.num_servers):
            if s != keep and self.expiry[s] > -math.inf:
                self.expiry[s] = -math.inf
                self.c -= 1
                self.rec.copy_deleted(s, t, ended_by="epoch-reset")
        self.r = 0
        self.rec.counters["epochs"] += 1
