"""The Double-Transfer (DT) transformation — paper Definition 10.

The competitive proof rewrites an SC run into a cost-identical *DT
schedule*: every copy-lifetime's speculative tail ``ω ≤ λ`` (the idle
rent between the copy's last useful instant and its deletion) is removed
from the caching bill and added onto the weight of the transfer edge that
created the lifetime (``λ + ω ≤ 2λ``); the initial copy's tail becomes an
explicit *initial cost* on the origin.  Total cost is preserved exactly —
``Π(DT) = Π(SC)`` — which :func:`double_transfer` asserts.

The transformed schedule is *request-grid aligned*: every interval
endpoint is a request instant (or ``t_0``), which is what makes the V-
and H-reductions of :mod:`repro.online.reductions` well defined on it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..core.instance import ProblemInstance
from ..core.types import InvalidScheduleError
from ..schedule.schedule import Schedule
from ..sim.recorder import OnlineRunResult

__all__ = ["DoubleTransferResult", "double_transfer"]


@dataclass
class DoubleTransferResult:
    """DT form of an SC run.

    Attributes
    ----------
    schedule:
        Grid-aligned schedule whose transfers carry weights ``λ + ω``.
    initial_cost:
        The origin copy's tail ``ω₁¹`` (Definition 10, first bullet).
    omegas:
        Per-lifetime tail costs in creation order.
    total_cost:
        ``Π(DT) = schedule cost + initial_cost``; equals ``Π(SC)``.
    """

    schedule: Schedule
    initial_cost: float
    omegas: List[float]
    total_cost: float


def double_transfer(
    run: OnlineRunResult,
    instance: ProblemInstance,
    max_window_cost: float = None,  # type: ignore[assignment]
) -> DoubleTransferResult:
    """Transform an SC (or TTL-family) run into its DT schedule.

    Parameters
    ----------
    run:
        The online run to transform (must carry its lifetime ledger).
    instance:
        The instance the run served (supplies the cost model).
    max_window_cost:
        Upper bound each tail must respect; defaults to ``λ`` (the SC
        window).  Pass ``γ·λ`` when transforming a ``TTL(γ·λ/μ)`` run.

    Returns
    -------
    DoubleTransferResult

    Raises
    ------
    InvalidScheduleError
        If a tail exceeds the window bound or the cost identity
        ``Π(DT) = Π(SC)`` fails — both would falsify the paper's
        Definition 10 accounting.
    """
    model = instance.cost
    if max_window_cost is None:
        max_window_cost = model.lam
    tol = 1e-9 * max(1.0, model.lam)

    sched = Schedule()
    extra_weight = {}  # transfer index -> accumulated ω
    omegas: List[float] = []
    initial_cost = 0.0
    t_end = float(instance.t[-1])

    for life in run.lifetimes:
        end = min(life.end if life.end is not None else t_end, t_end)
        last = min(life.last_refresh, end)
        omega = model.mu * (end - last)
        if omega > max_window_cost + tol:
            raise InvalidScheduleError(
                f"speculative tail ω={omega:.6g} on server {life.server} "
                f"exceeds the window cost {max_window_cost:.6g}"
            )
        omegas.append(omega)
        if last > life.start:
            sched.hold(life.server, life.start, last)
        elif life.created_by == "transfer":
            # Zero-length remnant: keep the landing instant for validators.
            sched.hold(life.server, life.start, life.start)
        if life.created_by == "initial":
            initial_cost += omega
        else:
            idx = life.transfer_index
            extra_weight[idx] = extra_weight.get(idx, 0.0) + omega

    for idx, (t, src, dst) in enumerate(run.transfers_raw()):
        w = model.lam + extra_weight.get(idx, 0.0)
        if w > 2.0 * max(model.lam, max_window_cost) + tol:
            raise InvalidScheduleError(
                f"DT transfer weight {w:.6g} exceeds λ + window bound"
            )
        sched.transfer(src, dst, t, weight=w)

    dt = DoubleTransferResult(
        schedule=sched.canonical(),
        initial_cost=initial_cost,
        omegas=omegas,
        total_cost=sched.total_cost(model) + initial_cost,
    )
    if abs(dt.total_cost - run.cost) > 1e-6 * max(1.0, run.cost):
        raise InvalidScheduleError(
            f"DT accounting broke: Π(DT)={dt.total_cost!r} vs "
            f"Π(SC)={run.cost!r}"
        )
    return dt
