"""Caching with untrusted predictions — robustness vs. consistency.

:class:`PredictiveCaching` trusts its predictor absolutely: a wrong
"no reuse coming" drops the copy and eats a transfer.  The
algorithms-with-predictions literature (Purohit, Svitkina, Kumar,
NeurIPS 2018 — ski rental with ML advice) offers the principled fix: a
trust parameter ``β ∈ (0, 1]`` interpolating between following the
advice and hedging like the advice-free algorithm.

Applied to the per-copy rent-or-release decision (which *is* ski
rental: renting costs ``μ`` per unit time, "buying" is the ``λ``
transfer you will pay when the copy is gone):

* predictor says the next use is **within** the window → grant the
  *longer* lease ``Δt/β`` (trust it, hold through moderate error);
* predictor says **no timely reuse** → still grant the *short* lease
  ``β·Δt`` (don't free-fall on bad advice; SC's never-drop-the-last-copy
  machinery remains underneath).

``β → 1`` recovers plain SC (both leases become ``Δt``); small ``β``
follows good advice almost optimally but hedges a bounded amount
against bad advice.  The benchmarks sweep ``β`` against predictor
corruption and reproduce the signature robustness-consistency cross.

:class:`NoisyOracle` supplies controllably bad advice: Gaussian timing
noise plus adversarial sign flips of the keep/drop verdict.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from ..core.instance import ProblemInstance
from .predictive import NextUsePredictor, OracleNextRequest
from .speculative import SpeculativeCaching

__all__ = ["TrustedPredictionCaching", "NoisyOracle"]


class NoisyOracle(NextUsePredictor):
    """The true next-use oracle, corrupted on purpose.

    Parameters
    ----------
    noise:
        Std-dev of Gaussian noise added to predicted instants, in units
        of the speculative window (applied at prediction time).
    flip_prob:
        Probability a prediction's *verdict* is adversarially flipped:
        a timely next use is reported as never, and vice versa.
    seed:
        RNG seed (deterministic per run).
    """

    prescient = True

    def __init__(
        self, noise: float = 0.0, flip_prob: float = 0.0, seed: Optional[int] = 0
    ):
        if noise < 0:
            raise ValueError(f"noise must be non-negative, got {noise}")
        if not 0.0 <= flip_prob <= 1.0:
            raise ValueError(f"flip_prob must be a probability, got {flip_prob}")
        self.noise = noise
        self.flip_prob = flip_prob
        self._seed = seed
        self._truth = OracleNextRequest()
        self._rng = np.random.default_rng(seed)
        self._window = 1.0

    def begin(self, instance: ProblemInstance) -> None:
        self._truth.begin(instance)
        self._rng = np.random.default_rng(self._seed)
        self._window = instance.cost.speculative_window

    def observe(self, i: int, t: float, server: int) -> None:
        self._truth.observe(i, t, server)

    def predict_next(self, server: int, now: float) -> float:
        true_next = self._truth.predict_next(server, now)
        if self.flip_prob and self._rng.random() < self.flip_prob:
            # Flip the verdict relative to the rent horizon.
            if true_next - now <= self._window:
                return math.inf
            return now + 0.5 * self._window
        if self.noise and math.isfinite(true_next):
            true_next += float(
                self._rng.normal(0.0, self.noise * self._window)
            )
        return max(true_next, now)


class TrustedPredictionCaching(SpeculativeCaching):
    """SC with β-hedged predicted windows (ski rental with advice).

    Parameters
    ----------
    predictor:
        Any :class:`~repro.online.predictive.NextUsePredictor`.
    beta:
        Trust parameter in ``(0, 1]``; ``1`` is plain SC, smaller values
        follow the advice harder while keeping a hedge.
    epoch_size:
        As in :class:`SpeculativeCaching`.
    """

    name = "trusted-prediction"

    def __init__(
        self,
        predictor: NextUsePredictor,
        beta: float = 0.5,
        epoch_size: Optional[int] = None,
    ):
        super().__init__(window_factor=1.0, epoch_size=epoch_size)
        if not 0.0 < beta <= 1.0:
            raise ValueError(f"beta must be in (0, 1], got {beta}")
        self.predictor = predictor
        self.beta = beta
        self.name = f"trusted-prediction[beta={beta:g}]"

    def begin(self, instance: ProblemInstance) -> None:
        self.predictor.begin(instance)
        super().begin(instance)

    def _window_for(self, server: int, now: float) -> float:
        base = self._window()
        predicted = self.predictor.predict_next(server, now)
        if predicted - now <= base:
            return base / self.beta  # trust: hold through timing error
        return base * self.beta  # distrust: hedge, don't free-fall

    def serve(self, i: int, t: float, server: int) -> None:
        self.predictor.observe(i, t, server)
        super().serve(i, t, server)
