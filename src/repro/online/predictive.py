"""Prediction-augmented online caching.

The paper's Section I argument for off-line algorithms is that mobile
trajectories are highly predictable.  This module operationalises the
middle ground the paper leaves open: online algorithms that consume a
*next-use predictor* and grant each copy an informed window — the SC
window when the predictor expects reuse inside the rent horizon, zero
when it does not (the copy dies instantly instead of paying a dead tail).

Two predictor families:

* :class:`MarkovPredictor` — **honest** (uses only observed requests):
  per-server EWMA of same-server inter-arrival gaps.
* :class:`OracleNextRequest` — **prescient** (peeks at the instance's
  true future, optionally truncated to the next ``horizon`` requests).
  ``PredictiveCaching(OracleNextRequest(horizon=k))`` is exactly a
  *k-lookahead* semi-online algorithm, bridging SC (``k = 0``) and the
  full off-line regime; with unlimited horizon it upper-bounds what any
  predictor can achieve under the keep-or-drop policy class.

The honest variant preserves the online information model (verified by
the prefix-consistency test); the prescient variants are deliberately
semi-offline and are labelled as such in benchmark output.
"""

from __future__ import annotations

import abc
import math
from typing import Optional

from ..core.instance import ProblemInstance
from .speculative import SpeculativeCaching

__all__ = ["NextUsePredictor", "MarkovPredictor", "OracleNextRequest", "PredictiveCaching"]


class NextUsePredictor(abc.ABC):
    """Estimates when a server will next request the item."""

    #: Whether the predictor peeks at the true future.
    prescient: bool = False

    def begin(self, instance: ProblemInstance) -> None:
        """Reset for a run.  Honest predictors must ignore the future."""

    @abc.abstractmethod
    def observe(self, i: int, t: float, server: int) -> None:
        """Record that request ``r_i = (server, t)`` was served."""

    @abc.abstractmethod
    def predict_next(self, server: int, now: float) -> float:
        """Estimated next request instant on ``server`` (``inf`` = never)."""


class MarkovPredictor(NextUsePredictor):
    """Honest per-server recurrence predictor.

    Maintains an exponentially weighted moving average of each server's
    same-server inter-arrival gap; the next use is predicted at
    ``last_seen + ewma_gap``.  Servers seen fewer than twice predict
    ``inf`` (no evidence of recurrence), which makes the algorithm
    conservative exactly where it knows nothing.

    Parameters
    ----------
    alpha:
        EWMA smoothing factor in ``(0, 1]``; 1 keeps only the last gap.
    """

    def __init__(self, alpha: float = 0.5):
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        self.alpha = alpha
        self._last: dict = {}
        self._gap: dict = {}

    def begin(self, instance: ProblemInstance) -> None:
        self._last = {instance.origin: float(instance.t[0])}
        self._gap = {}

    def observe(self, i: int, t: float, server: int) -> None:
        if server in self._last:
            gap = t - self._last[server]
            if server in self._gap:
                self._gap[server] += self.alpha * (gap - self._gap[server])
            else:
                self._gap[server] = gap
        self._last[server] = t

    def predict_next(self, server: int, now: float) -> float:
        if server not in self._gap:
            return math.inf
        predicted = self._last[server] + self._gap[server]
        return max(predicted, now)


class OracleNextRequest(NextUsePredictor):
    """Prescient predictor reading the instance's true future.

    Parameters
    ----------
    horizon:
        Lookahead depth in requests: ``predict_next`` only sees the next
        ``horizon`` requests after the one most recently observed
        (``None`` = unbounded).  ``horizon = k`` turns the consuming
        algorithm into a k-lookahead policy.
    """

    prescient = True

    def __init__(self, horizon: Optional[int] = None):
        if horizon is not None and horizon < 0:
            raise ValueError(f"horizon must be >= 0, got {horizon}")
        self.horizon = horizon
        self._inst: ProblemInstance = None  # type: ignore[assignment]
        self._pos = 0

    def begin(self, instance: ProblemInstance) -> None:
        self._inst = instance
        self._pos = 0

    def observe(self, i: int, t: float, server: int) -> None:
        self._pos = i

    def predict_next(self, server: int, now: float) -> float:
        import numpy as np

        idx = self._inst.requests_on(server)
        pos = int(np.searchsorted(idx, self._pos, side="right"))
        if pos >= idx.shape[0]:
            return math.inf
        k = int(idx[pos])
        if self.horizon is not None and k > self._pos + self.horizon:
            return math.inf
        return float(self._inst.t[k])


class PredictiveCaching(SpeculativeCaching):
    """SC with prediction-informed copy windows.

    Identical to :class:`SpeculativeCaching` except the window granted at
    each refresh: the full ``Δt = λ/μ`` when the predictor expects the
    server's next use within ``Δt``, otherwise **zero** — the copy is
    dropped immediately, saving the dead-rent tail SC would pay.  The
    never-drop-the-last-copy machinery is inherited unchanged, so
    feasibility is preserved even under a predictor that is always wrong.

    The same ``Π(SC) ≤ 3·Π(OPT)`` argument does **not** transfer (a wrong
    "drop" can force extra transfers); the benchmarks measure where
    informed windows win and what bad predictions cost.
    """

    name = "predictive-caching"

    def __init__(self, predictor: NextUsePredictor, epoch_size: Optional[int] = None):
        super().__init__(window_factor=1.0, epoch_size=epoch_size)
        self.predictor = predictor
        if predictor.prescient:
            horizon = getattr(predictor, "horizon", None)
            tag = f"lookahead({horizon})" if horizon is not None else "oracle"
            self.name = f"predictive-caching[{tag}]"
        else:
            self.name = "predictive-caching[markov]"

    def begin(self, instance: ProblemInstance) -> None:
        self.predictor.begin(instance)
        super().begin(instance)

    def _window_for(self, server: int, now: float) -> float:
        base = self._window()
        predicted = self.predictor.predict_next(server, now)
        return base if predicted - now <= base else 0.0

    def serve(self, i: int, t: float, server: int) -> None:
        # Observe first so the prediction for this refresh already knows
        # about the request being served.
        self.predictor.observe(i, t, server)
        super().serve(i, t, server)
