"""SC-R: fault-tolerant Speculative Caching (``k``-replica SC).

The paper's SC (Section V) is built around never losing the last copy —
but its model has no way to *lose* one.  SC-R is the same per-epoch
state machine hardened for the fault model of :mod:`repro.faults`:

* **Replication floor** — it maintains ``k ≥ 2`` live replicas (capped
  by the live-server count): the never-drop-the-last-copy rule becomes
  a never-drop-below-``k`` rule (see
  :meth:`SpeculativeCaching.advance`'s copy floor), and after every
  request or fault event missing replicas are re-created from the
  freshest surviving copy.
* **Retry with backoff** — every transfer goes through the fault
  context; lost attempts are retried up to ``max_retries`` times with
  exponential backoff accounted in the latency ledger, then the next
  freshest source is tried.
* **Blackout re-seed** — when a crash destroys the last live copy, the
  item is re-fetched from the designated origin store onto the origin
  server (or the lowest-id live server) with an accounted penalty cost.
  While *every* server is down the run degrades gracefully: requests
  are dropped with a penalty instead of crashing the simulation, and
  the zero-copy window surfaces as a blackout on the run result.

With ``k = 1`` and no faults attached, SC-R's behaviour — schedule,
cost, every transfer — is exactly plain SC's; the test suite pins this
on the golden instances.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, List, Optional

from .speculative import SpeculativeCaching

if TYPE_CHECKING:  # pragma: no cover
    from ..faults.injector import FaultContext

__all__ = ["SpeculativeCachingResilient"]


class SpeculativeCachingResilient(SpeculativeCaching):
    """Fault-tolerant SC with a ``k``-replica floor (SC-R).

    Parameters
    ----------
    replicas:
        Replica target ``k`` (``1`` = plain SC behaviour).
    max_retries:
        Retries per source after a lost transfer attempt.
    reseed_cost:
        Penalty charged per blackout re-seed from the origin store
        (``None`` = one transfer cost ``λ``).
    drop_cost:
        Penalty charged per request dropped during a full blackout
        (``None`` = one transfer cost ``λ``).
    window_factor, epoch_size:
        As in :class:`SpeculativeCaching`.
    """

    name = "sc-r"

    def __init__(
        self,
        replicas: int = 2,
        max_retries: int = 3,
        reseed_cost: Optional[float] = None,
        drop_cost: Optional[float] = None,
        window_factor: float = 1.0,
        epoch_size: Optional[int] = None,
    ):
        super().__init__(window_factor=window_factor, epoch_size=epoch_size)
        if replicas < 1:
            raise ValueError(f"replicas must be >= 1, got {replicas}")
        if max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {max_retries}")
        self.replicas = replicas
        self.max_retries = max_retries
        self._reseed_cost_param = reseed_cost
        self._drop_cost_param = drop_cost
        self.faults: Optional["FaultContext"] = None
        self.name = f"sc-r(k={replicas})"

    # -- fault protocol (engine-driven) ----------------------------------------

    def attach_faults(self, ctx: Optional["FaultContext"]) -> None:
        """Engine hook: install (or clear) the run's fault context."""
        self.faults = ctx

    def on_server_crash(self, server: int, t: float) -> None:
        """Engine hook: ``server`` crashed — its cached copy is lost."""
        if self.rec.holds_copy(server):
            self.expiry[server] = -math.inf
            self.c -= 1
            self._cause.pop(server, None)
            self.rec.counters["crash_losses"] += 1
            self.rec.copy_deleted(server, t, ended_by="crash")
        if self.c == 0:
            self._reseed(t)
        else:
            self._maintain_replicas(t)

    def on_server_recover(self, server: int, t: float) -> None:
        """Engine hook: ``server`` is live again (holds no copy)."""
        if self.c == 0:
            self._reseed(t)
        else:
            self._maintain_replicas(t)

    def _extra_state(self) -> dict:
        """SC state plus the resilience knobs resolved at ``_setup``."""
        extra = super()._extra_state()
        extra["replicas"] = self.replicas
        extra["max_retries"] = self.max_retries
        extra["reseed_cost"] = getattr(self, "_reseed_cost", None)
        extra["drop_cost"] = getattr(self, "_drop_cost", None)
        return extra

    # -- liveness helpers ----------------------------------------------------------

    def _is_up(self, server: int) -> bool:
        return self.faults is None or self.faults.is_up(server)

    def _up_servers(self) -> List[int]:
        if self.faults is None:
            return list(range(self.num_servers))
        return self.faults.up_servers()

    def _attempt(
        self, src: int, dst: int, t: float, need_dst_up: bool = True
    ) -> bool:
        """One logical transfer (with retries); always succeeds fault-free."""
        if self.faults is None:
            return True
        return self.faults.transfer_with_retries(
            src, dst, t, retries=self.max_retries, need_dst_up=need_dst_up
        )

    # -- state ------------------------------------------------------------------

    def _setup(self) -> None:
        super()._setup()
        for key in (
            "crash_losses",
            "reseeds",
            "dropped_requests",
            "remote_reads",
            "replications",
            "replication_failures",
        ):
            self.rec.counters[key] = 0
        self._reseed_cost = (
            self._reseed_cost_param
            if self._reseed_cost_param is not None
            else self.model.lam
        )
        self._drop_cost = (
            self._drop_cost_param
            if self._drop_cost_param is not None
            else self.model.lam
        )
        self._maintain_replicas(self.t0)

    def _copy_floor(self) -> int:
        """Expirations may not drop below ``min(k, live servers)``."""
        if self.replicas == 1:
            return 1
        return max(1, min(self.replicas, len(self._up_servers())))

    # -- request handling --------------------------------------------------------

    def serve(self, i: int, t: float, server: int) -> None:
        """Serve ``r_i`` under faults; identical to SC when none strike."""
        if self._is_up(server):
            if self.expiry[server] >= t:
                # Local hit — same bookkeeping as SC.
                self.rec.counters["local_hits"] += 1
                self.rec.copy_refreshed(server, t)
                self._cause[server] = ("local", t)
                self._arm(server, t)
            else:
                src = self._acquire(t, server)
                if src is None:
                    self._drop(t, server)
                else:
                    self.rec.transfer(src, server, t)
                    self.rec.copy_created(server, t, created_by="transfer")
                    self.c += 1
                    self._cause[server] = ("dst", t)
                    self._arm(server, t)
                    self.rec.copy_refreshed(src, t)
                    self._cause[src] = ("src", t)
                    self._arm(src, t)
                    self.r += 1
                    if self.epoch_size is not None and self.r >= self.epoch_size:
                        self._epoch_reset(server, t)
        else:
            # The requester's edge server is down: serve by a remote read
            # from a live copy — a transfer with no local copy created.
            src = self._acquire(t, server, need_dst_up=False)
            if src is None:
                self._drop(t, server)
            else:
                self.rec.transfer(src, server, t)
                self.rec.counters["remote_reads"] += 1
                self.rec.copy_refreshed(src, t)
                self._cause[src] = ("src", t)
                self._arm(src, t)
        self.last_request_server = server
        self._maintain_replicas(t)

    def _acquire(
        self, t: float, server: int, need_dst_up: bool = True
    ) -> Optional[int]:
        """Find a source and get a transfer through, or ``None``.

        Sources are tried in SC's preference order — the previous
        request's server first (Observation 4), then surviving copies
        freshest-first — each with the full retry budget.
        """
        order: List[int] = []
        preferred = self.last_request_server
        if (
            preferred != server
            and self.expiry[preferred] >= t
            and self._is_up(preferred)
        ):
            order.append(preferred)
        else:
            self.rec.counters["source_fallbacks"] = (
                self.rec.counters.get("source_fallbacks", 0) + 1
            )
        fallbacks = [
            s
            for s in self._up_servers()
            if s != server and s not in order and self.expiry[s] >= t
        ]
        fallbacks.sort(key=lambda s: (-self.expiry[s], s))
        order.extend(fallbacks)
        for src in order:
            if self._attempt(src, server, t, need_dst_up=need_dst_up):
                return src
        return None

    def _drop(self, t: float, server: int) -> None:
        """Degrade gracefully: the request goes unserved, penalised."""
        self.rec.counters["dropped_requests"] += 1
        if self.faults is not None:
            self.faults.charge("dropped", self._drop_cost)
            self.faults.note_drop(t, server)

    # -- replication & re-seeding ---------------------------------------------------

    def _maintain_replicas(self, t: float) -> None:
        """Top the live-copy count back up to ``min(k, live servers)``.

        Replication transfers pay ``λ`` like any transfer but do not
        advance the epoch counter ``r`` (epochs count request-serving
        transfers, as in the paper).
        """
        if self.replicas <= 1:
            return
        while True:
            up = self._up_servers()
            target = min(self.replicas, len(up))
            if self.c >= target:
                return
            holders = [s for s in up if self.expiry[s] >= t]
            spares = [s for s in up if self.expiry[s] < t]
            if not holders or not spares:
                return
            dst = self.origin if self.origin in spares else min(spares)
            src = max(holders, key=lambda s: (self.expiry[s], -s))
            if not self._attempt(src, dst, t):
                self.rec.counters["replication_failures"] += 1
                return
            self.rec.transfer(src, dst, t)
            self.rec.copy_created(dst, t, created_by="transfer")
            self.c += 1
            self._cause[dst] = ("dst", t)
            self._arm(dst, t)
            self.rec.copy_refreshed(src, t)
            self._cause[src] = ("src", t)
            self._arm(src, t)
            self.rec.counters["replications"] += 1

    def _reseed(self, t: float) -> None:
        """Blackout recovery: re-fetch the item from the origin store.

        Lands on the origin server when it is live, else the lowest-id
        live server; charged as an accounted penalty, not a transfer.
        While no server is up the blackout persists — the next recovery
        triggers the re-seed.
        """
        up = self._up_servers()
        if not up:
            return
        dst = self.origin if self.origin in up else up[0]
        self.rec.copy_created(dst, t, created_by="reseed")
        self.c += 1
        self._cause[dst] = ("reseed", t)
        self._arm(dst, t, flat=True)
        self.rec.counters["reseeds"] += 1
        if self.faults is not None:
            self.faults.charge("reseed", self._reseed_cost)
            self.faults.note_reseed(t, dst)
        self._maintain_replicas(t)
