"""Receding-horizon planning — model-predictive control for caching.

:class:`PredictiveCaching` (the keep-or-drop policy class) cannot place
copies *proactively*; the receding-horizon planner can.  At every
request it solves the exact subset-state DP over the next ``horizon``
known requests, starting from its current copy set, executes only the
first planned step (which copies survive the gap, and how the request is
served), then re-plans.  This is classic MPC applied to the paper's
model, made possible by two substrate pieces: the exact solver's
arbitrary ``initial_holders`` and the Markov-ness of the copy-set state.

Properties (all enforced by tests):

* with ``horizon >= n`` the executed trajectory is *exactly optimal*
  (principle of optimality: each re-plan is optimal for the true
  remaining future, so executed-cost-so-far + cost-to-go is invariant);
* with small horizons it degrades gracefully and remains feasible;
* per-request planning cost is ``O(horizon · 3^m)`` — this is a
  semi-online algorithm for small fleets, not a production path for
  ``m > 10`` (the exact solver's cap applies).

Like the oracle predictors, the planner reads the instance's true future
(``prescient``); it quantifies the value of *acting* on lookahead rather
than only *evicting* on it.
"""

from __future__ import annotations

from typing import List, Optional

from ..core.instance import ProblemInstance
from ..offline.exact import solve_exact
from .base import OnlineAlgorithm

__all__ = ["RecedingHorizonPlanner"]


class RecedingHorizonPlanner(OnlineAlgorithm):
    """Plan over the next ``horizon`` requests; execute one step; repeat.

    Parameters
    ----------
    horizon:
        Number of future requests each plan covers (``None`` = all
        remaining — the exact-optimal limit).
    """

    name = "receding-horizon"
    prescient = True

    def __init__(self, horizon: Optional[int] = None):
        super().__init__()
        if horizon is not None and horizon < 1:
            raise ValueError(f"horizon must be >= 1, got {horizon}")
        self.horizon = horizon
        self.name = (
            "receding-horizon[full]"
            if horizon is None
            else f"receding-horizon[{horizon}]"
        )

    def begin(self, instance: ProblemInstance) -> None:
        super().begin(instance)
        self._inst = instance

    def _setup(self) -> None:
        self._holders: List[int] = [self.origin]
        self._last_time = self.t0
        self.rec.copy_created(self.origin, self.t0, created_by="initial")

    def advance(self, t: float) -> None:
        """All decisions are made at request instants."""

    def serve(self, i: int, t: float, server: int) -> None:
        inst = self._inst
        hi = inst.n if self.horizon is None else min(inst.n, i + self.horizon - 1)
        window = ProblemInstance.from_arrays(
            inst.t[i : hi + 1],
            inst.srv[i : hi + 1],
            num_servers=inst.num_servers,
            cost=inst.cost,
            origin=self._holders[0],
            start_time=self._last_time,
        )
        plan = solve_exact(
            window,
            build_schedule=False,
            initial_holders=self._holders,
        )
        kept = plan.kept_sets[1]
        after = plan.states[1]

        # Execute the first planned step: drop at the gap's start ...
        for h in list(self._holders):
            if not (kept >> h) & 1:
                self.rec.copy_deleted(h, self._last_time, ended_by="planned-drop")
        # ... and serve the request (transfer if the plan replicates).
        if not (kept >> server) & 1:
            # Homogeneous transfers: any surviving holder is a valid source.
            src = next(h for h in range(inst.num_servers) if (kept >> h) & 1)
            self.rec.transfer(src, server, t)
            self.rec.copy_created(server, t, created_by="transfer")
        else:
            self.rec.counters["local_hits"] += 1
            self.rec.copy_refreshed(server, t)

        self._holders = [
            h for h in range(inst.num_servers) if (after >> h) & 1
        ]
        self._last_time = t
