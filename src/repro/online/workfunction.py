"""The Work Function Algorithm (WFA) for cost-driven caching.

The paper's problem is a metrical task system in disguise: the system
state is the set of servers holding copies, processing request ``r_i``
costs rent plus possibly a transfer, and reconfiguration costs ``λ`` per
added copy (drops are free).  The canonical online algorithm for such
systems is the *work function algorithm*: maintain, for every state
``S``, the off-line optimal cost ``w_i(S)`` of serving the requests so
far **and ending in** ``S`` (exactly the forward table of the exact
subset-state DP — which only ever looks backward, so it is computable
online), then move to the state minimising
``w_i(S) + d(current, S)``.

WFA needs no predictions and no window constant; its price is state —
``O(3^m)`` work per request — so like the exact oracle it is a
small-fleet algorithm (``m ≤ 12`` guarded).  Empirically it chases the
optimum far tighter than SC on most workloads (see
``bench_online_baselines``' extended panel), which makes it the honest
"how much of SC's gap is information-theoretic vs. algorithmic?" probe:
any gap WFA closes was never about missing knowledge of the future.

No competitive bound is claimed here: general-MTS WFA guarantees are
``2n-1`` in the number of states, far weaker than SC's 3 — the contrast
between worst-case-safe (SC) and empirically-strong (WFA) is the point.
"""

from __future__ import annotations

import math
from typing import List

from ..core.instance import ProblemInstance
from .base import OnlineAlgorithm

__all__ = ["WorkFunctionCaching"]

_MAX_SERVERS = 12


def _nonempty_submasks(mask: int):
    sub = mask
    while sub:
        yield sub
        sub = (sub - 1) & mask


class WorkFunctionCaching(OnlineAlgorithm):
    """Online work-function policy over copy-holder states.

    Parameters
    ----------
    aggression:
        Weight on the work function versus the movement cost in the
        chase objective ``aggression · w_i(S) + d(current, S)``; the
        classic WFA is ``1.0``.  Larger values chase the off-line
        optimum harder.
    """

    name = "work-function"

    def __init__(self, aggression: float = 1.0):
        super().__init__()
        if aggression <= 0:
            raise ValueError(f"aggression must be positive, got {aggression}")
        self.aggression = aggression
        if aggression != 1.0:
            self.name = f"work-function[{aggression:g}x]"

    def begin(self, instance: ProblemInstance) -> None:
        if instance.num_servers > _MAX_SERVERS:
            raise ValueError(
                f"WFA state space is 2^m; got m={instance.num_servers} > "
                f"{_MAX_SERVERS}"
            )
        super().begin(instance)

    def _setup(self) -> None:
        m = self.num_servers
        size = 1 << m
        self._w: List[float] = [math.inf] * size
        self._w[1 << self.origin] = 0.0
        self._config = 1 << self.origin
        self._last_time = self.t0
        self.rec.copy_created(self.origin, self.t0, created_by="initial")

    def advance(self, t: float) -> None:
        """All decisions happen at request instants."""

    # -- the work-function update (exact DP forward step) ----------------------

    def _update_work(self, gap: float, s_bit: int) -> None:
        m = self.num_servers
        size = 1 << m
        mu, lam = self.model.mu, self.model.lam
        nw = [math.inf] * size
        for S in range(1, size):
            v = self._w[S]
            if v == math.inf:
                continue
            for K in _nonempty_submasks(S):
                base = v + gap * mu * bin(K).count("1")
                if K & s_bit:
                    if base < nw[K]:
                        nw[K] = base
                else:
                    new = K | s_bit
                    c = base + lam
                    if c < nw[new]:
                        nw[new] = c
        self._w = nw

    def serve(self, i: int, t: float, server: int) -> None:
        gap = t - self._last_time
        s_bit = 1 << server
        self._update_work(gap, s_bit)

        # Chase: pick the state minimising a·w(S) + d(config, S), where
        # moving adds λ per copy not already held (drops are free).  The
        # request's own service transfer is part of d when s ∉ config.
        lam = self.model.lam
        cur = self._config
        best_val, best_state = math.inf, None
        for S in range(1, 1 << self.num_servers):
            w = self._w[S]
            if w == math.inf:
                continue
            adds = bin(S & ~cur).count("1")
            val = self.aggression * w + lam * adds
            if val < best_val:
                best_val, best_state = val, S
        assert best_state is not None and best_state & s_bit

        # Materialise the move.  Sources: the pre-move config (alive
        # through the gap); same-instant chains are fine in the model.
        src = next(
            j for j in range(self.num_servers) if (cur >> j) & 1
        )
        hit = bool(cur & s_bit)
        for j in range(self.num_servers):
            bit = 1 << j
            if best_state & bit and not cur & bit:
                self.rec.transfer(src if src != j else server, j, t)
                self.rec.copy_created(j, t, created_by="transfer")
            elif cur & bit and not best_state & bit:
                self.rec.copy_deleted(j, t, ended_by="wfa-drop")
            elif cur & bit and best_state & bit:
                self.rec.copy_refreshed(j, t)
        if hit:
            self.rec.counters["local_hits"] += 1
        self._config = best_state
        self._last_time = t
