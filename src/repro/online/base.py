"""Online algorithm interface.

An online algorithm sees requests strictly one at a time (no lookahead)
and reacts to its own internal timers between requests.  Concrete
algorithms implement three hooks; the engine
(:func:`repro.sim.engine.run_online`) guarantees the calling contract:

* ``begin(instance)`` — reset state; the item starts on the origin server
  at ``t_0``.
* ``advance(t)`` — process internal events due strictly before ``t``.
* ``serve(i, t, s)`` — serve request ``r_i = (s, t)``.
* ``end(t_end)`` — truncate at the horizon and return the run result.

The instance object is passed to ``begin`` only for its static parameters
(``m``, cost model, origin, ``t_0``); implementations must not peek at
future requests — the test suite enforces this with a prefix-consistency
property (serving a prefix yields the same actions regardless of what
follows).
"""

from __future__ import annotations

import abc

from ..core.instance import ProblemInstance
from ..core.types import CostModel
from ..sim.recorder import OnlineRunResult, RunRecorder

__all__ = ["OnlineAlgorithm"]


class OnlineAlgorithm(abc.ABC):
    """Base class for online caching policies.

    Subclasses set :attr:`name` and implement the event hooks.  The base
    class owns the :class:`~repro.sim.recorder.RunRecorder` and exposes it
    as ``self.rec`` after :meth:`begin`.
    """

    #: Human-readable policy name (used in benchmark tables).
    name: str = "abstract"

    def __init__(self) -> None:
        self.rec: RunRecorder = None  # type: ignore[assignment]
        self.model: CostModel = None  # type: ignore[assignment]
        self.num_servers: int = 0
        self.origin: int = 0
        self.t0: float = 0.0

    def begin(self, instance: ProblemInstance) -> None:
        """Reset state for a fresh run over ``instance``."""
        self.model = instance.cost
        self.num_servers = instance.num_servers
        self.origin = instance.origin
        self.t0 = float(instance.t[0])
        self.rec = RunRecorder(self.num_servers, self.model)
        self._setup()

    @abc.abstractmethod
    def _setup(self) -> None:
        """Initialise algorithm-specific state (copy on origin etc.)."""

    @abc.abstractmethod
    def advance(self, t: float) -> None:
        """Process internal events due strictly before ``t``."""

    @abc.abstractmethod
    def serve(self, i: int, t: float, server: int) -> None:
        """Serve request ``r_i = (server, t)``."""

    def end(self, t_end: float) -> OnlineRunResult:
        """Finish the run: drain timers up to ``t_end`` and truncate."""
        self.advance(t_end)
        return self.rec.finalize(t_end, algorithm=self.name)

    def state_summary(self) -> dict:
        """Canonical plain-data view of mutable state for state digests.

        The base implementation covers the recorder ledger (everything
        that reaches the schedule) plus :meth:`_extra_state`; algorithms
        with private timers or RNGs override ``_extra_state`` so the
        :mod:`repro.runtime` digest distinguishes any two states that
        could diverge later.  Snapshot/restore itself does not rely on
        this — it pickles the object wholesale — so an incomplete
        summary weakens divergence *detection*, never resume fidelity.
        """
        return {
            "algorithm": self.name,
            "recorder": self.rec.state_summary() if self.rec is not None else None,
            "extra": self._extra_state(),
        }

    def _extra_state(self) -> dict:
        """Algorithm-specific mutable state folded into the digest."""
        return {}

    def run(
        self, instance: ProblemInstance, kernel: str = "auto"
    ) -> OnlineRunResult:
        """Convenience: drive this algorithm with the standard engine.

        ``kernel`` selects the execution path (``"auto"`` / ``"event"``
        / ``"vector"``, see :func:`repro.sim.engine.run_online`); all
        paths produce bit-identical results.
        """
        from ..sim.engine import run_online

        return run_online(self, instance, kernel=kernel)
