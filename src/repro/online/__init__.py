"""Online algorithms (paper Section V): SC, its analysis tooling, baselines.

* :class:`SpeculativeCaching` — the 3-competitive SC algorithm
  (Contribution 2), generalised to the ``TTL(γ·λ/μ)`` family.
* :func:`double_transfer` — the cost-preserving DT transformation
  (Definition 10).
* :mod:`~repro.online.reductions` — V-/H-reductions, Lemma 5/6 checkers
  and the Theorem-3 verification chain.
* :class:`SpeculativeCachingResilient` — SC-R, the fault-tolerant
  ``k``-replica variant for the :mod:`repro.faults` fault model.
* Baselines: :class:`AlwaysTransfer`, :class:`NeverDelete`,
  :class:`RandomizedTTL`.
"""

from .base import OnlineAlgorithm
from .baselines import AlwaysTransfer, NeverDelete, RandomizedTTL
from .double_transfer import DoubleTransferResult, double_transfer
from .horizon import RecedingHorizonPlanner
from .predictive import (
    MarkovPredictor,
    NextUsePredictor,
    OracleNextRequest,
    PredictiveCaching,
)
from .reductions import (
    ReductionReport,
    check_short_windows_cached,
    check_single_cover_on_big_gaps,
    gap_cover_matrix,
    reduced_cost,
    refined_sigma,
    short_request_set,
    verify_theorem3,
)
from .resilient import SpeculativeCachingResilient
from .speculative import SpeculativeCaching
from .trusted import NoisyOracle, TrustedPredictionCaching
from .workfunction import WorkFunctionCaching

__all__ = [
    "AlwaysTransfer",
    "DoubleTransferResult",
    "MarkovPredictor",
    "NeverDelete",
    "NoisyOracle",
    "NextUsePredictor",
    "OnlineAlgorithm",
    "OracleNextRequest",
    "PredictiveCaching",
    "RandomizedTTL",
    "RecedingHorizonPlanner",
    "ReductionReport",
    "SpeculativeCaching",
    "SpeculativeCachingResilient",
    "TrustedPredictionCaching",
    "WorkFunctionCaching",
    "check_short_windows_cached",
    "check_single_cover_on_big_gaps",
    "double_transfer",
    "gap_cover_matrix",
    "reduced_cost",
    "refined_sigma",
    "short_request_set",
    "verify_theorem3",
]
