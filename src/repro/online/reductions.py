"""V- and H-reductions and the reduced-cost bookkeeping of Section V.

The competitive proof compares the DT schedule against the off-line
optimum after stripping *identical* weight from both:

* **V-reduction** (Definition 11): any inter-request gap with
  ``μ·δt_{i-1,i} > λ`` is charged ``λ`` instead of ``μ·δt`` — legitimate
  because exactly one server caches across such a gap in either schedule
  (Lemma 5, checked here as :func:`check_single_cover_on_big_gaps`).
* **H-reduction** (Definition 12): for every request with
  ``μσ_i < λ`` (the set ``SR``), the own-server cache
  ``H(s_i, t_{p(i)}, t_i)`` appears in both schedules (Lemma 6, checked
  as :func:`check_short_windows_cached`) and its charge is zeroed.

On the reduced instances, ``Π(DT') ≤ 3n'λ`` (Lemma 7) and
``Π(OPT') ≥ n'λ`` (Lemma 8) with ``n' = |R \\ SR|``, giving the
3-competitiveness of Theorem 3.  :func:`verify_theorem3` packages the
whole chain as checkable numbers.

All functions require *request-grid-aligned* schedules (every interval
endpoint a request instant): the DT transform and the off-line optimum
both satisfy this; raw SC runs do not (their tails end mid-gap) — pass
them through :func:`repro.online.double_transfer.double_transfer` first.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from ..core.instance import ProblemInstance
from ..core.types import InvalidScheduleError
from ..schedule.schedule import Schedule

__all__ = [
    "short_request_set",
    "gap_cover_matrix",
    "check_single_cover_on_big_gaps",
    "check_short_windows_cached",
    "reduced_cost",
    "refined_sigma",
    "ReductionReport",
    "verify_theorem3",
]

_TOL = 1e-9


def short_request_set(instance: ProblemInstance) -> List[int]:
    """``SR = {i : μσ_i < λ}`` — requests with cheap own-server caching."""
    mu, lam = instance.cost.mu, instance.cost.lam
    return [
        i
        for i in range(1, instance.n + 1)
        if instance.p[i] >= 0 and mu * float(instance.sigma[i]) < lam
    ]


def _grid_index(instance: ProblemInstance, t: float) -> int:
    idx = int(np.searchsorted(instance.t, t))
    for cand in (idx - 1, idx, idx + 1):
        if 0 <= cand <= instance.n and abs(float(instance.t[cand]) - t) <= _TOL:
            return cand
    raise InvalidScheduleError(
        f"schedule is not request-grid aligned: no request instant at t={t!r}"
    )


def gap_cover_matrix(schedule: Schedule, instance: ProblemInstance) -> np.ndarray:
    """Boolean ``(m, n)`` matrix: server ``j`` caches across gap ``i``.

    Gap ``i`` (column ``i-1``) is the open interval ``(t_{i-1}, t_i)``; a
    server covers it iff one of its merged intervals spans the whole gap.
    Requires grid alignment.
    """
    m, n = instance.num_servers, instance.n
    cov = np.zeros((m, n), dtype=bool)
    for iv in schedule.canonical().intervals:
        a = _grid_index(instance, iv.start)
        b = _grid_index(instance, iv.end)
        if b > a:
            cov[iv.server, a:b] = True
    return cov


def _big_gaps(instance: ProblemInstance) -> np.ndarray:
    mu, lam = instance.cost.mu, instance.cost.lam
    return mu * np.diff(instance.t) > lam + _TOL


def check_single_cover_on_big_gaps(
    schedule: Schedule, instance: ProblemInstance
) -> None:
    """Assert Lemma 5: each gap with ``μδt > λ`` is covered once."""
    cov = gap_cover_matrix(schedule, instance)
    counts = cov.sum(axis=0)
    big = _big_gaps(instance)
    bad = np.flatnonzero(big & (counts != 1))
    if bad.size:
        i = int(bad[0]) + 1
        raise InvalidScheduleError(
            f"Lemma 5 violated: gap (t_{i - 1}, t_{i}) with μδt > λ is "
            f"covered by {int(counts[i - 1])} servers (expected 1)"
        )


def check_short_windows_cached(
    schedule: Schedule, instance: ProblemInstance
) -> None:
    """Assert Lemma 6: every ``i ∈ SR`` has ``H(s_i, t_{p(i)}, t_i)``."""
    cov = gap_cover_matrix(schedule, instance)
    for i in short_request_set(instance):
        s, q = int(instance.srv[i]), int(instance.p[i])
        if not cov[s, q:i].all():
            raise InvalidScheduleError(
                f"Lemma 6 violated: request r_{i} has μσ < λ but its "
                f"own-server cache H(s{s}, t_{q}, t_{i}) is absent"
            )


def reduced_cost(
    schedule: Schedule,
    instance: ProblemInstance,
    extra: float = 0.0,
    check_lemmas: bool = True,
) -> float:
    """``Π`` of ``schedule`` after the V- and H-reductions.

    Parameters
    ----------
    schedule:
        Grid-aligned schedule (DT or off-line optimal).
    instance:
        The served instance.
    extra:
        Additional cost outside the schedule atoms (the DT initial cost).
    check_lemmas:
        Verify Lemmas 5 and 6 before reducing (they justify subtracting
        the same weight from both schedules).
    """
    if check_lemmas:
        check_single_cover_on_big_gaps(schedule, instance)
        check_short_windows_cached(schedule, instance)
    mu, lam = instance.cost.mu, instance.cost.lam
    cov = gap_cover_matrix(schedule, instance)
    gap_w = mu * np.diff(instance.t)  # charge per covering server, per gap
    # V-reduction: big gaps charge λ (single cover guaranteed above).
    gap_w = np.minimum(gap_w, lam)
    charges = cov * gap_w[None, :]
    # H-reduction: zero the own-server window of every short request.
    for i in short_request_set(instance):
        s, q = int(instance.srv[i]), int(instance.p[i])
        charges[s, q:i] = 0.0
    caching = float(charges.sum())
    transfer = schedule.transfer_cost(instance.cost)
    return caching + transfer + extra


def refined_sigma(instance: ProblemInstance) -> np.ndarray:
    """``μσ'_i`` per Equation (6) / Fig. 10 (indices 1..n; entry 0 is 0).

    For gaps shrunk by the V-reduction (``μδt_{i-1,i} > λ``) the refined
    window cost subtracts the shrinkage; otherwise it is ``μσ_i``
    unchanged.  Lemma 8's stepping stone — ``μσ'_i ≥ λ`` for every
    ``i ∉ SR`` — is a property test in the suite.
    """
    mu, lam = instance.cost.mu, instance.cost.lam
    out = np.zeros(instance.n + 1)
    dt = np.diff(instance.t)
    for i in range(1, instance.n + 1):
        base = mu * float(instance.sigma[i])
        excess = mu * float(dt[i - 1]) - lam
        if instance.p[i] >= 0 and excess > _TOL:
            out[i] = base - excess
        else:
            out[i] = base
    return out


@dataclass
class ReductionReport:
    """The Theorem-3 chain, evaluated on one instance.

    Attributes
    ----------
    sc_cost, opt_cost:
        Raw ``Π(SC)`` and ``Π(OPT)``.
    dt_reduced, opt_reduced:
        ``Π(DT')`` and ``Π(OPT')`` after both reductions.
    n_prime:
        ``|R \\ SR|``.
    lemma7_bound:
        ``3 n' λ`` (upper bound on ``Π(DT')``).
    lemma8_bound:
        ``n' λ`` (lower bound on ``Π(OPT')``).
    ratio, reduced_ratio:
        ``Π(SC)/Π(OPT)`` and ``Π(DT')/Π(OPT')``.
    """

    sc_cost: float
    opt_cost: float
    dt_reduced: float
    opt_reduced: float
    n_prime: int
    lemma7_bound: float
    lemma8_bound: float

    @property
    def ratio(self) -> float:
        """Empirical competitive ratio of the run."""
        return self.sc_cost / self.opt_cost if self.opt_cost > 0 else float("inf")

    @property
    def reduced_ratio(self) -> float:
        """Ratio of the reduced schedules (≤ 3 by Lemmas 7+8)."""
        return (
            self.dt_reduced / self.opt_reduced
            if self.opt_reduced > 0
            else float("inf")
        )

    def holds(self) -> bool:
        """True iff every inequality of the Theorem-3 chain holds."""
        tol = 1e-6 * max(1.0, self.sc_cost)
        return (
            self.dt_reduced <= self.lemma7_bound + tol
            and self.opt_reduced >= self.lemma8_bound - tol
            and self.sc_cost <= 3.0 * self.opt_cost + tol
        )


def verify_theorem3(instance: ProblemInstance) -> ReductionReport:
    """Run SC and OPT on ``instance`` and evaluate the Theorem-3 chain."""
    from ..offline.dp import solve_offline
    from .double_transfer import double_transfer
    from .speculative import SpeculativeCaching

    run = SpeculativeCaching().run(instance)
    dt = double_transfer(run, instance)
    opt = solve_offline(instance)
    opt_sched = opt.schedule()

    n_prime = instance.n - len(short_request_set(instance))
    lam = instance.cost.lam
    return ReductionReport(
        sc_cost=run.cost,
        opt_cost=opt.optimal_cost,
        dt_reduced=reduced_cost(dt.schedule, instance, extra=dt.initial_cost),
        opt_reduced=reduced_cost(opt_sched, instance),
        n_prime=n_prime,
        lemma7_bound=3.0 * n_prime * lam,
        lemma8_bound=n_prime * lam,
    )
