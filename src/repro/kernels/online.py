"""Array-native online SC/TTL(γ) kernel — whole runs without hook dispatch.

:class:`~repro.online.speculative.SpeculativeCaching` is the paper's
per-epoch state machine transliterated hook by hook: every request costs
an ``advance`` + ``serve`` dispatch, a heap push, recorder method calls
and a couple of small-object allocations.  That is the right shape for
an *executable specification*, but competitive-ratio sweeps run it
millions of times, and the interpreter overhead — not the state machine
— dominates.

This module is the fast path: one tight loop over native scalar columns
that replays the *identical* state machine and produces bit-identical
results, including floating-point expression order:

* the expiration queue is a flat ``(time, server)`` list consumed by a
  head pointer.  SC's pushes are monotone non-decreasing in time (a
  refresh at ``t`` grants ``t + W``, never earlier than any pending
  entry; a lone-copy extension at ``e`` grants ``e + W`` after every
  pending valid entry has fired), so appends keep the list in exactly
  the heap's ``(time, seq)`` pop order; a ``bisect`` insert covers any
  out-of-order push so the replication is exact by construction, not by
  conjecture.  Lazy invalidation is the same time-match rule as
  :meth:`EventQueue.pop_group` (``expiry[s] == entry time``), stale
  entries are consumed on the way, and same-time entries are gathered
  into one deduplicated group;
* expiration groups replay paper step 4 verbatim: delete all when the
  floor holds, otherwise pick survivors by the transfer-target tie rule
  (first ``"dst"`` cause in group order, else most recent cause) and
  re-arm them flat at ``e + W`` — the lone-copy extension chain is the
  same repeated addition ``e, e+W, (e+W)+W, ...`` as the per-event code,
  never the algebraically equal ``e + k·W``;
* request handling replays step 3: the window test ``expiry[s] >= t``,
  the previous requester as transfer source (with the same freshest-
  copy fallback, counted identically), source refresh, and the
  ``epoch_size`` reset that only the requester's copy survives;
* finalisation replays :meth:`RunRecorder.finalize` + ``Schedule``
  canonicalisation on plain tuples: truncate open lifetimes at ``t_n``,
  sort intervals by ``(server, start, end)``, merge with the exact
  touch-merges-too rule, and charge ``μ · Σ durations + Σ λ`` with the
  same left-fold summation order.

The eligibility test is deliberately ``type(...) is SpeculativeCaching``
— subclasses (randomised TTL windows, predictive windows, the resilient
replica floor) override the window/floor hooks this kernel hard-codes,
so they stay on the per-event path.

Batch entry points (:func:`run_online_layout`, :func:`run_online_batch`,
:func:`sweep_layout`) reuse :class:`~repro.kernels.batch.BatchLayout`'s
ragged columns so a whole multi-item shard or a TTL γ-grid is one kernel
call with the per-item column prep hoisted out of the γ loop.

Import discipline: like the rest of :mod:`repro.kernels`, no module-level
imports of :mod:`repro.core` / :mod:`repro.online` / :mod:`repro.sim`
(the instance constructor imports the kernels package) — result
materialisation imports lazily.
"""

from __future__ import annotations

import math
from bisect import bisect_right, insort
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

import numpy as np

from .batch import BatchLayout

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..core.instance import ProblemInstance
    from ..online.base import OnlineAlgorithm
    from ..sim.recorder import OnlineRunResult

__all__ = [
    "ONLINE_KERNELS",
    "OnlineKernelRun",
    "vectorizable",
    "vector_policy_config",
    "run_online_vector",
    "run_online_layout",
    "run_online_batch",
    "sweep_layout",
    "decision_digest",
    "sc_name",
]

#: Valid ``kernel=`` selectors for online runs.  ``"auto"`` picks the
#: vector kernel when the policy is eligible (exactly
#: :class:`SpeculativeCaching`, no subclass) and the per-event path
#: otherwise; ``"event"`` / ``"vector"`` pin a path (``"vector"`` raises
#: for ineligible policies).  Results are bit-identical either way.
ONLINE_KERNELS = ("auto", "event", "vector")

_NEG_INF = -math.inf

_digest_value = None


def _get_digest_value():
    global _digest_value
    if _digest_value is None:
        from ..runtime.digest import digest_value

        _digest_value = digest_value
    return _digest_value


def sc_name(window_factor: float) -> str:
    """The policy name ``SpeculativeCaching(window_factor=γ)`` reports."""
    if window_factor != 1.0:
        return f"ttl({window_factor:g}x)"
    return "speculative-caching"


def vectorizable(algorithm: "OnlineAlgorithm") -> bool:
    """True iff ``algorithm`` runs on the vector kernel bit-identically.

    The check is an exact type match: subclasses override the window /
    source / floor hooks whose SC behaviour this kernel hard-codes
    (``RandomizedTTL`` redraws its window per refresh, ``Predictive``
    shrinks it, ``Resilient`` raises the copy floor), so any subclass —
    even one that changes nothing — stays on the per-event path.
    """
    from ..online.speculative import SpeculativeCaching

    return type(algorithm) is SpeculativeCaching


def vector_policy_config(
    algorithm: "OnlineAlgorithm",
) -> Optional[Tuple[float, Optional[int], str]]:
    """``(window_factor, epoch_size, name)`` when eligible, else ``None``."""
    if not vectorizable(algorithm):
        return None
    return (algorithm.window_factor, algorithm.epoch_size, algorithm.name)


# ---------------------------------------------------------------------------
# Kernel result.
# ---------------------------------------------------------------------------


@dataclass
class OnlineKernelRun:
    """Raw outcome of one vector-kernel run over one item.

    Everything is plain data (native scalars, tuples, numpy arrays) so a
    sweep over thousands of instances allocates no recorder/schedule
    machinery; :meth:`to_result` materialises the full
    :class:`~repro.sim.recorder.OnlineRunResult` — bit-identical to the
    per-event run — only when a caller wants the rich object.

    Attributes
    ----------
    name:
        Item name (batch entry points) — ``""`` for single runs.
    algorithm:
        Policy name (``"speculative-caching"`` / ``"ttl(γx)"``).
    cost:
        ``Π`` of the run, same float the per-event recorder computes.
    caching_cost / transfer_cost / copy_seconds:
        Cost split; ``copy_seconds`` is the merged copy-time the caching
        charge rents (``caching_cost = μ · copy_seconds``).
    counters:
        Same keys/values as the per-event recorder.
    hit:
        Per-request local-hit flags, index-aligned with the instance
        (``hit[0]`` covers the boundary request ``r_0`` and is always
        True — the initial copy serves it).
    src:
        Per-request transfer source (``-1`` where no transfer happened).
    epoch_resets:
        Request indices whose transfer closed an epoch.
    transfers:
        ``(time, src, dst)`` in creation order.
    intervals:
        Canonical merged ``(server, start, end)`` cache intervals.
    lifetimes:
        Raw 7-tuples in :class:`CopyLifetime` field order.
    digest:
        The decision digest (see :func:`decision_digest`).
    """

    name: str
    algorithm: str
    window_factor: float
    epoch_size: Optional[int]
    cost: float
    caching_cost: float
    transfer_cost: float
    copy_seconds: float
    counters: Dict[str, int]
    hit: np.ndarray
    src: np.ndarray
    epoch_resets: np.ndarray
    transfers: List[Tuple[float, int, int]]
    intervals: List[Tuple[int, float, float]]
    lifetimes: List[tuple] = field(repr=False)
    _digest: Optional[str] = field(default=None, repr=False)

    @property
    def digest(self) -> str:
        """Decision digest, computed on first access and cached."""
        if self._digest is None:
            self._digest = _get_digest_value()(
                _digest_payload(
                    self.algorithm,
                    self.cost,
                    self.counters,
                    self.transfers,
                    self.intervals,
                )
            )
        return self._digest

    @property
    def num_transfers(self) -> int:
        return len(self.transfers)

    def to_result(self) -> "OnlineRunResult":
        """Materialise the bit-identical :class:`OnlineRunResult`.

        Only ``1 + num_transfers`` lifetime objects and the canonical
        interval/transfer atoms are allocated — cheap next to the run.
        """
        from ..core.types import CacheInterval, Transfer
        from ..schedule.schedule import Schedule
        from ..sim.recorder import CopyLifetime, OnlineRunResult

        schedule = Schedule(
            intervals=[CacheInterval(s, a, b) for s, a, b in self.intervals],
            transfers=[Transfer(t, s, d) for t, s, d in sorted(self.transfers)],
        )
        return OnlineRunResult(
            schedule=schedule,
            cost=self.cost,
            counters=dict(self.counters),
            lifetimes=[CopyLifetime(*row) for row in self.lifetimes],
            algorithm=self.algorithm,
            transfers=list(self.transfers),
        )


def decision_digest(run: Union[OnlineKernelRun, "OnlineRunResult"]) -> str:
    """Canonical digest of a run's decisions and cost.

    Covers the algorithm name, total cost, counters, creation-order
    transfers and canonical merged intervals — everything the per-epoch
    state machine decided.  Computable from either representation, and
    equal exactly when the runs are bit-identical, so the differential
    suite and the benchmark identity gates compare one short string.
    """
    if isinstance(run, OnlineKernelRun):
        return run.digest
    payload = _digest_payload(
        run.algorithm,
        run.cost,
        run.counters,
        [(t, s, d) for t, s, d in run.transfers],
        [(iv.server, iv.start, iv.end) for iv in run.schedule.intervals],
    )
    return _get_digest_value()(payload)


def _digest_payload(algorithm, cost, counters, transfers, intervals) -> dict:
    return {
        "algorithm": algorithm,
        "cost": float(cost),
        "counters": {k: int(v) for k, v in counters.items()},
        "transfers": [[float(t), int(s), int(d)] for t, s, d in transfers],
        "intervals": [[int(s), float(a), float(b)] for s, a, b in intervals],
    }


# ---------------------------------------------------------------------------
# The kernel core: one item, native scalar columns.
# ---------------------------------------------------------------------------


def _kernel_run(
    name: str,
    ts: List[float],
    ss: List[int],
    m: int,
    mu: float,
    lam: float,
    origin: int,
    window_factor: float,
    epoch_size: Optional[int],
    algo_name: Optional[str] = None,
) -> OnlineKernelRun:
    """Replay SC/TTL(γ) over one item's native columns (incl. ``r_0``).

    Every arithmetic expression below mirrors its per-event twin
    character for character — ``window_factor * (lam / mu)`` like
    ``_window``, ``t + W`` like ``_arm``, ``e + W`` like the flat
    re-arm — so results agree bitwise, not just to tolerance.
    """
    if window_factor <= 0:
        raise ValueError(f"window_factor must be positive, got {window_factor}")
    if epoch_size is not None and epoch_size < 1:
        raise ValueError(f"epoch_size must be >= 1, got {epoch_size}")
    W = window_factor * (lam / mu)
    t0 = ts[0]
    n = len(ts) - 1

    expiry = [_NEG_INF] * m
    # _cause replica: kind None == absent; the per-event dict keeps stale
    # causes across deletions, so these are never cleared either.
    cause_kind: List[Optional[str]] = [None] * m
    cause_time = [0.0] * m
    cause_kind[origin] = "initial"
    cause_time[origin] = t0

    # Expiration queue: (time, server) in heap pop order, head-consumed.
    qt: List[float] = [t0 + W]
    qs: List[int] = [origin]
    head = 0
    expiry[origin] = t0 + W

    c = 1
    r = 0
    last = origin

    # Lifetime ledger: rows in CopyLifetime field order, mutated in place.
    lifetimes: List[list] = [[origin, t0, None, t0, "initial", -1, None]]
    open_life = [-1] * m
    open_life[origin] = 0

    transfers: List[Tuple[float, int, int]] = []
    hits = 0
    expirations = 0
    extensions = 0
    epochs = 0
    fallbacks = 0

    miss_idx: List[int] = []
    miss_src: List[int] = []
    resets: List[int] = []

    def push_slow(time: float, server: int) -> None:  # pragma: no cover
        # SC pushes monotonically non-decreasing, so the hot paths just
        # append; this insert is the exact-order safety net replicating
        # heap (time, seq) placement for any out-of-order push.
        pos = bisect_right(qt, time, head)
        qt.insert(pos, time)
        qs.insert(pos, server)

    def advance(t: float) -> None:
        nonlocal head, c, expirations, extensions
        qlen = len(qt)
        while True:
            # pop_group(t, _valid): discard stale, deliver the earliest
            # valid entry plus all same-time entries (validity-filtered).
            e = 0.0
            s = -1
            while head < qlen and qt[head] < t:
                e = qt[head]
                s = qs[head]
                head += 1
                if expiry[s] == e:
                    break
            else:
                return
            group = [s]
            while head < qlen and qt[head] == e:
                s2 = qs[head]
                head += 1
                if expiry[s2] == e:
                    group.append(s2)
            # Dedupe by server, order preserved (dict.fromkeys twin).
            if len(group) > 1:
                group = list(dict.fromkeys(group))
            deletable = c - 1
            if deletable >= len(group):
                for s2 in group:
                    expiry[s2] = _NEG_INF
                    c -= 1
                    expirations += 1
                    li = open_life[s2]
                    open_life[s2] = -1
                    row = lifetimes[li]
                    row[2] = e
                    row[6] = "expire"
            else:
                count = len(group) - deletable
                if count >= len(group):
                    keep = group
                else:
                    # _extension_survivors: repeated tie rule; count is
                    # provably 1 here (the group is every live copy) but
                    # the general loop is kept for exactness.
                    remaining = list(group)
                    keep = []
                    for _ in range(count):
                        winner = -1
                        for s2 in remaining:
                            if cause_kind[s2] == "dst":
                                winner = s2
                                break
                        if winner < 0:
                            best = _NEG_INF
                            for s2 in remaining:
                                ct = (
                                    cause_time[s2]
                                    if cause_kind[s2] is not None
                                    else _NEG_INF
                                )
                                if ct > best:
                                    best = ct
                                    winner = s2
                        keep.append(winner)
                        remaining.remove(winner)
                for s2 in group:
                    if s2 not in keep:
                        expiry[s2] = _NEG_INF
                        c -= 1
                        expirations += 1
                        li = open_life[s2]
                        open_life[s2] = -1
                        row = lifetimes[li]
                        row[2] = e
                        row[6] = "expire"
                extensions += 1
                for s2 in keep:
                    e2 = e + W
                    expiry[s2] = e2
                    if head >= qlen or e2 >= qt[-1]:
                        qt.append(e2)
                        qs.append(s2)
                    else:  # pragma: no cover - unreachable for SC
                        push_slow(e2, s2)
                    qlen = len(qt)

    has_epoch = epoch_size is not None
    for i in range(1, n + 1):
        t = ts[i]
        # pop_group pops nothing unless an entry sits strictly before t,
        # so the guard is an exact (and much cheaper) no-op detector.
        if head < len(qt) and qt[head] < t:
            advance(t)
        server = ss[i]
        if expiry[server] >= t:
            hits += 1
            lifetimes[open_life[server]][3] = t
            cause_kind[server] = "local"
            cause_time[server] = t
            e2 = t + W
            expiry[server] = e2
            if head >= len(qt) or e2 >= qt[-1]:
                qt.append(e2)
                qs.append(server)
            else:  # pragma: no cover - unreachable for SC
                push_slow(e2, server)
        else:
            src = last
            if not (expiry[src] >= t and src != server):
                fallbacks += 1
                alive = [
                    s2 for s2 in range(m) if s2 != server and expiry[s2] >= t
                ]
                if not alive:  # pragma: no cover - extension rule forbids
                    raise RuntimeError(
                        f"no live copy anywhere at t={t}; the never-drop-"
                        f"the-last-copy rule is broken"
                    )
                src = max(alive, key=expiry.__getitem__)
            miss_idx.append(i)
            miss_src.append(src)
            transfers.append((t, src, server))
            if open_life[server] >= 0:  # pragma: no cover - defensive twin
                raise RuntimeError(f"server {server} already holds a copy")
            open_life[server] = len(lifetimes)
            lifetimes.append(
                [server, t, None, t, "transfer", len(transfers) - 1, None]
            )
            c += 1
            cause_kind[server] = "dst"
            cause_time[server] = t
            e2 = t + W
            expiry[server] = e2
            if head >= len(qt) or e2 >= qt[-1]:
                qt.append(e2)
                qs.append(server)
            else:  # pragma: no cover - unreachable for SC
                push_slow(e2, server)
            lifetimes[open_life[src]][3] = t
            cause_kind[src] = "src"
            cause_time[src] = t
            expiry[src] = e2
            if head >= len(qt) or e2 >= qt[-1]:
                qt.append(e2)
                qs.append(src)
            else:  # pragma: no cover - unreachable for SC
                push_slow(e2, src)
            r += 1
            if has_epoch and r >= epoch_size:
                for s2 in range(m):
                    if s2 != server and expiry[s2] > _NEG_INF:
                        expiry[s2] = _NEG_INF
                        c -= 1
                        li = open_life[s2]
                        open_life[s2] = -1
                        row = lifetimes[li]
                        row[2] = t
                        row[6] = "epoch-reset"
                r = 0
                epochs += 1
                resets.append(i)
        last = server

    # end(t_n): drain timers strictly before the horizon, then truncate.
    t_end = ts[-1]
    if head < len(qt) and qt[head] < t_end:
        advance(t_end)
    for row in lifetimes:
        if row[2] is None:
            row[2] = t_end
            row[6] = "truncate"

    # finalize + canonical + total_cost on plain tuples, same expressions.
    # finalize clamps ends with min(end, t_end); every close time above
    # is already <= t_end, so the clamp returns the same float and can
    # be skipped without touching the value.
    merged: List[Tuple[int, float, float]] = []
    for s, a, b in sorted((row[0], row[1], row[2]) for row in lifetimes):
        if merged and merged[-1][0] == s and a <= merged[-1][2]:
            if b > merged[-1][2]:
                merged[-1] = (s, merged[-1][1], b)
        else:
            merged.append((s, a, b))
    copy_seconds = sum(b - a for _, a, b in merged)
    caching_cost = mu * copy_seconds
    transfer_cost = sum(lam for _ in transfers)
    cost = caching_cost + transfer_cost

    counters = {
        "transfers": len(transfers),
        "local_hits": hits,
        "expirations": expirations,
        "extensions": extensions,
        "epochs": epochs,
    }
    if fallbacks:
        counters["source_fallbacks"] = fallbacks

    hit_flags = np.ones(n + 1, dtype=bool)
    src_arr = np.full(n + 1, -1, dtype=np.int64)
    if miss_idx:
        idx = np.asarray(miss_idx, dtype=np.int64)
        hit_flags[idx] = False
        src_arr[idx] = np.asarray(miss_src, dtype=np.int64)

    algorithm = sc_name(window_factor) if algo_name is None else algo_name
    run = OnlineKernelRun(
        name=name,
        algorithm=algorithm,
        window_factor=window_factor,
        epoch_size=epoch_size,
        cost=cost,
        caching_cost=caching_cost,
        transfer_cost=transfer_cost,
        copy_seconds=copy_seconds,
        counters=counters,
        hit=hit_flags,
        src=src_arr,
        epoch_resets=np.asarray(resets, dtype=np.int64),
        transfers=transfers,
        intervals=merged,
        lifetimes=[tuple(row) for row in lifetimes],
    )
    return run


# ---------------------------------------------------------------------------
# Public entry points: single instance, packed layout, item batch, γ-grid.
# ---------------------------------------------------------------------------


def run_online_vector(
    instance: "ProblemInstance",
    window_factor: float = 1.0,
    epoch_size: Optional[int] = None,
    materialize: bool = True,
    algorithm_name: Optional[str] = None,
) -> Union["OnlineRunResult", OnlineKernelRun]:
    """Run SC/TTL(γ) over one instance on the vector kernel.

    Bit-identical to
    ``run_online(SpeculativeCaching(window_factor, epoch_size), instance)``
    on every result field.  ``materialize=False`` returns the raw
    :class:`OnlineKernelRun` (no recorder/schedule objects) for sweeps.
    ``algorithm_name`` overrides the reported policy name (the engine
    passes the policy's own ``name`` so a renamed instance round-trips).
    """
    ts = np.asarray(instance.t, dtype=np.float64).tolist()
    ss = np.asarray(instance.srv, dtype=np.int64).tolist()
    run = _kernel_run(
        "",
        ts,
        ss,
        int(instance.num_servers),
        float(instance.cost.mu),
        float(instance.cost.lam),
        int(instance.origin),
        window_factor,
        epoch_size,
        algo_name=algorithm_name,
    )
    return run.to_result() if materialize else run


def _layout_columns(
    layout: BatchLayout,
) -> List[Tuple[str, List[float], List[int], int, float, float, int]]:
    """Hoist a layout's per-item columns to native scalars once."""
    cols = []
    for k in range(layout.num_items):
        sl = layout.item_slice(k)
        cols.append(
            (
                layout.names[k],
                layout.t[sl].tolist(),
                layout.srv[sl].tolist(),
                int(layout.mserv[k]),
                float(layout.mu[k]),
                float(layout.lam[k]),
                int(layout.origin[k]),
            )
        )
    return cols


def run_online_layout(
    layout: BatchLayout,
    window_factor: float = 1.0,
    epoch_size: Optional[int] = None,
    algorithm_name: Optional[str] = None,
) -> List[OnlineKernelRun]:
    """Run the kernel over every item of a packed batch layout.

    One call serves a whole shard / instance block; results are in
    layout order, each bit-identical to the per-item per-event run.
    """
    return [
        _kernel_run(
            name,
            ts,
            ss,
            m,
            mu,
            lam,
            origin,
            window_factor,
            epoch_size,
            algo_name=algorithm_name,
        )
        for name, ts, ss, m, mu, lam, origin in _layout_columns(layout)
    ]


def sweep_layout(
    layout: BatchLayout,
    window_factors: Sequence[float],
    epoch_size: Optional[int] = None,
) -> List[List[OnlineKernelRun]]:
    """TTL γ-grid over a packed batch: one row of runs per γ.

    The per-item column prep (numpy → native scalars) is hoisted out of
    the γ loop, so widening the grid costs only the state-machine replay
    — the broadcast the per-γ ``run_online`` loop cannot do.
    """
    cols = _layout_columns(layout)
    return [
        [
            _kernel_run(name, ts, ss, m, mu, lam, origin, float(wf), epoch_size)
            for name, ts, ss, m, mu, lam, origin in cols
        ]
        for wf in window_factors
    ]


def run_online_batch(
    items: Union[
        Dict[str, "ProblemInstance"], Iterable[Tuple[str, "ProblemInstance"]]
    ],
    window_factor: float = 1.0,
    epoch_size: Optional[int] = None,
    layout: Optional[BatchLayout] = None,
    algorithm_name: Optional[str] = None,
) -> Dict[str, "OnlineRunResult"]:
    """Serve a whole item batch with ONE kernel call per item block.

    The online twin of :func:`repro.kernels.batch.solve_offline_batch`:
    items are packed into a :class:`BatchLayout` (pass ``layout`` to
    reuse one already built for the offline solve) and every run is
    materialised bit-identical to the serial per-item
    ``SpeculativeCaching(...).run(inst)`` loop — same key order, same
    costs, same counters, same schedules.
    """
    pairs = list(items.items()) if isinstance(items, dict) else list(items)
    if not pairs:
        return {}
    if layout is None:
        layout = BatchLayout.from_instances(pairs)
    runs = run_online_layout(
        layout, window_factor, epoch_size, algorithm_name=algorithm_name
    )
    return {name: run.to_result() for (name, _), run in zip(pairs, runs)}
