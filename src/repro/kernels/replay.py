"""Array-backed replay fast path for the fault-free online engine.

:func:`repro.sim.engine.run_online` historically drove every run through
:class:`~repro.sim.engine.ReplayDriver`: build a list of
:class:`~repro.sim.engine.ReplayEvent` dataclasses (one numpy scalar
extraction + one object allocation per request), sort it, then dispatch
each event through ``step()``'s kind branching.  That machinery earns its
keep when fault events interleave or the run is supervised
(journal/snapshot between steps) — but a plain fault-free replay is just
"``advance`` then ``serve``, in request order", and for competitive-ratio
sweeps over thousands of instances the per-event dispatch dominated.

:func:`replay_fault_free` is that loop with everything hoisted: request
times and servers are converted to native Python scalars **once**
(``ndarray.tolist``), the hook methods are bound locals, and no event
objects exist at all.  The delivered call sequence — ``begin``,
(``advance(t_i)``, ``serve(i, t_i, s_i)``)\\*, ``end(t_n)`` — is exactly
the driver's fault-free contract, so results are bit-identical
(``tests/sim/test_engine.py`` pins this against a stepwise driver run).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover
    from ..core.instance import ProblemInstance
    from ..online.base import OnlineAlgorithm
    from ..sim.recorder import OnlineRunResult

__all__ = ["replay_fault_free"]


def replay_fault_free(
    algorithm: "OnlineAlgorithm", instance: "ProblemInstance"
) -> "OnlineRunResult":
    """Drive ``algorithm`` over ``instance`` without the event machinery.

    Callers (:func:`repro.sim.engine.run_online`) are responsible for the
    time-order validation the driver performs; this function assumes a
    well-formed instance and runs the tight loop only.
    """
    ts = np.asarray(instance.t, dtype=np.float64).tolist()
    ss = np.asarray(instance.srv, dtype=np.int64).tolist()
    algorithm.begin(instance)
    advance = algorithm.advance
    serve = algorithm.serve
    for i in range(1, len(ts)):
        t = ts[i]
        advance(t)
        serve(i, t, ss[i])
    return algorithm.end(ts[-1])
