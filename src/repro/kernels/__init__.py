"""Array-native hot-path kernels.

The reference implementations elsewhere in the package favour clarity:
per-request Python loops that mirror the paper's pseudocode line by
line.  This subpackage holds the *fast paths* — drop-in replacements
for the three interpreter-bound hot loops, each differentially tested
bit-identical to its reference twin:

* :mod:`repro.kernels.frontier` — the off-line DP sweep with per-server
  monotone pivot pointers and incrementally maintained running minima,
  amortised ``O(n + m + P)`` (``P`` = total pivot-pointer advances,
  typically ``≈ n``) instead of interpreter-level ``O(mn)``.  Selected
  via ``solve_offline(kernel="frontier")`` (the ``"auto"`` default).
* :mod:`repro.kernels.prescan` — the instance pre-scan (``p``, ``σ``,
  ``b``, ``B``, per-server lists, pivot matrix) as whole-array numpy
  operations instead of per-request/per-server Python loops.
* :mod:`repro.kernels.replay` — an array-backed replay loop for the
  fault-free online engine: request times/servers as native Python
  scalars hoisted out of numpy, no per-event object dispatch.
* :mod:`repro.kernels.batch` — the batched instance-major DP sweep:
  a whole multi-item service packed into concatenated ragged columns
  and solved with ONE kernel call (compiled C sweep when a system
  compiler exists, transliterated Python loop otherwise).  Selected
  via ``solve_offline(kernel="batch")`` / ``solve_offline_batch``;
  the service layer's shard workers call it once per shard.
* :mod:`repro.kernels.online` — the online twin of the batch DP: a
  whole SC/TTL(γ) run (decisions, epochs, copy-seconds, cost, digest)
  replayed over native scalar columns without per-event hook dispatch,
  plus batched entry points over the same :class:`BatchLayout` ragged
  columns so a multi-item shard or a TTL γ-grid is one kernel call.
  Selected via ``run_online(kernel="vector")`` (the ``"auto"`` default
  for plain ``SpeculativeCaching``).

Determinism contract: a kernel never changes *what* is computed, only
*how fast*.  ``C``/``D`` vectors, ``served_by_cache``, backtracking
choices, reconstructed schedules, and online run results are all
byte-identical across kernels — ``benchmarks/bench_dp_kernels.py``
gates on this unconditionally, and ``tests/offline/test_kernels.py``
property-tests it on random instances (ties, degenerate fleets).
"""

from .batch import (
    BatchLayout,
    batch_sweep_backend,
    solve_offline_batch,
)
from .frontier import FrontierState, solve_offline_frontier
from .online import (
    ONLINE_KERNELS,
    OnlineKernelRun,
    decision_digest,
    run_online_batch,
    run_online_layout,
    run_online_vector,
    sweep_layout,
    vectorizable,
)
from .prescan import (
    build_pivot_matrix,
    per_server_lists,
    prescan_arrays,
    prev_same_server,
)
from .replay import replay_fault_free

__all__ = [
    "BatchLayout",
    "batch_sweep_backend",
    "solve_offline_batch",
    "FrontierState",
    "solve_offline_frontier",
    "ONLINE_KERNELS",
    "OnlineKernelRun",
    "decision_digest",
    "run_online_batch",
    "run_online_layout",
    "run_online_vector",
    "sweep_layout",
    "vectorizable",
    "build_pivot_matrix",
    "per_server_lists",
    "prescan_arrays",
    "prev_same_server",
    "replay_fault_free",
]
