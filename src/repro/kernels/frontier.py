"""The frontier DP kernel — amortised ``O(n + m + P)`` off-line sweep.

The reference solver (:mod:`repro.offline.dp`) enumerates the cover set
``π(i)`` of Definition 8 afresh for every request: ``m`` pivot probes per
request, ``O(mn)`` probes total, each paying interpreter or small-array
numpy overhead.  This kernel computes the identical recurrences without
ever *searching* for a pivot, by exploiting two monotonicity facts:

1. For a fixed server ``s``, the queries it issues are monotone: the
   ``i``-th request on ``s`` asks for pivots at ``q = p(i)``, which is
   exactly where its previous request sat.  So each server can simply
   *accumulate* its pivot candidates between its own consecutive
   requests instead of looking them back up.
2. Request ``k`` is a pivot candidate for server ``s`` iff ``s`` has a
   request in the half-open index window ``(p(k), k]`` — i.e. iff ``s``'s
   most recent request is *more recent* than ``p(k)``.  Servers ordered
   by recency of their last request form a move-to-front list, and the
   candidates of ``k`` are exactly a prefix of it.

The sweep therefore keeps, per server ``s``:

* ``open_q[s]`` — index of ``s``'s most recent request (its next
  request's ``p(i)``);
* ``run_min[s]`` / ``run_arg[s]`` — the running minimum of
  ``D(k) − B_k`` over the pivot candidates accumulated since
  ``open_q[s]``, and the argmin index;

plus one move-to-front list of servers ordered by ``open_q`` descending.
Processing request ``k`` walks the list head-first, pushing
``D(k) − B_k`` into each visited server's running minimum, and stops at
the first server with ``open_q ≤ p(k)`` — everything beyond it is older
and ineligible.  Each visit is one real pivot relationship, so the walk
work *is* ``P = Σ_i |π(i)|`` (for Poisson/Zipf-style workloads ``P ≈ n``;
the adversarial worst case, perfect round-robin, degrades to the
reference's ``O(mn)`` but with a far smaller constant).  Everything else
is ``O(1)`` per request: total ``O(n + m + P)``.

Bit-identity with the reference solver (asserted by
``tests/offline/test_kernels.py`` and gated by
``benchmarks/bench_dp_kernels.py``):

* values: minima are order-independent, and ``D(i)``/``C(i)`` are
  assembled with the exact same floating-point expression, so ``C``,
  ``D`` and ``served_by_cache`` are byte-identical;
* argmins: the reference scans servers ``j = 0..m−1`` taking strict
  improvements, so its winner is the lexicographic minimum of
  ``(value, server)``.  The accumulator reproduces that by breaking
  value ties toward the candidate on the smaller server id, making
  ``choice_d_tag``/``choice_d_k`` — and hence reconstructed schedules —
  identical too.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (core -> prescan)
    from ..core.instance import ProblemInstance
    from ..offline.result import OfflineResult

__all__ = ["solve_offline_frontier", "FrontierState"]

_INF = math.inf


class FrontierState:
    """Incremental pivot-accumulator state of the frontier sweep.

    One instance holds everything the kernel keeps between requests; it
    is shared with :class:`~repro.offline.streaming.StreamingSolver`,
    whose ``kernel="frontier"`` mode advances the very same state one
    append at a time (the sweep is left-to-right, so batch and streaming
    runs of this state are the same computation).

    The move-to-front list is stored as ``fwd``/``bwd`` arrays over
    server ids with a virtual head sentinel ``-1``; servers enter the
    list at their first request.
    """

    __slots__ = (
        "m",
        "open_q",
        "run_min",
        "run_arg",
        "run_srv",
        "head",
        "fwd",
        "bwd",
        "listed",
        "advances",
    )

    def __init__(self, num_servers: int, origin: int):
        m = num_servers
        self.m = m
        self.open_q = [-1] * m
        self.run_min = [_INF] * m
        self.run_arg = [-1] * m
        # Server id of the current argmin candidate (value-tie breaker).
        self.run_srv = [m] * m
        self.head = origin
        self.fwd = [-1] * m  # next-older server in recency order
        self.bwd = [-1] * m  # next-newer server (-1 = head)
        self.listed = [False] * m
        self.listed[origin] = True
        self.open_q[origin] = 0
        # r_0's own candidate: D(0) = +inf, so it can never win, but it
        # keeps the accumulator total (π may legitimately contain r_0).
        self.run_arg[origin] = 0
        self.run_srv[origin] = origin
        #: Total pivot-pointer advances so far (the ``P`` of the bound).
        self.advances = 0

    def push(self, k: int, p_k: int, value: float, srv_k: int) -> None:
        """Offer ``D(k) − B_k`` to every server whose window covers ``k``.

        Walks the recency list head-first; a server qualifies while its
        last request is strictly newer than ``p(k)`` (then ``k`` is the
        first request of server ``srv_k`` at or after its ``open_q``,
        i.e. a genuine ``π`` member for its next request).
        """
        open_q = self.open_q
        run_min = self.run_min
        run_srv = self.run_srv
        fwd = self.fwd
        s = self.head
        adv = 0
        while s >= 0 and open_q[s] > p_k:
            adv += 1
            cur = run_min[s]
            if value < cur or (value == cur and srv_k < run_srv[s]):
                run_min[s] = value
                self.run_arg[s] = k
                run_srv[s] = srv_k
            s = fwd[s]
        self.advances += adv

    def reopen(self, server: int, k: int, value: float) -> None:
        """Reset ``server``'s window at its own request ``k``.

        The self-candidate ``D(k) − B_k`` seeds the running minimum
        (``k`` covers its own position: ``p(k) < k ≤ k``), and the
        server moves to the front of the recency list.
        """
        self.open_q[server] = k
        self.run_min[server] = value
        self.run_arg[server] = k
        self.run_srv[server] = server
        if self.head == server:
            return
        fwd, bwd = self.fwd, self.bwd
        if self.listed[server]:
            nxt, prv = fwd[server], bwd[server]
            fwd[prv] = nxt
            if nxt >= 0:
                bwd[nxt] = prv
        else:
            self.listed[server] = True
        fwd[server] = self.head
        bwd[self.head] = server
        bwd[server] = -1
        self.head = server


def solve_offline_frontier(instance: "ProblemInstance") -> "OfflineResult":
    """Solve ``instance`` with the frontier kernel (see module docstring).

    Returns an :class:`~repro.offline.result.OfflineResult` byte-identical
    to ``solve_offline(instance, kernel="reference")`` in every field.
    """
    from ..offline.result import FROM_C, FROM_D, OfflineResult

    n = instance.n
    m = instance.num_servers
    origin = instance.origin
    # Native Python scalars: a numpy scalar subscript costs ~10x a list
    # subscript, which would dominate the O(1)-per-request budget.
    t = instance.t.tolist()
    srv = instance.srv.tolist()
    p = instance.p.tolist()
    sigma = instance.sigma.tolist()
    B = instance.B.tolist()
    mu, lam = instance.cost.mu, instance.cost.lam

    C = [0.0] * (n + 1)
    D = [_INF] * (n + 1)
    served = [False] * (n + 1)
    tags = [-1] * (n + 1)
    args = [-1] * (n + 1)

    # FrontierState, inlined into locals: the two per-request method
    # calls (push/reopen) cost more than the state updates themselves at
    # this loop's time budget.  The streaming solver uses the class form.
    open_q = [-1] * m
    run_min = [_INF] * m
    run_arg = [-1] * m
    run_srv = [m] * m
    fwd = [-1] * m
    bwd = [-1] * m
    listed = [False] * m
    head = origin
    listed[origin] = True
    open_q[origin] = 0
    run_arg[origin] = 0
    run_srv[origin] = origin

    t_prev = t[0]
    c_prev = 0.0
    B_prev = 0.0
    for i in range(1, n + 1):
        s = srv[i]
        q = p[i]
        t_i = t[i]
        if q >= 0:
            # Boundary case of Recurrence (5) vs the accumulated pivots.
            best = C[q] - B[q]
            acc = run_min[s]
            if acc < best:
                # Same expression, same operand order as the reference.
                d_i = acc + mu * sigma[i] + B_prev
                tags[i] = FROM_D
                args[i] = run_arg[s]
            else:
                d_i = best + mu * sigma[i] + B_prev
                tags[i] = FROM_C
                args[i] = q
            D[i] = d_i
            via_transfer = c_prev + mu * (t_i - t_prev) + lam
            if d_i <= via_transfer:
                c_prev = d_i
                served[i] = True
            else:
                c_prev = via_transfer
        else:
            d_i = _INF
            c_prev = c_prev + mu * (t_i - t_prev) + lam
        C[i] = c_prev
        t_prev = t_i
        B_prev = B[i]
        value = d_i - B_prev
        # push: offer D(i) − B_i to every server whose open window
        # covers i (last request newer than p(i)) — a prefix of the
        # recency list.
        j = head
        while j >= 0 and open_q[j] > q:
            cur = run_min[j]
            if value < cur or (value == cur and s < run_srv[j]):
                run_min[j] = value
                run_arg[j] = i
                run_srv[j] = s
            j = fwd[j]
        # reopen: reset s's window at its own request (self-candidate
        # seeds the minimum) and move s to the recency-list front.
        open_q[s] = i
        run_min[s] = value
        run_arg[s] = i
        run_srv[s] = s
        if head != s:
            if listed[s]:
                nxt, prv = fwd[s], bwd[s]
                fwd[prv] = nxt
                if nxt >= 0:
                    bwd[nxt] = prv
            else:
                listed[s] = True
            fwd[s] = head
            bwd[head] = s
            bwd[s] = -1
            head = s

    return OfflineResult(
        instance=instance,
        C=np.asarray(C, dtype=np.float64),
        D=np.asarray(D, dtype=np.float64),
        served_by_cache=np.asarray(served, dtype=bool),
        choice_d_tag=np.asarray(tags, dtype=np.int64),
        choice_d_k=np.asarray(args, dtype=np.int64),
        solver="fast-dp",
    )
