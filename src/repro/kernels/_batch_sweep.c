/* Batched instance-major frontier sweep — C twin of the Python loop in
 * repro/kernels/frontier.py (solve_offline_frontier).
 *
 * One call sweeps EVERY item of a packed batch: the per-item request
 * columns (t / srv / p / sigma / B, each of length n_k + 1 including the
 * boundary request r_0) live back to back in flat arrays, with per-item
 * offsets, and the per-server accumulator state is stacked likewise.
 * Within an item the algorithm is a line-by-line transliteration of the
 * Python frontier kernel; across items it simply advances the base
 * pointers — instance-major, so each item's sweep touches a contiguous
 * block and the per-item Python orchestration cost disappears entirely.
 *
 * Bit-identity contract (asserted by tests/offline/test_batch_kernel.py
 * and gated by benchmarks/bench_dp_kernels.py):
 *
 *   - every floating-point expression keeps the Python operand order
 *     (`acc + mu * sigma[i] + B_prev` associates left to right in both
 *     languages), and the build deliberately passes -ffp-contract=off so
 *     no fused multiply-add can reassociate a rounding;
 *   - the argmin tie-break is the same lexicographic (value, server-id)
 *     rule, including the IEEE `inf == inf` tie case;
 *   - D(i)/C(i) tie toward the cache branch (`d_i <= via_transfer`).
 *
 * The function is pure C99 + stdint and is compiled on demand by
 * repro/kernels/batch.py with the system toolchain; when no compiler is
 * available the Python sweep in batch.py runs the same program.
 */

#include <math.h>
#include <stdint.h>

/* choice_d_tag values — must match repro.offline.result.FROM_C/FROM_D. */
#define FROM_C 0
#define FROM_D 1

int64_t repro_batch_sweep(
    int64_t n_items,
    const int64_t *off,     /* [n_items] start of item's column block   */
    const int64_t *nreq,    /* [n_items] request count n_k (excl. r_0)  */
    const int64_t *soff,    /* [n_items] start of item's server state   */
    const int64_t *mserv,   /* [n_items] fleet size m_k                 */
    const int64_t *origin,  /* [n_items] server holding the item at t_0 */
    const double *mu_arr,   /* [n_items] caching cost per time unit     */
    const double *lam_arr,  /* [n_items] transfer cost                  */
    const double *t,        /* [N1] request times (r_0 first per item)  */
    const int64_t *srv,     /* [N1] request servers                     */
    const int64_t *p,       /* [N1] prev same-server index, item-local  */
    const double *sigma,    /* [N1] server intervals                    */
    const double *B,        /* [N1] running bound prefix sums           */
    double *C,              /* [N1] out: optimal prefix costs           */
    double *D,              /* [N1] out: cache-branch costs             */
    uint8_t *served,        /* [N1] out: served_by_cache                */
    int64_t *tag,           /* [N1] out: choice_d_tag                   */
    int64_t *karg,          /* [N1] out: choice_d_k (item-local)        */
    int64_t *open_q,        /* [sum m_k] scratch                        */
    double *run_min,        /* [sum m_k] scratch                        */
    int64_t *run_arg,       /* [sum m_k] scratch                        */
    int64_t *run_srv,       /* [sum m_k] scratch                        */
    int64_t *fwd,           /* [sum m_k] scratch                        */
    int64_t *bwd,           /* [sum m_k] scratch                        */
    uint8_t *listed)        /* [sum m_k] scratch                        */
{
    int64_t advances = 0; /* total pivot-pointer advances (the P bound) */

    for (int64_t item = 0; item < n_items; item++) {
        const int64_t base = off[item];
        const int64_t n = nreq[item];
        const int64_t m = mserv[item];
        const int64_t org = origin[item];
        const double mu = mu_arr[item];
        const double lam = lam_arr[item];

        const double *pt = t + base;
        const int64_t *psrv = srv + base;
        const int64_t *pp = p + base;
        const double *psigma = sigma + base;
        const double *pB = B + base;
        double *pC = C + base;
        double *pD = D + base;
        uint8_t *pserved = served + base;
        int64_t *ptag = tag + base;
        int64_t *pkarg = karg + base;

        int64_t *oq = open_q + soff[item];
        double *rmin = run_min + soff[item];
        int64_t *rarg = run_arg + soff[item];
        int64_t *rsrv = run_srv + soff[item];
        int64_t *fw = fwd + soff[item];
        int64_t *bw = bwd + soff[item];
        uint8_t *lst = listed + soff[item];

        /* FrontierState.__init__: empty accumulators, r_0 opens origin. */
        for (int64_t j = 0; j < m; j++) {
            oq[j] = -1;
            rmin[j] = INFINITY;
            rarg[j] = -1;
            rsrv[j] = m;
            fw[j] = -1;
            bw[j] = -1;
            lst[j] = 0;
        }
        int64_t head = org;
        lst[org] = 1;
        oq[org] = 0;
        rarg[org] = 0;
        rsrv[org] = org;

        pC[0] = 0.0;
        pD[0] = INFINITY;
        pserved[0] = 0;
        ptag[0] = -1;
        pkarg[0] = -1;

        double t_prev = pt[0];
        double c_prev = 0.0;
        double B_prev = 0.0;
        for (int64_t i = 1; i <= n; i++) {
            const int64_t s = psrv[i];
            const int64_t q = pp[i];
            const double t_i = pt[i];
            double d_i;
            if (q >= 0) {
                /* Boundary case of Recurrence (5) vs accumulated pivots. */
                const double best = pC[q] - pB[q];
                const double acc = rmin[s];
                if (acc < best) {
                    /* Same expression, same operand order as Python. */
                    d_i = acc + mu * psigma[i] + B_prev;
                    ptag[i] = FROM_D;
                    pkarg[i] = rarg[s];
                } else {
                    d_i = best + mu * psigma[i] + B_prev;
                    ptag[i] = FROM_C;
                    pkarg[i] = q;
                }
                pD[i] = d_i;
                const double via = c_prev + mu * (t_i - t_prev) + lam;
                if (d_i <= via) {
                    c_prev = d_i;
                    pserved[i] = 1;
                } else {
                    c_prev = via;
                    pserved[i] = 0;
                }
            } else {
                d_i = INFINITY;
                pD[i] = INFINITY;
                ptag[i] = -1;
                pkarg[i] = -1;
                pserved[i] = 0;
                c_prev = c_prev + mu * (t_i - t_prev) + lam;
            }
            pC[i] = c_prev;
            t_prev = t_i;
            B_prev = pB[i];
            const double value = d_i - B_prev;
            /* push: offer D(i) - B_i to every server whose open window
             * covers i — a prefix of the recency list. */
            int64_t w = head;
            while (w >= 0 && oq[w] > q) {
                advances++;
                const double cur = rmin[w];
                if (value < cur || (value == cur && s < rsrv[w])) {
                    rmin[w] = value;
                    rarg[w] = i;
                    rsrv[w] = s;
                }
                w = fw[w];
            }
            /* reopen: reset s's window at its own request and move s to
             * the recency-list front. */
            oq[s] = i;
            rmin[s] = value;
            rarg[s] = i;
            rsrv[s] = s;
            if (head != s) {
                if (lst[s]) {
                    const int64_t nxt = fw[s], prv = bw[s];
                    fw[prv] = nxt;
                    if (nxt >= 0)
                        bw[nxt] = prv;
                } else {
                    lst[s] = 1;
                }
                fw[s] = head;
                bw[head] = s;
                bw[s] = -1;
                head = s;
            }
        }
    }
    return advances;
}
