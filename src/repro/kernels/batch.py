"""Batched instance-major DP kernel — one sweep over many items.

The service layer's steady state is thousands of *small* solves: the
multi-item benchmark spends its serial wall clock on per-item Python
orchestration (one ``solve_offline`` call, one instance rebuild, one
result object per item), not on DP arithmetic.  This module removes the
per-item overhead by packing a whole batch into one array program:

* :class:`BatchLayout` — the concatenated ``t``/``srv``/``p``/``sigma``/
  ``B`` request columns of every item laid back to back (instance-major,
  each column slice contiguous), plus per-item offset/size/cost vectors
  and a stacked per-server accumulator arena.  Ragged batches need no
  padding: item ``k`` owns ``[off[k], off[k] + n_k + 1)`` of every
  column (index ``off[k]`` is its boundary request ``r_0``) and
  ``[soff[k], soff[k] + m_k)`` of the server-state arena.
* :func:`solve_offline_batch` — one kernel call that sweeps every item
  and splits the stacked outputs back into per-item
  :class:`~repro.offline.result.OfflineResult` views, keyed in input
  order.

The sweep itself is the frontier kernel's loop (same recurrences, same
move-to-front pivot accumulator, same ``(value, server-id)`` tie-break)
run once per item over the packed columns.  Two interchangeable
backends execute it:

``"c"``
    ``_batch_sweep.c`` compiled on demand with the system C compiler
    (``$CC``/``cc``/``gcc``/``clang``; ``-O2 -fPIC -shared
    -ffp-contract=off``, no fast-math) into a per-user cache directory
    (``$REPRO_KERNEL_CACHE`` or ``$TMPDIR/repro-kernels-<uid>``, keyed
    by source hash) and loaded via :mod:`ctypes`.  ``-ffp-contract=off``
    forbids fused multiply-adds, so every expression rounds exactly
    like its Python twin.
``"python"``
    A pure-Python transliteration of the same loop — the executable
    specification, and the automatic fallback when no compiler exists.

Both backends are bit-identical to per-item ``kernel="frontier"`` on
every result field including tie-breaks; the differential suite
(``tests/offline/test_batch_kernel.py``) and the benchmark gates
(``benchmarks/bench_dp_kernels.py``) assert exactly that.  The
``REPRO_BATCH_SWEEP`` environment variable (``"c"`` / ``"python"``)
pins a backend for debugging and CI matrix runs.

Import discipline: like the rest of :mod:`repro.kernels`, this module
must not import :mod:`repro.core` at module level (the instance
constructor imports the kernels package); core types are imported
lazily inside functions.
"""

from __future__ import annotations

import ctypes
import hashlib
import math
import os
import shutil
import subprocess
import tempfile
import threading
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Iterable, List, Sequence, Tuple, Union

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (core -> kernels)
    from ..core.instance import ProblemInstance
    from ..offline.result import OfflineResult

__all__ = [
    "BatchLayout",
    "ColumnEntry",
    "solve_offline_batch",
    "solve_layout",
    "batch_sweep_backend",
    "BATCH_SWEEPS",
]

_INF = math.inf

#: Valid sweep-backend selectors for the batch kernel.  ``"auto"`` (and
#: its alias ``"batch"``, so service code can forward its ``kernel=``
#: string verbatim) picks the compiled sweep when available and falls
#: back to the Python twin; ``"c"`` / ``"python"`` pin a backend
#: (``"c"`` raises if no compiler or load failure).
BATCH_SWEEPS = ("auto", "batch", "c", "python")

#: Raw-column batch entry, the instance-free construction path:
#: ``(name, times, servers, num_servers, mu, lam, origin, start_time)``
#: with ``times``/``servers`` excluding the boundary request ``r_0``
#: (exactly the payload the shard transports already carry).
ColumnEntry = Tuple[str, np.ndarray, np.ndarray, int, float, float, int, float]


# ---------------------------------------------------------------------------
# Packed layout.
# ---------------------------------------------------------------------------


@dataclass
class BatchLayout:
    """Instance-major packing of a ragged batch of DP instances.

    All request columns have total length ``total = Σ_k (n_k + 1)``;
    item ``k`` owns the contiguous slice ``[off[k], off[k] + n_k + 1)``
    with its boundary request ``r_0`` at local index 0.  ``p`` holds
    *item-local* predecessor indices (``-1`` for a server's first
    request), so every per-item slice is self-contained.  The
    server-state arena spans ``Σ_k m_k`` slots starting at ``soff[k]``
    per item.
    """

    names: Tuple[str, ...]
    off: np.ndarray  # int64 [items] — column-slice starts
    nreq: np.ndarray  # int64 [items] — per-item n (excl. r_0)
    soff: np.ndarray  # int64 [items] — server-arena starts
    mserv: np.ndarray  # int64 [items] — per-item fleet size m
    origin: np.ndarray  # int64 [items]
    mu: np.ndarray  # float64 [items]
    lam: np.ndarray  # float64 [items]
    t: np.ndarray  # float64 [total]
    srv: np.ndarray  # int64 [total]
    p: np.ndarray  # int64 [total] — item-local predecessor indices
    sigma: np.ndarray  # float64 [total]
    B: np.ndarray  # float64 [total]

    @property
    def num_items(self) -> int:
        return len(self.names)

    @property
    def total(self) -> int:
        """Total column length ``Σ_k (n_k + 1)``."""
        return int(self.t.shape[0])

    def item_slice(self, k: int) -> slice:
        """The column slice owned by item ``k`` (includes ``r_0``)."""
        lo = int(self.off[k])
        return slice(lo, lo + int(self.nreq[k]) + 1)

    # -- construction --------------------------------------------------------

    @classmethod
    def from_instances(
        cls,
        items: Union[
            Dict[str, "ProblemInstance"],
            Iterable[Tuple[str, "ProblemInstance"]],
        ],
    ) -> "BatchLayout":
        """Pack pre-scanned instances by concatenating their columns.

        The instances' own ``p``/``sigma``/``B`` arrays are reused
        verbatim (``p`` is already item-local), so this path costs a
        handful of ``np.concatenate`` calls regardless of item count.
        """
        pairs = list(items.items()) if isinstance(items, dict) else list(items)
        if not pairs:
            raise ValueError("need at least one item to build a batch")
        names = tuple(name for name, _ in pairs)
        insts = [inst for _, inst in pairs]
        n1 = np.asarray([inst.n + 1 for inst in insts], dtype=np.int64)
        mserv = np.asarray([inst.num_servers for inst in insts], dtype=np.int64)
        return cls(
            names=names,
            off=_starts(n1),
            nreq=n1 - 1,
            soff=_starts(mserv),
            mserv=mserv,
            origin=np.asarray([inst.origin for inst in insts], dtype=np.int64),
            mu=np.asarray([inst.cost.mu for inst in insts], dtype=np.float64),
            lam=np.asarray([inst.cost.lam for inst in insts], dtype=np.float64),
            t=np.concatenate([inst.t for inst in insts]),
            srv=np.concatenate([inst.srv for inst in insts]),
            p=np.concatenate([inst.p for inst in insts]),
            sigma=np.concatenate([inst.sigma for inst in insts]),
            B=np.concatenate([inst.B for inst in insts]),
        )

    @classmethod
    def from_columns(cls, entries: Sequence[ColumnEntry]) -> "BatchLayout":
        """Pack raw request columns, running ONE pre-scan for the batch.

        This is the shard-worker path: entries arrive as the raw
        ``times``/``servers`` arrays the transports already ship, and
        the whole batch is validated and pre-scanned with whole-array
        numpy primitives — one stable ``lexsort`` groups every item's
        requests by server at once (the concatenated twin of
        :func:`repro.kernels.prescan.prev_same_server`), ``sigma``/``b``
        are elementwise, and ``B`` is a per-item ``cumsum`` (per-item on
        purpose: a segmented global scan would change float summation
        order and break bit-identity with instance construction).
        """
        from ..core.types import InvalidInstanceError

        if not entries:
            raise ValueError("need at least one item to build a batch")
        names: List[str] = []
        t_parts: List[np.ndarray] = []
        srv_parts: List[np.ndarray] = []
        n1_list: List[int] = []
        for name, times, servers, m, mu, lam, origin, start in entries:
            times = np.ascontiguousarray(times, dtype=np.float64)
            servers = np.ascontiguousarray(servers, dtype=np.int64)
            if times.ndim != 1 or times.shape != servers.shape:
                raise InvalidInstanceError(
                    f"item {name!r}: times and servers must be equal-length "
                    f"1-D arrays, got {times.shape} vs {servers.shape}"
                )
            names.append(name)
            t_parts.append(np.asarray([start], dtype=np.float64))
            t_parts.append(times)
            srv_parts.append(np.asarray([origin], dtype=np.int64))
            srv_parts.append(servers)
            n1_list.append(times.shape[0] + 1)
        n1 = np.asarray(n1_list, dtype=np.int64)
        off = _starts(n1)
        mserv = np.asarray([e[3] for e in entries], dtype=np.int64)
        origin = np.asarray([e[6] for e in entries], dtype=np.int64)
        mu = np.asarray([e[4] for e in entries], dtype=np.float64)
        lam = np.asarray([e[5] for e in entries], dtype=np.float64)
        t_all = np.concatenate(t_parts)
        srv_all = np.concatenate(srv_parts)
        total = t_all.shape[0]
        item_id = np.repeat(np.arange(len(n1), dtype=np.int64), n1)

        # Validation — the vectorized twin of ProblemInstance._init_arrays.
        if np.any(mserv < 1):
            k = int(np.flatnonzero(mserv < 1)[0])
            raise InvalidInstanceError(
                f"item {names[k]!r}: need at least one server, "
                f"got m={int(mserv[k])}"
            )
        if np.any((origin < 0) | (origin >= mserv)):
            k = int(np.flatnonzero((origin < 0) | (origin >= mserv))[0])
            raise InvalidInstanceError(
                f"item {names[k]!r}: origin {int(origin[k])} outside "
                f"[0, {int(mserv[k])})"
            )
        srv_bad = (srv_all < 0) | (srv_all >= mserv[item_id])
        if np.any(srv_bad):
            j = int(np.flatnonzero(srv_bad)[0])
            k = int(item_id[j])
            raise InvalidInstanceError(
                f"item {names[k]!r}: server ids must lie in "
                f"[0, {int(mserv[k])}); got {int(srv_all[j])}"
            )
        if total > 1:
            gaps = np.diff(t_all)
            intra = item_id[1:] == item_id[:-1]  # skip inter-item seams
            bad = (gaps <= 0) & intra
            if np.any(bad):
                j = int(np.flatnonzero(bad)[0])
                k = int(item_id[j])
                raise InvalidInstanceError(
                    f"item {names[k]!r}: request times must be strictly "
                    f"increasing after t_0={t_all[off[k]]}; violation at "
                    f"index {j + 1 - int(off[k])} (t={t_all[j + 1]})"
                )

        # Concatenated pre-scan: one stable lexsort groups by (item,
        # server) while keeping time order inside each group, so
        # consecutive same-group entries are exactly the (predecessor,
        # successor) pairs — the batched prev_same_server.
        p_global = np.full(total, -1, dtype=np.int64)
        if total > 1:
            order = np.lexsort((srv_all, item_id))
            same = (srv_all[order[1:]] == srv_all[order[:-1]]) & (
                item_id[order[1:]] == item_id[order[:-1]]
            )
            p_global[order[1:][same]] = order[:-1][same]
        off_rep = off[item_id]
        p_local = np.where(p_global >= 0, p_global - off_rep, -1)
        with np.errstate(invalid="ignore"):
            sigma = np.where(
                p_global >= 0, t_all - t_all[np.maximum(p_global, 0)], np.inf
            )
        sigma[off] = np.inf
        b = np.minimum(lam[item_id], mu[item_id] * sigma)
        b[off] = 0.0
        # Per-item cumsum (NOT a segmented global scan): same summation
        # order as prescan_arrays, hence bit-identical B columns.
        B = np.empty(total, dtype=np.float64)
        for k in range(len(n1)):
            lo = int(off[k])
            hi = lo + int(n1[k])
            np.cumsum(b[lo:hi], out=B[lo:hi])
        return cls(
            names=tuple(names),
            off=off,
            nreq=n1 - 1,
            soff=_starts(mserv),
            mserv=mserv,
            origin=origin,
            mu=mu,
            lam=lam,
            t=t_all,
            srv=srv_all,
            p=p_local,
            sigma=sigma,
            B=B,
        )


def _starts(sizes: np.ndarray) -> np.ndarray:
    """Exclusive prefix sums — the slice starts for per-item sizes."""
    out = np.zeros(sizes.shape[0], dtype=np.int64)
    np.cumsum(sizes[:-1], out=out[1:])
    return out


# ---------------------------------------------------------------------------
# C backend: compile on demand with the system toolchain, cache by source
# hash, load via ctypes.  No third-party build machinery — the container
# bakes in a C compiler (or we fall back to the Python sweep).
# ---------------------------------------------------------------------------

_SOURCE_PATH = os.path.join(os.path.dirname(__file__), "_batch_sweep.c")

#: Exact flag set the bit-identity contract depends on: -ffp-contract=off
#: forbids FMA contraction; no -ffast-math, no -march (portable cache).
_CFLAGS = ("-O2", "-fPIC", "-shared", "-ffp-contract=off")

_lib_lock = threading.Lock()
_lib_state: Dict[str, object] = {"loaded": False, "lib": None, "error": None}


def _cache_dir() -> str:
    path = os.environ.get("REPRO_KERNEL_CACHE")
    if not path:
        uid = os.getuid() if hasattr(os, "getuid") else "any"
        path = os.path.join(tempfile.gettempdir(), f"repro-kernels-{uid}")
    os.makedirs(path, mode=0o700, exist_ok=True)
    return path


def _find_compiler() -> Union[str, None]:
    for cand in (os.environ.get("CC"), "cc", "gcc", "clang"):
        if cand and shutil.which(cand):
            return cand
    return None


def _compile_sweep() -> str:
    """Compile ``_batch_sweep.c`` into the cache; returns the .so path.

    The artefact name carries the source hash, so editing the C file
    transparently rebuilds and stale caches can never serve old code;
    the ``os.replace`` publish keeps concurrent builders race-free.
    """
    with open(_SOURCE_PATH, "rb") as fh:
        source = fh.read()
    digest = hashlib.sha256(source + repr(_CFLAGS).encode()).hexdigest()[:16]
    so_path = os.path.join(_cache_dir(), f"repro_batch_sweep_{digest}.so")
    if os.path.exists(so_path):
        return so_path
    cc = _find_compiler()
    if cc is None:
        raise RuntimeError(
            "no C compiler found (tried $CC, cc, gcc, clang); the batch "
            "kernel will use its Python sweep"
        )
    tmp = f"{so_path}.{os.getpid()}.tmp"
    cmd = [cc, *_CFLAGS, _SOURCE_PATH, "-o", tmp, "-lm"]
    proc = subprocess.run(cmd, capture_output=True, text=True)
    if proc.returncode != 0:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise RuntimeError(
            f"batch sweep compile failed ({' '.join(cmd)}):\n{proc.stderr}"
        )
    os.replace(tmp, so_path)  # atomic publish
    return so_path


def _ptr(dtype) -> object:
    return np.ctypeslib.ndpointer(dtype=dtype, ndim=1, flags="C_CONTIGUOUS")


def _load_sweep_lib():
    """Compile+load the C sweep once per process; None when unavailable."""
    with _lib_lock:
        if _lib_state["loaded"]:
            return _lib_state["lib"]
        try:
            lib = ctypes.CDLL(_compile_sweep())
            fn = lib.repro_batch_sweep
            fn.restype = ctypes.c_int64
            fn.argtypes = [
                ctypes.c_int64,  # n_items
                _ptr(np.int64),  # off
                _ptr(np.int64),  # nreq
                _ptr(np.int64),  # soff
                _ptr(np.int64),  # mserv
                _ptr(np.int64),  # origin
                _ptr(np.float64),  # mu
                _ptr(np.float64),  # lam
                _ptr(np.float64),  # t
                _ptr(np.int64),  # srv
                _ptr(np.int64),  # p
                _ptr(np.float64),  # sigma
                _ptr(np.float64),  # B
                _ptr(np.float64),  # C
                _ptr(np.float64),  # D
                _ptr(np.uint8),  # served
                _ptr(np.int64),  # tag
                _ptr(np.int64),  # karg
                _ptr(np.int64),  # open_q
                _ptr(np.float64),  # run_min
                _ptr(np.int64),  # run_arg
                _ptr(np.int64),  # run_srv
                _ptr(np.int64),  # fwd
                _ptr(np.int64),  # bwd
                _ptr(np.uint8),  # listed
            ]
            _lib_state["lib"] = fn
        except (OSError, RuntimeError) as exc:
            _lib_state["lib"] = None
            _lib_state["error"] = exc
        _lib_state["loaded"] = True
        return _lib_state["lib"]


def batch_sweep_backend() -> str:
    """The backend ``"auto"`` resolves to right now: ``"c"`` / ``"python"``.

    Honours ``REPRO_BATCH_SWEEP``; benchmarks use this to soften the
    speedup gate when only the Python sweep is available.
    """
    forced = os.environ.get("REPRO_BATCH_SWEEP", "").strip().lower()
    if forced in ("c", "python"):
        return forced
    return "c" if _load_sweep_lib() is not None else "python"


def _resolve_backend(kernel: str) -> str:
    if kernel not in BATCH_SWEEPS:
        raise ValueError(
            f"batch sweep kernel must be one of {BATCH_SWEEPS}, "
            f"got {kernel!r}"
        )
    if kernel in ("auto", "batch"):
        return batch_sweep_backend()
    if kernel == "c" and _load_sweep_lib() is None:
        raise RuntimeError(
            f"kernel='c' requested but the compiled sweep is unavailable: "
            f"{_lib_state['error']}"
        )
    return kernel


# ---------------------------------------------------------------------------
# Python backend — the transliterated frontier loop over packed columns.
# Executable specification for the C twin, and the no-compiler fallback.
# ---------------------------------------------------------------------------


def _sweep_python(
    layout: BatchLayout,
    C: np.ndarray,
    D: np.ndarray,
    served: np.ndarray,
    tag: np.ndarray,
    karg: np.ndarray,
) -> None:
    from ..offline.result import FROM_C, FROM_D

    for item in range(layout.num_items):
        sl = layout.item_slice(item)
        n = int(layout.nreq[item])
        m = int(layout.mserv[item])
        org = int(layout.origin[item])
        mu = float(layout.mu[item])
        lam = float(layout.lam[item])
        # Native scalars, exactly like solve_offline_frontier.
        t = layout.t[sl].tolist()
        srv = layout.srv[sl].tolist()
        p = layout.p[sl].tolist()
        sigma = layout.sigma[sl].tolist()
        B = layout.B[sl].tolist()

        Ci = [0.0] * (n + 1)
        Di = [_INF] * (n + 1)
        si = [False] * (n + 1)
        tags = [-1] * (n + 1)
        args = [-1] * (n + 1)

        open_q = [-1] * m
        run_min = [_INF] * m
        run_arg = [-1] * m
        run_srv = [m] * m
        fwd = [-1] * m
        bwd = [-1] * m
        listed = [False] * m
        head = org
        listed[org] = True
        open_q[org] = 0
        run_arg[org] = 0
        run_srv[org] = org

        t_prev = t[0]
        c_prev = 0.0
        B_prev = 0.0
        for i in range(1, n + 1):
            s = srv[i]
            q = p[i]
            t_i = t[i]
            if q >= 0:
                best = Ci[q] - B[q]
                acc = run_min[s]
                if acc < best:
                    d_i = acc + mu * sigma[i] + B_prev
                    tags[i] = FROM_D
                    args[i] = run_arg[s]
                else:
                    d_i = best + mu * sigma[i] + B_prev
                    tags[i] = FROM_C
                    args[i] = q
                Di[i] = d_i
                via_transfer = c_prev + mu * (t_i - t_prev) + lam
                if d_i <= via_transfer:
                    c_prev = d_i
                    si[i] = True
                else:
                    c_prev = via_transfer
            else:
                d_i = _INF
                c_prev = c_prev + mu * (t_i - t_prev) + lam
            Ci[i] = c_prev
            t_prev = t_i
            B_prev = B[i]
            value = d_i - B_prev
            j = head
            while j >= 0 and open_q[j] > q:
                cur = run_min[j]
                if value < cur or (value == cur and s < run_srv[j]):
                    run_min[j] = value
                    run_arg[j] = i
                    run_srv[j] = s
                j = fwd[j]
            open_q[s] = i
            run_min[s] = value
            run_arg[s] = i
            run_srv[s] = s
            if head != s:
                if listed[s]:
                    nxt, prv = fwd[s], bwd[s]
                    fwd[prv] = nxt
                    if nxt >= 0:
                        bwd[nxt] = prv
                else:
                    listed[s] = True
                fwd[s] = head
                bwd[head] = s
                bwd[s] = -1
                head = s

        C[sl] = Ci
        D[sl] = Di
        served[sl] = si
        tag[sl] = tags
        karg[sl] = args


def _sweep_c(
    layout: BatchLayout,
    C: np.ndarray,
    D: np.ndarray,
    served: np.ndarray,
    tag: np.ndarray,
    karg: np.ndarray,
) -> None:
    fn = _load_sweep_lib()
    state = int(layout.mserv.sum())
    fn(
        layout.num_items,
        np.ascontiguousarray(layout.off),
        np.ascontiguousarray(layout.nreq),
        np.ascontiguousarray(layout.soff),
        np.ascontiguousarray(layout.mserv),
        np.ascontiguousarray(layout.origin),
        np.ascontiguousarray(layout.mu),
        np.ascontiguousarray(layout.lam),
        np.ascontiguousarray(layout.t),
        np.ascontiguousarray(layout.srv),
        np.ascontiguousarray(layout.p),
        np.ascontiguousarray(layout.sigma),
        np.ascontiguousarray(layout.B),
        C,
        D,
        served.view(np.uint8),
        tag,
        karg,
        np.empty(state, dtype=np.int64),
        np.empty(state, dtype=np.float64),
        np.empty(state, dtype=np.int64),
        np.empty(state, dtype=np.int64),
        np.empty(state, dtype=np.int64),
        np.empty(state, dtype=np.int64),
        np.empty(state, dtype=np.uint8),
    )


# ---------------------------------------------------------------------------
# Public solve entry points.
# ---------------------------------------------------------------------------


def solve_layout(
    layout: BatchLayout, kernel: str = "auto"
) -> List["OfflineResult"]:
    """Sweep a packed layout; per-item results in layout order.

    Each result's arrays are **read-only views** into the five stacked
    output arrays — zero copies at split time.  ``instance`` is left
    ``None`` (this entry point never sees instances); callers attach
    their own.  Because the arrays are shared views, results must never
    be mutated in place — use ``dataclasses.replace`` to derive
    variants (the shard workers do exactly that).
    """
    from ..offline.result import OfflineResult

    backend = _resolve_backend(kernel)
    total = layout.total
    C = np.empty(total, dtype=np.float64)
    D = np.empty(total, dtype=np.float64)
    served = np.empty(total, dtype=bool)
    tag = np.empty(total, dtype=np.int64)
    karg = np.empty(total, dtype=np.int64)
    if backend == "c":
        _sweep_c(layout, C, D, served, tag, karg)
    else:
        _sweep_python(layout, C, D, served, tag, karg)
    for arr in (C, D, served, tag, karg):
        arr.setflags(write=False)  # views share one buffer — guard it
    return [
        OfflineResult(
            instance=None,
            C=C[sl],
            D=D[sl],
            served_by_cache=served[sl],
            choice_d_tag=tag[sl],
            choice_d_k=karg[sl],
            solver="batch-dp",
        )
        for sl in (layout.item_slice(k) for k in range(layout.num_items))
    ]


def solve_offline_batch(
    items: Union[
        Dict[str, "ProblemInstance"], Iterable[Tuple[str, "ProblemInstance"]]
    ],
    kernel: str = "auto",
) -> Dict[str, "OfflineResult"]:
    """Solve a whole batch of instances with ONE kernel call.

    Parameters
    ----------
    items:
        Item name → pre-scanned instance (a
        :class:`~repro.service.multi.MultiItemInstance`'s ``items``
        dict), or an iterable of ``(name, instance)`` pairs.
    kernel:
        Sweep backend: ``"auto"`` (default; compiled C when available,
        Python otherwise; ``"batch"`` is accepted as an alias so the
        service layer can forward its kernel string), ``"c"``, or
        ``"python"``.  Backends are bit-identical; the knob is purely
        throughput/debugging.

    Returns
    -------
    dict
        Name → :class:`~repro.offline.result.OfflineResult` in the input
        order, each bit-identical to
        ``solve_offline(inst, kernel="frontier")`` on every field
        (``C``/``D``/``served_by_cache``/``choice_d_tag``/``choice_d_k``,
        tie-breaks included).  Result arrays are read-only views into
        the batch's stacked outputs; ``instance`` is attached.
    """
    pairs = list(items.items()) if isinstance(items, dict) else list(items)
    if not pairs:
        return {}
    layout = BatchLayout.from_instances(pairs)
    results = solve_layout(layout, kernel=kernel)
    for (_, inst), res in zip(pairs, results):
        res.instance = inst
    return {name: res for (name, _), res in zip(pairs, results)}
