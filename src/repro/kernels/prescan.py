"""Vectorized instance pre-scan — the ``p/σ/b/B`` arrays and pivot matrix.

:class:`~repro.core.instance.ProblemInstance` construction performs the
paper's pre-scan (proof of Theorem 2).  The reference formulation loops:
per-server slices for ``p(i)``, and a backward per-row Python sweep for
the pivot pointer matrix (Fig. 5) — ``O(n)`` interpreter iterations that
dominate end-to-end time on small and medium instances once the DP sweep
itself is fast.  This module computes the very same arrays with
whole-array numpy primitives (``argsort``/``searchsorted`` for grouping,
``minimum.accumulate`` for the suffix sweep), so construction costs a
handful of vector operations regardless of ``n``.

All functions are pure array-in/array-out (no instance types), keeping
the kernel import-free of :mod:`repro.core`; the instance constructor
calls them and the differential tests in ``tests/offline/test_kernels.py``
pin them element-identical to the reference loops (kept below as
``*_reference`` twins — they are the executable specification).
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

__all__ = [
    "per_server_lists",
    "prev_same_server",
    "prescan_arrays",
    "build_pivot_matrix",
]


def per_server_lists(servers: np.ndarray, num_servers: int) -> List[np.ndarray]:
    """Sorted request-index lists per server, via one stable argsort.

    ``servers`` is the length ``n+1`` array including ``r_0``; the
    returned list has one ascending index array per server id.
    """
    order = np.argsort(servers, kind="stable")
    split = np.searchsorted(servers[order], np.arange(num_servers + 1))
    return [
        np.ascontiguousarray(order[split[j] : split[j + 1]])
        for j in range(num_servers)
    ]


def prev_same_server(servers: np.ndarray) -> np.ndarray:
    """``p[i]`` — index of the previous request on the same server.

    ``-1`` stands in for the dummy requests ``r_{-j}`` (first request on
    a server).  One stable argsort groups requests by server while
    preserving time order inside each group; consecutive entries of the
    same group are exactly the (predecessor, successor) pairs.
    """
    n1 = servers.shape[0]
    p = np.full(n1, -1, dtype=np.int64)
    if n1 < 2:
        return p
    order = np.argsort(servers, kind="stable")
    same = servers[order[1:]] == servers[order[:-1]]
    p[order[1:][same]] = order[:-1][same]
    return p


def prescan_arrays(
    t: np.ndarray, servers: np.ndarray, mu: float, lam: float
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """The full pre-scan: ``(p, sigma, b, B)`` for a request vector.

    ``t``/``servers`` are the length ``n+1`` arrays including ``r_0``;
    boundary entries follow the instance contract (``p[0] = -1``,
    ``sigma[0] = inf``, ``b[0] = B[0] = 0``).
    """
    p = prev_same_server(servers)
    with np.errstate(invalid="ignore"):
        sigma = np.where(p >= 0, t - t[np.maximum(p, 0)], np.inf)
    sigma[0] = np.inf
    b = np.minimum(lam, mu * sigma)
    b[0] = 0.0
    B = np.cumsum(b)
    return p, sigma, b, B


def build_pivot_matrix(servers: np.ndarray, num_servers: int) -> np.ndarray:
    """``F[q, j] = min{k >= q : srv[k] == j}`` (``-1`` = none) — Fig. 5.

    Scatter each request index into its server's column, then one
    reversed in-place ``minimum.accumulate`` turns the columns into
    suffix-minima; the extra all ``-1`` row ``F[n+1]`` matches the
    reference layout.  The matrix is ``int32``: matrix mode only engages
    below the ``~50M``-cell budget, so indices always fit, and halving
    the element width halves the memory traffic of the build — the
    dominant cost of instance construction on large traces.
    """
    n1 = servers.shape[0]
    F = np.full((n1 + 1, num_servers), n1, dtype=np.int32)
    F[np.arange(n1), servers] = np.arange(n1, dtype=np.int32)
    rev = F[::-1]
    np.minimum.accumulate(rev, axis=0, out=rev)
    F[F == n1] = -1
    return F


# ---------------------------------------------------------------------------
# Reference twins — the original loop formulations, kept verbatim as the
# executable specification for the differential suite.  Not used on any
# hot path.
# ---------------------------------------------------------------------------


def prev_same_server_reference(
    per_server: List[np.ndarray], n1: int
) -> np.ndarray:
    """Loop twin of :func:`prev_same_server` (per-server slice writes)."""
    p = np.full(n1, -1, dtype=np.int64)
    for idx in per_server:
        if idx.shape[0] > 1:
            p[idx[1:]] = idx[:-1]
    return p


def build_pivot_matrix_reference(servers: np.ndarray, m: int) -> np.ndarray:
    """Loop twin of :func:`build_pivot_matrix` (backward row sweep)."""
    n1 = servers.shape[0]
    F = np.full((n1 + 1, m), -1, dtype=np.int32)
    for q in range(n1 - 1, -1, -1):
        F[q] = F[q + 1]
        F[q, servers[q]] = q
    return F
