"""Diurnal (time-of-day) request patterns.

Mobile data services breathe: traffic peaks by day and collapses by
night, and the regime shifts are exactly where caching policies must
switch between hold (day) and release (night).  This generator produces
a non-homogeneous Poisson process with a sinusoidal rate via thinning
(Lewis & Shedler), optionally with a day/night *server* split modelling
commuters (daytime requests favour work-side servers, night-time the
home side).
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

import numpy as np

from ..core.instance import ProblemInstance
from ..core.types import CostModel
from .synthetic import RngLike, _rng, zipf_weights

__all__ = ["diurnal_rate", "diurnal_instance"]


def diurnal_rate(
    t: Union[float, np.ndarray],
    base_rate: float = 1.0,
    amplitude: float = 0.8,
    period: float = 24.0,
    phase: float = 0.0,
) -> Union[float, np.ndarray]:
    """Instantaneous request rate ``λ(t)`` of the diurnal process.

    ``λ(t) = base · (1 + amplitude · sin(2π (t + phase) / period))``,
    clipped at zero.  ``amplitude ∈ [0, 1]`` keeps the rate non-negative
    without clipping.
    """
    if base_rate <= 0:
        raise ValueError(f"base_rate must be positive, got {base_rate}")
    if not 0.0 <= amplitude <= 1.0:
        raise ValueError(f"amplitude must be in [0, 1], got {amplitude}")
    if period <= 0:
        raise ValueError(f"period must be positive, got {period}")
    wave = np.sin(2.0 * np.pi * (np.asarray(t) + phase) / period)
    out = base_rate * (1.0 + amplitude * wave)
    return float(out) if np.isscalar(t) else np.maximum(out, 0.0)


def diurnal_instance(
    duration: float,
    m: int,
    base_rate: float = 1.0,
    amplitude: float = 0.8,
    period: float = 24.0,
    day_servers: Optional[Sequence[int]] = None,
    night_servers: Optional[Sequence[int]] = None,
    zipf_s: float = 0.8,
    cost: Optional[CostModel] = None,
    origin: int = 0,
    rng: RngLike = None,
) -> ProblemInstance:
    """Sinusoidal-rate arrivals over ``[0, duration]`` via thinning.

    Parameters
    ----------
    duration:
        Simulated horizon (same unit as ``period``; default hours).
    day_servers, night_servers:
        Optional commuter split: requests in the high-rate half of the
        cycle draw servers from ``day_servers``, the rest from
        ``night_servers`` (Zipf-weighted within each side).  Omitting
        both uses a global Zipf law.
    """
    if duration <= 0:
        raise ValueError(f"duration must be positive, got {duration}")
    if (day_servers is None) != (night_servers is None):
        raise ValueError("pass both day_servers and night_servers, or neither")
    g = _rng(rng)
    lam_max = base_rate * (1.0 + amplitude)

    # Thinning: homogeneous candidates at lam_max, accept w.p. λ(t)/λ_max.
    times = []
    t = 0.0
    while True:
        t += float(g.exponential(1.0 / lam_max))
        if t > duration:
            break
        if g.random() * lam_max <= diurnal_rate(
            t, base_rate, amplitude, period
        ):
            times.append(t)
    if not times:
        raise ValueError(
            "no requests generated; increase duration or base_rate"
        )
    times_arr = np.asarray(times)

    if day_servers is None:
        weights = zipf_weights(m, zipf_s)
        servers = g.choice(m, size=times_arr.shape[0], p=weights)
    else:
        day = np.asarray(list(day_servers), dtype=np.int64)
        night = np.asarray(list(night_servers), dtype=np.int64)
        if day.size == 0 or night.size == 0:
            raise ValueError("server sides must be non-empty")
        wave = np.sin(2.0 * np.pi * (times_arr) / period)
        servers = np.empty(times_arr.shape[0], dtype=np.int64)
        w_day = zipf_weights(day.size, zipf_s)
        w_night = zipf_weights(night.size, zipf_s)
        for k, (tt, wv) in enumerate(zip(times_arr, wave)):
            side, w = (day, w_day) if wv >= 0 else (night, w_night)
            servers[k] = side[g.choice(side.size, p=w)]
    return ProblemInstance.from_arrays(
        times_arr, servers, num_servers=m, cost=cost, origin=origin
    )
