"""Service-log traces: writing, reading, and mining into instances.

The paper assumes off-line sequences "could be secured in advance by
mining the data service logs" (Section I).  This module fixes a trivial
CSV log format and implements the mining step: parse, filter to one data
item, sort, de-duplicate simultaneous hits, and emit a
:class:`~repro.core.instance.ProblemInstance`.

Log format (header required)::

    time,server,user,item
    0.52,3,17,object-A
    0.61,0,4,object-A

``user`` and ``item`` are optional columns; when ``item`` is present the
miner selects one item's rows (the model is per-item).
"""

from __future__ import annotations

import csv
import io
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Sequence, TextIO, Union

import numpy as np

from ..core.instance import ProblemInstance
from ..core.types import CostModel, InvalidInstanceError

__all__ = ["TraceRecord", "write_trace", "read_trace", "mine_instance"]


@dataclass(frozen=True)
class TraceRecord:
    """One service-log line."""

    time: float
    server: int
    user: int = -1
    item: str = ""


def write_trace(
    records: Sequence[TraceRecord], dest: Union[str, Path, TextIO]
) -> None:
    """Write records as CSV (with header) to a path or open text file."""
    own = isinstance(dest, (str, Path))
    fh: TextIO = open(dest, "w", newline="") if own else dest  # type: ignore[arg-type]
    try:
        w = csv.writer(fh)
        w.writerow(["time", "server", "user", "item"])
        for r in records:
            w.writerow([repr(r.time), r.server, r.user, r.item])
    finally:
        if own:
            fh.close()


def read_trace(src: Union[str, Path, TextIO]) -> List[TraceRecord]:
    """Parse a CSV service log into records (order preserved)."""
    own = isinstance(src, (str, Path))
    fh: TextIO = open(src, "r", newline="") if own else src  # type: ignore[arg-type]
    try:
        reader = csv.DictReader(fh)
        if reader.fieldnames is None or "time" not in reader.fieldnames:
            raise InvalidInstanceError("trace is missing its header line")
        if "server" not in reader.fieldnames:
            raise InvalidInstanceError("trace header lacks a 'server' column")
        out: List[TraceRecord] = []
        for lineno, row in enumerate(reader, start=2):
            try:
                out.append(
                    TraceRecord(
                        time=float(row["time"]),
                        server=int(row["server"]),
                        user=int(row.get("user") or -1),
                        item=(row.get("item") or ""),
                    )
                )
            except (TypeError, ValueError) as exc:
                raise InvalidInstanceError(
                    f"bad trace line {lineno}: {row!r}"
                ) from exc
        return out
    finally:
        if own:
            fh.close()


def mine_instance(
    src: Union[str, Path, TextIO, Sequence[TraceRecord]],
    item: Optional[str] = None,
    num_servers: Optional[int] = None,
    cost: Optional[CostModel] = None,
    origin: int = 0,
    min_gap: float = 1e-9,
) -> ProblemInstance:
    """Mine a service log into a per-item problem instance.

    Parameters
    ----------
    src:
        Path / file of CSV lines, or pre-parsed records.
    item:
        Select rows for this item; ``None`` keeps every row (single-item
        logs).
    num_servers:
        Fleet size; defaults to the largest server id seen plus one.
    cost, origin:
        Instance parameters.
    min_gap:
        Simultaneous or out-of-order stamps (clock skew across log
        shards) are nudged forward so times are strictly increasing —
        mining must not crash on real logs.
    """
    records = src if not isinstance(src, (str, Path, io.TextIOBase)) else read_trace(src)
    rows = [r for r in records if item is None or r.item == item]
    if not rows:
        raise InvalidInstanceError(
            f"trace contains no rows for item {item!r}"
        )
    rows = sorted(rows, key=lambda r: r.time)
    times = np.array([r.time for r in rows], dtype=np.float64)
    servers = np.array([r.server for r in rows], dtype=np.int64)
    return _columns_to_instance(
        times,
        servers,
        num_servers=num_servers,
        cost=cost,
        origin=origin,
        min_gap=min_gap,
    )


def _enforce_min_gap(times: np.ndarray, min_gap: float) -> np.ndarray:
    """Nudge simultaneous/out-of-order stamps so times strictly increase.

    Semantics are exactly the historical scalar sweep — ``times[i]``
    becomes ``times[i - 1] + min_gap`` iff it does not already exceed
    the (possibly nudged) predecessor — including its floating-point
    evaluation order, so the CSV and columnar mining paths produce
    bit-identical instances.  Already-clean logs (the common case) cost
    one vectorized check; the scalar loop runs only from the first
    violation onward.
    """
    if times.shape[0] < 2 or bool(np.all(np.diff(times) > 0)):
        return times
    first = int(np.flatnonzero(np.diff(times) <= 0)[0]) + 1
    for i in range(first, times.shape[0]):
        if times[i] <= times[i - 1]:
            times[i] = times[i - 1] + min_gap
    return times


def _columns_to_instance(
    times: np.ndarray,
    servers: np.ndarray,
    num_servers: Optional[int],
    cost: Optional[CostModel],
    origin: int,
    min_gap: float,
) -> ProblemInstance:
    """Shared mining tail: sorted time/server columns -> instance.

    ``times`` must be sorted ascending (ties in original order) and
    writable; both the CSV and the columnar miners funnel through here,
    which is what guarantees their results are bit-identical.
    """
    times = _enforce_min_gap(times, min_gap)
    start = times[0] - max(min_gap, 1e-6)
    return ProblemInstance.from_arrays(
        times,
        servers,
        num_servers=num_servers,
        cost=cost,
        origin=origin,
        start_time=0.0 if start > 0 else start,
    )
