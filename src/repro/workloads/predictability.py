"""Trajectory predictability — the Song et al. motivation, quantified.

Section I cites the finding that "more than 93% of human behavior is
predictable" (Song, Qu, Blumm, Barabási, *Science* 2010 [2]) to argue
that off-line (trajectory-informed) caching is realistic.  This module
implements the two ingredients of that measurement so the workload
generators' predictability can be reported alongside benchmark results:

* :func:`lz_entropy_rate` — the Lempel-Ziv estimator of the entropy rate
  of a symbol sequence, ``S ≈ (n · log2 n) / Σ_i Λ_i``, where ``Λ_i`` is
  the length of the shortest substring starting at ``i`` that never
  appeared before ``i``.
* :func:`max_predictability` — the Fano-bound maximum predictability
  ``Π_max`` solving ``H(Π) + (1 - Π) log2(N - 1) = S``.

High-locality Markov trajectories land at ``Π_max ≈ 0.9+`` — matching
the paper's premise — while uniform random workloads sit near ``1/N``.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

__all__ = ["lz_entropy_rate", "max_predictability", "empirical_entropy"]


def lz_entropy_rate(symbols: Sequence[int]) -> float:
    """Lempel-Ziv entropy-rate estimate in bits per symbol.

    ``Λ_i`` is the length of the shortest prefix of ``symbols[i:]``
    absent from ``symbols[:i]``; the estimator is consistent for
    stationary ergodic sources (Kontoyiannis et al. 1998).  Degenerate
    inputs (length < 2, single symbol value) return 0.

    Equivalently ``Λ_i = min(L_i, n - i) + 1`` with ``L_i`` the longest
    match of the suffix at ``i`` fully contained in the history — which
    is what this whole-array form computes: for every lag ``d`` the
    self-match run lengths ``r`` of ``seq[d:]`` against ``seq[:-d]``
    are capped at ``d`` (a match may not overrun the history boundary)
    and max-folded into ``L``.  ``O(n²)`` like the scalar scan, but with
    numpy-speed inner loops; bit-identical to the reference
    implementation (regression-tested).
    """
    seq = np.asarray([int(x) for x in symbols], dtype=np.int64)
    n = int(seq.shape[0])
    if n < 2 or int(seq.min()) == int(seq.max()):
        return 0.0
    L = np.zeros(n, dtype=np.int64)
    for d in range(1, n):
        eq = seq[d:] == seq[:-d]
        # Run length *starting* at each position: reverse, index the
        # last False via a running max, subtract, reverse back.
        m = eq.shape[0]
        idx = np.arange(m)
        last_false = np.maximum.accumulate(np.where(eq[::-1], -1, idx))
        runs = (idx - last_false)[::-1]
        np.maximum(L[d:], np.minimum(runs, d), out=L[d:])
    lambdas = (np.minimum(L, n - np.arange(n)) + 1).astype(np.float64)
    return float(n * math.log2(n) / lambdas.sum())


def _lz_entropy_rate_reference(symbols: Sequence[int]) -> float:
    """Scalar-scan twin of :func:`lz_entropy_rate` (regression oracle)."""
    seq = [int(x) for x in symbols]
    n = len(seq)
    if n < 2 or len(set(seq)) < 2:
        return 0.0
    lambdas = np.empty(n)
    for i in range(n):
        history = seq[:i]
        k = 1
        while i + k <= n:
            needle = seq[i : i + k]
            found = any(
                history[j : j + k] == needle for j in range(max(0, i - k + 1))
            )
            if not found:
                break
            k += 1
        # Λ_i = shortest unseen length; when the whole suffix appeared
        # before, use n - i + 1 (standard convention).
        lambdas[i] = k if i + k <= n else (n - i + 1)
    return float(n * math.log2(n) / lambdas.sum())


def empirical_entropy(symbols: Sequence[int]) -> float:
    """Zeroth-order (frequency) entropy in bits — an upper reference.

    One ``np.bincount`` over shifted values instead of a full
    ``np.unique`` sort; the surviving counts come out in ascending value
    order — exactly ``np.unique``'s order — so the probability vector,
    and therefore the result, is bit-identical to the reference.
    """
    arr = np.asarray(symbols, dtype=np.int64)
    if arr.size == 0:
        return 0.0
    spread = int(arr.max()) - int(arr.min())
    if spread > max(1 << 20, 16 * arr.size):
        # Values too sparse for a dense bincount — sort instead.  Both
        # branches produce counts in ascending value order, so they are
        # bit-identical.
        _, counts = np.unique(arr, return_counts=True)
    else:
        counts = np.bincount(arr - arr.min())
        counts = counts[counts > 0]
    if counts.shape[0] < 2:
        return 0.0
    p = counts / counts.sum()
    return float(-(p * np.log2(p)).sum())


def _empirical_entropy_reference(symbols: Sequence[int]) -> float:
    """``np.unique``-based twin of :func:`empirical_entropy` (oracle)."""
    vals, counts = np.unique(
        np.asarray(symbols, dtype=np.int64), return_counts=True
    )
    p = counts / counts.sum()
    return float(-(p * np.log2(p)).sum()) if vals.size > 1 else 0.0


def max_predictability(entropy_rate: float, num_symbols: int) -> float:
    """Fano-bound maximum predictability ``Π_max``.

    Solves ``H(Π) + (1 - Π) log2(N - 1) = S`` for ``Π ∈ [1/N, 1]`` by
    bisection; ``S`` above the uniform entropy clamps to ``1/N`` and
    ``S <= 0`` to ``1``.
    """
    N = int(num_symbols)
    if N < 2:
        return 1.0
    S = float(entropy_rate)
    if S <= 0:
        return 1.0
    if S >= math.log2(N):
        return 1.0 / N

    def fano(pi: float) -> float:
        h = 0.0
        for p in (pi, 1.0 - pi):
            if p > 0:
                h -= p * math.log2(p)
        return h + (1.0 - pi) * math.log2(N - 1)

    lo, hi = 1.0 / N, 1.0 - 1e-12
    # fano is decreasing on [1/N, 1]: fano(1/N) = log2 N >= S, fano(1) = 0.
    for _ in range(200):
        mid = 0.5 * (lo + hi)
        if fano(mid) > S:
            lo = mid
        else:
            hi = mid
    return 0.5 * (lo + hi)
