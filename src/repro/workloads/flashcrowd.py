"""Flash-crowd workloads: the hotspot jumps.

Viral content produces a distinctive access pattern: almost all requests
concentrate on one edge server (the crowd's location), and the hotspot
*relocates* abruptly when the content catches on elsewhere.  Between the
jumps the optimal policy parks the copy at the hotspot; at each jump it
must decide fast — exactly the regime where SC's speculative window and
the epoch reset interact.

:func:`flash_crowd_instance` generates Poisson arrivals whose server
distribution is ``(1 - leak)`` on the current hotspot and ``leak``
spread uniformly elsewhere, with the hotspot resampled at exponential
intervals of mean ``dwell``.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..core.instance import ProblemInstance
from ..core.types import CostModel
from .synthetic import RngLike, _rng

__all__ = ["flash_crowd_instance"]


def flash_crowd_instance(
    n: int,
    m: int,
    rate: float = 2.0,
    dwell: float = 10.0,
    leak: float = 0.1,
    cost: Optional[CostModel] = None,
    origin: int = 0,
    rng: RngLike = None,
) -> ProblemInstance:
    """Hotspot-jumping workload.

    Parameters
    ----------
    n:
        Number of requests.
    m:
        Fleet size (needs ``m >= 2`` for jumps to exist).
    rate:
        Poisson arrival rate.
    dwell:
        Mean sojourn time of the hotspot on one server.
    leak:
        Probability mass of requests landing off-hotspot.
    """
    if m < 2:
        raise ValueError(f"flash crowds need m >= 2, got {m}")
    if not 0.0 <= leak < 1.0:
        raise ValueError(f"leak must be in [0, 1), got {leak}")
    if dwell <= 0 or rate <= 0:
        raise ValueError("dwell and rate must be positive")
    g = _rng(rng)

    times = np.cumsum(g.exponential(1.0 / rate, size=n))
    servers: List[int] = []
    hotspot = int(g.integers(0, m))
    next_jump = float(g.exponential(dwell))
    for t in times:
        while t > next_jump:
            others = [j for j in range(m) if j != hotspot]
            hotspot = int(others[g.integers(0, m - 1)])
            next_jump += float(g.exponential(dwell))
        if g.random() < leak:
            others = [j for j in range(m) if j != hotspot]
            servers.append(int(others[g.integers(0, m - 1)]))
        else:
            servers.append(hotspot)
    return ProblemInstance.from_arrays(
        times,
        np.asarray(servers, dtype=np.int64),
        num_servers=m,
        cost=cost,
        origin=origin,
    )
