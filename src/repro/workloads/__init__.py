"""Workload substrates: synthetic arrivals, mobility trajectories, traces."""

from .diurnal import diurnal_instance, diurnal_rate
from .flashcrowd import flash_crowd_instance
from .predictability import empirical_entropy, lz_entropy_rate, max_predictability
from .synthetic import (
    arrival_gaps,
    choose_servers,
    mmpp_instance,
    poisson_zipf_instance,
    random_instance,
    renewal_instance,
    zipf_weights,
)
from .traces import TraceRecord, mine_instance, read_trace, write_trace
from .trajectory import MarkovMobility, RandomWaypoint, merge_streams

__all__ = [
    "MarkovMobility",
    "RandomWaypoint",
    "TraceRecord",
    "arrival_gaps",
    "choose_servers",
    "diurnal_instance",
    "diurnal_rate",
    "empirical_entropy",
    "flash_crowd_instance",
    "lz_entropy_rate",
    "max_predictability",
    "merge_streams",
    "mine_instance",
    "mmpp_instance",
    "poisson_zipf_instance",
    "random_instance",
    "read_trace",
    "renewal_instance",
    "write_trace",
    "zipf_weights",
]
