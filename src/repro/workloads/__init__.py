"""Workload substrates: synthetic arrivals, mobility trajectories, traces."""

from .diurnal import diurnal_instance, diurnal_rate
from .flashcrowd import flash_crowd_instance
from .predictability import empirical_entropy, lz_entropy_rate, max_predictability
from .synthetic import (
    arrival_gaps,
    choose_servers,
    mmpp_instance,
    poisson_zipf_instance,
    random_instance,
    renewal_instance,
    zipf_weights,
)
from .columnar import (
    ColumnarTrace,
    convert_csv,
    is_columnar,
    mine_instance_columnar,
    read_columnar,
    write_columnar,
)
from .profiler import ItemStats, WorkloadStats, profile_trace
from .sampling import (
    CostEstimate,
    SampleStats,
    estimate_offline_cost,
    exact_offline_cost,
    item_hash,
    online_trace_costs,
    sample_columnar,
    sample_trace,
    sampled_items,
    solve_trace_costs,
)
from .traces import TraceRecord, mine_instance, read_trace, write_trace
from .trajectory import MarkovMobility, RandomWaypoint, merge_streams

__all__ = [
    "ColumnarTrace",
    "CostEstimate",
    "ItemStats",
    "MarkovMobility",
    "RandomWaypoint",
    "SampleStats",
    "TraceRecord",
    "WorkloadStats",
    "arrival_gaps",
    "choose_servers",
    "convert_csv",
    "diurnal_instance",
    "diurnal_rate",
    "empirical_entropy",
    "estimate_offline_cost",
    "exact_offline_cost",
    "flash_crowd_instance",
    "is_columnar",
    "item_hash",
    "lz_entropy_rate",
    "max_predictability",
    "merge_streams",
    "mine_instance",
    "mine_instance_columnar",
    "mmpp_instance",
    "online_trace_costs",
    "poisson_zipf_instance",
    "profile_trace",
    "random_instance",
    "read_columnar",
    "read_trace",
    "renewal_instance",
    "sample_columnar",
    "sample_trace",
    "sampled_items",
    "solve_trace_costs",
    "write_columnar",
    "write_trace",
    "zipf_weights",
]
