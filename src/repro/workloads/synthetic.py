"""Synthetic request-sequence generators.

The paper evaluates no concrete traces (it is analytical); its motivation
is mobile data services whose access sequences mix temporal burstiness
with skewed server popularity.  These generators provide the standard
parametric families used throughout the benchmark harness:

* **Arrival processes** — Poisson (exponential gaps), renewal processes
  with Pareto / lognormal / constant gaps, and a two-state MMPP for
  bursty traffic.
* **Server popularity** — uniform, Zipf(``s``), or explicit weights.

All generators take an explicit :class:`numpy.random.Generator` (or a
seed) and are fully deterministic given it, per the reproducibility
conventions of the analysis layer.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

import numpy as np

from ..core.instance import ProblemInstance
from ..core.types import CostModel

__all__ = [
    "zipf_weights",
    "arrival_gaps",
    "choose_servers",
    "poisson_zipf_instance",
    "renewal_instance",
    "mmpp_instance",
    "random_instance",
]

RngLike = Union[int, np.random.Generator, None]


def _rng(rng: RngLike) -> np.random.Generator:
    if isinstance(rng, np.random.Generator):
        return rng
    return np.random.default_rng(rng)


def zipf_weights(m: int, s: float = 1.0) -> np.ndarray:
    """Zipf popularity weights over ``m`` servers (rank ``r`` ∝ ``r^-s``).

    ``s = 0`` degenerates to uniform; larger ``s`` concentrates requests
    on few hot servers — the regime where caching at the hot server and
    transferring elsewhere dominates.
    """
    if m < 1:
        raise ValueError(f"need m >= 1, got {m}")
    ranks = np.arange(1, m + 1, dtype=np.float64)
    w = ranks ** (-float(s))
    return w / w.sum()


def arrival_gaps(
    n: int,
    process: str = "poisson",
    rate: float = 1.0,
    rng: RngLike = None,
    pareto_alpha: float = 1.5,
    lognorm_sigma: float = 1.0,
) -> np.ndarray:
    """Draw ``n`` positive inter-arrival gaps with mean ``1/rate``.

    Parameters
    ----------
    process:
        ``"poisson"`` (exponential), ``"pareto"`` (heavy tail, shape
        ``pareto_alpha > 1``), ``"lognormal"``, or ``"constant"``.
    rate:
        Mean arrival rate; gaps are scaled to mean ``1/rate``.
    """
    if n < 0:
        raise ValueError(f"need n >= 0, got {n}")
    if rate <= 0:
        raise ValueError(f"rate must be positive, got {rate}")
    g = _rng(rng)
    mean = 1.0 / rate
    if process == "poisson":
        gaps = g.exponential(mean, size=n)
    elif process == "pareto":
        if pareto_alpha <= 1:
            raise ValueError("pareto_alpha must exceed 1 for a finite mean")
        raw = g.pareto(pareto_alpha, size=n) + 1.0  # Lomax + 1, mean a/(a-1)
        gaps = raw * (mean * (pareto_alpha - 1.0) / pareto_alpha)
    elif process == "lognormal":
        sigma = float(lognorm_sigma)
        gaps = g.lognormal(np.log(mean) - 0.5 * sigma**2, sigma, size=n)
    elif process == "constant":
        gaps = np.full(n, mean)
    else:
        raise ValueError(f"unknown arrival process {process!r}")
    return np.maximum(gaps, 1e-12)


def choose_servers(
    n: int,
    m: int,
    popularity: Union[str, Sequence[float]] = "uniform",
    zipf_s: float = 1.0,
    rng: RngLike = None,
) -> np.ndarray:
    """Draw ``n`` server ids from the requested popularity law."""
    g = _rng(rng)
    if isinstance(popularity, str):
        if popularity == "uniform":
            w = np.full(m, 1.0 / m)
        elif popularity == "zipf":
            w = zipf_weights(m, zipf_s)
        else:
            raise ValueError(f"unknown popularity {popularity!r}")
    else:
        w = np.asarray(popularity, dtype=np.float64)
        if w.shape != (m,) or np.any(w < 0) or w.sum() <= 0:
            raise ValueError("popularity weights must be m non-negative values")
        w = w / w.sum()
    return g.choice(m, size=n, p=w).astype(np.int64)


def poisson_zipf_instance(
    n: int,
    m: int,
    rate: float = 1.0,
    zipf_s: float = 1.0,
    cost: Optional[CostModel] = None,
    origin: int = 0,
    rng: RngLike = None,
) -> ProblemInstance:
    """Poisson arrivals with Zipf-skewed server popularity.

    The workhorse workload of the benchmark harness: ``rate`` sets how
    many requests land per ``λ/μ`` window and ``zipf_s`` how concentrated
    they are.
    """
    g = _rng(rng)
    gaps = arrival_gaps(n, "poisson", rate, g)
    times = np.cumsum(gaps)
    servers = choose_servers(n, m, "zipf", zipf_s, g)
    return ProblemInstance.from_arrays(
        times, servers, num_servers=m, cost=cost, origin=origin
    )


def renewal_instance(
    n: int,
    m: int,
    process: str = "pareto",
    rate: float = 1.0,
    popularity: Union[str, Sequence[float]] = "uniform",
    zipf_s: float = 1.0,
    cost: Optional[CostModel] = None,
    origin: int = 0,
    rng: RngLike = None,
    **gap_kwargs,
) -> ProblemInstance:
    """General renewal arrivals with configurable popularity."""
    g = _rng(rng)
    times = np.cumsum(arrival_gaps(n, process, rate, g, **gap_kwargs))
    servers = choose_servers(n, m, popularity, zipf_s, g)
    return ProblemInstance.from_arrays(
        times, servers, num_servers=m, cost=cost, origin=origin
    )


def mmpp_instance(
    n: int,
    m: int,
    rate_low: float = 0.2,
    rate_high: float = 5.0,
    switch_prob: float = 0.05,
    popularity: Union[str, Sequence[float]] = "uniform",
    zipf_s: float = 1.0,
    cost: Optional[CostModel] = None,
    origin: int = 0,
    rng: RngLike = None,
) -> ProblemInstance:
    """Two-state Markov-modulated Poisson arrivals (bursty traffic).

    The process alternates between a quiet state (``rate_low``) and a
    bursty state (``rate_high``); after each arrival it switches state
    with probability ``switch_prob``.  Bursts are exactly the regime where
    speculative caching shines (many hits inside one window) and long
    quiet spells where it must let copies die.
    """
    if not 0.0 <= switch_prob <= 1.0:
        raise ValueError(f"switch_prob must be a probability, got {switch_prob}")
    g = _rng(rng)
    gaps = np.empty(n)
    state_high = False
    for i in range(n):
        rate = rate_high if state_high else rate_low
        gaps[i] = g.exponential(1.0 / rate)
        if g.random() < switch_prob:
            state_high = not state_high
    times = np.cumsum(np.maximum(gaps, 1e-12))
    servers = choose_servers(n, m, popularity, zipf_s, g)
    return ProblemInstance.from_arrays(
        times, servers, num_servers=m, cost=cost, origin=origin
    )


def random_instance(
    rng: RngLike = None,
    max_m: int = 6,
    max_n: int = 40,
    cost: Optional[CostModel] = None,
) -> ProblemInstance:
    """Small random instance for tests and fuzzing (uniform everything)."""
    g = _rng(rng)
    m = int(g.integers(1, max_m + 1))
    n = int(g.integers(1, max_n + 1))
    if cost is None:
        cost = CostModel(
            mu=float(g.uniform(0.2, 3.0)), lam=float(g.uniform(0.2, 3.0))
        )
    times = np.cumsum(g.exponential(float(g.uniform(0.1, 3.0)), size=n)) + 0.05
    servers = g.integers(0, m, size=n)
    return ProblemInstance.from_arrays(
        times, servers, num_servers=m, cost=cost, origin=int(g.integers(0, m))
    )
