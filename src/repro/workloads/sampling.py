"""Hash-sampled trace solving: estimate offline cost from a 1-10% sample.

The batched kernel (:mod:`repro.kernels.batch`) made the per-shard solve
~20x faster, but it still touches every request — traces beyond ~10M
rows remain out of reach.  This module trades exactness for a *stated*
error bound:

* **Spatial sampling** over item ids: an item named ``s`` is kept at
  rate ``p`` iff ``item_hash(s, seed) < p * 2**64``, where
  :func:`item_hash` is a stable 64-bit BLAKE2b digest of the interned
  string.  Membership depends only on ``(name, seed, rate)`` — never on
  row order, chunk size, or the host process — so the same ``(seed,
  rate)`` selects the same items on every shard of a distributed scan.
  Nested thresholds also make rates monotone: the sample at ``p1`` is a
  subset of the sample at ``p2 >= p1``.
* **Temporal windowing**: an optional half-open ``[t0, t1)`` row filter
  applied in the same chunked pass.
* **Canonical output**: :func:`sample_trace` re-sorts kept rows by
  ``(time, item name, server, user)`` and re-interns the item table in
  first-appearance order of that canonical ordering, so
  :func:`sample_columnar` writes **byte-identical** container files
  regardless of how the input rows were ordered or chunked.  The output
  is an ordinary :class:`~repro.workloads.columnar.ColumnarTrace` —
  ``mine_instance_columnar``, ``solve_offline_batch`` and the service
  layer consume it unchanged.
* **Estimation**: :func:`estimate_offline_cost` solves only the sampled
  items (plus a top-``K`` certainty stratum of the heaviest items, which
  a Zipf head would otherwise dominate into huge variance) with the
  batched kernel and scales the sampled tail back Horvitz-Thompson
  style.  Every tail item has inclusion probability exactly ``p``; the
  Hájek (ratio) form ``N_tail * mean(sampled costs)`` is used because it
  conditions on the realised sample size — same expectation as the raw
  ``sum / p`` scale-up, far lower variance.  The confidence interval is
  the union of a percentile bootstrap and a studentized bootstrap-*t*
  interval over the sampled tail costs (both from
  :mod:`repro.analysis.bootstrap`) — the bootstrap-*t* keeps coverage
  near nominal on the small, skewed samples a 1-5% rate produces.

Per-item costs mirror the mining semantics of
``traces._columns_to_instance`` exactly (stable time sort, min-gap
sweep, start-time convention), so :func:`solve_trace_costs` is
bit-identical to ``MultiItemInstance.from_columnar`` +
``solve_offline_batch`` — the property tests assert that.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterator, Optional, Sequence, Tuple, Union

import numpy as np

from ..analysis.bootstrap import bootstrap_ci, bootstrap_t_ci
from ..core.types import CostModel, InvalidInstanceError
from .columnar import ColumnarTrace
from .traces import _enforce_min_gap

__all__ = [
    "HASH_SPACE",
    "CostEstimate",
    "SampleStats",
    "estimate_offline_cost",
    "exact_offline_cost",
    "item_hash",
    "item_hashes",
    "online_trace_costs",
    "sample_columnar",
    "sample_trace",
    "sampled_items",
    "solve_trace_costs",
]

#: Size of the item-hash space; rate ``p`` keeps hashes below ``p * HASH_SPACE``.
HASH_SPACE = 1 << 64

_Trace = Union[ColumnarTrace, str, Path]
_Window = Optional[Tuple[float, float]]


# ---------------------------------------------------------------------------
# Stable item hashing.
# ---------------------------------------------------------------------------


def item_hash(item: str, seed: int = 0) -> int:
    """Stable 64-bit hash of an item name (BLAKE2b, keyed by ``seed``).

    Depends only on the UTF-8 bytes of ``item`` and on ``seed`` —
    identical across processes, hosts and Python versions (unlike
    ``hash()``, which is salted per process).
    """
    if seed < 0:
        raise ValueError(f"seed must be >= 0, got {seed}")
    digest = hashlib.blake2b(
        item.encode("utf-8"),
        digest_size=8,
        key=seed.to_bytes(8, "little"),
    ).digest()
    return int.from_bytes(digest, "little")


def item_hashes(items: Sequence[str], seed: int = 0) -> np.ndarray:
    """Vectorised :func:`item_hash` over an item table (uint64 array)."""
    return np.array(
        [item_hash(name, seed) for name in items], dtype=np.uint64
    )


def sampled_items(
    items: Sequence[str], rate: float, seed: int = 0
) -> np.ndarray:
    """Boolean keep-mask over ``items`` at sampling rate ``rate``.

    ``mask[i]`` is True iff ``item_hash(items[i], seed) < rate * 2**64``.
    ``rate >= 1`` keeps everything; ``rate <= 0`` keeps nothing.
    """
    if not 0.0 <= rate <= 1.0:
        raise ValueError(f"sampling rate must be in [0, 1], got {rate}")
    if not items:
        return np.zeros(0, dtype=bool)
    if rate >= 1.0:
        return np.ones(len(items), dtype=bool)
    threshold = np.uint64(int(rate * HASH_SPACE))
    return item_hashes(items, seed) < threshold


# ---------------------------------------------------------------------------
# Chunked row selection over memmap columns.
# ---------------------------------------------------------------------------


def _open(trace: _Trace) -> ColumnarTrace:
    if isinstance(trace, ColumnarTrace):
        return trace
    return ColumnarTrace.open(trace)


def _check_window(window: _Window) -> None:
    if window is None:
        return
    t0, t1 = window
    if not float(t0) < float(t1):
        raise ValueError(f"window must satisfy t0 < t1, got {window}")


def _select_rows(
    trace: ColumnarTrace,
    keep_item: Optional[np.ndarray],
    window: _Window,
    chunk_rows: int,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Gather (times, servers, users, item_ids) of kept rows, chunked.

    Touches the memmap columns ``chunk_rows`` at a time; peak memory is
    one chunk plus the gathered (kept) rows, never the whole trace and
    never any :class:`TraceRecord` objects.
    """
    if chunk_rows < 1:
        raise ValueError(f"chunk_rows must be >= 1, got {chunk_rows}")
    t_parts, s_parts, u_parts, i_parts = [], [], [], []
    rows = trace.rows
    for lo in range(0, rows, chunk_rows):
        hi = min(lo + chunk_rows, rows)
        ids = np.asarray(trace.item_ids[lo:hi])
        if keep_item is not None:
            mask = keep_item[ids]
        else:
            mask = np.ones(hi - lo, dtype=bool)
        times = None
        if window is not None:
            times = np.asarray(trace.times[lo:hi])
            mask &= (times >= window[0]) & (times < window[1])
        if not mask.any():
            continue
        if times is None:
            times = np.asarray(trace.times[lo:hi])
        t_parts.append(times[mask])
        s_parts.append(np.asarray(trace.servers[lo:hi])[mask])
        u_parts.append(np.asarray(trace.users[lo:hi])[mask])
        i_parts.append(ids[mask])
    if not t_parts:
        return (
            np.empty(0, dtype="<f8"),
            np.empty(0, dtype="<i4"),
            np.empty(0, dtype="<i4"),
            np.empty(0, dtype="<i4"),
        )
    return (
        np.concatenate(t_parts),
        np.concatenate(s_parts),
        np.concatenate(u_parts),
        np.concatenate(i_parts),
    )


def _item_counts(trace: ColumnarTrace, chunk_rows: int) -> np.ndarray:
    """Per-item request counts (int64), one chunked bincount pass."""
    counts = np.zeros(len(trace.item_table), dtype=np.int64)
    rows = trace.rows
    for lo in range(0, rows, chunk_rows):
        hi = min(lo + chunk_rows, rows)
        ids = np.asarray(trace.item_ids[lo:hi])
        counts += np.bincount(ids, minlength=counts.shape[0])
    return counts


def _fleet_size(trace: ColumnarTrace, chunk_rows: int) -> int:
    """Fleet size ``max(server) + 1`` via a chunked max."""
    best = -1
    rows = trace.rows
    for lo in range(0, rows, chunk_rows):
        hi = min(lo + chunk_rows, rows)
        chunk = np.asarray(trace.servers[lo:hi])
        if chunk.size:
            best = max(best, int(chunk.max()))
    if best < 0:
        raise InvalidInstanceError("trace has no rows to derive a fleet from")
    return best + 1


# ---------------------------------------------------------------------------
# Sampling into a canonical columnar trace.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SampleStats:
    """What a sampling pass kept, for logging and benchmark payloads."""

    rows_in: int
    rows_kept: int
    items_in: int
    items_kept: int
    rate: float
    seed: int
    window: _Window = None

    @property
    def row_fraction(self) -> float:
        return self.rows_kept / self.rows_in if self.rows_in else 0.0

    @property
    def item_fraction(self) -> float:
        return self.items_kept / self.items_in if self.items_in else 0.0


def _canonical_trace(
    times: np.ndarray,
    servers: np.ndarray,
    users: np.ndarray,
    old_ids: np.ndarray,
    item_table: Sequence[str],
) -> ColumnarTrace:
    """Canonicalise kept rows: sort by (time, name, server, user), re-intern.

    Ranking equal-time rows by the item's *name* (not its input-dependent
    intern id) is what makes the output independent of the source's row
    and interning order; the item table is then rebuilt in first
    appearance order of the canonical row order.
    """
    if times.shape[0] == 0:
        return ColumnarTrace(
            np.empty(0, dtype="<f8"),
            np.empty(0, dtype="<i4"),
            np.empty(0, dtype="<i4"),
            np.empty(0, dtype="<i4"),
            (),
        )
    rank = np.empty(len(item_table), dtype=np.int64)
    for pos, idx in enumerate(
        sorted(range(len(item_table)), key=lambda i: item_table[i])
    ):
        rank[idx] = pos
    order = np.lexsort((users, servers, rank[old_ids], times))
    times, servers = times[order], servers[order]
    users, old_ids = users[order], old_ids[order]
    uniq, first = np.unique(old_ids, return_index=True)
    appear = uniq[np.argsort(first, kind="stable")]
    new_of_old = np.full(len(item_table), -1, dtype=np.int64)
    new_of_old[appear] = np.arange(appear.shape[0])
    return ColumnarTrace(
        times,
        servers,
        users,
        new_of_old[old_ids].astype("<i4"),
        tuple(item_table[int(i)] for i in appear),
    )


def sample_trace(
    trace: _Trace,
    rate: float,
    seed: int = 0,
    window: _Window = None,
    chunk_rows: int = 1 << 20,
) -> ColumnarTrace:
    """Hash-sample a trace's items (and optionally a time window).

    Returns an in-memory :class:`ColumnarTrace` in **canonical order**
    (rows sorted by time, ties broken by item name, then server, then
    user; item table interned in first appearance order of that order).
    Because item membership is decided by :func:`sampled_items` and the
    output order is canonical, the result — down to the bytes
    :meth:`ColumnarTrace.save` writes — depends only on the trace's row
    *set*, ``rate``, ``seed`` and ``window``.
    """
    trace = _open(trace)
    _check_window(window)
    keep = sampled_items(trace.item_table, rate, seed)
    times, servers, users, ids = _select_rows(trace, keep, window, chunk_rows)
    return _canonical_trace(times, servers, users, ids, trace.item_table)


def sample_columnar(
    src: _Trace,
    dest: Union[str, Path],
    rate: float,
    seed: int = 0,
    window: _Window = None,
    chunk_rows: int = 1 << 20,
) -> SampleStats:
    """Sample ``src`` into a new columnar container at ``dest``.

    The written file is **byte-deterministic**: same row set + ``(rate,
    seed, window)`` → identical bytes, regardless of the source's row
    order, conversion chunking, or which process runs the sampling.
    """
    trace = _open(src)
    out = sample_trace(
        trace, rate, seed=seed, window=window, chunk_rows=chunk_rows
    )
    out.save(dest)
    return SampleStats(
        rows_in=trace.rows,
        rows_kept=out.rows,
        items_in=len(trace.item_table),
        items_kept=len(out.item_table),
        rate=float(rate),
        seed=int(seed),
        window=window,
    )


# ---------------------------------------------------------------------------
# Per-item solving straight from the columns.
# ---------------------------------------------------------------------------


def _trace_entries(
    trace: ColumnarTrace,
    items: Optional[np.ndarray],
    cost: Optional[CostModel],
    num_servers: Optional[int],
    origin: int,
    min_gap: float,
    chunk_rows: int,
) -> Tuple[np.ndarray, List[tuple]]:
    """Per-item batch-layout column entries: ``(ids, entries)`` id-ascending.

    Mirrors the mining tail of ``traces._columns_to_instance`` — stable
    sort by time, :func:`_enforce_min_gap` sweep, identical start-time
    convention — producing the :meth:`BatchLayout.from_columns` entries
    both the offline and online trace-cost paths pack, so every per-item
    result is bit-identical to ``mine_instance_columnar`` plus the
    per-item solver/policy on the same rows.
    """
    if trace.rows == 0:
        return np.empty(0, dtype=np.int64), []
    if num_servers is None:
        num_servers = _fleet_size(trace, chunk_rows)
    cost = cost if cost is not None else CostModel()
    times, servers, _, ids = _select_rows(trace, items, None, chunk_rows)
    if times.shape[0] == 0:
        return np.empty(0, dtype=np.int64), []
    # Item-major, time-ordered within item; stability keeps equal-time
    # rows in original order, matching the per-item stable sort the
    # miner performs.
    order = np.lexsort((times, ids))
    times = np.ascontiguousarray(times[order], dtype=np.float64)
    servers = servers[order].astype(np.int64)
    ids = ids[order].astype(np.int64)
    bounds = np.flatnonzero(np.diff(ids)) + 1
    starts = np.concatenate(([0], bounds))
    ends = np.concatenate((bounds, [ids.shape[0]]))
    entries = []
    solved_ids = np.empty(starts.shape[0], dtype=np.int64)
    for k, (lo, hi) in enumerate(zip(starts, ends)):
        t = _enforce_min_gap(times[lo:hi].copy(), min_gap)
        start = t[0] - max(min_gap, 1e-6)
        item_id = int(ids[lo])
        solved_ids[k] = item_id
        entries.append(
            (
                trace.item_table[item_id],
                t,
                servers[lo:hi],
                num_servers,
                cost.mu,
                cost.lam,
                origin,
                0.0 if start > 0 else start,
            )
        )
    return solved_ids, entries


def _solve_costs_by_id(
    trace: ColumnarTrace,
    items: Optional[np.ndarray],
    cost: Optional[CostModel],
    num_servers: Optional[int],
    origin: int,
    min_gap: float,
    kernel: str,
    chunk_rows: int,
) -> Tuple[np.ndarray, np.ndarray]:
    """Optimal cost per selected item id: ``(ids, costs)`` id-ascending.

    Packs every selected item (see :func:`_trace_entries`) into ONE
    :class:`~repro.kernels.batch.BatchLayout` and sweeps it with the
    batched kernel, so each per-item cost is bit-identical to
    ``mine_instance_columnar`` + ``solve_offline`` on the same rows.
    """
    from ..kernels.batch import BatchLayout, solve_layout

    solved_ids, entries = _trace_entries(
        trace, items, cost, num_servers, origin, min_gap, chunk_rows
    )
    if not entries:
        return solved_ids, np.empty(0, dtype=np.float64)
    layout = BatchLayout.from_columns(entries)
    results = solve_layout(layout, kernel=_batch_kernel(kernel))
    costs = np.array([res.optimal_cost for res in results], dtype=np.float64)
    return solved_ids, costs


def _batch_kernel(kernel: str) -> str:
    """Map service-layer kernel names onto batch sweep backends."""
    return "auto" if kernel in ("auto", "batch") else kernel


def solve_trace_costs(
    trace: _Trace,
    items: Optional[np.ndarray] = None,
    cost: Optional[CostModel] = None,
    num_servers: Optional[int] = None,
    origin: int = 0,
    min_gap: float = 1e-9,
    kernel: str = "auto",
    chunk_rows: int = 1 << 20,
) -> Dict[str, float]:
    """Optimal per-item offline cost straight from the mapped columns.

    ``items`` is an optional boolean mask over item ids (``None`` = all).
    ``num_servers`` defaults to the **full-trace** fleet size so masked
    solves stay comparable to the unmasked solve.  Costs are
    bit-identical to ``MultiItemInstance.from_columnar`` +
    ``solve_offline_batch`` on the same trace.
    """
    trace = _open(trace)
    ids, costs = _solve_costs_by_id(
        trace, items, cost, num_servers, origin, min_gap, kernel, chunk_rows
    )
    return {
        trace.item_table[int(i)]: float(c) for i, c in zip(ids, costs)
    }


def online_trace_costs(
    trace: _Trace,
    items: Optional[np.ndarray] = None,
    cost: Optional[CostModel] = None,
    num_servers: Optional[int] = None,
    origin: int = 0,
    min_gap: float = 1e-9,
    window_factor: float = 1.0,
    epoch_size: Optional[int] = None,
    chunk_rows: int = 1 << 20,
) -> Dict[str, float]:
    """Per-item SC/TTL(γ) *online* cost straight from the mapped columns.

    The online twin of :func:`solve_trace_costs`: every selected item is
    packed into ONE :class:`~repro.kernels.batch.BatchLayout` and served
    with a single batched online-kernel call — no per-item instance
    mining, no per-event hook dispatch.  Each cost is bit-identical to
    ``mine_instance_columnar`` + ``SpeculativeCaching(window_factor,
    epoch_size).run`` on the same rows, so a sampled columnar trace can
    report empirical online/OPT gaps at trace scale.
    """
    from ..kernels.batch import BatchLayout
    from ..kernels.online import run_online_layout

    trace = _open(trace)
    _, entries = _trace_entries(
        trace, items, cost, num_servers, origin, min_gap, chunk_rows
    )
    if not entries:
        return {}
    layout = BatchLayout.from_columns(entries)
    runs = run_online_layout(layout, window_factor, epoch_size)
    return {name: run.cost for name, run in zip(layout.names, runs)}


def exact_offline_cost(
    trace: _Trace,
    cost: Optional[CostModel] = None,
    num_servers: Optional[int] = None,
    origin: int = 0,
    min_gap: float = 1e-9,
    kernel: str = "auto",
    chunk_rows: int = 1 << 20,
) -> float:
    """Exact full-trace offline cost (sum of per-item optima).

    Summation runs in item-id (= first appearance) order, matching
    ``MultiItemOfflineResult.total_cost`` bit for bit.
    """
    trace = _open(trace)
    _, costs = _solve_costs_by_id(
        trace, None, cost, num_servers, origin, min_gap, kernel, chunk_rows
    )
    return float(sum(float(c) for c in costs))


# ---------------------------------------------------------------------------
# Horvitz-Thompson estimation with a certainty stratum.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CostEstimate:
    """Estimated full-trace offline cost with a bootstrap error bound.

    Iterating yields ``(estimate, ci_lo, ci_hi, solve_fraction)`` so the
    result unpacks like the tuple the API contract promises.
    """

    estimate: float
    ci_lo: float
    ci_hi: float
    solve_fraction: float
    rate: float
    seed: int
    confidence: float
    head_cost: float
    items_total: int
    items_solved: int
    rows_total: int
    rows_solved: int
    resamples: int
    #: Wall-time of the batch solve alone (gather + pack + DP sweep of
    #: the selected items) — the component that scales with
    #: ``solve_fraction``.  Excludes the O(rows) counting pass and the
    #: bootstrap, whose cost is fixed per call.
    solve_s: float = 0.0

    def __iter__(self) -> Iterator[float]:
        return iter(
            (self.estimate, self.ci_lo, self.ci_hi, self.solve_fraction)
        )

    def covers(self, value: float, rel_slack: float = 1e-12) -> bool:
        """True iff ``value`` lies inside the confidence interval."""
        slack = rel_slack * max(1.0, abs(value))
        return self.ci_lo - slack <= value <= self.ci_hi + slack


def estimate_offline_cost(
    trace: _Trace,
    rate: float,
    seed: int = 0,
    cost: Optional[CostModel] = None,
    num_servers: Optional[int] = None,
    origin: int = 0,
    confidence: float = 0.95,
    resamples: int = 2000,
    top_exact: int = 64,
    min_gap: float = 1e-9,
    kernel: str = "auto",
    chunk_rows: int = 1 << 20,
) -> CostEstimate:
    """Estimate the full-trace offline cost from a hash sample.

    Stratified Horvitz-Thompson (Hájek form) estimator:

    * the ``top_exact`` most-requested items (ties to the lower id) form
      a **certainty stratum** solved exactly — under Zipf popularity the
      head carries most of the cost, and excising it from the sampled
      stratum collapses the estimator variance;
    * every remaining ("tail") item is included iff
      ``item_hash(name, seed) < rate * 2**64`` — inclusion probability
      exactly ``rate`` per item — and the tail total is estimated as
      ``N_tail * mean(sampled tail costs)`` (the Hájek ratio form:
      same expectation as the raw ``sum / rate`` scale-up but it
      conditions on the realised sample size, removing the binomial
      size-variance term);
    * the tail total's confidence interval is the **union** of a
      percentile bootstrap and a studentized bootstrap-*t* interval
      over the sampled per-item costs (``repro.analysis.bootstrap``),
      scaled by ``N_tail`` and shifted by the exact head cost.  It is
      calibrated when the tail sample holds roughly ten or more items;
      below that the interval is still reported but coverage degrades —
      raise ``rate`` or ``top_exact`` instead.

    Only the sampled items are ever packed into the batch kernel, so
    solve work scales with ``solve_fraction`` (the returned fraction of
    rows actually solved), not with the trace.

    Raises
    ------
    ValueError
        If ``rate`` is not in ``(0, 1]``, or the hash sample selects no
        tail items (increase ``rate`` or ``top_exact``).
    """
    if not 0.0 < rate <= 1.0:
        raise ValueError(f"sampling rate must be in (0, 1], got {rate}")
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    if top_exact < 0:
        raise ValueError(f"top_exact must be >= 0, got {top_exact}")
    trace = _open(trace)
    if trace.rows == 0:
        raise InvalidInstanceError("cannot estimate cost of an empty trace")
    n_items = len(trace.item_table)
    counts = _item_counts(trace, chunk_rows)
    # Head = top-K items by request count, ties broken toward the lower
    # id so the stratum split is deterministic.
    by_count = np.lexsort((np.arange(n_items), -counts))
    head_ids = by_count[: min(top_exact, n_items)]
    head_mask = np.zeros(n_items, dtype=bool)
    head_mask[head_ids] = True
    head_mask &= counts > 0
    tail_mask = ~head_mask & (counts > 0)
    sampled_tail = sampled_items(trace.item_table, rate, seed) & tail_mask
    solve_mask = head_mask | sampled_tail
    n_tail = int(tail_mask.sum())
    if n_tail > 0 and rate < 1.0 and not sampled_tail.any():
        raise ValueError(
            f"hash sample at rate {rate} selected none of the {n_tail} "
            f"tail items; increase rate or top_exact"
        )
    solve_t0 = time.perf_counter()
    ids, costs = _solve_costs_by_id(
        trace, solve_mask, cost, num_servers, origin, min_gap, kernel,
        chunk_rows,
    )
    solve_s = time.perf_counter() - solve_t0
    in_head = head_mask[ids]
    head_cost = float(sum(float(c) for c in costs[in_head]))
    tail_costs = np.ascontiguousarray(costs[~in_head], dtype=np.float64)
    if n_tail == 0 or (rate >= 1.0):
        # Nothing sampled away — the "estimate" is the exact total.
        estimate = head_cost + float(sum(float(c) for c in tail_costs))
        ci_lo = ci_hi = estimate
    else:
        pci = bootstrap_ci(
            tail_costs,
            statistic=np.mean,
            confidence=confidence,
            resamples=resamples,
        )
        tci = bootstrap_t_ci(
            tail_costs, confidence=confidence, resamples=resamples
        )
        estimate = head_cost + n_tail * float(tail_costs.mean())
        ci_lo = head_cost + n_tail * min(pci.lo, tci.lo)
        ci_hi = head_cost + n_tail * max(pci.hi, tci.hi)
    rows_solved = int(counts[solve_mask].sum())
    return CostEstimate(
        estimate=float(estimate),
        ci_lo=float(ci_lo),
        ci_hi=float(ci_hi),
        solve_fraction=rows_solved / trace.rows,
        rate=float(rate),
        seed=int(seed),
        confidence=float(confidence),
        head_cost=head_cost,
        items_total=n_items,
        items_solved=int(solve_mask.sum()),
        rows_total=trace.rows,
        rows_solved=rows_solved,
        resamples=int(resamples),
        solve_s=solve_s,
    )
