"""On-disk columnar service logs: binary columns, mmap readers, streaming convert.

The CSV format of :mod:`repro.workloads.traces` is the interchange
format; it is also two orders of magnitude too slow to feed the service
layer at the trace sizes real cache studies use (Cydonia-style block
traces run to hundreds of millions of rows).  This module adds the
binary twin:

* a single-file **columnar container**: an 8-byte magic, a small JSON
  header, then the raw column bytes at 64-byte-aligned offsets —
  ``time`` as little-endian float64, ``server``/``user`` as int32, and
  ``item`` interned to int32 ids over a string table in the header;
* :class:`ColumnarTrace` — writer plus an **mmap-backed lazy reader**:
  opening a container reads only the header; each column materialises as
  a read-only ``np.memmap`` view on first access, so touching one item
  of a huge log never loads the rest;
* :func:`convert_csv` — a **chunked CSV→columnar converter** that
  streams arbitrarily large logs at bounded memory (parsed chunks are
  appended to per-column spill files, then spliced into the container);
* :func:`mine_instance_columnar` — mining straight from the mapped
  columns into a :class:`~repro.core.instance.ProblemInstance` with zero
  intermediate :class:`~repro.workloads.traces.TraceRecord` objects.
  It funnels through the same ``_columns_to_instance`` tail as the CSV
  miner (same stable sort, same min-gap sweep), so the result is
  **bit-identical** to ``mine_instance`` on the same log — the property
  test in ``tests/workloads/test_columnar.py`` asserts exactly that.
"""

from __future__ import annotations

import csv
import io
import json
import os
import shutil
import struct
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..core.instance import ProblemInstance
from ..core.types import CostModel, InvalidInstanceError
from .traces import TraceRecord, _columns_to_instance

__all__ = [
    "ColumnarTrace",
    "write_columnar",
    "read_columnar",
    "convert_csv",
    "mine_instance_columnar",
    "is_columnar",
]

#: Leading bytes of every columnar container (8 bytes: tag + format version).
MAGIC = b"REPROCT\x01"

#: Byte alignment of every column inside the container.
_ALIGN = 64

#: (column name, numpy dtype string) in on-disk order.
_COLUMNS = (
    ("time", "<f8"),
    ("server", "<i4"),
    ("user", "<i4"),
    ("item_id", "<i4"),
)


def _aligned(offset: int) -> int:
    return (offset + _ALIGN - 1) // _ALIGN * _ALIGN


def is_columnar(path: Union[str, Path]) -> bool:
    """True iff ``path`` starts with the columnar container magic."""
    try:
        with open(path, "rb") as fh:
            return fh.read(len(MAGIC)) == MAGIC
    except OSError:
        return False


class ColumnarTrace:
    """A service log as four parallel columns plus an item string table.

    Two construction modes:

    * in-memory (:meth:`from_records`, or the constructor with arrays) —
      columns are plain ndarrays;
    * :meth:`open` — columns are *lazy*: only the JSON header is read,
      and each column becomes a read-only ``np.memmap`` view into the
      file the first time it is touched.

    Attributes
    ----------
    times, servers, users, item_ids:
        The columns (``float64`` / ``int32`` / ``int32`` / ``int32``).
    item_table:
        Tuple of item-name strings; ``item_ids`` index into it.
    """

    def __init__(
        self,
        times: np.ndarray,
        servers: np.ndarray,
        users: np.ndarray,
        item_ids: np.ndarray,
        item_table: Sequence[str],
    ):
        self._columns: Dict[str, np.ndarray] = {
            "time": np.asarray(times, dtype="<f8"),
            "server": np.asarray(servers, dtype="<i4"),
            "user": np.asarray(users, dtype="<i4"),
            "item_id": np.asarray(item_ids, dtype="<i4"),
        }
        lengths = {c.shape[0] for c in self._columns.values()}
        if len(lengths) > 1:
            raise InvalidInstanceError(
                f"columnar columns disagree on length: {sorted(lengths)}"
            )
        self.item_table: Tuple[str, ...] = tuple(item_table)
        self._rows = lengths.pop() if lengths else 0
        self._path: Optional[Path] = None
        self._offsets: Dict[str, int] = {}
        self._closed = False

    # -- lazy reader ---------------------------------------------------------

    @classmethod
    def open(cls, path: Union[str, Path]) -> "ColumnarTrace":
        """Open a container lazily: header now, columns on first access."""
        path = Path(path)
        with open(path, "rb") as fh:
            magic = fh.read(len(MAGIC))
            if magic != MAGIC:
                raise InvalidInstanceError(
                    f"{path} is not a columnar trace container "
                    f"(bad magic {magic!r})"
                )
            (header_len,) = struct.unpack("<Q", fh.read(8))
            try:
                header = json.loads(fh.read(header_len).decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                raise InvalidInstanceError(
                    f"{path}: corrupt columnar header"
                ) from exc
        self = cls.__new__(cls)
        self._columns = {}
        self._rows = int(header["rows"])
        self.item_table = tuple(header["item_table"])
        self._path = path
        self._offsets = {
            name: int(header["columns"][name]["offset"]) for name, _ in _COLUMNS
        }
        self._closed = False
        return self

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        """Release the column buffers — memmap handles included.

        After ``close()`` every column access raises; long-running
        sweeps over many traces use this (or the context-manager form)
        instead of relying on GC to drop the mappings.  Idempotent.
        """
        self._columns.clear()
        self._closed = True

    @property
    def closed(self) -> bool:
        return self._closed

    def __enter__(self) -> "ColumnarTrace":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    def _column(self, name: str) -> np.ndarray:
        if self._closed:
            raise ValueError("I/O operation on closed ColumnarTrace")
        col = self._columns.get(name)
        if col is None:  # lazy mmap on first touch
            dtype = dict(_COLUMNS)[name]
            col = np.memmap(
                self._path,
                dtype=dtype,
                mode="r",
                offset=self._offsets[name],
                shape=(self._rows,),
            )
            self._columns[name] = col
        return col

    @property
    def times(self) -> np.ndarray:
        return self._column("time")

    @property
    def servers(self) -> np.ndarray:
        return self._column("server")

    @property
    def users(self) -> np.ndarray:
        return self._column("user")

    @property
    def item_ids(self) -> np.ndarray:
        return self._column("item_id")

    @property
    def rows(self) -> int:
        """Number of log rows."""
        return self._rows

    def __len__(self) -> int:
        return self._rows

    def __repr__(self) -> str:
        kind = "mmap" if self._path is not None else "memory"
        return (
            f"ColumnarTrace(rows={self._rows}, "
            f"items={len(self.item_table)}, {kind})"
        )

    # -- conversion ----------------------------------------------------------

    @classmethod
    def from_records(cls, records: Sequence[TraceRecord]) -> "ColumnarTrace":
        """Columnarise parsed records (items interned in first appearance)."""
        interned: Dict[str, int] = {}
        item_ids = np.empty(len(records), dtype="<i4")
        for i, r in enumerate(records):
            item_ids[i] = interned.setdefault(r.item, len(interned))
        return cls(
            np.array([r.time for r in records], dtype="<f8"),
            np.array([r.server for r in records], dtype="<i4"),
            np.array([r.user for r in records], dtype="<i4"),
            item_ids,
            tuple(interned),
        )

    def to_records(self) -> List[TraceRecord]:
        """Materialise as :class:`TraceRecord` objects (row order kept)."""
        t, s, u, ids = self.times, self.servers, self.users, self.item_ids
        table = self.item_table
        return [
            TraceRecord(
                time=float(t[i]),
                server=int(s[i]),
                user=int(u[i]),
                item=table[int(ids[i])] if table else "",
            )
            for i in range(self._rows)
        ]

    def items_in_order(self) -> List[str]:
        """Distinct item names in order of first appearance in the rows."""
        ids = self.item_ids
        if ids.shape[0] == 0:
            return []
        uniq, first = np.unique(ids, return_index=True)
        return [self.item_table[int(i)] for i in uniq[np.argsort(first)]]

    # -- writer --------------------------------------------------------------

    def save(self, path: Union[str, Path]) -> None:
        """Write the container (magic + JSON header + aligned columns)."""
        path = Path(path)
        arrays = {name: self._column(name) for name, _ in _COLUMNS}
        header_bytes, offsets = _build_header(
            self._rows, self.item_table
        )
        with open(path, "wb") as fh:
            fh.write(MAGIC)
            fh.write(struct.pack("<Q", len(header_bytes)))
            fh.write(header_bytes)
            for name, dtype in _COLUMNS:
                _pad_to(fh, offsets[name])
                fh.write(np.ascontiguousarray(arrays[name], dtype=dtype).tobytes())


def _build_header(
    rows: int, item_table: Sequence[str]
) -> Tuple[bytes, Dict[str, int]]:
    """JSON header bytes (space-padded to alignment) + column offsets."""
    # The offsets depend on the header's length, which depends on the
    # offsets' digit counts — iterate until the layout is a fixed point,
    # and only then emit the header *containing the offsets it was sized
    # with*.  (Digit counts grow monotonically, so this terminates in a
    # couple of rounds.)
    widths = {"<f8": 8, "<i4": 4}
    offsets = {name: 0 for name, _ in _COLUMNS}
    while True:
        header = {
            "version": 1,
            "rows": rows,
            "columns": {
                name: {"dtype": dtype, "offset": offsets[name]}
                for name, dtype in _COLUMNS
            },
            "item_table": list(item_table),
        }
        raw = json.dumps(header, separators=(",", ":")).encode("utf-8")
        data_start = _aligned(len(MAGIC) + 8 + len(raw))
        offset = data_start
        new_offsets: Dict[str, int] = {}
        for name, dtype in _COLUMNS:
            offset = _aligned(offset)
            new_offsets[name] = offset
            offset += rows * widths[dtype]
        if new_offsets == offsets:
            pad = data_start - len(MAGIC) - 8 - len(raw)
            return raw + b" " * pad, offsets
        offsets = new_offsets


def _pad_to(fh, offset: int) -> None:
    gap = offset - fh.tell()
    if gap < 0:  # pragma: no cover - would indicate a header-layout bug
        raise RuntimeError(f"columnar writer overran offset by {-gap} bytes")
    if gap:
        fh.write(b"\0" * gap)


def write_columnar(
    records: Sequence[TraceRecord], path: Union[str, Path]
) -> None:
    """Write records as a columnar container (CSV twin: ``write_trace``)."""
    ColumnarTrace.from_records(records).save(path)


def read_columnar(path: Union[str, Path]) -> ColumnarTrace:
    """Open a container lazily (CSV twin: ``read_trace``)."""
    return ColumnarTrace.open(path)


# ---------------------------------------------------------------------------
# Streaming CSV -> columnar conversion at bounded memory.
# ---------------------------------------------------------------------------


def convert_csv(
    src: Union[str, Path, io.TextIOBase],
    dest: Union[str, Path],
    chunk_rows: int = 1 << 16,
) -> int:
    """Convert a CSV service log to a columnar container, streaming.

    Rows are parsed ``chunk_rows`` at a time and appended to per-column
    spill files next to ``dest``; the container is then assembled by
    splicing the spill files into place.  Peak memory is bounded by one
    chunk plus the item string table, independent of the log length.
    Returns the number of rows converted.

    Parsing (``float``/``int`` coercion, optional ``user``/``item``
    columns, defaults, error messages with line numbers) matches
    :func:`repro.workloads.traces.read_trace` exactly, so
    ``convert_csv`` + :func:`mine_instance_columnar` reproduce
    ``mine_instance`` on the CSV bit-for-bit.

    Failure is clean: the container is assembled in a ``.tmp`` sibling
    that is atomically renamed over ``dest`` only on success, and every
    spill file (and the temp file) is removed on any exception — an
    aborted conversion leaves neither orphaned spills nor a partial
    container behind.
    """
    if chunk_rows < 1:
        raise ValueError(f"chunk_rows must be >= 1, got {chunk_rows}")
    dest = Path(dest)
    tmp = dest.with_name(dest.name + ".tmp")
    own = isinstance(src, (str, Path))
    fh = None
    spills: Dict[str, io.BufferedRandom] = {}
    interned: Dict[str, int] = {}
    rows = 0
    ok = False
    try:
        fh = open(src, "r", newline="") if own else src
        for name, _ in _COLUMNS:
            spills[name] = open(
                dest.with_name(dest.name + f".{name}.spill"), "w+b"
            )
        reader = csv.reader(fh)
        fields = next(reader, None)
        if fields is None or "time" not in fields:
            raise InvalidInstanceError("trace is missing its header line")
        if "server" not in fields:
            raise InvalidInstanceError("trace header lacks a 'server' column")
        col = {name: fields.index(name) for name in fields}
        i_time, i_server = col["time"], col["server"]
        i_user, i_item = col.get("user"), col.get("item")
        chunk: Dict[str, list] = {name: [] for name, _ in _COLUMNS}

        def flush() -> None:
            for name, dtype in _COLUMNS:
                np.asarray(chunk[name], dtype=dtype).tofile(spills[name])
                chunk[name].clear()

        for lineno, row in enumerate(reader, start=2):
            try:
                chunk["time"].append(float(row[i_time]))
                chunk["server"].append(int(row[i_server]))
                user = row[i_user] if i_user is not None else ""
                chunk["user"].append(int(user) if user else -1)
                item = row[i_item] if i_item is not None else ""
                chunk["item_id"].append(
                    interned.setdefault(item, len(interned))
                )
            except (TypeError, ValueError, IndexError) as exc:
                raise InvalidInstanceError(
                    f"bad trace line {lineno}: {row!r}"
                ) from exc
            rows += 1
            if rows % chunk_rows == 0:
                flush()
        flush()

        header_bytes, offsets = _build_header(rows, tuple(interned))
        with open(tmp, "wb") as out:
            out.write(MAGIC)
            out.write(struct.pack("<Q", len(header_bytes)))
            out.write(header_bytes)
            for name, _ in _COLUMNS:
                _pad_to(out, offsets[name])
                spills[name].seek(0)
                shutil.copyfileobj(spills[name], out)
        os.replace(tmp, dest)
        ok = True
        return rows
    finally:
        if own and fh is not None:
            fh.close()
        for spill in spills.values():
            spill.close()
            Path(spill.name).unlink(missing_ok=True)
        if not ok:
            tmp.unlink(missing_ok=True)


# ---------------------------------------------------------------------------
# Mining straight from the mapped columns.
# ---------------------------------------------------------------------------


def mine_instance_columnar(
    trace: Union[ColumnarTrace, str, Path],
    item: Optional[str] = None,
    num_servers: Optional[int] = None,
    cost: Optional[CostModel] = None,
    origin: int = 0,
    min_gap: float = 1e-9,
) -> ProblemInstance:
    """Columnar twin of :func:`repro.workloads.traces.mine_instance`.

    Selection (vectorized mask), ordering (stable sort by time) and the
    min-gap sweep all match the CSV miner's semantics exactly, and the
    construction tail is literally shared — same instance, bit for bit,
    with zero per-row Python objects.
    """
    if not isinstance(trace, ColumnarTrace):
        trace = ColumnarTrace.open(trace)
    times, servers = trace.times, trace.servers
    if item is not None:
        try:
            wanted = trace.item_table.index(item)
        except ValueError:
            raise InvalidInstanceError(
                f"trace contains no rows for item {item!r}"
            ) from None
        mask = trace.item_ids == np.int32(wanted)
        times, servers = times[mask], servers[mask]
    if times.shape[0] == 0:
        raise InvalidInstanceError(f"trace contains no rows for item {item!r}")
    return _mine_selected(
        times,
        servers,
        num_servers=num_servers,
        cost=cost,
        origin=origin,
        min_gap=min_gap,
    )


def _mine_selected(
    times: np.ndarray,
    servers: np.ndarray,
    num_servers: Optional[int],
    cost: Optional[CostModel],
    origin: int,
    min_gap: float,
) -> ProblemInstance:
    """Mine already-selected columns: stable sort by time, shared tail."""
    order = np.argsort(times, kind="stable")
    return _columns_to_instance(
        np.ascontiguousarray(times[order], dtype=np.float64),
        servers[order].astype(np.int64),
        num_servers=num_servers,
        cost=cost,
        origin=origin,
        min_gap=min_gap,
    )
