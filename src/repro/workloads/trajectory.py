"""Spatial-temporal trajectory workloads (the paper's motivating regime).

Section I motivates cost-driven caching with mobile accesses that "often
exhibit spatial-temporal trajectory patterns" and are highly predictable
[2][3].  Real trajectory traces are proprietary, so this module builds
the closest synthetic equivalents (DESIGN.md, Substitutions):

* :class:`MarkovMobility` — each user hops between servers under a
  locality-parameterised Markov chain (probability ``locality`` of
  staying; otherwise move to a neighbouring cell of the cluster layout,
  or uniformly when no layout exists).  High locality produces the long
  same-server runs the off-line DP exploits.
* :class:`RandomWaypoint` — the classic mobility model: pick a waypoint
  uniformly in the region, travel toward it at constant speed, repeat;
  requests fire along the way at Poisson instants and land on the nearest
  edge server of the cluster layout.

Multiple users are merged into one strictly time-ordered request vector
(ties broken by deterministic jitter far below any meaningful timescale).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from ..core.instance import ProblemInstance
from ..core.types import CostModel
from ..network.cluster import Cluster
from .synthetic import RngLike, _rng

__all__ = ["MarkovMobility", "RandomWaypoint", "merge_streams"]

#: Tie-breaking jitter (times are O(1)-scaled; this is far below float64
#: noise of any generated gap).
_JITTER = 1e-9


def merge_streams(
    streams: List[Tuple[np.ndarray, np.ndarray]],
    m: int,
    cost: Optional[CostModel] = None,
    origin: int = 0,
) -> ProblemInstance:
    """Merge per-user ``(times, servers)`` streams into one instance.

    Simultaneous requests across users are separated by accumulating a
    deterministic jitter so the strict-ordering precondition holds without
    perturbing the workload's structure.
    """
    if not streams:
        raise ValueError("need at least one user stream")
    times = np.concatenate([s[0] for s in streams])
    servers = np.concatenate([s[1] for s in streams])
    order = np.argsort(times, kind="stable")
    times, servers = times[order], servers[order]
    for i in range(1, times.shape[0]):
        if times[i] <= times[i - 1]:
            times[i] = times[i - 1] + _JITTER
    return ProblemInstance.from_arrays(
        times, servers, num_servers=m, cost=cost, origin=origin
    )


@dataclass
class MarkovMobility:
    """Markov-chain user mobility over the server set.

    Parameters
    ----------
    cluster:
        Server fleet; when it has a planar layout, off-server moves go to
        one of the ``neighbors`` nearest sites (trajectory locality),
        otherwise to a uniform random other server.
    locality:
        Probability of staying on the current server between requests.
    request_rate:
        Poisson rate of requests per user.
    neighbors:
        Size of the neighbourhood for layout-aware moves.
    """

    cluster: Cluster
    locality: float = 0.8
    request_rate: float = 1.0
    neighbors: int = 3

    def __post_init__(self) -> None:
        if not 0.0 <= self.locality <= 1.0:
            raise ValueError(f"locality must be in [0, 1], got {self.locality}")
        if self.request_rate <= 0:
            raise ValueError(f"request_rate must be positive, got {self.request_rate}")
        self._neighbor_table = self._build_neighbors()

    def _build_neighbors(self) -> List[np.ndarray]:
        m = self.cluster.num_servers
        table: List[np.ndarray] = []
        if self.cluster.has_layout and m > 1:
            pts = self.cluster.positions()
            for j in range(m):
                d2 = ((pts - pts[j]) ** 2).sum(axis=1)
                order = np.argsort(d2)
                near = order[order != j][: max(1, self.neighbors)]
                table.append(near.astype(np.int64))
        else:
            others = np.arange(m, dtype=np.int64)
            for j in range(m):
                table.append(others[others != j])
        return table

    def user_stream(
        self,
        duration: float,
        start_server: Optional[int] = None,
        rng: RngLike = None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Generate one user's ``(times, servers)`` over ``[0, duration]``."""
        g = _rng(rng)
        m = self.cluster.num_servers
        here = (
            int(g.integers(0, m)) if start_server is None else int(start_server)
        )
        times: List[float] = []
        servers: List[int] = []
        t = 0.0
        while True:
            t += float(g.exponential(1.0 / self.request_rate))
            if t > duration:
                break
            times.append(t)
            servers.append(here)
            if m > 1 and g.random() > self.locality:
                nbrs = self._neighbor_table[here]
                here = int(nbrs[g.integers(0, nbrs.shape[0])])
        return np.asarray(times), np.asarray(servers, dtype=np.int64)

    def instance(
        self,
        num_users: int,
        duration: float,
        cost: Optional[CostModel] = None,
        rng: RngLike = None,
    ) -> ProblemInstance:
        """Merged instance for ``num_users`` independent users."""
        g = _rng(rng)
        streams = [self.user_stream(duration, rng=g) for _ in range(num_users)]
        streams = [s for s in streams if s[0].size]
        if not streams:
            raise ValueError(
                "no requests generated; increase duration or request_rate"
            )
        return merge_streams(
            streams, self.cluster.num_servers, cost=cost, origin=self.cluster.origin
        )


@dataclass
class RandomWaypoint:
    """Random-waypoint mobility over a planar cluster layout.

    Parameters
    ----------
    cluster:
        Must carry a planar layout (``Cluster.grid`` / ``random_layout``).
    speed:
        Travel speed between waypoints.
    request_rate:
        Poisson rate of requests along the trajectory.
    extent:
        Side length of the square region waypoints are drawn from;
        defaults to the layout's bounding box.
    """

    cluster: Cluster
    speed: float = 1.0
    request_rate: float = 1.0
    extent: Optional[float] = None

    def __post_init__(self) -> None:
        if not self.cluster.has_layout:
            raise ValueError("RandomWaypoint needs a cluster with a planar layout")
        if self.speed <= 0 or self.request_rate <= 0:
            raise ValueError("speed and request_rate must be positive")
        if self.extent is None:
            pts = self.cluster.positions()
            self.extent = float(pts.max())

    def user_stream(
        self, duration: float, rng: RngLike = None
    ) -> Tuple[np.ndarray, np.ndarray]:
        """One user's ``(times, servers)``: positions at Poisson instants."""
        g = _rng(rng)
        # Request instants first, then walk the trajectory through them.
        times: List[float] = []
        t = 0.0
        while True:
            t += float(g.exponential(1.0 / self.request_rate))
            if t > duration:
                break
            times.append(t)
        if not times:
            return np.asarray([]), np.asarray([], dtype=np.int64)
        req_t = np.asarray(times)
        pos = g.uniform(0.0, self.extent, size=2)
        target = g.uniform(0.0, self.extent, size=2)
        now = 0.0
        coords = np.empty((req_t.shape[0], 2))
        for i, rt in enumerate(req_t):
            remaining = rt - now
            while remaining > 0:
                leg = np.linalg.norm(target - pos)
                leg_time = leg / self.speed
                if leg_time > remaining:
                    pos = pos + (target - pos) * (remaining * self.speed / leg)
                    remaining = 0.0
                else:
                    pos = target
                    target = g.uniform(0.0, self.extent, size=2)
                    remaining -= leg_time
            now = rt
            coords[i] = pos
        servers = self.cluster.nearest_servers(coords)
        return req_t, servers

    def instance(
        self,
        num_users: int,
        duration: float,
        cost: Optional[CostModel] = None,
        rng: RngLike = None,
    ) -> ProblemInstance:
        """Merged instance for ``num_users`` independent walkers."""
        g = _rng(rng)
        streams = [self.user_stream(duration, rng=g) for _ in range(num_users)]
        streams = [s for s in streams if s[0].size]
        if not streams:
            raise ValueError(
                "no requests generated; increase duration or request_rate"
            )
        return merge_streams(
            streams, self.cluster.num_servers, cost=cost, origin=self.cluster.origin
        )
