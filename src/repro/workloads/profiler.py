"""Single-pass memmap-native workload profiler with bounded RSS.

:func:`profile_trace` sweeps a :class:`ColumnarTrace`'s mapped columns
once and returns :class:`WorkloadStats` — the per-item quantities the
learning-augmented online policies need as their substrate:

* per-item and per-server request counts (chunked ``np.bincount``);
* the interarrival distribution: one stable ``np.lexsort`` groups rows
  item-major/time-ordered, ``np.diff`` masked to same-item pairs yields
  every per-item gap, and a log-spaced ``np.bincount`` histogram plus
  per-item moment accumulators (weighted bincounts) come out of the same
  arrays;
* popularity skew: Zipf exponent (log-log rank/count fit) and
  top-1/top-10 share;
* burstiness ``B = (σ - μ) / (σ + μ)`` per item (≈0 Poisson, →1 bursty,
  →-1 periodic);
* predictability of the heaviest items' server sequences via the
  vectorised :func:`~repro.workloads.predictability.lz_entropy_rate` and
  the Fano bound
  :func:`~repro.workloads.predictability.max_predictability`.

The sweep never materialises :class:`TraceRecord` lists — everything is
whole-array numpy over (chunked) memmap reads, so RSS is bounded by a
few flat arrays of ``rows`` scalars (~24 bytes/row), two orders of
magnitude below record materialisation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from ..core.types import InvalidInstanceError
from .columnar import ColumnarTrace
from .predictability import (
    empirical_entropy,
    lz_entropy_rate,
    max_predictability,
)

__all__ = ["ItemStats", "WorkloadStats", "profile_trace"]


def _nan_to_none(x: float) -> Optional[float]:
    return None if x != x else float(x)


@dataclass(frozen=True)
class ItemStats:
    """Profile of a single (heavy) item."""

    name: str
    requests: int
    share: float
    mean_interarrival: float  # nan with < 2 requests
    burstiness: float  # nan with < 3 requests
    entropy_rate: Optional[float] = None  # bits/request, if profiled
    zeroth_order_entropy: Optional[float] = None
    max_predictability: Optional[float] = None

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "requests": self.requests,
            "share": self.share,
            "mean_interarrival": _nan_to_none(self.mean_interarrival),
            "burstiness": _nan_to_none(self.burstiness),
            "entropy_rate": self.entropy_rate,
            "zeroth_order_entropy": self.zeroth_order_entropy,
            "max_predictability": self.max_predictability,
        }


@dataclass
class WorkloadStats:
    """Everything one profiler sweep learns about a trace."""

    rows: int
    num_items: int
    num_servers: int
    t_start: float
    t_end: float
    item_counts: np.ndarray  # int64 [num_items]
    server_counts: np.ndarray  # int64 [num_servers]
    interarrival_edges: np.ndarray  # float64 [bins + 1], log-spaced
    interarrival_hist: np.ndarray  # int64 [bins]
    interarrival_mean: float  # nan if no same-item pairs
    interarrival_cv: float  # coefficient of variation (nan likewise)
    burstiness: np.ndarray  # float64 [num_items], nan where undefined
    burstiness_mean: float  # mean over defined items (nan if none)
    zipf_exponent: float  # log-log rank/count slope (nan if < 2 ranks)
    top1_share: float
    top10_share: float
    mean_max_predictability: float  # over profiled top items (nan if none)
    top_items: List[ItemStats] = field(default_factory=list)
    item_table: Tuple[str, ...] = ()

    @property
    def duration(self) -> float:
        return self.t_end - self.t_start

    def to_dict(self, top: int = 10) -> Dict[str, object]:
        """JSON-safe summary (NaN → null, arrays → lists)."""
        return {
            "rows": self.rows,
            "num_items": self.num_items,
            "num_servers": self.num_servers,
            "t_start": self.t_start,
            "t_end": self.t_end,
            "duration": self.duration,
            "server_counts": [int(c) for c in self.server_counts],
            "interarrival": {
                "edges": [float(e) for e in self.interarrival_edges],
                "hist": [int(c) for c in self.interarrival_hist],
                "mean": _nan_to_none(self.interarrival_mean),
                "cv": _nan_to_none(self.interarrival_cv),
            },
            "burstiness_mean": _nan_to_none(self.burstiness_mean),
            "zipf_exponent": _nan_to_none(self.zipf_exponent),
            "top1_share": self.top1_share,
            "top10_share": self.top10_share,
            "mean_max_predictability": _nan_to_none(
                self.mean_max_predictability
            ),
            "top_items": [it.to_dict() for it in self.top_items[:top]],
        }

    def describe(self, top: int = 10) -> str:
        """Human-readable multi-line report."""
        lines = [
            f"rows={self.rows}  items={self.num_items}  "
            f"servers={self.num_servers}  duration={self.duration:.6g}",
            f"interarrival: mean={self.interarrival_mean:.6g}  "
            f"cv={self.interarrival_cv:.4g}",
            f"popularity: zipf_exponent={self.zipf_exponent:.4g}  "
            f"top1={self.top1_share:.2%}  top10={self.top10_share:.2%}",
            f"burstiness(mean)={self.burstiness_mean:.4g}  "
            f"max_predictability(mean)={self.mean_max_predictability:.4g}",
            "",
            f"{'item':<20} {'requests':>9} {'share':>7} {'mean-gap':>10} "
            f"{'burst':>7} {'S':>7} {'Pi_max':>7}",
        ]
        for it in self.top_items[:top]:
            s = "-" if it.entropy_rate is None else f"{it.entropy_rate:.3f}"
            pi = (
                "-"
                if it.max_predictability is None
                else f"{it.max_predictability:.3f}"
            )
            gap = (
                "-"
                if it.mean_interarrival != it.mean_interarrival
                else f"{it.mean_interarrival:.4g}"
            )
            burst = (
                "-"
                if it.burstiness != it.burstiness
                else f"{it.burstiness:.3f}"
            )
            lines.append(
                f"{it.name[:20]:<20} {it.requests:>9} {it.share:>7.2%} "
                f"{gap:>10} {burst:>7} {s:>7} {pi:>7}"
            )
        return "\n".join(lines)


def _chunked_counts(
    trace: ColumnarTrace, chunk_rows: int
) -> Tuple[np.ndarray, np.ndarray, float, float]:
    """(item_counts, server_counts, t_min, t_max) in one chunked pass."""
    item_counts = np.zeros(len(trace.item_table), dtype=np.int64)
    server_parts: List[np.ndarray] = []
    t_min, t_max = math.inf, -math.inf
    rows = trace.rows
    for lo in range(0, rows, chunk_rows):
        hi = min(lo + chunk_rows, rows)
        ids = np.asarray(trace.item_ids[lo:hi])
        item_counts += np.bincount(ids, minlength=item_counts.shape[0])
        server_parts.append(np.bincount(np.asarray(trace.servers[lo:hi])))
        times = np.asarray(trace.times[lo:hi])
        t_min = min(t_min, float(times.min()))
        t_max = max(t_max, float(times.max()))
    width = max(p.shape[0] for p in server_parts)
    server_counts = np.zeros(width, dtype=np.int64)
    for p in server_parts:
        server_counts[: p.shape[0]] += p
    return item_counts, server_counts, t_min, t_max


def profile_trace(
    trace: Union[ColumnarTrace, str, Path],
    bins: int = 48,
    predictability_items: int = 8,
    predictability_cap: int = 4000,
    top_items: int = 10,
    chunk_rows: int = 1 << 20,
) -> WorkloadStats:
    """Profile a columnar trace in one memmap-native sweep.

    Parameters
    ----------
    bins:
        Log-spaced interarrival histogram bins.
    predictability_items:
        How many of the heaviest items get an LZ entropy-rate /
        Fano-bound predictability estimate (their server sequences are
        capped at ``predictability_cap`` requests — the estimator
        converges long before that).
    top_items:
        How many :class:`ItemStats` rows to keep (at least
        ``predictability_items``).
    """
    if not isinstance(trace, ColumnarTrace):
        trace = ColumnarTrace.open(trace)
    if trace.rows == 0:
        raise InvalidInstanceError("cannot profile an empty trace")
    if bins < 1:
        raise ValueError(f"bins must be >= 1, got {bins}")
    n_items = len(trace.item_table)
    item_counts, server_counts, t_min, t_max = _chunked_counts(
        trace, chunk_rows
    )
    num_servers = server_counts.shape[0]

    # One stable lexsort groups rows item-major, time-ordered within the
    # item; every per-item interarrival gap is then a masked diff.
    ids = np.asarray(trace.item_ids).astype(np.int64, copy=False)
    times = np.asarray(trace.times).astype(np.float64, copy=False)
    order = np.lexsort((times, ids))
    ids_sorted = ids[order]
    times_sorted = times[order]
    same_item = ids_sorted[1:] == ids_sorted[:-1]
    diffs = np.diff(times_sorted)[same_item]
    diff_items = ids_sorted[1:][same_item]

    if diffs.size:
        mean = float(diffs.mean())
        std = float(diffs.std())
        cv = std / mean if mean > 0 else math.nan
        positive = diffs[diffs > 0]
        if positive.size:
            lo_edge = float(positive.min())
            hi_edge = float(max(diffs.max(), lo_edge * (1 + 1e-9)))
            edges = np.geomspace(lo_edge, hi_edge, bins + 1)
        else:  # all gaps zero (fully tied stamps)
            edges = np.geomspace(1e-9, 1.0, bins + 1)
        idx = np.clip(
            np.searchsorted(edges, diffs, side="right") - 1, 0, bins - 1
        )
        hist = np.bincount(idx, minlength=bins).astype(np.int64)
    else:
        mean = cv = math.nan
        edges = np.geomspace(1e-9, 1.0, bins + 1)
        hist = np.zeros(bins, dtype=np.int64)

    # Per-item gap moments via weighted bincounts -> burstiness.
    gap_n = np.bincount(diff_items, minlength=n_items).astype(np.float64)
    gap_sum = np.bincount(diff_items, weights=diffs, minlength=n_items)
    gap_sq = np.bincount(diff_items, weights=diffs * diffs, minlength=n_items)
    burst = np.full(n_items, math.nan)
    with np.errstate(invalid="ignore", divide="ignore"):
        defined = gap_n >= 2
        mu_i = np.where(gap_n > 0, gap_sum / np.maximum(gap_n, 1), math.nan)
        var_i = gap_sq / np.maximum(gap_n, 1) - mu_i * mu_i
        sigma_i = np.sqrt(np.maximum(var_i, 0.0))
        denom = sigma_i + mu_i
        ok = defined & (denom > 0)
        burst[ok] = ((sigma_i - mu_i) / denom)[ok]
    burst_mean = (
        float(np.nanmean(burst)) if np.isfinite(burst).any() else math.nan
    )

    # Popularity skew.
    counts_desc = np.sort(item_counts[item_counts > 0])[::-1]
    total = float(item_counts.sum())
    top1 = float(counts_desc[0]) / total if counts_desc.size else 0.0
    top10 = float(counts_desc[:10].sum()) / total if counts_desc.size else 0.0
    if counts_desc.size >= 2:
        ranks = np.arange(1, counts_desc.shape[0] + 1, dtype=np.float64)
        slope = np.polyfit(np.log(ranks), np.log(counts_desc), 1)[0]
        zipf = float(-slope)
    else:
        zipf = math.nan

    # Heaviest items: stats rows + predictability of server sequences.
    n_top = max(int(top_items), int(predictability_items))
    by_count = np.lexsort((np.arange(n_items), -item_counts))[:n_top]
    servers_sorted = np.asarray(trace.servers)[order]
    item_lo = np.searchsorted(ids_sorted, by_count, side="left")
    item_hi = np.searchsorted(ids_sorted, by_count, side="right")
    top_rows: List[ItemStats] = []
    pis: List[float] = []
    for j, item_id in enumerate(by_count):
        cnt = int(item_counts[item_id])
        if cnt == 0:
            continue
        entropy = h0 = pi = None
        if j < predictability_items and cnt >= 2:
            seq = servers_sorted[item_lo[j] : item_hi[j]][:predictability_cap]
            entropy = lz_entropy_rate(seq)
            h0 = empirical_entropy(seq)
            pi = max_predictability(entropy, num_servers)
            pis.append(pi)
        top_rows.append(
            ItemStats(
                name=trace.item_table[int(item_id)],
                requests=cnt,
                share=cnt / total,
                mean_interarrival=float(mu_i[item_id])
                if gap_n[item_id] > 0
                else math.nan,
                burstiness=float(burst[item_id]),
                entropy_rate=entropy,
                zeroth_order_entropy=h0,
                max_predictability=pi,
            )
        )
    return WorkloadStats(
        rows=trace.rows,
        num_items=n_items,
        num_servers=num_servers,
        t_start=t_min,
        t_end=t_max,
        item_counts=item_counts,
        server_counts=server_counts,
        interarrival_edges=edges,
        interarrival_hist=hist,
        interarrival_mean=mean,
        interarrival_cv=cv,
        burstiness=burst,
        burstiness_mean=burst_mean,
        zipf_exponent=zipf,
        top1_share=top1,
        top10_share=top10,
        mean_max_predictability=float(np.mean(pis)) if pis else math.nan,
        top_items=top_rows,
        item_table=trace.item_table,
    )
