"""Command-line interface: ``repro-cache`` / ``python -m repro``.

Subcommands
-----------
``solve``
    Solve a trace off-line (optimal DP) and print the schedule.
``online``
    Replay a trace through an online policy and print cost + counters.
``compare``
    Off-line optimum vs online policies on one trace, as a table.
``generate``
    Emit a synthetic workload as a CSV trace.
``paper``
    Re-print the paper's worked examples (Figs. 2/6/7) with our numbers.
``chaos``
    Sweep seeded fault scenarios (server crashes, transfer loss) through
    the fault-tolerant SC-R policy and report resilience invariants.
    All scenarios are always swept; failures are collected and reported
    per seed.
``supervise``
    Crash-safe replay under a deadline budget with a write-ahead journal
    and periodic checkpoints; ``--resume`` continues a killed run from
    ``snapshot + journal tail``.
``service``
    Solve (and with ``--policy``, serve) a multi-item trace through the
    sharded service layer; ``--processes``/``--shards`` fan the per-item
    work across a process pool with results bit-identical to serial
    (``--verify-serial`` re-checks that on the spot).  ``--transport``
    picks the worker data plane (zero-copy shared memory by default,
    ``pickle`` for the legacy descriptor path) and ``--pool persistent``
    keeps one :class:`~repro.service.fabric.ServicePool` alive across
    the solve, the online serve, and the verification pass.
``convert``
    Convert a CSV service log to the binary columnar container of
    :mod:`repro.workloads.columnar` (streaming, bounded memory).
``serve``
    Run the resilient live request-serving front-end
    (:mod:`repro.service.server`): asyncio HTTP/JSON, bounded queues +
    429 backpressure, deadline budgets, per-shard circuit breakers,
    write-ahead journals, graceful SIGTERM drain, ``--resume`` for
    crash-safe restart.
``loadgen``
    Replay a trace (or a synthetic workload) against a running server —
    open-loop at ``--rate`` req/s or closed-loop retry-until-accepted —
    and report latency percentiles, shed rate, and the decision digest.

Exit-code contract (stable; scripts and CI may rely on it):

* ``0`` — success; for ``chaos``, every scenario passed every invariant.
* ``1`` — invariant violation: at least one chaos scenario failed its
  assertions (each failure is listed per seed on stdout/stderr).
* ``2`` — usage or environment error (bad trace path, bad arguments).
* ``3`` — ``supervise`` only: the deadline budget expired and a valid
  *partial* result was produced (resume later with ``--resume``).

Traces use the CSV format of :mod:`repro.workloads.traces`; the
``service`` subcommand also accepts columnar containers (detected by
magic bytes, no flag needed).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .core.types import CostModel
from .kernels.online import ONLINE_KERNELS
from .offline.dp import KERNELS, solve_offline
from .online.baselines import AlwaysTransfer, NeverDelete, RandomizedTTL
from .online.predictive import MarkovPredictor, PredictiveCaching
from .online.resilient import SpeculativeCachingResilient
from .online.speculative import SpeculativeCaching
from .schedule.diagram import render_schedule
from .workloads.synthetic import poisson_zipf_instance
from .workloads.traces import TraceRecord, mine_instance, write_trace

__all__ = ["main", "build_parser"]

# Module-level factories (not lambdas) so `service --processes N` can ship
# them into a process pool; each call still yields a fresh policy.
def _predictive_factory() -> PredictiveCaching:
    return PredictiveCaching(MarkovPredictor())


def _randomized_ttl_factory() -> RandomizedTTL:
    # Seeded so repeated CLI invocations are byte-identical (the repo-wide
    # determinism contract); pass a different seed via the library API.
    return RandomizedTTL(seed=0)


_POLICIES = {
    "sc": SpeculativeCaching,
    "sc-r": SpeculativeCachingResilient,
    "always-transfer": AlwaysTransfer,
    "never-delete": NeverDelete,
    "randomized-ttl": _randomized_ttl_factory,
    "predictive": _predictive_factory,
}

# One --kernel flag covers both kernel families: DP names route to the
# off-line sweep, online names to the policy replay, and names the other
# family doesn't know fall back to its "auto".
_KERNEL_CHOICES = list(KERNELS) + [k for k in ONLINE_KERNELS if k not in KERNELS]


def _dp_kernel(kernel: str) -> str:
    """The off-line-DP half of the global ``--kernel`` value."""
    return kernel if kernel in KERNELS else "auto"


def _online_kernel(kernel: str) -> str:
    """The online-replay half of the global ``--kernel`` value."""
    return kernel if kernel in ONLINE_KERNELS else "auto"


def build_parser() -> argparse.ArgumentParser:
    """The ``repro-cache`` argument parser (exposed for tests)."""
    p = argparse.ArgumentParser(
        prog="repro-cache",
        description="Cost-driven data caching: optimal off-line DP and "
        "3-competitive online speculative caching (ICPP 2017 reproduction).",
    )
    p.add_argument("--mu", type=float, default=1.0, help="caching cost per time unit")
    p.add_argument("--lam", type=float, default=1.0, help="transfer cost")
    p.add_argument("--origin", type=int, default=0, help="initial data server")
    p.add_argument(
        "--kernel",
        choices=_KERNEL_CHOICES,
        default="auto",
        help="off-line DP sweep: frontier (O(n+m+P) fast path), reference "
        "(paper-shaped O(mn)), batch (instance-major batched kernel; one "
        "sweep per multi-item service or shard, compiled C when a system "
        "compiler exists), or auto (default; frontier per item, batch for "
        "multi-item solves) — bit-identical results either way.  Online "
        "replays take event (per-event state machine) or vector (batched "
        "array kernel, SC/TTL only) — also bit-identical; auto picks "
        "vector when eligible",
    )
    sub = p.add_subparsers(dest="command", required=True)

    sp = sub.add_parser("solve", help="optimal off-line schedule for a trace")
    sp.add_argument("trace", help="CSV trace path")
    sp.add_argument("--item", default=None, help="item id to mine from the trace")
    sp.add_argument("--servers", type=int, default=None, help="fleet size m")
    sp.add_argument("--diagram", action="store_true", help="render ASCII diagram")

    op = sub.add_parser("online", help="replay a trace through an online policy")
    op.add_argument("trace", help="CSV trace path")
    op.add_argument("--item", default=None)
    op.add_argument("--servers", type=int, default=None)
    op.add_argument(
        "--policy", choices=sorted(_POLICIES), default="sc", help="online policy"
    )
    op.add_argument("--epoch", type=int, default=None, help="SC epoch size")
    op.add_argument("--diagram", action="store_true")

    cp = sub.add_parser("compare", help="off-line optimum vs online policies")
    cp.add_argument("trace", help="CSV trace path")
    cp.add_argument("--item", default=None)
    cp.add_argument("--servers", type=int, default=None)

    gp = sub.add_parser("generate", help="emit a synthetic Poisson/Zipf trace")
    gp.add_argument("out", help="output CSV path")
    gp.add_argument("-n", type=int, default=200, help="number of requests")
    gp.add_argument("-m", type=int, default=8, help="number of servers")
    gp.add_argument("--rate", type=float, default=1.0, help="arrival rate")
    gp.add_argument("--zipf", type=float, default=1.0, help="Zipf skew s")
    gp.add_argument("--seed", type=int, default=0)

    sub.add_parser("paper", help="re-print the paper's worked examples")

    ch = sub.add_parser(
        "chaos", help="sweep seeded fault scenarios through SC-R"
    )
    ch.add_argument(
        "trace", nargs="?", default=None,
        help="CSV trace path (omit for a synthetic Poisson/Zipf workload)",
    )
    ch.add_argument("--item", default=None)
    ch.add_argument("--servers", type=int, default=None)
    ch.add_argument("-n", type=int, default=200, help="synthetic request count")
    ch.add_argument("-m", type=int, default=8, help="synthetic fleet size")
    ch.add_argument("--scenarios", type=int, default=20, help="scenario count")
    ch.add_argument("--seed", type=int, default=0, help="base scenario seed")
    ch.add_argument(
        "--crash-rate", type=float, default=1.0,
        help="expected outages per server over the horizon",
    )
    ch.add_argument(
        "--mean-outage", type=float, default=0.05,
        help="mean outage duration as a fraction of the horizon",
    )
    ch.add_argument(
        "--loss", type=float, default=0.05, help="per-attempt transfer loss rate"
    )
    ch.add_argument("-k", "--replicas", type=int, default=2, help="SC-R replica target")
    ch.add_argument("--retries", type=int, default=3, help="retries per source")
    ch.add_argument(
        "--kill-runner", action="store_true",
        help="also kill the runner at a seeded event boundary per scenario "
        "and assert kill/resume equivalence",
    )
    ch.add_argument(
        "--kill-server", action="store_true",
        help="instead of the SC-R sweep, SIGKILL a live serving front-end "
        "subprocess at seeded points under load and assert bit-identical "
        "resume (see `serve`)",
    )
    ch.add_argument(
        "--kill-points", type=int, default=5,
        help="distinct SIGKILL points for --kill-server",
    )
    ch.add_argument(
        "--items", type=int, default=6,
        help="synthetic item count for --kill-server",
    )
    ch.add_argument(
        "--shards", type=int, default=2, help="server shards for --kill-server"
    )
    ch.add_argument(
        "--kill-replica", action="store_true",
        help="cluster failover sweep: SIGKILL replicas of a live replicated "
        "cluster at seeded points under load and assert the merged decision "
        "stream is bit-identical to an uninterrupted single server",
    )
    ch.add_argument(
        "--partition", action="store_true",
        help="cluster failover sweep with network partitions (via per-replica "
        "chaos proxies): one partition that heals mid-batch without failover "
        "and one that rides through failover; implies a proxied cluster",
    )
    ch.add_argument(
        "--cluster-replicas", type=int, default=3,
        help="replica count for --kill-replica/--partition",
    )
    ch.add_argument(
        "--proxy-seed", type=int, default=None,
        help="optional NetworkFaultPlan seed to run the cluster sweep "
        "behind lossy chaos proxies (latency/duplicates/torn writes)",
    )

    sv = sub.add_parser(
        "supervise",
        help="crash-safe replay: journal, checkpoints, deadline budget",
    )
    sv.add_argument(
        "trace", nargs="?", default=None,
        help="CSV trace path (omit for a synthetic Poisson/Zipf workload)",
    )
    sv.add_argument("--item", default=None)
    sv.add_argument("--servers", type=int, default=None)
    sv.add_argument("-n", type=int, default=200, help="synthetic request count")
    sv.add_argument("-m", type=int, default=8, help="synthetic fleet size")
    sv.add_argument(
        "--policy", choices=sorted(_POLICIES), default="sc-r", help="online policy"
    )
    sv.add_argument("--seed", type=int, default=0, help="workload/fault seed")
    sv.add_argument(
        "--crash-rate", type=float, default=0.0,
        help="fault plan: expected outages per server (0 = no faults)",
    )
    sv.add_argument(
        "--mean-outage", type=float, default=0.05,
        help="fault plan: mean outage duration as a horizon fraction",
    )
    sv.add_argument(
        "--loss", type=float, default=0.0,
        help="fault plan: per-attempt transfer loss rate",
    )
    sv.add_argument("--journal", default=None, help="write-ahead journal path (JSONL)")
    sv.add_argument("--snapshot", default=None, help="checkpoint path")
    sv.add_argument(
        "--snapshot-every", type=int, default=64, help="checkpoint cadence (events)"
    )
    sv.add_argument(
        "--deadline-events", type=int, default=None,
        help="pause after this many delivered events (absolute)",
    )
    sv.add_argument(
        "--deadline-seconds", type=float, default=None,
        help="wall-clock budget for this invocation",
    )
    sv.add_argument(
        "--resume", action="store_true",
        help="continue from --snapshot + --journal instead of starting fresh",
    )

    mp = sub.add_parser(
        "service",
        help="solve/serve a multi-item trace via the sharded service layer",
    )
    mp.add_argument(
        "trace", nargs="?", default=None,
        help="CSV trace path with an item column (omit for a synthetic "
        "Zipf-over-items workload)",
    )
    mp.add_argument("--servers", type=int, default=None, help="fleet size m")
    mp.add_argument("--items", type=int, default=16, help="synthetic item count")
    mp.add_argument("-n", type=int, default=800, help="synthetic total requests")
    mp.add_argument("-m", type=int, default=8, help="synthetic fleet size")
    mp.add_argument(
        "--item-zipf", type=float, default=1.0, help="synthetic item-volume skew"
    )
    mp.add_argument("--seed", type=int, default=0, help="synthetic workload seed")
    mp.add_argument(
        "--policy", choices=sorted(_POLICIES), default=None,
        help="also serve the items online with this policy "
        "(omit for off-line solve only)",
    )
    mp.add_argument(
        "--processes", type=int, default=1,
        help="process-pool size (1 = serial in-process)",
    )
    mp.add_argument(
        "--shards", type=int, default=None,
        help="shard count (default: one per process)",
    )
    mp.add_argument(
        "--shard-strategy", choices=["size", "hash"], default="size",
        help="item partitioning: size-balanced LPT or stable name hash",
    )
    mp.add_argument(
        "--transport", choices=["shm", "pickle"], default="shm",
        help="worker data plane: zero-copy shared memory (default) or "
        "per-call pickled descriptors",
    )
    mp.add_argument(
        "--pool", choices=["fresh", "persistent"], default="fresh",
        help="'persistent' keeps one shared-memory ServicePool alive "
        "across the solve, the online serve, and --verify-serial "
        "(requires --transport shm)",
    )
    mp.add_argument(
        "--verify-serial", action="store_true",
        help="re-solve serially and assert parallel results are identical",
    )
    mp.add_argument(
        "--top", type=int, default=10, help="breakdown rows to print"
    )

    cv = sub.add_parser(
        "convert",
        help="convert a CSV service log to the binary columnar container",
    )
    cv.add_argument("src", help="CSV trace path")
    cv.add_argument("dest", help="output columnar container path")
    cv.add_argument(
        "--chunk-rows", type=int, default=1 << 16,
        help="rows parsed per chunk (bounds peak memory)",
    )

    sa = sub.add_parser(
        "sample",
        help="hash-sample a columnar trace's items into a smaller container",
    )
    sa.add_argument("src", help="columnar container (or CSV trace) path")
    sa.add_argument("dest", help="output columnar container path")
    sa.add_argument(
        "--rate", type=float, default=0.1,
        help="item sampling rate p in (0, 1]; an item is kept iff "
        "hash(item, seed) < p * 2^64",
    )
    sa.add_argument("--seed", type=int, default=0, help="hash seed")
    sa.add_argument(
        "--window", default=None, metavar="T0:T1",
        help="keep only rows with T0 <= time < T1",
    )
    sa.add_argument(
        "--chunk-rows", type=int, default=1 << 20,
        help="rows scanned per chunk (bounds peak memory)",
    )
    sa.add_argument(
        "--estimate", action="store_true",
        help="also estimate the full-trace offline cost from the sample "
        "(Horvitz-Thompson + bootstrap CI)",
    )
    sa.add_argument(
        "--confidence", type=float, default=0.95,
        help="confidence level of the --estimate interval",
    )
    sa.add_argument(
        "--top-exact", type=int, default=64,
        help="heaviest items solved exactly by --estimate "
        "(certainty stratum)",
    )

    pf = sub.add_parser(
        "profile",
        help="single-pass workload profile of a columnar trace",
    )
    pf.add_argument("trace", help="columnar container (or CSV trace) path")
    pf.add_argument(
        "--bins", type=int, default=48,
        help="log-spaced interarrival histogram bins",
    )
    pf.add_argument(
        "--top", type=int, default=10, help="items in the per-item table"
    )
    pf.add_argument(
        "--predictability-items", type=int, default=8,
        help="heaviest items to run the LZ/Fano predictability estimate on",
    )
    pf.add_argument(
        "--json", default=None, metavar="PATH",
        help="also write the profile as JSON ('-' for stdout)",
    )

    rp = sub.add_parser(
        "serve", help="run the resilient live request-serving front-end"
    )
    rp.add_argument("--host", default="127.0.0.1")
    rp.add_argument(
        "--port", type=int, default=0, help="0 = ephemeral (see server.json)"
    )
    rp.add_argument("--shards", type=int, default=4, help="solver shard count")
    rp.add_argument("-m", type=int, default=8, help="fleet size m")
    rp.add_argument(
        "--queue-depth", type=int, default=256,
        help="bounded per-shard admission queue (429 past it)",
    )
    rp.add_argument(
        "--degrade-watermark", type=float, default=0.75,
        help="queue fraction past which service degrades to "
        "cheapest-feasible decisions",
    )
    rp.add_argument(
        "--deadline-ms", type=float, default=1000.0,
        help="default per-request deadline budget",
    )
    rp.add_argument(
        "--breaker-threshold", type=int, default=5,
        help="consecutive shard failures that open the circuit breaker",
    )
    rp.add_argument(
        "--breaker-cooldown", type=float, default=1.0,
        help="seconds an open breaker sheds before the half-open probe",
    )
    rp.add_argument(
        "--journal-dir", default=None,
        help="per-shard write-ahead journal directory (omit = in-memory, "
        "not crash-safe)",
    )
    rp.add_argument(
        "--resume", action="store_true",
        help="replay existing journals in --journal-dir before serving",
    )
    rp.add_argument(
        "--no-sync", action="store_true",
        help="skip fsync on journal batches (faster, last-batch durability "
        "only as good as the page cache)",
    )
    rp.add_argument(
        "--pool-processes", type=int, default=1,
        help="ServicePool size for GET /offline verification (1 = serial)",
    )
    rp.add_argument(
        "--dedupe-window", type=float, default=None,
        help="bound the per-shard (item,time) dedupe map to this sliding "
        "time window behind the shard frontier; evicted duplicates get 409 "
        "(omit = unbounded, exact dedupe forever)",
    )
    rp.add_argument(
        "--owned-shards", default=None,
        help="comma-separated subset of [0,--shards) this replica serves "
        "(requests for other shards get 421; used by the cluster supervisor)",
    )
    rp.add_argument(
        "--meta-name", default="server.json",
        help="discovery-file name inside --journal-dir",
    )
    rp.add_argument(
        "--replicas", type=int, default=1,
        help="run a replicated failover cluster of this many server "
        "subprocesses instead of one in-process server (requires "
        "--journal-dir; shards are partitioned round-robin and fail over "
        "across replicas via the shared per-shard WALs)",
    )
    rp.add_argument(
        "--proxy-seed", type=int, default=None,
        help="with --replicas > 1: put a seeded chaos proxy in front of "
        "every replica (NetworkFaultPlan seed; latency/duplication flags "
        "use their defaults)",
    )

    px = sub.add_parser(
        "proxy",
        help="deterministic wire-chaos proxy in front of a serving endpoint",
    )
    px.add_argument("--upstream-host", default="127.0.0.1")
    px.add_argument("--upstream-port", type=int, required=True)
    px.add_argument("--host", default="127.0.0.1")
    px.add_argument(
        "--port", type=int, default=0, help="0 = ephemeral (see --meta)"
    )
    px.add_argument(
        "--meta", default=None,
        help="write {host, port} discovery JSON here once bound",
    )
    px.add_argument("--seed", type=int, default=0, help="perturbation seed")
    px.add_argument(
        "--latency", type=float, default=0.0,
        help="base added latency per request (seconds)",
    )
    px.add_argument(
        "--jitter", type=float, default=0.0,
        help="uniform extra latency on top of --latency (seconds)",
    )
    px.add_argument(
        "--reset-rate", type=float, default=0.0,
        help="per-message probability of a mid-response connection reset",
    )
    px.add_argument(
        "--torn-rate", type=float, default=0.0,
        help="per-message probability of a byte-fragmented response",
    )
    px.add_argument(
        "--dup-rate", type=float, default=0.0,
        help="per-message probability the request is forwarded twice",
    )
    px.add_argument(
        "--reorder-rate", type=float, default=0.0,
        help="per-message probability the response is held (--reorder-hold) "
        "so concurrent connections overtake it",
    )
    px.add_argument(
        "--reorder-hold", type=float, default=0.05,
        help="hold duration for reordered responses (seconds)",
    )
    px.add_argument(
        "--blackhole", default=None, metavar="A:B[,C:D...]",
        help="uptime windows (seconds) during which requests are accepted "
        "but never answered",
    )
    px.add_argument(
        "--partition-window", default=None, metavar="A:B[,C:D...]",
        help="uptime windows (seconds) during which connections are dropped "
        "and live relays aborted",
    )

    lg = sub.add_parser(
        "loadgen", help="replay a trace against a running server"
    )
    lg.add_argument(
        "trace", nargs="?", default=None,
        help="columnar trace container (omit for a synthetic workload)",
    )
    lg.add_argument("--host", default="127.0.0.1")
    lg.add_argument(
        "--port", type=int, default=None,
        help="server port (required unless --cluster-map is given)",
    )
    lg.add_argument(
        "--cluster-map", default=None,
        help="drive a replicated cluster through its cluster.json routing "
        "map (closed-loop, failover-aware redrive) instead of one server",
    )
    lg.add_argument(
        "--connect-timeout", type=float, default=5.0,
        help="per-connect timeout (seconds)",
    )
    lg.add_argument(
        "--read-timeout", type=float, default=15.0,
        help="per-request response timeout (seconds); a timed-out "
        "connection is dropped and the event redriven through dedupe",
    )
    lg.add_argument(
        "--hedge-ms", type=float, default=None,
        help="cluster mode: fire a hedged duplicate on a fresh connection "
        "if no answer after this many ms (dedupe-safe)",
    )
    lg.add_argument(
        "--rate", type=float, default=None,
        help="open-loop target req/s (omit for closed-loop "
        "retry-until-accepted)",
    )
    lg.add_argument(
        "--concurrency", type=int, default=8, help="client lanes/connections"
    )
    lg.add_argument(
        "--retries", type=int, default=8,
        help="closed-loop retries per event before giving up",
    )
    lg.add_argument("--limit", type=int, default=None, help="event cap")
    lg.add_argument("--items", type=int, default=8, help="synthetic item count")
    lg.add_argument("-n", type=int, default=400, help="synthetic event count")
    lg.add_argument("-m", type=int, default=8, help="synthetic fleet size")
    lg.add_argument("--seed", type=int, default=0, help="synthetic seed")
    lg.add_argument(
        "--json", default=None, help="also write the report to this path"
    )

    ep = sub.add_parser(
        "experiment", help="regenerate a DESIGN.md experiment table"
    )
    ep.add_argument(
        "name",
        nargs="?",
        default=None,
        help="experiment id (omit to list available experiments)",
    )

    vp = sub.add_parser("svg", help="render a trace's optimal schedule as SVG")
    vp.add_argument("trace", help="CSV trace path")
    vp.add_argument("out", help="output .svg path")
    vp.add_argument("--item", default=None)
    vp.add_argument("--servers", type=int, default=None)
    vp.add_argument("--width", type=int, default=800)

    sp2 = sub.add_parser(
        "sensitivity", help="lambda-sensitivity table and breakpoints"
    )
    sp2.add_argument("trace", help="CSV trace path")
    sp2.add_argument("--item", default=None)
    sp2.add_argument("--servers", type=int, default=None)
    sp2.add_argument("--lo", type=float, default=0.1, help="lambda range start")
    sp2.add_argument("--hi", type=float, default=10.0, help="lambda range end")
    sp2.add_argument("--points", type=int, default=8, help="grid size")
    return p


def _load(args: argparse.Namespace):
    cost = CostModel(mu=args.mu, lam=args.lam)
    return mine_instance(
        args.trace,
        item=args.item,
        num_servers=args.servers,
        cost=cost,
        origin=args.origin,
    )


def _cmd_solve(args: argparse.Namespace) -> int:
    inst = _load(args)
    res = solve_offline(inst, kernel=_dp_kernel(args.kernel))
    sched = res.schedule()
    print(f"instance: {inst}")
    print(f"optimal cost C(n) = {res.optimal_cost:.6g} "
          f"(lower bound B_n = {res.lower_bound:.6g})")
    print(sched.describe(inst.cost))
    if args.diagram:
        print(render_schedule(sched, inst))
    return 0


def _cmd_online(args: argparse.Namespace) -> int:
    inst = _load(args)
    if args.policy == "sc" and args.epoch is not None:
        algo = SpeculativeCaching(epoch_size=args.epoch)
    else:
        algo = _POLICIES[args.policy]()
    run = algo.run(inst, kernel=_online_kernel(args.kernel))
    opt = solve_offline(inst, kernel=_dp_kernel(args.kernel)).optimal_cost
    print(f"instance: {inst}")
    print(f"policy {run.algorithm}: cost = {run.cost:.6g} "
          f"(optimal {opt:.6g}, ratio {run.cost / opt:.4f})")
    for key, value in sorted(run.counters.items()):
        print(f"  {key}: {value}")
    if args.diagram:
        print(render_schedule(run.schedule, inst))
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    from .analysis.tables import format_table

    inst = _load(args)
    opt = solve_offline(inst, kernel=_dp_kernel(args.kernel)).optimal_cost
    # The grid mixes vector-eligible and ineligible policies, so a pinned
    # "vector" falls back to "auto" here rather than failing the whole table.
    online_kernel = _online_kernel(args.kernel)
    if online_kernel == "vector":
        online_kernel = "auto"
    rows = [{"policy": "off-line optimal", "cost": opt, "ratio": 1.0}]
    for key in sorted(_POLICIES):
        # each factory yields a fresh policy
        run = _POLICIES[key]().run(inst, kernel=online_kernel)
        rows.append(
            {"policy": run.algorithm, "cost": run.cost, "ratio": run.cost / opt}
        )
    print(f"instance: {inst}")
    print(format_table(rows, headers=["policy", "cost", "ratio"], precision=5))
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    inst = poisson_zipf_instance(
        n=args.n,
        m=args.m,
        rate=args.rate,
        zipf_s=args.zipf,
        cost=CostModel(mu=args.mu, lam=args.lam),
        origin=args.origin,
        rng=args.seed,
    )
    records = [
        TraceRecord(time=float(inst.t[i]), server=int(inst.srv[i]))
        for i in range(1, inst.n + 1)
    ]
    write_trace(records, args.out)
    print(f"wrote {len(records)} requests over {args.m} servers to {args.out}")
    return 0


def _cmd_paper(args: argparse.Namespace) -> int:
    from .paperdata import fig2_instance, fig6_instance, fig7_instance

    inst = fig6_instance()
    res = solve_offline(inst)
    print("Fig 6 running example (m=4, mu=lam=1):")
    print(f"  C = {[round(float(c), 4) for c in res.C]}")
    print(f"  D = {[round(float(d), 4) for d in res.D]}")
    print(f"  optimal C(7) = {res.optimal_cost:.4g}  (paper: 8.9)")
    print(render_schedule(res.schedule(), inst))

    inst2 = fig2_instance()
    res2 = solve_offline(inst2)
    sched2 = res2.schedule()
    print("\nFig 2 standard-form example (m=3, mu=lam=1):")
    print(
        f"  caching {sched2.caching_cost(inst2.cost):.4g} "
        f"+ transfer {sched2.transfer_cost(inst2.cost):.4g} "
        f"= {res2.optimal_cost:.4g}  (paper: 3.2 + 4.0 = 7.2)"
    )

    inst7 = fig7_instance()
    run = SpeculativeCaching(epoch_size=5).run(inst7)
    print("\nFig 7 SC epoch (5 transfers, mu=lam=1):")
    print(f"  cost = {run.cost:.4g}, counters = {run.counters}")
    print(render_schedule(run.schedule, inst7))
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    from .faults import chaos

    if args.kill_replica or args.partition:
        return _cmd_chaos_cluster(args)
    if args.kill_server:
        return _cmd_chaos_server(args)
    if args.trace is not None:
        inst = _load(args)
    else:
        inst = poisson_zipf_instance(
            n=args.n,
            m=args.servers if args.servers is not None else args.m,
            cost=CostModel(mu=args.mu, lam=args.lam),
            origin=args.origin,
            rng=args.seed,
        )
    plans = chaos.scenario_plans(
        inst,
        scenarios=args.scenarios,
        base_seed=args.seed,
        crash_rate=args.crash_rate,
        mean_outage=args.mean_outage,
        loss_rate=args.loss,
    )
    factory = lambda: SpeculativeCachingResilient(
        replicas=args.replicas, max_retries=args.retries
    )
    # Collect-all mode: every scenario is swept even after a failure, so
    # the report names every bad seed; the exit code then reflects the
    # sweep as a whole (0 = all held, 1 = at least one violation).
    outcomes = chaos.run_chaos_suite(
        inst, plans, factory, fail_fast=False, kill_runner=args.kill_runner
    )
    print(f"instance: {inst}")
    print(
        chaos.chaos_report(
            outcomes,
            title=f"chaos sweep: SC-R(k={args.replicas}), "
            f"{args.scenarios} scenarios, crash-rate {args.crash_rate:g}, "
            f"loss {args.loss:g}"
            + (", runner kills on" if args.kill_runner else ""),
        )
    )
    failed = [o for o in outcomes if not o.ok]
    if failed:
        for o in failed:
            for msg in o.violations:
                print(f"INVARIANT VIOLATION: {msg}", file=sys.stderr)
        print(
            f"{len(failed)}/{len(outcomes)} scenarios FAILED", file=sys.stderr
        )
        return 1
    checks = "determinism, accounting, bounded recovery"
    if args.kill_runner:
        checks += ", kill/resume equivalence"
    print(f"all invariants held ({checks})")
    return 0


def _cmd_chaos_server(args: argparse.Namespace) -> int:
    from .analysis.tables import format_table
    from .faults import chaos
    from .service.loadgen import events_from_trace, synthetic_events

    if args.trace is not None:
        events = events_from_trace(args.trace, limit=args.n)
    else:
        events = synthetic_events(
            items=args.items,
            count=args.n,
            num_servers=args.servers if args.servers is not None else args.m,
            seed=args.seed,
        )
    outcomes = chaos.server_kill_resume_suite(
        events,
        kill_points=args.kill_points,
        base_seed=args.seed,
        shards=args.shards,
        num_servers=args.servers if args.servers is not None else args.m,
    )
    print(
        format_table(
            [o.row() for o in outcomes],
            title=f"server kill/resume: {len(events)} events, "
            f"{len(outcomes)} SIGKILL points, {args.shards} shards",
        )
    )
    failed = [o for o in outcomes if not o.ok]
    if failed:
        for o in failed:
            for msg in o.violations:
                print(f"INVARIANT VIOLATION: {msg}", file=sys.stderr)
        print(f"{len(failed)}/{len(outcomes)} kill points FAILED", file=sys.stderr)
        return 1
    print(
        "all kill points resumed bit-identically "
        "(merged decision digests match the uninterrupted run)"
    )
    return 0


def _cmd_chaos_cluster(args: argparse.Namespace) -> int:
    from .analysis.tables import format_table
    from .faults import chaos
    from .service.loadgen import events_from_trace, synthetic_events

    if args.trace is not None:
        events = events_from_trace(args.trace, limit=args.n)
    else:
        events = synthetic_events(
            items=args.items,
            count=args.n,
            num_servers=args.servers if args.servers is not None else args.m,
            seed=args.seed,
        )
    outcomes = chaos.cluster_failover_suite(
        events,
        scenarios=args.kill_points,
        base_seed=args.seed,
        shards=args.shards,
        replicas=args.cluster_replicas,
        num_servers=args.servers if args.servers is not None else args.m,
        include_kills=args.kill_replica or not args.partition,
        include_partitions=args.partition,
        proxy_seed=args.proxy_seed,
    )
    print(
        format_table(
            [o.row() for o in outcomes],
            title=f"cluster failover: {len(events)} events, "
            f"{args.cluster_replicas} replicas, {args.shards} shards, "
            f"{len(outcomes)} scenarios"
            + (f", proxy seed {args.proxy_seed}"
               if args.proxy_seed is not None else ""),
        )
    )
    failed = [o for o in outcomes if not o.ok]
    if failed:
        for o in failed:
            for msg in o.violations:
                print(f"INVARIANT VIOLATION: {msg}", file=sys.stderr)
        print(
            f"{len(failed)}/{len(outcomes)} scenarios FAILED", file=sys.stderr
        )
        return 1
    print(
        "all scenarios converged bit-identically "
        "(merged cluster digests match the uninterrupted single server)"
    )
    return 0


def _cmd_supervise(args: argparse.Namespace) -> int:
    from .faults.plan import FaultPlan
    from .runtime import RunBudget, Supervisor

    if args.trace is not None:
        inst = _load(args)
    else:
        inst = poisson_zipf_instance(
            n=args.n,
            m=args.servers if args.servers is not None else args.m,
            cost=CostModel(mu=args.mu, lam=args.lam),
            origin=args.origin,
            rng=args.seed,
        )
    plan = None
    if args.crash_rate > 0 or args.loss > 0:
        plan = FaultPlan.generate(
            seed=args.seed,
            num_servers=inst.num_servers,
            start=float(inst.t[0]),
            end=float(inst.t[-1]),
            crash_rate=args.crash_rate,
            mean_outage=args.mean_outage,
            loss_rate=args.loss,
        )
    if args.resume and (args.snapshot is None or args.journal is None):
        print("error: --resume requires --snapshot and --journal", file=sys.stderr)
        return 2
    if plan is not None and args.policy != "sc-r":
        print(
            f"error: policy {args.policy!r} is not fault-aware; "
            f"use --policy sc-r with --crash-rate/--loss",
            file=sys.stderr,
        )
        return 2
    factory = _POLICIES[args.policy]
    supervisor = Supervisor(
        factory,
        inst,
        plan=plan,
        journal_path=args.journal,
        snapshot_path=args.snapshot,
        snapshot_every=args.snapshot_every,
    )
    budget = RunBudget(
        max_events=args.deadline_events, max_seconds=args.deadline_seconds
    )
    run = supervisor.resume(budget) if args.resume else supervisor.run(budget)
    res = run.result
    status = "COMPLETE" if run.completed else "PARTIAL"
    print(f"instance: {inst}")
    print(
        f"{status}: {run.events_delivered}/{run.events_total} events "
        f"(completion {run.completion_fraction:.1%}), "
        f"schedule valid up to t={run.last_time:.6g}"
    )
    print(f"policy {res.algorithm}: cost = {res.cost:.6g}")
    if plan is not None:
        print(
            f"  penalties = {res.penalty_cost:.6g}, "
            f"blackouts = {len(res.blackouts)}, "
            f"fault log = {len(res.fault_log)} entries"
        )
    if args.journal:
        print(f"  journal: {args.journal} ({run.last_seq + 1} records)")
    if args.snapshot:
        print(f"  snapshot: {args.snapshot}")
    if not run.completed:
        print(
            "deadline budget exhausted; resume with --resume "
            "(same --journal/--snapshot)",
        )
        return 3
    return 0


def _cmd_service(args: argparse.Namespace) -> int:
    import numpy as np

    from .analysis.tables import format_table
    from .service import MultiItemInstance, MultiItemOnlineService
    from .service import ServicePool, multi_item_workload, solve_offline_multi
    from .workloads.columnar import is_columnar
    from .workloads.traces import read_trace

    if args.pool == "persistent" and args.transport != "shm":
        print(
            "error: --pool persistent requires --transport shm",
            file=sys.stderr,
        )
        return 2
    cost = CostModel(mu=args.mu, lam=args.lam)
    if args.trace is not None:
        if is_columnar(args.trace):
            svc = MultiItemInstance.from_columnar(
                args.trace,
                num_servers=args.servers,
                cost=cost,
                origin=args.origin,
            )
        else:
            svc = MultiItemInstance.from_records(
                read_trace(args.trace),
                num_servers=args.servers,
                cost=cost,
                origin=args.origin,
            )
    else:
        svc = multi_item_workload(
            num_items=args.items,
            n_total=args.n,
            m=args.servers if args.servers is not None else args.m,
            item_zipf=args.item_zipf,
            cost=cost,
            rng=args.seed,
        )
    print(f"service: {svc}")
    pool = (
        ServicePool(args.processes)
        if args.pool == "persistent" and args.processes > 1
        else None
    )
    try:
        off = solve_offline_multi(
            svc,
            processes=args.processes,
            shards=args.shards,
            shard_strategy=args.shard_strategy,
            kernel=_dp_kernel(args.kernel),
            transport=args.transport,
            pool=pool,
        )
        online = None
        if args.policy is not None:
            online = MultiItemOnlineService(_POLICIES[args.policy]).run(
                svc,
                processes=args.processes,
                shards=args.shards,
                shard_strategy=args.shard_strategy,
                transport=args.transport,
                pool=pool,
                kernel=_online_kernel(args.kernel),
            )
        return _report_service(args, svc, off, online)
    finally:
        if pool is not None:
            pool.close()


def _report_service(args, svc, off, online) -> int:
    import numpy as np

    from .analysis.tables import format_table
    from .service import MultiItemOnlineService, solve_offline_multi

    if args.verify_serial and args.processes > 1:
        serial = solve_offline_multi(svc, kernel=_dp_kernel(args.kernel))
        same = list(serial.per_item) == list(off.per_item) and all(
            np.array_equal(serial.per_item[k].C, off.per_item[k].C)
            for k in serial.per_item
        )
        if online is not None:
            serial_on = MultiItemOnlineService(_POLICIES[args.policy]).run(
                svc, kernel=_online_kernel(args.kernel)
            )
            same = same and (
                serial_on.total_cost == online.total_cost
                and serial_on.counters() == online.counters()
                and list(serial_on.runs) == list(online.runs)
            )
        if not same:
            print(
                "VERIFICATION FAILED: parallel result differs from serial",
                file=sys.stderr,
            )
            return 1
        print(
            f"verified: {args.processes}-process sharded run is "
            f"bit-identical to serial"
        )
    breakdown = off.cost_breakdown()
    rows = [
        {
            "item": name,
            "requests": svc.items[name].n,
            "opt cost": c,
            **(
                {"online cost": online.runs[name].cost}
                if online is not None
                else {}
            ),
        }
        for name, c in list(breakdown.items())[: args.top]
    ]
    print(format_table(rows, precision=5))
    if len(breakdown) > args.top:
        print(f"  ... and {len(breakdown) - args.top} more items")
    print(
        f"off-line optimal total = {off.total_cost:.6g} "
        f"(lower bound {off.total_lower_bound:.6g})"
    )
    if online is not None:
        print(
            f"policy {args.policy}: total = {online.total_cost:.6g} "
            f"(ratio {online.total_cost / off.total_cost:.4f})"
        )
        for key, value in sorted(online.counters().items()):
            print(f"  {key}: {value}")
    return 0


def _parse_windows(spec: Optional[str]):
    """``"A:B,C:D"`` -> ``((A, B), (C, D))`` for NetworkFaultPlan windows."""
    if not spec:
        return ()
    windows = []
    for part in spec.split(","):
        lo, _, hi = part.partition(":")
        windows.append((float(lo), float(hi)))
    return tuple(windows)


def _plan_from_args(args: argparse.Namespace):
    from .faults.plan import NetworkFaultPlan

    return NetworkFaultPlan(
        seed=args.seed,
        latency=args.latency,
        jitter=args.jitter,
        reset_rate=args.reset_rate,
        torn_rate=args.torn_rate,
        dup_rate=args.dup_rate,
        reorder_rate=args.reorder_rate,
        reorder_hold=args.reorder_hold,
        blackhole_windows=_parse_windows(args.blackhole),
        partition_windows=_parse_windows(args.partition_window),
    )


def _cmd_proxy(args: argparse.Namespace) -> int:
    from .service.proxy import run_proxy

    return run_proxy(
        args.upstream_host,
        args.upstream_port,
        plan=_plan_from_args(args),
        host=args.host,
        port=args.port,
        meta_path=args.meta,
    )


def _cmd_serve(args: argparse.Namespace) -> int:
    from .service.server import ServerConfig, run_server

    if args.replicas > 1:
        return _cmd_serve_cluster(args)
    owned = None
    if args.owned_shards is not None:
        owned = tuple(
            int(s) for s in args.owned_shards.split(",") if s.strip() != ""
        )
    config = ServerConfig(
        host=args.host,
        port=args.port,
        shards=args.shards,
        num_servers=args.m,
        mu=args.mu,
        lam=args.lam,
        origin=args.origin,
        kernel=_dp_kernel(args.kernel),
        queue_depth=args.queue_depth,
        degrade_watermark=args.degrade_watermark,
        deadline_ms=args.deadline_ms,
        breaker_threshold=args.breaker_threshold,
        breaker_cooldown=args.breaker_cooldown,
        journal_dir=args.journal_dir,
        resume=args.resume,
        sync=not args.no_sync,
        pool_processes=args.pool_processes,
        owned_shards=owned,
        dedupe_window=args.dedupe_window,
        meta_name=args.meta_name,
    )
    return run_server(config)


def _cmd_serve_cluster(args: argparse.Namespace) -> int:
    from .faults.plan import NetworkFaultPlan
    from .service.cluster import ClusterConfig, run_cluster

    if args.journal_dir is None:
        print(
            "error: --replicas > 1 requires --journal-dir "
            "(the shared per-shard WALs are what failover resumes from)",
            file=sys.stderr,
        )
        return 2
    plan = None
    if args.proxy_seed is not None:
        plan = NetworkFaultPlan(seed=args.proxy_seed)
    config = ClusterConfig(
        journal_dir=args.journal_dir,
        replicas=args.replicas,
        shards=args.shards,
        num_servers=args.m,
        mu=args.mu,
        lam=args.lam,
        origin=args.origin,
        kernel=_dp_kernel(args.kernel),
        host=args.host,
        queue_depth=args.queue_depth,
        degrade_watermark=args.degrade_watermark,
        deadline_ms=args.deadline_ms,
        dedupe_window=args.dedupe_window,
        sync=not args.no_sync,
        proxy_plan=plan,
    )
    return run_cluster(config)


def _cmd_loadgen(args: argparse.Namespace) -> int:
    import json as _json

    from .service.loadgen import (
        events_from_trace,
        replay,
        replay_cluster,
        synthetic_events,
    )

    if args.cluster_map is None and args.port is None:
        print(
            "error: --port is required unless --cluster-map is given",
            file=sys.stderr,
        )
        return 2
    if args.trace is not None:
        events = events_from_trace(args.trace, limit=args.limit)
    else:
        events = synthetic_events(
            items=args.items, count=args.n, num_servers=args.m, seed=args.seed
        )
        if args.limit is not None:
            events = events[: args.limit]
    if args.cluster_map is not None:
        result = replay_cluster(
            args.cluster_map,
            events,
            concurrency=args.concurrency,
            retries=args.retries,
            connect_timeout=args.connect_timeout,
            read_timeout=args.read_timeout,
            hedge=args.hedge_ms / 1000.0 if args.hedge_ms else None,
        )
    else:
        result = replay(
            args.host,
            args.port,
            events,
            rate=args.rate,
            concurrency=args.concurrency,
            retries=args.retries,
            connect_timeout=args.connect_timeout,
            read_timeout=args.read_timeout,
        )
    report = result.to_dict()
    if args.cluster_map is not None:
        mode = "cluster closed-loop"
    elif args.rate:
        mode = f"open-loop @ {args.rate:g} req/s"
    else:
        mode = "closed-loop"
    print(
        f"{mode}: {report['sent']} events in {report['elapsed_s']:.2f}s "
        f"({report['achieved_rps']:.0f} req/s achieved)"
    )
    print(
        f"  accepted {report['accepted']}, shed {report['shed']} "
        f"({report['shed_rate']:.1%}), degraded {report['degraded']}, "
        f"duplicates {report['duplicates']}, give-ups {report['give_ups']}"
    )
    print(
        f"  latency p50 {report['p50_ms']:.2f} ms, "
        f"p90 {report['p90_ms']:.2f} ms, p99 {report['p99_ms']:.2f} ms"
    )
    if report["digest"] is not None:
        print(
            f"  server digest {report['digest']}, optimal cost "
            f"{report['optimal_cost']:.6g}, baseline "
            f"{report['baseline_cost']:.6g}"
        )
    if args.json is not None:
        with open(args.json, "w", encoding="utf-8") as fh:
            _json.dump(report, fh, indent=2)
            fh.write("\n")
        print(f"  report written to {args.json}")
    return 0 if report["give_ups"] == 0 else 1


def _cmd_convert(args: argparse.Namespace) -> int:
    import os

    from .workloads.columnar import convert_csv

    rows = convert_csv(args.src, args.dest, chunk_rows=args.chunk_rows)
    src_bytes = os.path.getsize(args.src)
    dest_bytes = os.path.getsize(args.dest)
    print(
        f"converted {rows} rows: {args.src} ({src_bytes} bytes) -> "
        f"{args.dest} ({dest_bytes} bytes, "
        f"{dest_bytes / max(src_bytes, 1):.2f}x)"
    )
    return 0


def _open_columnar(path: str) -> "object":
    """Open a columnar container, or columnarise a CSV trace in memory."""
    from .workloads.columnar import ColumnarTrace, is_columnar
    from .workloads.traces import read_trace

    if is_columnar(path):
        return ColumnarTrace.open(path)
    return ColumnarTrace.from_records(read_trace(path))


def _parse_window(spec: Optional[str]) -> Optional[tuple]:
    if spec is None:
        return None
    try:
        t0, t1 = spec.split(":", 1)
        return (float(t0), float(t1))
    except ValueError:
        raise ValueError(
            f"--window must look like T0:T1, got {spec!r}"
        ) from None


def _cmd_sample(args: argparse.Namespace) -> int:
    from .workloads.sampling import estimate_offline_cost, sample_columnar

    trace = _open_columnar(args.src)
    stats = sample_columnar(
        trace,
        args.dest,
        rate=args.rate,
        seed=args.seed,
        window=_parse_window(args.window),
        chunk_rows=args.chunk_rows,
    )
    print(
        f"sampled {args.src} -> {args.dest} at rate {stats.rate} "
        f"(seed {stats.seed}): kept {stats.rows_kept}/{stats.rows_in} rows "
        f"({stats.row_fraction:.2%}), {stats.items_kept}/{stats.items_in} "
        f"items"
    )
    if args.estimate:
        est = estimate_offline_cost(
            trace,
            rate=args.rate,
            seed=args.seed,
            cost=CostModel(mu=args.mu, lam=args.lam),
            origin=args.origin,
            confidence=args.confidence,
            top_exact=args.top_exact,
            kernel="batch" if args.kernel == "batch" else "auto",
            chunk_rows=args.chunk_rows,
        )
        print(
            f"estimated offline cost {est.estimate:.6g} "
            f"[{est.ci_lo:.6g}, {est.ci_hi:.6g}]@{est.confidence:.0%} "
            f"(solved {est.items_solved}/{est.items_total} items, "
            f"{est.solve_fraction:.2%} of rows)"
        )
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    import json as _json
    from pathlib import Path

    from .workloads.profiler import profile_trace

    stats = profile_trace(
        _open_columnar(args.trace),
        bins=args.bins,
        predictability_items=args.predictability_items,
        top_items=args.top,
    )
    # With JSON going to stdout, keep stdout pipe-parseable: the human
    # table would otherwise prefix the payload and break json.load.
    if args.json != "-":
        print(stats.describe(top=args.top))
    if args.json is not None:
        payload = _json.dumps(stats.to_dict(top=args.top), indent=2)
        if args.json == "-":
            print(payload)
        else:
            Path(args.json).write_text(payload + "\n")
            print(f"wrote {args.json}")
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    from .analysis.experiments import list_experiments, run_experiment

    if args.name is None:
        print("available experiments:")
        for name in list_experiments():
            print(f"  {name}")
        return 0
    try:
        print(run_experiment(args.name))
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2
    return 0


def _cmd_svg(args: argparse.Namespace) -> int:
    from .schedule.svg import write_svg

    inst = _load(args)
    res = solve_offline(inst, kernel=_dp_kernel(args.kernel))
    write_svg(
        res.schedule(),
        inst,
        args.out,
        width=args.width,
        title=f"optimal schedule, C(n) = {res.optimal_cost:.6g}",
    )
    print(f"wrote {args.out} (optimal cost {res.optimal_cost:.6g})")
    return 0


def _cmd_sensitivity(args: argparse.Namespace) -> int:
    import numpy as np

    from .analysis.tables import format_table
    from .offline.parametric import lambda_breakpoints, lambda_sensitivity

    inst = _load(args)
    grid = np.geomspace(args.lo, args.hi, args.points)
    points = lambda_sensitivity(inst, grid)
    rows = [
        {
            "lambda": p.lam,
            "optimal cost": p.optimal_cost,
            "transfers": p.transfers,
            "copy-time": p.copy_time,
        }
        for p in points
    ]
    print(format_table(rows, precision=5, title=f"instance: {inst}"))
    bps = lambda_breakpoints(inst, args.lo, args.hi)
    if bps:
        print("structure breakpoints at lambda ≈ " + ", ".join(f"{b:.4g}" for b in bps))
    else:
        print("no structure change in this lambda range")
    return 0


_DISPATCH = {
    "solve": _cmd_solve,
    "online": _cmd_online,
    "compare": _cmd_compare,
    "generate": _cmd_generate,
    "paper": _cmd_paper,
    "chaos": _cmd_chaos,
    "supervise": _cmd_supervise,
    "service": _cmd_service,
    "serve": _cmd_serve,
    "proxy": _cmd_proxy,
    "loadgen": _cmd_loadgen,
    "convert": _cmd_convert,
    "sample": _cmd_sample,
    "profile": _cmd_profile,
    "experiment": _cmd_experiment,
    "svg": _cmd_svg,
    "sensitivity": _cmd_sensitivity,
}


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    try:
        return _DISPATCH[args.command](args)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
