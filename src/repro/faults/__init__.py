"""Fault injection: deterministic crash/loss scenarios for online runs.

* :class:`FaultPlan` / :class:`Outage` / :class:`FaultEvent` — the
  declarative, seeded fault scenario (who fails, when, how badly).
* :class:`FaultContext` — the per-run mutable side: liveness view,
  attempt draws, penalty ledger, fault log.
* :class:`FaultyRunResult` — an online run result extended with the
  blackout/penalty ledger.
* :mod:`repro.faults.chaos` — the seeded chaos-sweep harness (imported
  as a submodule to keep the dependency graph acyclic).

Entry point: :func:`repro.sim.engine.run_online_faulty`.
"""

from .injector import FaultContext, FaultyRunResult
from .plan import FaultEvent, FaultPlan, NetworkFaultPlan, Outage, Perturbation

__all__ = [
    "FaultContext",
    "FaultEvent",
    "FaultPlan",
    "FaultyRunResult",
    "NetworkFaultPlan",
    "Outage",
    "Perturbation",
]
