"""Runtime fault injection: attempt draws, penalty ledger, event log.

A :class:`FaultContext` is created per run by
:func:`repro.sim.engine.run_online_faulty` and handed to the algorithm
before ``begin``.  It owns everything mutable about a faulty run:

* the *liveness view* — which servers are currently up, updated by the
  engine as it delivers crash/recover events in time order;
* the seeded attempt stream — every transfer attempt draws loss/slowness
  from one ``random.Random(plan.seed)`` sequence, so a fixed plan replayed
  over a fixed instance is bit-identical;
* the *fault log* — a flat list of tuples recording every delivered
  fault event and every transfer attempt outcome (the determinism
  oracle of the chaos suite compares these wholesale);
* the penalty ledger — graceful-degradation charges (blackout re-seeds,
  dropped requests) accounted separately from the schedule cost ``Π``;
* the retry-latency ledger — emulator-style milliseconds accrued by
  backoff between retries and by slow transfers.

The context never mutates algorithm state; algorithms query it
(``is_up``, ``transfer_with_retries``) and report to it (``charge``,
``note_reseed``).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..emulator.latency import LatencyModel
from ..sim.recorder import OnlineRunResult
from .plan import FaultPlan

__all__ = ["FaultContext", "FaultyRunResult"]


class FaultContext:
    """Mutable runtime state of one fault-injected run."""

    def __init__(
        self,
        plan: FaultPlan,
        num_servers: int,
        latency: Optional[LatencyModel] = None,
    ):
        self.plan = plan
        self.num_servers = num_servers
        self.latency = latency if latency is not None else LatencyModel()
        self._rng = random.Random(plan.seed)
        self._down: set = set()
        self.log: List[tuple] = []
        self.penalties: Dict[str, float] = {}
        self.retry_latency: float = 0.0
        self.reseeds: List[Tuple[float, int]] = []
        self._blackout_start: Optional[float] = None
        self.blackouts: List[Tuple[float, float]] = []

    # -- liveness (engine-updated) ---------------------------------------------

    def mark_down(self, server: int, t: float) -> None:
        """Engine hook: ``server`` crashed at ``t``."""
        self._down.add(server)
        self.log.append(("crash", t, server))

    def mark_up(self, server: int, t: float) -> None:
        """Engine hook: ``server`` recovered at ``t``."""
        self._down.discard(server)
        self.log.append(("recover", t, server))

    def is_up(self, server: int) -> bool:
        """True iff ``server`` is currently live."""
        return server not in self._down

    def up_servers(self) -> List[int]:
        """Sorted ids of currently-live servers."""
        return [s for s in range(self.num_servers) if s not in self._down]

    # -- introspection ----------------------------------------------------------

    def state_summary(self) -> dict:
        """Canonical plain-data view of the run's fault state for digests.

        The RNG state is included verbatim (as the tuple from
        ``random.Random.getstate()`` flattened to lists): a resumed run
        that restored everything *except* the attempt stream would agree
        on every other field and still diverge at the next loss draw, so
        the digest must see it.
        """
        version, internal, gauss = self._rng.getstate()
        return {
            "rng": [version, list(internal), gauss],
            "down": sorted(self._down),
            "log": [list(entry) for entry in self.log],
            "penalties": dict(self.penalties),
            "retry_latency": self.retry_latency,
            "reseeds": [list(r) for r in self.reseeds],
            "blackouts": [list(b) for b in self.blackouts],
            "blackout_open": self._blackout_start,
        }

    # -- transfer attempts ----------------------------------------------------------

    def transfer_with_retries(
        self,
        src: int,
        dst: int,
        t: float,
        retries: int = 0,
        need_dst_up: bool = True,
    ) -> bool:
        """Attempt ``src -> dst`` at ``t``, redrawing up to ``retries`` times.

        Infrastructure failures (a down endpoint) fail immediately —
        retrying a dead endpoint at the same instant cannot help.  Remote
        reads pass ``need_dst_up=False``: the user at a crashed edge
        server fetches from the source directly, so only the source must
        be live.  Random loss is redrawn per attempt; each retry accrues
        exponential backoff in the latency ledger.  Returns True on
        success.
        """
        if not self.is_up(src) or (need_dst_up and not self.is_up(dst)):
            self.log.append(("xfer-down", t, src, dst, 1))
            return False
        for attempt in range(1, retries + 2):
            lost = (
                self.plan.loss_rate > 0.0
                and self._rng.random() < self.plan.loss_rate
            )
            if lost:
                self.log.append(("xfer-lost", t, src, dst, attempt))
                self.retry_latency += self.latency.retry_backoff(attempt)
                continue
            if (
                self.plan.slow_rate > 0.0
                and self._rng.random() < self.plan.slow_rate
            ):
                self.retry_latency += self.plan.slow_latency
                self.log.append(("xfer-slow", t, src, dst, attempt))
            else:
                self.log.append(("xfer-ok", t, src, dst, attempt))
            return True
        return False

    # -- degradation accounting ------------------------------------------------------

    def charge(self, kind: str, amount: float) -> None:
        """Add a graceful-degradation penalty to the ledger."""
        self.penalties[kind] = self.penalties.get(kind, 0.0) + amount

    @property
    def penalty_cost(self) -> float:
        """Total accounted penalty across all kinds."""
        return sum(self.penalties.values())

    def note_reseed(self, t: float, server: int) -> None:
        """Record a blackout re-seed (copy conjured from the origin store)."""
        self.reseeds.append((t, server))
        self.log.append(("reseed", t, server))

    def note_drop(self, t: float, server: int) -> None:
        """Record a request dropped for lack of any reachable copy."""
        self.log.append(("drop", t, server))

    # -- blackout observation (engine-driven) ------------------------------------------

    def observe_copies(self, live_copies: int, t: float) -> None:
        """Engine hook after each delivered event/request.

        Tracks contiguous zero-copy periods as they are *observed*;
        hand-over-hand repairs inside an event handler (crash → re-seed at
        the same instant) never surface here, which is exactly the point:
        blackout is the observable outage, not the transient.
        """
        if live_copies == 0 and self._blackout_start is None:
            self._blackout_start = t
        elif live_copies > 0 and self._blackout_start is not None:
            self.blackouts.append((self._blackout_start, t))
            self.log.append(("blackout", self._blackout_start, t))
            self._blackout_start = None

    def close(self, t_end: float) -> None:
        """Finish observation at the horizon (close an open blackout)."""
        if self._blackout_start is not None:
            self.blackouts.append((self._blackout_start, t_end))
            self.log.append(("blackout", self._blackout_start, t_end))
            self._blackout_start = None


@dataclass
class FaultyRunResult(OnlineRunResult):
    """Outcome of a fault-injected online run.

    Extends :class:`~repro.sim.recorder.OnlineRunResult` with the fault
    ledger.  ``cost`` remains the schedule cost ``Π``; the end-to-end
    figure a resilience comparison should use is :attr:`total_cost`,
    which adds the accounted degradation penalties.
    """

    blackouts: List[Tuple[float, float]] = field(default_factory=list)
    reseeds: List[Tuple[float, int]] = field(default_factory=list)
    penalties: Dict[str, float] = field(default_factory=dict)
    fault_log: List[tuple] = field(default_factory=list)
    retry_latency: float = 0.0

    @property
    def penalty_cost(self) -> float:
        """Sum of the degradation penalty ledger."""
        return sum(self.penalties.values())

    @property
    def total_cost(self) -> float:
        """Schedule cost plus accounted degradation penalties."""
        return self.cost + self.penalty_cost

    def allowed_gaps(self) -> List[Tuple[float, float]]:
        """Coverage exemptions for the schedule validator.

        Blackout windows excuse missing coverage; re-seed instants are
        zero-width exemptions that re-ground custody chains (a re-seeded
        interval starts with no incoming transfer).
        """
        gaps = list(self.blackouts)
        gaps.extend((t, t) for t, _ in self.reseeds)
        return sorted(gaps)

    def __repr__(self) -> str:
        return (
            f"FaultyRunResult(algorithm={self.algorithm!r}, "
            f"cost={self.cost:.6g}, penalty={self.penalty_cost:.6g}, "
            f"transfers={self.num_transfers}, blackouts={len(self.blackouts)})"
        )
