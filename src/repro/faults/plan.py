"""Deterministic fault plans: who fails, when, and how badly.

The paper's model (Section III) assumes servers never fail and every
transfer ``Tr(s_j, s_k, t)`` succeeds instantaneously.  A
:class:`FaultPlan` is the counterfactual: a *fixed, seeded* schedule of
server outage windows plus per-transfer loss/slowness rates.  Plans are
plain data — they carry no clock and no mutable state — so the same plan
replayed twice produces byte-identical fault event streams; the runtime
side (attempt draws, retry latency, penalty ledger) lives in
:class:`~repro.faults.injector.FaultContext`.

Conventions
-----------
* An outage ``[start, end)`` is half-open: the server is down at
  ``start`` and up again at ``end`` (the recovery instant).
* Overlapping or touching outages on one server are merged at
  construction, so ``events()`` always emits alternating crash/recover
  pairs per server.
* At equal times, recoveries sort before crashes — a replica target that
  comes back at the same instant another server dies is usable
  immediately.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "Outage",
    "FaultEvent",
    "FaultPlan",
    "NetworkFaultPlan",
    "Perturbation",
]


@dataclass(frozen=True, order=True)
class Outage:
    """One crash/recovery window ``[start, end)`` on one server."""

    server: int
    start: float
    end: float

    def __post_init__(self) -> None:
        if self.server < 0:
            raise ValueError(f"server id must be non-negative, got {self.server}")
        if not self.end >= self.start:
            raise ValueError(
                f"outage end {self.end} precedes start {self.start} "
                f"on server {self.server}"
            )

    def covers(self, t: float) -> bool:
        """True iff the server is down at instant ``t`` (half-open)."""
        return self.start <= t < self.end


@dataclass(frozen=True)
class FaultEvent:
    """A delivered fault occurrence (``kind`` is "crash" or "recover")."""

    time: float
    kind: str
    server: int

    #: Sort key: recoveries before crashes at equal instants.
    _KIND_ORDER = {"recover": 0, "crash": 1}

    def sort_key(self) -> Tuple[float, int, int]:
        return (self.time, self._KIND_ORDER.get(self.kind, 2), self.server)


def _merge_outages(outages: Iterable[Outage]) -> Tuple[Outage, ...]:
    """Merge overlapping/touching windows per server; sorted output."""
    per_server: Dict[int, List[Outage]] = {}
    for o in sorted(outages, key=lambda o: (o.server, o.start, o.end)):
        bucket = per_server.setdefault(o.server, [])
        if bucket and o.start <= bucket[-1].end:
            if o.end > bucket[-1].end:
                bucket[-1] = Outage(o.server, bucket[-1].start, o.end)
        else:
            bucket.append(o)
    merged: List[Outage] = []
    for server in sorted(per_server):
        merged.extend(per_server[server])
    return tuple(merged)


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic fault scenario.

    Parameters
    ----------
    outages:
        Server crash/recovery windows (merged per server on construction).
    loss_rate:
        Probability in ``[0, 1)`` that any single transfer *attempt* is
        lost (the caller may retry; each attempt redraws).
    slow_rate, slow_latency:
        Probability that a successful attempt is slow, and the extra
        latency it then accrues in the context's latency ledger.
    seed:
        Seed of the attempt-draw stream (loss/slow decisions).  Two runs
        of the same plan over the same instance are bit-identical.
    """

    outages: Tuple[Outage, ...] = ()
    loss_rate: float = 0.0
    slow_rate: float = 0.0
    slow_latency: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.loss_rate < 1.0:
            raise ValueError(f"loss_rate must lie in [0, 1), got {self.loss_rate}")
        if not 0.0 <= self.slow_rate <= 1.0:
            raise ValueError(f"slow_rate must lie in [0, 1], got {self.slow_rate}")
        if self.slow_latency < 0:
            raise ValueError(f"slow_latency must be non-negative")
        object.__setattr__(
            self, "outages", _merge_outages(self.outages)
        )

    # -- queries ----------------------------------------------------------------

    @property
    def empty(self) -> bool:
        """True iff the plan injects nothing at all."""
        return (
            not self.outages and self.loss_rate == 0.0 and self.slow_rate == 0.0
        )

    def is_up(self, server: int, t: float) -> bool:
        """True iff ``server`` is outside every outage window at ``t``."""
        return not any(o.server == server and o.covers(t) for o in self.outages)

    def outages_on(self, server: int) -> List[Outage]:
        """Merged outage windows for one server, sorted by start."""
        return [o for o in self.outages if o.server == server]

    def events(
        self, start: Optional[float] = None, end: Optional[float] = None
    ) -> List[FaultEvent]:
        """Crash/recover events clipped to ``[start, end]``, delivery order.

        An outage straddling ``start`` emits its crash at ``start`` (the
        engine delivers it before the first request); an outage running
        past ``end`` emits no recovery (the run finishes with the server
        down).  Zero-width clipped windows are dropped.
        """
        out: List[FaultEvent] = []
        for o in self.outages:
            s = o.start if start is None else max(o.start, start)
            e = o.end
            if end is not None and s > end:
                continue
            if e <= s:
                continue
            out.append(FaultEvent(s, "crash", o.server))
            if end is None or e <= end:
                out.append(FaultEvent(e, "recover", o.server))
        return sorted(out, key=FaultEvent.sort_key)

    def down_intervals_all(
        self, num_servers: int, start: float, end: float
    ) -> List[Tuple[float, float]]:
        """Sub-intervals of ``[start, end]`` where *every* server is down.

        These are the only windows in which a resilient policy is
        physically unable to keep a copy anywhere — the expected location
        of nonzero-width blackouts.
        """
        per = []
        for j in range(num_servers):
            spans = [
                (max(o.start, start), min(o.end, end))
                for o in self.outages_on(j)
            ]
            per.append([(a, b) for a, b in spans if b > a])
        if not per or any(not spans for spans in per):
            return []
        # Intersect server 0's down-spans with each subsequent server's.
        acc = per[0]
        for spans in per[1:]:
            nxt: List[Tuple[float, float]] = []
            for a1, b1 in acc:
                for a2, b2 in spans:
                    lo, hi = max(a1, a2), min(b1, b2)
                    if hi > lo:
                        nxt.append((lo, hi))
            acc = nxt
            if not acc:
                break
        return sorted(acc)

    # -- generation ----------------------------------------------------------------

    @classmethod
    def generate(
        cls,
        seed: int,
        num_servers: int,
        start: float,
        end: float,
        crash_rate: float = 1.0,
        mean_outage: float = 0.05,
        loss_rate: float = 0.0,
        slow_rate: float = 0.0,
        slow_latency: float = 0.0,
        spare_server: Optional[int] = None,
    ) -> "FaultPlan":
        """Draw a random-but-reproducible plan over horizon ``[start, end]``.

        Parameters
        ----------
        crash_rate:
            Expected number of outages *per server* over the horizon
            (Poisson count per server).
        mean_outage:
            Mean outage duration as a *fraction* of the horizon
            (exponential draw).
        spare_server:
            Optionally keep one server outage-free — handy for scenarios
            that must never reach a full cluster blackout.
        """
        if end <= start:
            raise ValueError(f"empty horizon [{start}, {end}]")
        rng = np.random.default_rng(seed)
        horizon = end - start
        outages: List[Outage] = []
        for server in range(num_servers):
            if server == spare_server:
                continue
            count = int(rng.poisson(crash_rate))
            for _ in range(count):
                s = start + float(rng.uniform(0.0, horizon))
                d = float(rng.exponential(mean_outage * horizon))
                outages.append(Outage(server, s, min(s + d, end)))
        return cls(
            outages=tuple(outages),
            loss_rate=loss_rate,
            slow_rate=slow_rate,
            slow_latency=slow_latency,
            seed=seed,
        )

    def describe(self) -> str:
        """Human-readable multi-line listing."""
        lines = [
            f"FaultPlan(seed={self.seed}, loss_rate={self.loss_rate:g}, "
            f"slow_rate={self.slow_rate:g}, outages={len(self.outages)})"
        ]
        for o in self.outages:
            lines.append(f"  down s{o.server}: [{o.start:.4g}, {o.end:.4g})")
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# Wire-level fault plans (the ChaosProxy's schedule).
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Perturbation:
    """What the proxy does to one relayed message (one request/response).

    All fields are drawn deterministically from the plan seed and the
    ``(connection, message)`` coordinates, never from wall clock — the
    same plan replayed over the same traffic applies the byte-identical
    perturbation sequence.
    """

    #: Seconds to hold the request before forwarding it upstream.
    delay: float = 0.0
    #: Forward the request upstream twice (the server's dedupe path must
    #: absorb the second copy; the proxy discards the extra response).
    duplicate: bool = False
    #: Abort the client connection after relaying this fraction of the
    #: response bytes (``None`` = no reset).
    reset_frac: Optional[float] = None
    #: Torn-write fragment size in bytes (``None`` = single write).
    fragment: Optional[int] = None
    #: Extra seconds to hold the *response* before relaying it — under
    #: concurrent connections this reorders completions.
    hold: float = 0.0

    @property
    def clean(self) -> bool:
        return (
            self.delay == 0.0
            and not self.duplicate
            and self.reset_frac is None
            and self.fragment is None
            and self.hold == 0.0
        )


def _check_windows(windows, name: str) -> Tuple[Tuple[float, float], ...]:
    out = []
    for w in windows:
        a, b = float(w[0]), float(w[1])
        if b < a or a < 0.0:
            raise ValueError(f"bad {name} window [{a}, {b}]")
        out.append((a, b))
    return tuple(sorted(out))


@dataclass(frozen=True)
class NetworkFaultPlan:
    """A deterministic wire-level fault scenario for a chaos proxy.

    Like :class:`FaultPlan`, this is plain data with no clock and no
    mutable state: :meth:`perturbation` is a pure function of
    ``(seed, connection, message)``, so two proxies driven by equal
    plans over the same traffic inject byte-identical perturbation
    sequences (property-tested in ``tests/service/test_proxy.py``).

    Rates are per *message* (one HTTP request/response round trip);
    window schedules are expressed in seconds of proxy uptime and are
    OR-ed with the proxy's manual :attr:`~ChaosProxy.partition` /
    :attr:`~ChaosProxy.blackhole` switches.
    """

    seed: int = 0
    #: Base one-way forwarding latency (seconds) added to every request.
    latency: float = 0.0
    #: Max extra uniform jitter (seconds) on top of :attr:`latency`.
    jitter: float = 0.0
    #: Probability the client connection is reset mid-response.
    reset_rate: float = 0.0
    #: Probability the response is relayed in byte-level fragments.
    torn_rate: float = 0.0
    #: Probability the request is forwarded upstream twice.
    dup_rate: float = 0.0
    #: Probability the response is held :attr:`reorder_hold` seconds.
    reorder_rate: float = 0.0
    #: Hold duration (seconds) for reordered responses.
    reorder_hold: float = 0.0
    #: Uptime windows during which accepted requests stall (black-hole).
    blackhole_windows: Tuple[Tuple[float, float], ...] = ()
    #: Uptime windows during which the proxy drops every connection.
    partition_windows: Tuple[Tuple[float, float], ...] = ()

    def __post_init__(self) -> None:
        for name in ("reset_rate", "torn_rate", "dup_rate", "reorder_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must lie in [0, 1], got {rate}")
        for name in ("latency", "jitter", "reorder_hold"):
            value = getattr(self, name)
            if value < 0.0:
                raise ValueError(f"{name} must be non-negative, got {value}")
        object.__setattr__(
            self,
            "blackhole_windows",
            _check_windows(self.blackhole_windows, "blackhole"),
        )
        object.__setattr__(
            self,
            "partition_windows",
            _check_windows(self.partition_windows, "partition"),
        )

    @property
    def passthrough(self) -> bool:
        """True iff the plan perturbs nothing (byte-transparent relay)."""
        return (
            self.latency == 0.0
            and self.jitter == 0.0
            and self.reset_rate == 0.0
            and self.torn_rate == 0.0
            and self.dup_rate == 0.0
            and self.reorder_rate == 0.0
            and not self.blackhole_windows
            and not self.partition_windows
        )

    def partition_at(self, uptime: float) -> bool:
        """True iff a scheduled partition window covers ``uptime``."""
        return any(a <= uptime < b for a, b in self.partition_windows)

    def blackhole_at(self, uptime: float) -> bool:
        """True iff a scheduled black-hole window covers ``uptime``."""
        return any(a <= uptime < b for a, b in self.blackhole_windows)

    def perturbation(self, conn: int, msg: int) -> Perturbation:
        """The perturbation applied to message ``msg`` of connection
        ``conn`` — a pure function of ``(seed, conn, msg)``.

        Every draw happens unconditionally and in a fixed order, so the
        schedule of any one fault axis is independent of the rates of
        the others (raising ``dup_rate`` never shifts which messages
        get reset).
        """
        if conn < 0 or msg < 0:
            raise ValueError(f"negative message coordinates ({conn}, {msg})")
        rng = np.random.default_rng([abs(self.seed), conn, msg])
        u_jitter = float(rng.random())
        u_dup = float(rng.random())
        u_reset = float(rng.random())
        reset_frac = float(rng.random())
        u_torn = float(rng.random())
        fragment = int(rng.integers(1, 9))
        u_hold = float(rng.random())
        delay = self.latency + self.jitter * u_jitter
        return Perturbation(
            delay=delay if delay > 0.0 else 0.0,
            duplicate=u_dup < self.dup_rate,
            reset_frac=reset_frac if u_reset < self.reset_rate else None,
            fragment=fragment if u_torn < self.torn_rate else None,
            hold=self.reorder_hold if u_hold < self.reorder_rate else 0.0,
        )

    def schedule(self, conns: int, msgs: int) -> List[Perturbation]:
        """The flat perturbation schedule over a ``conns × msgs`` grid
        (row-major) — the replayable object two equal plans must agree
        on byte for byte."""
        return [
            self.perturbation(c, k) for c in range(conns) for k in range(msgs)
        ]

    def describe(self) -> str:
        """Human-readable one-liner."""
        return (
            f"NetworkFaultPlan(seed={self.seed}, latency={self.latency:g}"
            f"+{self.jitter:g}j, reset={self.reset_rate:g}, "
            f"torn={self.torn_rate:g}, dup={self.dup_rate:g}, "
            f"reorder={self.reorder_rate:g}, "
            f"blackholes={len(self.blackhole_windows)}, "
            f"partitions={len(self.partition_windows)})"
        )
