"""Deterministic fault plans: who fails, when, and how badly.

The paper's model (Section III) assumes servers never fail and every
transfer ``Tr(s_j, s_k, t)`` succeeds instantaneously.  A
:class:`FaultPlan` is the counterfactual: a *fixed, seeded* schedule of
server outage windows plus per-transfer loss/slowness rates.  Plans are
plain data — they carry no clock and no mutable state — so the same plan
replayed twice produces byte-identical fault event streams; the runtime
side (attempt draws, retry latency, penalty ledger) lives in
:class:`~repro.faults.injector.FaultContext`.

Conventions
-----------
* An outage ``[start, end)`` is half-open: the server is down at
  ``start`` and up again at ``end`` (the recovery instant).
* Overlapping or touching outages on one server are merged at
  construction, so ``events()`` always emits alternating crash/recover
  pairs per server.
* At equal times, recoveries sort before crashes — a replica target that
  comes back at the same instant another server dies is usable
  immediately.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["Outage", "FaultEvent", "FaultPlan"]


@dataclass(frozen=True, order=True)
class Outage:
    """One crash/recovery window ``[start, end)`` on one server."""

    server: int
    start: float
    end: float

    def __post_init__(self) -> None:
        if self.server < 0:
            raise ValueError(f"server id must be non-negative, got {self.server}")
        if not self.end >= self.start:
            raise ValueError(
                f"outage end {self.end} precedes start {self.start} "
                f"on server {self.server}"
            )

    def covers(self, t: float) -> bool:
        """True iff the server is down at instant ``t`` (half-open)."""
        return self.start <= t < self.end


@dataclass(frozen=True)
class FaultEvent:
    """A delivered fault occurrence (``kind`` is "crash" or "recover")."""

    time: float
    kind: str
    server: int

    #: Sort key: recoveries before crashes at equal instants.
    _KIND_ORDER = {"recover": 0, "crash": 1}

    def sort_key(self) -> Tuple[float, int, int]:
        return (self.time, self._KIND_ORDER.get(self.kind, 2), self.server)


def _merge_outages(outages: Iterable[Outage]) -> Tuple[Outage, ...]:
    """Merge overlapping/touching windows per server; sorted output."""
    per_server: Dict[int, List[Outage]] = {}
    for o in sorted(outages, key=lambda o: (o.server, o.start, o.end)):
        bucket = per_server.setdefault(o.server, [])
        if bucket and o.start <= bucket[-1].end:
            if o.end > bucket[-1].end:
                bucket[-1] = Outage(o.server, bucket[-1].start, o.end)
        else:
            bucket.append(o)
    merged: List[Outage] = []
    for server in sorted(per_server):
        merged.extend(per_server[server])
    return tuple(merged)


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic fault scenario.

    Parameters
    ----------
    outages:
        Server crash/recovery windows (merged per server on construction).
    loss_rate:
        Probability in ``[0, 1)`` that any single transfer *attempt* is
        lost (the caller may retry; each attempt redraws).
    slow_rate, slow_latency:
        Probability that a successful attempt is slow, and the extra
        latency it then accrues in the context's latency ledger.
    seed:
        Seed of the attempt-draw stream (loss/slow decisions).  Two runs
        of the same plan over the same instance are bit-identical.
    """

    outages: Tuple[Outage, ...] = ()
    loss_rate: float = 0.0
    slow_rate: float = 0.0
    slow_latency: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.loss_rate < 1.0:
            raise ValueError(f"loss_rate must lie in [0, 1), got {self.loss_rate}")
        if not 0.0 <= self.slow_rate <= 1.0:
            raise ValueError(f"slow_rate must lie in [0, 1], got {self.slow_rate}")
        if self.slow_latency < 0:
            raise ValueError(f"slow_latency must be non-negative")
        object.__setattr__(
            self, "outages", _merge_outages(self.outages)
        )

    # -- queries ----------------------------------------------------------------

    @property
    def empty(self) -> bool:
        """True iff the plan injects nothing at all."""
        return (
            not self.outages and self.loss_rate == 0.0 and self.slow_rate == 0.0
        )

    def is_up(self, server: int, t: float) -> bool:
        """True iff ``server`` is outside every outage window at ``t``."""
        return not any(o.server == server and o.covers(t) for o in self.outages)

    def outages_on(self, server: int) -> List[Outage]:
        """Merged outage windows for one server, sorted by start."""
        return [o for o in self.outages if o.server == server]

    def events(
        self, start: Optional[float] = None, end: Optional[float] = None
    ) -> List[FaultEvent]:
        """Crash/recover events clipped to ``[start, end]``, delivery order.

        An outage straddling ``start`` emits its crash at ``start`` (the
        engine delivers it before the first request); an outage running
        past ``end`` emits no recovery (the run finishes with the server
        down).  Zero-width clipped windows are dropped.
        """
        out: List[FaultEvent] = []
        for o in self.outages:
            s = o.start if start is None else max(o.start, start)
            e = o.end
            if end is not None and s > end:
                continue
            if e <= s:
                continue
            out.append(FaultEvent(s, "crash", o.server))
            if end is None or e <= end:
                out.append(FaultEvent(e, "recover", o.server))
        return sorted(out, key=FaultEvent.sort_key)

    def down_intervals_all(
        self, num_servers: int, start: float, end: float
    ) -> List[Tuple[float, float]]:
        """Sub-intervals of ``[start, end]`` where *every* server is down.

        These are the only windows in which a resilient policy is
        physically unable to keep a copy anywhere — the expected location
        of nonzero-width blackouts.
        """
        per = []
        for j in range(num_servers):
            spans = [
                (max(o.start, start), min(o.end, end))
                for o in self.outages_on(j)
            ]
            per.append([(a, b) for a, b in spans if b > a])
        if not per or any(not spans for spans in per):
            return []
        # Intersect server 0's down-spans with each subsequent server's.
        acc = per[0]
        for spans in per[1:]:
            nxt: List[Tuple[float, float]] = []
            for a1, b1 in acc:
                for a2, b2 in spans:
                    lo, hi = max(a1, a2), min(b1, b2)
                    if hi > lo:
                        nxt.append((lo, hi))
            acc = nxt
            if not acc:
                break
        return sorted(acc)

    # -- generation ----------------------------------------------------------------

    @classmethod
    def generate(
        cls,
        seed: int,
        num_servers: int,
        start: float,
        end: float,
        crash_rate: float = 1.0,
        mean_outage: float = 0.05,
        loss_rate: float = 0.0,
        slow_rate: float = 0.0,
        slow_latency: float = 0.0,
        spare_server: Optional[int] = None,
    ) -> "FaultPlan":
        """Draw a random-but-reproducible plan over horizon ``[start, end]``.

        Parameters
        ----------
        crash_rate:
            Expected number of outages *per server* over the horizon
            (Poisson count per server).
        mean_outage:
            Mean outage duration as a *fraction* of the horizon
            (exponential draw).
        spare_server:
            Optionally keep one server outage-free — handy for scenarios
            that must never reach a full cluster blackout.
        """
        if end <= start:
            raise ValueError(f"empty horizon [{start}, {end}]")
        rng = np.random.default_rng(seed)
        horizon = end - start
        outages: List[Outage] = []
        for server in range(num_servers):
            if server == spare_server:
                continue
            count = int(rng.poisson(crash_rate))
            for _ in range(count):
                s = start + float(rng.uniform(0.0, horizon))
                d = float(rng.exponential(mean_outage * horizon))
                outages.append(Outage(server, s, min(s + d, end)))
        return cls(
            outages=tuple(outages),
            loss_rate=loss_rate,
            slow_rate=slow_rate,
            slow_latency=slow_latency,
            seed=seed,
        )

    def describe(self) -> str:
        """Human-readable multi-line listing."""
        lines = [
            f"FaultPlan(seed={self.seed}, loss_rate={self.loss_rate:g}, "
            f"slow_rate={self.slow_rate:g}, outages={len(self.outages)})"
        ]
        for o in self.outages:
            lines.append(f"  down s{o.server}: [{o.start:.4g}, {o.end:.4g})")
        return "\n".join(lines)
