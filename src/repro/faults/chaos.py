"""Chaos harness: seeded fault-scenario sweeps with invariant checks.

The harness generates a family of deterministic
:class:`~repro.faults.plan.FaultPlan` scenarios from a base seed, drives
a fault-aware policy through each, and checks the resilience invariants
a serving stack actually cares about:

* **Determinism** — re-running a scenario yields a bit-identical result
  and fault log (``same seed ⇒ same everything``).
* **Exact accounting** — the reported schedule cost equals the realised
  schedule's cost under the instance's cost model, and the penalty
  ledger equals (reseeds × reseed cost + drops × drop cost).
* **Bounded recovery** — nonzero-width blackouts happen only while
  *every* server is down, and coverage is restored no later than the
  first recovery that follows (the re-seed path is prompt).
* **Feasibility modulo blackouts** — the realised schedule validates
  against the instance once the observed blackout windows are declared.

``run_chaos_suite`` raises :class:`ChaosInvariantError` on the first
violation, naming the seed so the scenario can be replayed exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from ..core.instance import ProblemInstance
from ..core.types import InvalidScheduleError
from ..online.base import OnlineAlgorithm
from ..schedule.validate import validate_schedule
from ..sim.engine import run_online_faulty
from .injector import FaultyRunResult
from .plan import FaultPlan

__all__ = [
    "ChaosInvariantError",
    "ChaosOutcome",
    "chaos_report",
    "run_chaos_suite",
    "scenario_plans",
]

#: Time tolerance when matching blackout edges to plan events.
_TOL = 1e-9


class ChaosInvariantError(AssertionError):
    """A chaos invariant failed; the message names the scenario seed."""


@dataclass
class ChaosOutcome:
    """Per-scenario summary collected by :func:`run_chaos_suite`."""

    seed: int
    result: FaultyRunResult
    crashes: int
    cost: float
    penalty: float
    total_cost: float
    blackouts: int
    blackout_time: float
    dropped: int
    reseeds: int

    def row(self) -> dict:
        """Table row for :func:`chaos_report`."""
        return {
            "seed": self.seed,
            "crashes": self.crashes,
            "cost": self.cost,
            "penalty": self.penalty,
            "total": self.total_cost,
            "blackouts": self.blackouts,
            "blackout-time": self.blackout_time,
            "dropped": self.dropped,
            "reseeds": self.reseeds,
        }


def scenario_plans(
    instance: ProblemInstance,
    scenarios: int,
    base_seed: int = 0,
    crash_rate: float = 1.0,
    mean_outage: float = 0.05,
    loss_rate: float = 0.05,
    spare_server: Optional[int] = None,
) -> List[FaultPlan]:
    """One deterministic plan per scenario seed ``base_seed + i``."""
    t0, tn = float(instance.t[0]), float(instance.t[-1])
    return [
        FaultPlan.generate(
            seed=base_seed + i,
            num_servers=instance.num_servers,
            start=t0,
            end=tn,
            crash_rate=crash_rate,
            mean_outage=mean_outage,
            loss_rate=loss_rate,
            spare_server=spare_server,
        )
        for i in range(scenarios)
    ]


def _results_equal(a: FaultyRunResult, b: FaultyRunResult) -> bool:
    return (
        a.cost == b.cost
        and a.counters == b.counters
        and a.schedule == b.schedule
        and a.transfers == b.transfers
        and a.blackouts == b.blackouts
        and a.reseeds == b.reseeds
        and a.penalties == b.penalties
        and a.fault_log == b.fault_log
        and a.retry_latency == b.retry_latency
    )


def _check_invariants(
    instance: ProblemInstance, plan: FaultPlan, res: FaultyRunResult
) -> None:
    seed = plan.seed
    # Exact accounting: Π is the realised schedule's cost ...
    recomputed = res.schedule.total_cost(instance.cost)
    if abs(recomputed - res.cost) > 1e-9 * max(1.0, abs(res.cost)):
        raise ChaosInvariantError(
            f"seed {seed}: reported cost {res.cost} != schedule cost "
            f"{recomputed}"
        )
    # ... and the penalty ledger matches the counted degradations.
    lam = instance.cost.lam
    expected = {}
    if res.counters.get("reseeds"):
        expected["reseed"] = lam * res.counters["reseeds"]
    if res.counters.get("dropped_requests"):
        expected["dropped"] = lam * res.counters["dropped_requests"]
    if res.penalties != expected:
        raise ChaosInvariantError(
            f"seed {seed}: penalty ledger {res.penalties} != expected "
            f"{expected} from counters"
        )
    # Bounded recovery: nonzero blackouts only inside all-down windows.
    t0, tn = float(instance.t[0]), float(instance.t[-1])
    all_down = plan.down_intervals_all(instance.num_servers, t0, tn)
    for a, b in res.blackouts:
        if b - a <= _TOL:
            continue
        inside = any(lo - _TOL <= a and b <= hi + _TOL for lo, hi in all_down)
        if not inside:
            raise ChaosInvariantError(
                f"seed {seed}: blackout ({a:.6g}, {b:.6g}) while some "
                f"server was up (all-down windows: {all_down})"
            )
    # The realised schedule's own gaps must all be declared blackouts.
    for a, b in res.schedule.gaps(t0, tn):
        if b - a <= _TOL:
            continue
        declared = any(
            ga - _TOL <= a and b <= gb + _TOL for ga, gb in res.blackouts
        )
        if not declared:
            raise ChaosInvariantError(
                f"seed {seed}: undeclared coverage gap ({a:.6g}, {b:.6g})"
            )
    # Feasibility modulo the declared blackouts.
    try:
        validate_schedule(
            res.schedule, instance, allowed_gaps=res.allowed_gaps()
        )
    except InvalidScheduleError as exc:
        raise ChaosInvariantError(
            f"seed {seed}: schedule infeasible even with blackout "
            f"exemptions: {exc}"
        ) from exc


def run_chaos_suite(
    instance: ProblemInstance,
    plans: Sequence[FaultPlan],
    algorithm_factory: Callable[[], OnlineAlgorithm],
    check_determinism: bool = True,
) -> List[ChaosOutcome]:
    """Drive every plan, checking invariants; returns per-scenario rows.

    ``algorithm_factory`` must build a fresh fault-aware policy per call
    (scenarios must not share mutable state).
    """
    outcomes: List[ChaosOutcome] = []
    for plan in plans:
        res = run_online_faulty(algorithm_factory(), instance, plan)
        if check_determinism:
            replay = run_online_faulty(algorithm_factory(), instance, plan)
            if not _results_equal(res, replay):
                raise ChaosInvariantError(
                    f"seed {plan.seed}: replay diverged from first run "
                    f"(same plan, same instance)"
                )
        _check_invariants(instance, plan, res)
        outcomes.append(
            ChaosOutcome(
                seed=plan.seed,
                result=res,
                crashes=len(plan.outages),
                cost=res.cost,
                penalty=res.penalty_cost,
                total_cost=res.total_cost,
                blackouts=len(res.blackouts),
                blackout_time=sum(b - a for a, b in res.blackouts),
                dropped=res.counters.get("dropped_requests", 0),
                reseeds=res.counters.get("reseeds", 0),
            )
        )
    return outcomes


def chaos_report(
    outcomes: Sequence[ChaosOutcome], title: Optional[str] = None
) -> str:
    """ASCII summary table of a chaos sweep."""
    from ..analysis.tables import format_table

    rows = [o.row() for o in outcomes]
    table = format_table(rows, precision=4, title=title)
    total_blackouts = sum(o.blackouts for o in outcomes)
    total_dropped = sum(o.dropped for o in outcomes)
    footer = (
        f"{len(outcomes)} scenarios, {total_blackouts} blackouts, "
        f"{total_dropped} dropped requests"
    )
    return f"{table}\n{footer}"
