"""Chaos harness: seeded fault-scenario sweeps with invariant checks.

The harness generates a family of deterministic
:class:`~repro.faults.plan.FaultPlan` scenarios from a base seed, drives
a fault-aware policy through each, and checks the resilience invariants
a serving stack actually cares about:

* **Determinism** — re-running a scenario yields a bit-identical result
  and fault log (``same seed ⇒ same everything``).
* **Exact accounting** — the reported schedule cost equals the realised
  schedule's cost under the instance's cost model, and the penalty
  ledger equals (reseeds × reseed cost + drops × drop cost).
* **Bounded recovery** — nonzero-width blackouts happen only while
  *every* server is down, and coverage is restored no later than the
  first recovery that follows (the re-seed path is prompt).
* **Feasibility modulo blackouts** — the realised schedule validates
  against the instance once the observed blackout windows are declared.

* **Runner-kill equivalence** (``kill_runner=True``) — chaos can kill
  the *runner* itself, not just the modelled servers: each scenario is
  additionally executed under a :class:`~repro.runtime.Supervisor`,
  interrupted at a seed-derived event boundary, and resumed; the
  degraded partial must validate over its prefix and the resumed run
  must be bit-identical to the uninterrupted one at every journaled
  state digest.

* **Server-kill equivalence** (:func:`server_kill_resume_suite`) — the
  live serving front-end (:mod:`repro.service.server`) is run as a real
  subprocess, SIGKILLed at seeded points under active load (including a
  request written but unanswered at kill time, exercising the torn-tail
  path), restarted with ``--resume``, and driven to completion; the
  merged decision-stream digest must be bit-identical to an
  uninterrupted run over the same events, and every event acknowledged
  before the kill must have survived into the replayed journal.

``run_chaos_suite`` raises :class:`ChaosInvariantError` on the first
violation, naming the seed so the scenario can be replayed exactly; with
``fail_fast=False`` it instead records violations per scenario and keeps
sweeping (the CLI uses this to report every failure and exit non-zero).
"""

from __future__ import annotations

import http.client
import json
import shutil
import signal
import socket
import subprocess
import sys
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, List, Optional, Sequence, Tuple

from ..core.instance import ProblemInstance
from ..core.types import InvalidScheduleError
from ..online.base import OnlineAlgorithm
from ..schedule.validate import validate_schedule
from ..sim.engine import merged_event_stream, run_online_faulty
from .injector import FaultyRunResult
from .plan import FaultPlan

__all__ = [
    "ChaosInvariantError",
    "ChaosOutcome",
    "ClusterFailoverOutcome",
    "ServerKillOutcome",
    "chaos_report",
    "check_kill_resume",
    "cluster_failover_suite",
    "run_chaos_suite",
    "scenario_plans",
    "server_kill_points",
    "server_kill_resume_suite",
]

#: Time tolerance when matching blackout edges to plan events.
_TOL = 1e-9


class ChaosInvariantError(AssertionError):
    """A chaos invariant failed; the message names the scenario seed."""


@dataclass
class ChaosOutcome:
    """Per-scenario summary collected by :func:`run_chaos_suite`."""

    seed: int
    result: FaultyRunResult
    crashes: int
    cost: float
    penalty: float
    total_cost: float
    blackouts: int
    blackout_time: float
    dropped: int
    reseeds: int
    #: Invariant-violation messages (empty = scenario passed).
    violations: List[str] = field(default_factory=list)
    #: Event boundary the runner was killed at (``None`` = no kill ran).
    kill_seq: Optional[int] = None

    @property
    def ok(self) -> bool:
        """True iff every invariant held for this scenario."""
        return not self.violations

    def row(self) -> dict:
        """Table row for :func:`chaos_report`."""
        row = {
            "seed": self.seed,
            "crashes": self.crashes,
            "cost": self.cost,
            "penalty": self.penalty,
            "total": self.total_cost,
            "blackouts": self.blackouts,
            "blackout-time": self.blackout_time,
            "dropped": self.dropped,
            "reseeds": self.reseeds,
        }
        if self.kill_seq is not None:
            row["kill-seq"] = self.kill_seq
        row["status"] = "ok" if self.ok else "FAIL"
        return row


def scenario_plans(
    instance: ProblemInstance,
    scenarios: int,
    base_seed: int = 0,
    crash_rate: float = 1.0,
    mean_outage: float = 0.05,
    loss_rate: float = 0.05,
    spare_server: Optional[int] = None,
) -> List[FaultPlan]:
    """One deterministic plan per scenario seed ``base_seed + i``."""
    t0, tn = float(instance.t[0]), float(instance.t[-1])
    return [
        FaultPlan.generate(
            seed=base_seed + i,
            num_servers=instance.num_servers,
            start=t0,
            end=tn,
            crash_rate=crash_rate,
            mean_outage=mean_outage,
            loss_rate=loss_rate,
            spare_server=spare_server,
        )
        for i in range(scenarios)
    ]


def _results_equal(a: FaultyRunResult, b: FaultyRunResult) -> bool:
    return (
        a.cost == b.cost
        and a.counters == b.counters
        and a.schedule == b.schedule
        and a.transfers == b.transfers
        and a.blackouts == b.blackouts
        and a.reseeds == b.reseeds
        and a.penalties == b.penalties
        and a.fault_log == b.fault_log
        and a.retry_latency == b.retry_latency
    )


def _check_invariants(
    instance: ProblemInstance, plan: FaultPlan, res: FaultyRunResult
) -> None:
    seed = plan.seed
    # Exact accounting: Π is the realised schedule's cost ...
    recomputed = res.schedule.total_cost(instance.cost)
    if abs(recomputed - res.cost) > 1e-9 * max(1.0, abs(res.cost)):
        raise ChaosInvariantError(
            f"seed {seed}: reported cost {res.cost} != schedule cost "
            f"{recomputed}"
        )
    # ... and the penalty ledger matches the counted degradations.
    lam = instance.cost.lam
    expected = {}
    if res.counters.get("reseeds"):
        expected["reseed"] = lam * res.counters["reseeds"]
    if res.counters.get("dropped_requests"):
        expected["dropped"] = lam * res.counters["dropped_requests"]
    if res.penalties != expected:
        raise ChaosInvariantError(
            f"seed {seed}: penalty ledger {res.penalties} != expected "
            f"{expected} from counters"
        )
    # Bounded recovery: nonzero blackouts only inside all-down windows.
    t0, tn = float(instance.t[0]), float(instance.t[-1])
    all_down = plan.down_intervals_all(instance.num_servers, t0, tn)
    for a, b in res.blackouts:
        if b - a <= _TOL:
            continue
        inside = any(lo - _TOL <= a and b <= hi + _TOL for lo, hi in all_down)
        if not inside:
            raise ChaosInvariantError(
                f"seed {seed}: blackout ({a:.6g}, {b:.6g}) while some "
                f"server was up (all-down windows: {all_down})"
            )
    # The realised schedule's own gaps must all be declared blackouts.
    for a, b in res.schedule.gaps(t0, tn):
        if b - a <= _TOL:
            continue
        declared = any(
            ga - _TOL <= a and b <= gb + _TOL for ga, gb in res.blackouts
        )
        if not declared:
            raise ChaosInvariantError(
                f"seed {seed}: undeclared coverage gap ({a:.6g}, {b:.6g})"
            )
    # Feasibility modulo the declared blackouts.
    try:
        validate_schedule(
            res.schedule, instance, allowed_gaps=res.allowed_gaps()
        )
    except InvalidScheduleError as exc:
        raise ChaosInvariantError(
            f"seed {seed}: schedule infeasible even with blackout "
            f"exemptions: {exc}"
        ) from exc


def check_kill_resume(
    instance: ProblemInstance,
    plan: FaultPlan,
    algorithm_factory: Callable[[], OnlineAlgorithm],
    kill_seq: int,
    reference: Optional[FaultyRunResult] = None,
) -> None:
    """Kill the runner at event ``kill_seq``, resume, assert equivalence.

    The scenario is executed under a :class:`~repro.runtime.Supervisor`
    with an event-count deadline at ``kill_seq``; the degraded partial
    result must validate over its completed prefix, and the resumed run
    must match ``reference`` (computed fresh when omitted) on cost,
    schedule, fault log, blackouts and penalty ledger.  Raises
    :class:`ChaosInvariantError` on any discrepancy.
    """
    from ..runtime import RunBudget, Supervisor

    if reference is None:
        reference = run_online_faulty(algorithm_factory(), instance, plan)
    seed = plan.seed
    supervisor = Supervisor(algorithm_factory, instance, plan=plan)
    partial = supervisor.run(RunBudget(max_events=kill_seq))
    if partial.completed:
        raise ChaosInvariantError(
            f"seed {seed}: kill at seq {kill_seq} did not interrupt the "
            f"run ({partial.events_total} events total)"
        )
    try:
        validate_schedule(
            partial.result.schedule,
            instance,
            allowed_gaps=partial.result.allowed_gaps(),
            upto=partial.last_time,
            upto_request=partial.requests_delivered,
        )
    except InvalidScheduleError as exc:
        raise ChaosInvariantError(
            f"seed {seed}: degraded partial at kill seq {kill_seq} is "
            f"infeasible over its prefix: {exc}"
        ) from exc
    resumed = supervisor.resume()
    if not resumed.completed:
        raise ChaosInvariantError(
            f"seed {seed}: resume after kill at seq {kill_seq} did not "
            f"run to completion"
        )
    if not _results_equal(resumed.result, reference):
        raise ChaosInvariantError(
            f"seed {seed}: resumed run after kill at seq {kill_seq} "
            f"diverged from the uninterrupted run"
        )


def _kill_point(plan: FaultPlan, total_events: int) -> int:
    """Seed-derived runner-kill boundary in ``[1, total_events - 1]``."""
    if total_events < 2:
        return 1
    # Knuth multiplicative hash of the seed: deterministic, spread out.
    return 1 + (plan.seed * 2654435761 % (total_events - 1))


def run_chaos_suite(
    instance: ProblemInstance,
    plans: Sequence[FaultPlan],
    algorithm_factory: Callable[[], OnlineAlgorithm],
    check_determinism: bool = True,
    fail_fast: bool = True,
    kill_runner: bool = False,
) -> List[ChaosOutcome]:
    """Drive every plan, checking invariants; returns per-scenario rows.

    ``algorithm_factory`` must build a fresh fault-aware policy per call
    (scenarios must not share mutable state).  With ``fail_fast=False``
    violations are collected on each scenario's
    :attr:`ChaosOutcome.violations` instead of raising, so one bad seed
    does not hide the rest of the sweep.  ``kill_runner=True`` adds the
    runner-kill/resume-equivalence invariant per scenario.
    """
    outcomes: List[ChaosOutcome] = []
    for plan in plans:
        violations: List[str] = []

        def check(fn, *args) -> None:
            try:
                fn(*args)
            except ChaosInvariantError as exc:
                if fail_fast:
                    raise
                violations.append(str(exc))

        res = run_online_faulty(algorithm_factory(), instance, plan)
        if check_determinism:
            replay = run_online_faulty(algorithm_factory(), instance, plan)

            def determinism_check() -> None:
                if not _results_equal(res, replay):
                    raise ChaosInvariantError(
                        f"seed {plan.seed}: replay diverged from first run "
                        f"(same plan, same instance)"
                    )

            check(determinism_check)
        check(_check_invariants, instance, plan, res)
        kill_seq: Optional[int] = None
        if kill_runner:
            total = len(merged_event_stream(instance, plan))
            kill_seq = _kill_point(plan, total)
            check(
                check_kill_resume,
                instance,
                plan,
                algorithm_factory,
                kill_seq,
                res,
            )
        outcomes.append(
            ChaosOutcome(
                seed=plan.seed,
                result=res,
                crashes=len(plan.outages),
                cost=res.cost,
                penalty=res.penalty_cost,
                total_cost=res.total_cost,
                blackouts=len(res.blackouts),
                blackout_time=sum(b - a for a, b in res.blackouts),
                dropped=res.counters.get("dropped_requests", 0),
                reseeds=res.counters.get("reseeds", 0),
                violations=violations,
                kill_seq=kill_seq,
            )
        )
    return outcomes


# ---------------------------------------------------------------------------
# Live-server kill/resume chaos (subprocess SIGKILL + --resume).
# ---------------------------------------------------------------------------


@dataclass
class ServerKillOutcome:
    """One SIGKILL-at-``kill_seq`` scenario of the live-server suite."""

    kill_seq: int
    replayed: int
    digest: str
    reference_digest: str
    violations: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def row(self) -> dict:
        return {
            "kill-seq": self.kill_seq,
            "replayed": self.replayed,
            "digest-match": self.digest == self.reference_digest,
            "status": "ok" if self.ok else "FAIL",
        }


def server_kill_points(total: int, count: int, base_seed: int = 0) -> List[int]:
    """``count`` distinct seeded kill boundaries in ``[1, total - 1]``."""
    if total < 2:
        raise ValueError(f"need at least 2 events, got {total}")
    count = min(count, total - 1)
    points: List[int] = []
    seen = set()
    i = 0
    while len(points) < count:
        p = 1 + ((base_seed + i) * 2654435761) % (total - 1)
        i += 1
        if p not in seen:
            seen.add(p)
            points.append(p)
    return sorted(points)


def _server_http(
    host: str, port: int, method: str, path: str, body=None, timeout=5.0
):
    conn = http.client.HTTPConnection(host, port, timeout=timeout)
    try:
        blob = json.dumps(body) if body is not None else None
        conn.request(method, path, blob, {"Content-Type": "application/json"})
        resp = conn.getresponse()
        return resp.status, json.loads(resp.read() or b"{}")
    finally:
        conn.close()


def _serve_argv(journal_dir: Path, shards: int, m: int, resume: bool) -> list:
    argv = [
        sys.executable,
        "-m",
        "repro.cli",
        "serve",
        "--journal-dir",
        str(journal_dir),
        "--shards",
        str(shards),
        "-m",
        str(m),
    ]
    if resume:
        argv.append("--resume")
    return argv


def _spawn_server(
    journal_dir: Path, shards: int, m: int, resume: bool, deadline: float
) -> Tuple[subprocess.Popen, str, int]:
    """Start a server subprocess; block until its socket is bound."""
    meta = journal_dir / "server.json"
    meta.unlink(missing_ok=True)  # presence then means *this* process bound
    proc = subprocess.Popen(
        _serve_argv(journal_dir, shards, m, resume),
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )
    while time.monotonic() < deadline:
        if proc.poll() is not None:
            raise ChaosInvariantError(
                f"server exited during startup (rc {proc.returncode}, "
                f"resume={resume})"
            )
        if meta.exists():
            try:
                info = json.loads(meta.read_text())
            except json.JSONDecodeError:
                continue  # mid-write
            return proc, info["host"], info["port"]
        time.sleep(0.02)
    proc.kill()
    raise ChaosInvariantError("server did not bind before the deadline")


def _post_event_until_accepted(
    host: str, port: int, event: tuple, deadline: float
) -> dict:
    """At-least-once closed-loop send: retry shed/torn until settled."""
    item, t, server = event
    body = {"item": item, "time": t, "server": server}
    while True:
        try:
            status, payload = _server_http(
                host, port, "POST", "/request", body
            )
        except (OSError, http.client.HTTPException, ValueError):
            status, payload = -1, None
        if status == 200 and payload.get("status") == "done":
            return payload
        if status not in (200, 429, 503, -1):
            raise ChaosInvariantError(
                f"unexpected status {status} for event {event}: {payload}"
            )
        if time.monotonic() > deadline:
            raise ChaosInvariantError(
                f"event {event} not accepted before the deadline "
                f"(last status {status})"
            )
        time.sleep(0.05)


def _torn_send(host: str, port: int, event: tuple) -> None:
    """Write one full request and deliberately never read the response.

    The SIGKILL that follows lands while this event is (at most)
    applied-but-unacknowledged: depending on timing the journal tail is
    intact, torn mid-record, or missing the event entirely — all three
    must resume to the same stream once the event is resent.
    """
    item, t, server = event
    blob = json.dumps({"item": item, "time": t, "server": server}).encode()
    head = (
        f"POST /request HTTP/1.1\r\nHost: {host}\r\n"
        f"Content-Length: {len(blob)}\r\nConnection: close\r\n\r\n"
    ).encode("latin-1")
    try:
        with socket.create_connection((host, port), timeout=5.0) as sock:
            sock.sendall(head + blob)
            time.sleep(0.01)  # let the server pick it up, maybe journal it
    except OSError:
        pass  # server may die under us — that is the point


def server_kill_resume_suite(
    events: Sequence[tuple],
    kill_points: int = 5,
    base_seed: int = 0,
    shards: int = 2,
    num_servers: int = 8,
    work_dir: Optional[str] = None,
    scenario_timeout: float = 120.0,
) -> List[ServerKillOutcome]:
    """SIGKILL a live server at seeded points; prove bit-identical resume.

    Runs one uninterrupted reference pass over ``events`` (a time-sorted
    ``(item, time, server)`` sequence), then for each seeded kill point
    ``k``: serve events ``0..k-1`` closed-loop, write event ``k`` without
    reading its response, SIGKILL the server, restart it with
    ``--resume``, serve the remaining events (resends dedupe), and
    compare the merged decision-stream digest from ``GET /stats``
    against the reference.  Also asserts every pre-kill acknowledged
    event survived into the replayed journal (``replayed >= k``) and
    that the restarted server drains cleanly on SIGTERM (exit 0).

    The closed-loop driver is strictly sequential, so the per-shard
    apply order — and therefore the digest chain — is identical across
    scenarios; any mismatch is a real resume divergence, not load
    reordering.
    """
    import tempfile

    events = list(events)
    points = server_kill_points(len(events), kill_points, base_seed)
    root = Path(work_dir) if work_dir is not None else None
    tmp = tempfile.mkdtemp(prefix="chaos-server-") if root is None else None
    base = root if root is not None else Path(tmp)  # type: ignore[arg-type]
    base.mkdir(parents=True, exist_ok=True)

    def run_uninterrupted(jdir: Path) -> dict:
        deadline = time.monotonic() + scenario_timeout
        proc, host, port = _spawn_server(
            jdir, shards, num_servers, resume=False, deadline=deadline
        )
        try:
            for event in events:
                _post_event_until_accepted(host, port, event, deadline)
            _status, stats = _server_http(host, port, "GET", "/stats")
        finally:
            proc.send_signal(signal.SIGTERM)
            rc = proc.wait(timeout=30)
        if rc != 0:
            raise ChaosInvariantError(f"reference server drain rc {rc}")
        return stats

    try:
        reference = run_uninterrupted(base / "reference")
        outcomes: List[ServerKillOutcome] = []
        for kill_seq in points:
            violations: List[str] = []
            jdir = base / f"kill-{kill_seq}"
            deadline = time.monotonic() + scenario_timeout
            proc, host, port = _spawn_server(
                jdir, shards, num_servers, resume=False, deadline=deadline
            )
            for event in events[:kill_seq]:
                _post_event_until_accepted(host, port, event, deadline)
            _torn_send(host, port, events[kill_seq])
            proc.send_signal(signal.SIGKILL)
            proc.wait(timeout=30)

            proc, host, port = _spawn_server(
                jdir, shards, num_servers, resume=True, deadline=deadline
            )
            stats = None
            replayed = -1
            try:
                _status, mid = _server_http(host, port, "GET", "/stats")
                replayed = int(mid.get("replayed_events", -1))
                if replayed < kill_seq:
                    violations.append(
                        f"kill {kill_seq}: only {replayed} events survived "
                        f"into the resumed journal ({kill_seq} were "
                        f"acknowledged pre-kill)"
                    )
                # Resend from the kill point: the torn event settles
                # (fresh apply or dedupe hit), the rest serve normally.
                for event in events[kill_seq:]:
                    _post_event_until_accepted(host, port, event, deadline)
                _status, stats = _server_http(host, port, "GET", "/stats")
            finally:
                proc.send_signal(signal.SIGTERM)
                rc = proc.wait(timeout=30)
            if rc != 0:
                violations.append(f"kill {kill_seq}: resumed drain rc {rc}")
            digest = (stats or {}).get("digest", "<none>")
            if digest != reference["digest"]:
                violations.append(
                    f"kill {kill_seq}: merged decision digest {digest} != "
                    f"uninterrupted reference {reference['digest']}"
                )
            outcomes.append(
                ServerKillOutcome(
                    kill_seq=kill_seq,
                    replayed=replayed,
                    digest=digest,
                    reference_digest=reference["digest"],
                    violations=violations,
                )
            )
        return outcomes
    finally:
        if tmp is not None:
            shutil.rmtree(tmp, ignore_errors=True)


def chaos_report(
    outcomes: Sequence[ChaosOutcome], title: Optional[str] = None
) -> str:
    """ASCII summary table of a chaos sweep."""
    from ..analysis.tables import format_table

    rows = [o.row() for o in outcomes]
    table = format_table(rows, precision=4, title=title)
    total_blackouts = sum(o.blackouts for o in outcomes)
    total_dropped = sum(o.dropped for o in outcomes)
    failed = [o for o in outcomes if not o.ok]
    footer = (
        f"{len(outcomes)} scenarios, {total_blackouts} blackouts, "
        f"{total_dropped} dropped requests, {len(failed)} failed"
    )
    lines = [table, footer]
    for o in failed:
        for msg in o.violations:
            lines.append(f"  seed {o.seed}: {msg}")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Replicated-cluster failover chaos (SIGKILL + network partitions).
# ---------------------------------------------------------------------------


@dataclass
class ClusterFailoverOutcome:
    """One fault scenario of :func:`cluster_failover_suite`."""

    kind: str  # "kill" | "partition-heal" | "partition-failover"
    boundary: int  # event index the fault lands on
    target: int  # replica index hit by the fault
    failovers: int
    digest: str
    reference_digest: str
    violations: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def row(self) -> dict:
        return {
            "scenario": f"{self.kind}@{self.boundary}",
            "target": self.target,
            "failovers": self.failovers,
            "digest-match": self.digest == self.reference_digest,
            "status": "ok" if self.ok else "FAIL",
        }


def _cluster_route(map_path: str, item: str) -> Tuple[str, int]:
    """Resolve ``item``'s owner address from the current routing map."""
    from ..service.server import route_item

    data = json.loads(Path(map_path).read_text())
    shard = route_item(item, int(data["num_shards"]))
    addr = data["shards"][str(shard)]
    return str(addr["host"]), int(addr["port"])


def _cluster_post_until_accepted(
    map_path: str, event: tuple, deadline: float
) -> dict:
    """Cluster-aware closed-loop send: re-route + redrive until settled.

    Retries through connection failures (the target may be partitioned,
    dying, or already dead), ``421`` misroutes (the map moved under us —
    re-read it), and ``429``/``503`` sheds; the server-side ``(item,
    time)`` dedupe turns the at-least-once redrive into exactly-once.
    """
    item, t, server = event
    body = {"item": item, "time": t, "server": server}
    while True:
        try:
            host, port = _cluster_route(map_path, item)
            status, payload = _server_http(
                host, port, "POST", "/request", body, timeout=2.0
            )
        except (
            OSError,
            http.client.HTTPException,
            ValueError,
            KeyError,
            json.JSONDecodeError,
        ):
            status, payload = -1, None
        if status == 200 and payload.get("status") == "done":
            return payload
        if status == 409:
            return payload  # settled: resend beyond the dedupe window
        if status not in (200, 421, 429, 503, -1):
            raise ChaosInvariantError(
                f"unexpected status {status} for event {event}: {payload}"
            )
        if time.monotonic() > deadline:
            raise ChaosInvariantError(
                f"event {event} not settled before the deadline "
                f"(last status {status})"
            )
        time.sleep(0.05)


def cluster_failover_suite(
    events: Sequence[tuple],
    scenarios: int = 5,
    base_seed: int = 0,
    shards: int = 4,
    replicas: int = 3,
    num_servers: int = 8,
    include_kills: bool = True,
    include_partitions: bool = True,
    proxy_seed: Optional[int] = None,
    work_dir: Optional[str] = None,
    scenario_timeout: float = 240.0,
    heal_after: float = 0.75,
) -> List["ClusterFailoverOutcome"]:
    """Fail replicas of a live cluster; prove bit-identical convergence.

    One uninterrupted single-server reference pass over ``events``
    (time-sorted ``(item, time, server)``) fixes the merged
    decision-stream digest.  Then, at ``scenarios`` seeded event
    boundaries, a fresh ``replicas``-way cluster over the same events
    suffers one of three faults aimed at the replica owning the
    boundary event's shard:

    * ``kill`` — the boundary event is written to the owner without
      reading the response (in-flight at kill time), the owner is
      SIGKILLed, and its shards fail over to survivors by resuming the
      per-shard WALs; the torn event is then resent through dedupe.
    * ``partition-heal`` — the owner's chaos proxy partitions (new
      connections dropped, live relays aborted) and heals after
      ``heal_after`` seconds, *mid-batch*; health thresholds are set to
      ride it out, so the cluster must converge with **zero** failovers.
    * ``partition-failover`` — the partition stays; the supervisor's
      health probes (which go through the proxy, seeing what clients
      see) declare the replica dead, fence it with SIGKILL, and fail
      its shards over while the load loop redrives.

    Every scenario must end with the cluster's merged digest — and each
    per-shard ``(seq, digest)`` pair — equal to the reference: no
    decision lost, duplicated, or reordered by any fault.  With
    ``proxy_seed`` the whole sweep additionally runs behind lossy
    seeded proxies (latency, duplicated requests, torn writes).
    """
    import tempfile

    from ..service.cluster import ClusterConfig, ReplicaSet
    from ..service.loadgen import cluster_stats
    from ..service.server import route_item
    from .plan import NetworkFaultPlan

    events = list(events)
    points = server_kill_points(len(events), scenarios, base_seed)
    kinds: List[str] = []
    cycle: List[str] = []
    if include_kills:
        cycle.append("kill")
    if include_partitions:
        cycle += ["partition-heal", "partition-failover"]
    if not cycle:
        raise ValueError("enable at least one of kills/partitions")
    for i in range(len(points)):
        kinds.append(cycle[i % len(cycle)])

    root = Path(work_dir) if work_dir is not None else None
    tmp = tempfile.mkdtemp(prefix="chaos-cluster-") if root is None else None
    base = root if root is not None else Path(tmp)  # type: ignore[arg-type]
    base.mkdir(parents=True, exist_ok=True)

    lossy = (
        NetworkFaultPlan(
            seed=proxy_seed, latency=0.001, torn_rate=0.1, dup_rate=0.1
        )
        if proxy_seed is not None
        else None
    )

    def run_reference(jdir: Path) -> dict:
        deadline = time.monotonic() + scenario_timeout
        proc, host, port = _spawn_server(
            jdir, shards, num_servers, resume=False, deadline=deadline
        )
        try:
            for event in events:
                _post_event_until_accepted(host, port, event, deadline)
            _status, stats = _server_http(host, port, "GET", "/stats")
        finally:
            proc.send_signal(signal.SIGTERM)
            rc = proc.wait(timeout=30)
        if rc != 0:
            raise ChaosInvariantError(f"reference server drain rc {rc}")
        return stats

    def run_scenario(kind: str, boundary: int, jdir: Path, reference: dict):
        violations: List[str] = []
        deadline = time.monotonic() + scenario_timeout
        # Partitions are proxy switches, so those scenarios always run
        # behind proxies (pass-through unless a lossy plan is given).
        plan = lossy
        if plan is None and kind != "kill":
            plan = NetworkFaultPlan()
        if kind == "partition-heal":
            health = {"health_interval": 0.25, "health_failures": 10_000}
        else:
            health = {
                "health_interval": 0.1,
                "health_failures": 3,
                "health_timeout": 0.3,
            }
        rs = ReplicaSet(
            ClusterConfig(
                journal_dir=str(jdir),
                replicas=replicas,
                shards=shards,
                num_servers=num_servers,
                sync=True,
                proxy_plan=plan,
                **health,
            )
        )
        rs.start()
        target = -1
        try:
            for event in events[:boundary]:
                _cluster_post_until_accepted(rs.map_path, event, deadline)
            shard = route_item(events[boundary][0], shards)
            target = rs.owner_of(shard)
            if kind == "kill":
                # The boundary event is in flight (written, unanswered)
                # when the SIGKILL lands: torn-tail WAL handoff.
                host, port = _cluster_route(
                    rs.map_path, events[boundary][0]
                )
                _torn_send(host, port, events[boundary])
                rs.kill_replica(target)
            elif kind == "partition-heal":
                rs.set_partition(target, True)
                healer = threading.Timer(
                    heal_after, rs.set_partition, args=(target, False)
                )
                healer.start()
            else:  # partition-failover: leave it on, health loop fences
                rs.set_partition(target, True)
            for event in events[boundary:]:
                _cluster_post_until_accepted(rs.map_path, event, deadline)
            if kind == "partition-failover":
                # The failover may still be mid-flight after the last
                # event settled on a survivor; wait for the ledger.
                waited = time.monotonic()
                while not rs.failover_log and time.monotonic() - waited < 30:
                    time.sleep(0.05)
            import asyncio as _asyncio

            merged = _asyncio.run(cluster_stats(rs.map_path))
            failovers = len(rs.failover_log)
            if kind == "partition-heal" and failovers != 0:
                violations.append(
                    f"{kind}@{boundary}: healed partition still caused "
                    f"{failovers} failover(s) — thresholds not ridden out"
                )
            if kind != "partition-heal" and failovers == 0:
                violations.append(
                    f"{kind}@{boundary}: no failover was recorded"
                )
            if merged["digest"] != reference["digest"]:
                violations.append(
                    f"{kind}@{boundary}: merged digest {merged['digest']} "
                    f"!= reference {reference['digest']}"
                )
            ref_rows = {r["shard"]: r for r in reference["shards"]}
            for row in merged["shards"]:
                ref = ref_rows.get(row["shard"])
                if ref is None or (row["seq"], row["digest"]) != (
                    ref["seq"],
                    ref["digest"],
                ):
                    violations.append(
                        f"{kind}@{boundary}: shard {row['shard']} "
                        f"(seq {row['seq']}, {row['digest']}) diverged "
                        f"from reference (seq {ref['seq'] if ref else '?'})"
                    )
            return ClusterFailoverOutcome(
                kind=kind,
                boundary=boundary,
                target=target,
                failovers=failovers,
                digest=merged["digest"],
                reference_digest=reference["digest"],
                violations=violations,
            )
        except ChaosInvariantError as exc:
            violations.append(str(exc))
            return ClusterFailoverOutcome(
                kind=kind,
                boundary=boundary,
                target=target,
                failovers=len(rs.failover_log),
                digest="<none>",
                reference_digest=reference["digest"],
                violations=violations,
            )
        finally:
            rs.stop()

    try:
        reference = run_reference(base / "reference")
        outcomes: List[ClusterFailoverOutcome] = []
        for kind, boundary in zip(kinds, points):
            jdir = base / f"{kind}-{boundary}"
            outcomes.append(run_scenario(kind, boundary, jdir, reference))
        return outcomes
    finally:
        if tmp is not None:
            shutil.rmtree(tmp, ignore_errors=True)
