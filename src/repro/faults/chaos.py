"""Chaos harness: seeded fault-scenario sweeps with invariant checks.

The harness generates a family of deterministic
:class:`~repro.faults.plan.FaultPlan` scenarios from a base seed, drives
a fault-aware policy through each, and checks the resilience invariants
a serving stack actually cares about:

* **Determinism** — re-running a scenario yields a bit-identical result
  and fault log (``same seed ⇒ same everything``).
* **Exact accounting** — the reported schedule cost equals the realised
  schedule's cost under the instance's cost model, and the penalty
  ledger equals (reseeds × reseed cost + drops × drop cost).
* **Bounded recovery** — nonzero-width blackouts happen only while
  *every* server is down, and coverage is restored no later than the
  first recovery that follows (the re-seed path is prompt).
* **Feasibility modulo blackouts** — the realised schedule validates
  against the instance once the observed blackout windows are declared.

* **Runner-kill equivalence** (``kill_runner=True``) — chaos can kill
  the *runner* itself, not just the modelled servers: each scenario is
  additionally executed under a :class:`~repro.runtime.Supervisor`,
  interrupted at a seed-derived event boundary, and resumed; the
  degraded partial must validate over its prefix and the resumed run
  must be bit-identical to the uninterrupted one at every journaled
  state digest.

``run_chaos_suite`` raises :class:`ChaosInvariantError` on the first
violation, naming the seed so the scenario can be replayed exactly; with
``fail_fast=False`` it instead records violations per scenario and keeps
sweeping (the CLI uses this to report every failure and exit non-zero).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

from ..core.instance import ProblemInstance
from ..core.types import InvalidScheduleError
from ..online.base import OnlineAlgorithm
from ..schedule.validate import validate_schedule
from ..sim.engine import merged_event_stream, run_online_faulty
from .injector import FaultyRunResult
from .plan import FaultPlan

__all__ = [
    "ChaosInvariantError",
    "ChaosOutcome",
    "chaos_report",
    "check_kill_resume",
    "run_chaos_suite",
    "scenario_plans",
]

#: Time tolerance when matching blackout edges to plan events.
_TOL = 1e-9


class ChaosInvariantError(AssertionError):
    """A chaos invariant failed; the message names the scenario seed."""


@dataclass
class ChaosOutcome:
    """Per-scenario summary collected by :func:`run_chaos_suite`."""

    seed: int
    result: FaultyRunResult
    crashes: int
    cost: float
    penalty: float
    total_cost: float
    blackouts: int
    blackout_time: float
    dropped: int
    reseeds: int
    #: Invariant-violation messages (empty = scenario passed).
    violations: List[str] = field(default_factory=list)
    #: Event boundary the runner was killed at (``None`` = no kill ran).
    kill_seq: Optional[int] = None

    @property
    def ok(self) -> bool:
        """True iff every invariant held for this scenario."""
        return not self.violations

    def row(self) -> dict:
        """Table row for :func:`chaos_report`."""
        row = {
            "seed": self.seed,
            "crashes": self.crashes,
            "cost": self.cost,
            "penalty": self.penalty,
            "total": self.total_cost,
            "blackouts": self.blackouts,
            "blackout-time": self.blackout_time,
            "dropped": self.dropped,
            "reseeds": self.reseeds,
        }
        if self.kill_seq is not None:
            row["kill-seq"] = self.kill_seq
        row["status"] = "ok" if self.ok else "FAIL"
        return row


def scenario_plans(
    instance: ProblemInstance,
    scenarios: int,
    base_seed: int = 0,
    crash_rate: float = 1.0,
    mean_outage: float = 0.05,
    loss_rate: float = 0.05,
    spare_server: Optional[int] = None,
) -> List[FaultPlan]:
    """One deterministic plan per scenario seed ``base_seed + i``."""
    t0, tn = float(instance.t[0]), float(instance.t[-1])
    return [
        FaultPlan.generate(
            seed=base_seed + i,
            num_servers=instance.num_servers,
            start=t0,
            end=tn,
            crash_rate=crash_rate,
            mean_outage=mean_outage,
            loss_rate=loss_rate,
            spare_server=spare_server,
        )
        for i in range(scenarios)
    ]


def _results_equal(a: FaultyRunResult, b: FaultyRunResult) -> bool:
    return (
        a.cost == b.cost
        and a.counters == b.counters
        and a.schedule == b.schedule
        and a.transfers == b.transfers
        and a.blackouts == b.blackouts
        and a.reseeds == b.reseeds
        and a.penalties == b.penalties
        and a.fault_log == b.fault_log
        and a.retry_latency == b.retry_latency
    )


def _check_invariants(
    instance: ProblemInstance, plan: FaultPlan, res: FaultyRunResult
) -> None:
    seed = plan.seed
    # Exact accounting: Π is the realised schedule's cost ...
    recomputed = res.schedule.total_cost(instance.cost)
    if abs(recomputed - res.cost) > 1e-9 * max(1.0, abs(res.cost)):
        raise ChaosInvariantError(
            f"seed {seed}: reported cost {res.cost} != schedule cost "
            f"{recomputed}"
        )
    # ... and the penalty ledger matches the counted degradations.
    lam = instance.cost.lam
    expected = {}
    if res.counters.get("reseeds"):
        expected["reseed"] = lam * res.counters["reseeds"]
    if res.counters.get("dropped_requests"):
        expected["dropped"] = lam * res.counters["dropped_requests"]
    if res.penalties != expected:
        raise ChaosInvariantError(
            f"seed {seed}: penalty ledger {res.penalties} != expected "
            f"{expected} from counters"
        )
    # Bounded recovery: nonzero blackouts only inside all-down windows.
    t0, tn = float(instance.t[0]), float(instance.t[-1])
    all_down = plan.down_intervals_all(instance.num_servers, t0, tn)
    for a, b in res.blackouts:
        if b - a <= _TOL:
            continue
        inside = any(lo - _TOL <= a and b <= hi + _TOL for lo, hi in all_down)
        if not inside:
            raise ChaosInvariantError(
                f"seed {seed}: blackout ({a:.6g}, {b:.6g}) while some "
                f"server was up (all-down windows: {all_down})"
            )
    # The realised schedule's own gaps must all be declared blackouts.
    for a, b in res.schedule.gaps(t0, tn):
        if b - a <= _TOL:
            continue
        declared = any(
            ga - _TOL <= a and b <= gb + _TOL for ga, gb in res.blackouts
        )
        if not declared:
            raise ChaosInvariantError(
                f"seed {seed}: undeclared coverage gap ({a:.6g}, {b:.6g})"
            )
    # Feasibility modulo the declared blackouts.
    try:
        validate_schedule(
            res.schedule, instance, allowed_gaps=res.allowed_gaps()
        )
    except InvalidScheduleError as exc:
        raise ChaosInvariantError(
            f"seed {seed}: schedule infeasible even with blackout "
            f"exemptions: {exc}"
        ) from exc


def check_kill_resume(
    instance: ProblemInstance,
    plan: FaultPlan,
    algorithm_factory: Callable[[], OnlineAlgorithm],
    kill_seq: int,
    reference: Optional[FaultyRunResult] = None,
) -> None:
    """Kill the runner at event ``kill_seq``, resume, assert equivalence.

    The scenario is executed under a :class:`~repro.runtime.Supervisor`
    with an event-count deadline at ``kill_seq``; the degraded partial
    result must validate over its completed prefix, and the resumed run
    must match ``reference`` (computed fresh when omitted) on cost,
    schedule, fault log, blackouts and penalty ledger.  Raises
    :class:`ChaosInvariantError` on any discrepancy.
    """
    from ..runtime import RunBudget, Supervisor

    if reference is None:
        reference = run_online_faulty(algorithm_factory(), instance, plan)
    seed = plan.seed
    supervisor = Supervisor(algorithm_factory, instance, plan=plan)
    partial = supervisor.run(RunBudget(max_events=kill_seq))
    if partial.completed:
        raise ChaosInvariantError(
            f"seed {seed}: kill at seq {kill_seq} did not interrupt the "
            f"run ({partial.events_total} events total)"
        )
    try:
        validate_schedule(
            partial.result.schedule,
            instance,
            allowed_gaps=partial.result.allowed_gaps(),
            upto=partial.last_time,
            upto_request=partial.requests_delivered,
        )
    except InvalidScheduleError as exc:
        raise ChaosInvariantError(
            f"seed {seed}: degraded partial at kill seq {kill_seq} is "
            f"infeasible over its prefix: {exc}"
        ) from exc
    resumed = supervisor.resume()
    if not resumed.completed:
        raise ChaosInvariantError(
            f"seed {seed}: resume after kill at seq {kill_seq} did not "
            f"run to completion"
        )
    if not _results_equal(resumed.result, reference):
        raise ChaosInvariantError(
            f"seed {seed}: resumed run after kill at seq {kill_seq} "
            f"diverged from the uninterrupted run"
        )


def _kill_point(plan: FaultPlan, total_events: int) -> int:
    """Seed-derived runner-kill boundary in ``[1, total_events - 1]``."""
    if total_events < 2:
        return 1
    # Knuth multiplicative hash of the seed: deterministic, spread out.
    return 1 + (plan.seed * 2654435761 % (total_events - 1))


def run_chaos_suite(
    instance: ProblemInstance,
    plans: Sequence[FaultPlan],
    algorithm_factory: Callable[[], OnlineAlgorithm],
    check_determinism: bool = True,
    fail_fast: bool = True,
    kill_runner: bool = False,
) -> List[ChaosOutcome]:
    """Drive every plan, checking invariants; returns per-scenario rows.

    ``algorithm_factory`` must build a fresh fault-aware policy per call
    (scenarios must not share mutable state).  With ``fail_fast=False``
    violations are collected on each scenario's
    :attr:`ChaosOutcome.violations` instead of raising, so one bad seed
    does not hide the rest of the sweep.  ``kill_runner=True`` adds the
    runner-kill/resume-equivalence invariant per scenario.
    """
    outcomes: List[ChaosOutcome] = []
    for plan in plans:
        violations: List[str] = []

        def check(fn, *args) -> None:
            try:
                fn(*args)
            except ChaosInvariantError as exc:
                if fail_fast:
                    raise
                violations.append(str(exc))

        res = run_online_faulty(algorithm_factory(), instance, plan)
        if check_determinism:
            replay = run_online_faulty(algorithm_factory(), instance, plan)

            def determinism_check() -> None:
                if not _results_equal(res, replay):
                    raise ChaosInvariantError(
                        f"seed {plan.seed}: replay diverged from first run "
                        f"(same plan, same instance)"
                    )

            check(determinism_check)
        check(_check_invariants, instance, plan, res)
        kill_seq: Optional[int] = None
        if kill_runner:
            total = len(merged_event_stream(instance, plan))
            kill_seq = _kill_point(plan, total)
            check(
                check_kill_resume,
                instance,
                plan,
                algorithm_factory,
                kill_seq,
                res,
            )
        outcomes.append(
            ChaosOutcome(
                seed=plan.seed,
                result=res,
                crashes=len(plan.outages),
                cost=res.cost,
                penalty=res.penalty_cost,
                total_cost=res.total_cost,
                blackouts=len(res.blackouts),
                blackout_time=sum(b - a for a, b in res.blackouts),
                dropped=res.counters.get("dropped_requests", 0),
                reseeds=res.counters.get("reseeds", 0),
                violations=violations,
                kill_seq=kill_seq,
            )
        )
    return outcomes


def chaos_report(
    outcomes: Sequence[ChaosOutcome], title: Optional[str] = None
) -> str:
    """ASCII summary table of a chaos sweep."""
    from ..analysis.tables import format_table

    rows = [o.row() for o in outcomes]
    table = format_table(rows, precision=4, title=title)
    total_blackouts = sum(o.blackouts for o in outcomes)
    total_dropped = sum(o.dropped for o in outcomes)
    failed = [o for o in outcomes if not o.ok]
    footer = (
        f"{len(outcomes)} scenarios, {total_blackouts} blackouts, "
        f"{total_dropped} dropped requests, {len(failed)} failed"
    )
    lines = [table, footer]
    for o in failed:
        for msg in o.violations:
            lines.append(f"  seed {o.seed}: {msg}")
    return "\n".join(lines)
