"""Latency models for served requests.

Section I motivates data caching with "minimizing access latency"; the
paper's cost model then abstracts latency away entirely (transfers are
instantaneous).  The emulator puts it back: a request served from the
local cache costs a hit latency; a request served by a transfer pays a
remote-fetch latency, optionally distance-dependent when the cluster has
a planar layout (propagation across the metro network).

The model is deliberately queue-free — requests are sparse relative to
service times in the paper's regime — and that simplification is part of
the documented contract.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from ..network.cluster import Cluster

__all__ = ["LatencyModel"]


@dataclass(frozen=True)
class LatencyModel:
    """Per-request latency parameters (milliseconds by convention).

    Parameters
    ----------
    hit:
        Latency of serving from the local cache.
    fetch_base:
        Fixed latency of a remote fetch (control plane + first byte).
    fetch_per_distance:
        Additional latency per unit of planar distance between source
        and destination (0 disables the distance term; requires a
        cluster layout otherwise).
    miss_penalty:
        Extra latency when the item had to come from outside any cache
        (only used for infeasible/uncovered requests in diagnostics; a
        feasible schedule never pays it).
    retry_base:
        First-retry backoff delay after a failed transfer attempt; each
        further attempt doubles it (exponential backoff, see
        :meth:`retry_backoff`).  Used by the fault-injection layer.
    """

    hit: float = 2.0
    fetch_base: float = 20.0
    fetch_per_distance: float = 0.0
    miss_penalty: float = 200.0
    retry_base: float = 5.0

    def __post_init__(self) -> None:
        for name in (
            "hit",
            "fetch_base",
            "fetch_per_distance",
            "miss_penalty",
            "retry_base",
        ):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")

    def retry_backoff(self, attempt: int) -> float:
        """Backoff delay charged after failed attempt number ``attempt``.

        Exponential: ``retry_base * 2**(attempt - 1)``.  The fault
        context accrues this into the retry-latency ledger between
        attempts of one logical transfer.
        """
        if attempt < 1:
            raise ValueError(f"attempt numbers start at 1, got {attempt}")
        return self.retry_base * (2.0 ** (attempt - 1))

    def fetch(
        self,
        src: int,
        dst: int,
        cluster: Optional[Cluster] = None,
    ) -> float:
        """Latency of a remote fetch ``src -> dst``."""
        latency = self.fetch_base
        if self.fetch_per_distance > 0:
            if cluster is None or not cluster.has_layout:
                raise ValueError(
                    "distance-dependent latency needs a cluster with a layout"
                )
            a = cluster.servers[src].position
            b = cluster.servers[dst].position
            latency += self.fetch_per_distance * math.dist(a, b)
        return latency
