"""Cost-latency frontier: comparing policies on both axes.

The paper's objective is money; its motivation is latency.  The frontier
runs a set of policies (plus the off-line optimum) over one instance and
reports both, identifying which policies are Pareto-efficient — the
quantitative version of "cost-driven caching does not have to sacrifice
latency".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from ..core.instance import ProblemInstance
from ..network.cluster import Cluster
from ..offline.dp import solve_offline
from ..online.base import OnlineAlgorithm
from .emulator import EmulationReport, emulate
from .latency import LatencyModel

__all__ = ["FrontierPoint", "cost_latency_frontier", "pareto_front"]


@dataclass(frozen=True)
class FrontierPoint:
    """One policy's position on the cost-latency plane.

    Attributes
    ----------
    policy:
        Display name.
    cost:
        Monetary cost.
    p95_latency:
        95th-percentile service latency.
    hit_ratio:
        Local-hit fraction.
    """

    policy: str
    cost: float
    p95_latency: float
    hit_ratio: float

    def dominates(self, other: "FrontierPoint") -> bool:
        """True iff this point is no worse on both axes and better on one."""
        no_worse = (
            self.cost <= other.cost + 1e-12
            and self.p95_latency <= other.p95_latency + 1e-12
        )
        better = (
            self.cost < other.cost - 1e-12
            or self.p95_latency < other.p95_latency - 1e-12
        )
        return no_worse and better


def cost_latency_frontier(
    instance: ProblemInstance,
    policies: Sequence[Tuple[str, Callable[[], OnlineAlgorithm]]],
    latency: Optional[LatencyModel] = None,
    cluster: Optional[Cluster] = None,
    include_optimal: bool = True,
) -> List[FrontierPoint]:
    """Evaluate every policy (and optionally OPT) on both axes."""
    points: List[FrontierPoint] = []
    if include_optimal:
        sched = solve_offline(instance).schedule()
        rep = emulate(sched, instance, latency=latency, cluster=cluster)
        points.append(_point("off-line optimal", rep))
    for name, factory in policies:
        run = factory().run(instance)
        rep = emulate(run.schedule, instance, latency=latency, cluster=cluster)
        points.append(_point(name, rep))
    return points


def _point(name: str, rep: EmulationReport) -> FrontierPoint:
    return FrontierPoint(
        policy=name,
        cost=rep.cost,
        p95_latency=rep.percentile(95),
        hit_ratio=rep.hit_ratio,
    )


def pareto_front(points: Sequence[FrontierPoint]) -> List[FrontierPoint]:
    """The non-dominated subset, sorted by cost."""
    front = [
        p
        for p in points
        if not any(q.dominates(p) for q in points if q is not p)
    ]
    return sorted(front, key=lambda p: (p.cost, p.p95_latency))
