"""Replaying schedules through the latency emulator.

Given a feasible schedule and an instance, classifies every request as a
*local hit* (a copy was already cached when the request fired) or a
*remote fetch* (a transfer arrived exactly at the request instant) and
prices its latency.  Works identically for off-line optimal schedules
and for the realised schedules of online runs, so policies can be
compared on the **cost-latency plane** — the trade-off the paper's
introduction gestures at and its model collapses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..core.instance import ProblemInstance
from ..core.types import InvalidScheduleError
from ..network.cluster import Cluster
from ..schedule.schedule import Schedule
from .latency import LatencyModel

__all__ = ["RequestOutcome", "EmulationReport", "emulate"]

_TOL = 1e-9


@dataclass(frozen=True)
class RequestOutcome:
    """One request's emulated service.

    Attributes
    ----------
    index:
        Request index (1-based).
    mode:
        ``"hit"`` or ``"fetch"``.
    latency:
        Emulated service latency.
    src:
        Fetch source server (``-1`` for hits).
    """

    index: int
    mode: str
    latency: float
    src: int = -1


@dataclass
class EmulationReport:
    """Aggregate latency/cost view of one schedule.

    Attributes
    ----------
    outcomes:
        Per-request outcomes in request order.
    cost:
        Monetary cost of the schedule (the paper's objective).
    """

    outcomes: List[RequestOutcome]
    cost: float

    @property
    def latencies(self) -> np.ndarray:
        """Per-request latency array."""
        return np.array([o.latency for o in self.outcomes])

    @property
    def hit_ratio(self) -> float:
        """Fraction of requests served from the local cache."""
        if not self.outcomes:
            return 0.0
        return sum(1 for o in self.outcomes if o.mode == "hit") / len(
            self.outcomes
        )

    @property
    def mean_latency(self) -> float:
        """Mean service latency."""
        return float(self.latencies.mean()) if self.outcomes else 0.0

    def percentile(self, q: float) -> float:
        """Latency percentile (e.g. ``q=95``)."""
        return float(np.percentile(self.latencies, q)) if self.outcomes else 0.0

    def within_deadline(self, deadline: float) -> float:
        """Fraction of requests served within ``deadline`` (SLA check)."""
        if not self.outcomes:
            return 1.0
        return float((self.latencies <= deadline + _TOL).mean())

    def __repr__(self) -> str:
        return (
            f"EmulationReport(n={len(self.outcomes)}, cost={self.cost:.6g}, "
            f"hit_ratio={self.hit_ratio:.3f}, "
            f"p95={self.percentile(95):.3g})"
        )


def emulate(
    schedule: Schedule,
    instance: ProblemInstance,
    latency: Optional[LatencyModel] = None,
    cluster: Optional[Cluster] = None,
) -> EmulationReport:
    """Emulate request service under ``schedule``.

    A request is a **hit** when some cache interval on its server covers
    its instant and began strictly earlier (a copy arriving exactly with
    the request is a fetch).  Requests that are neither covered nor
    targeted by a transfer raise — feed feasible schedules.
    """
    latency = latency if latency is not None else LatencyModel()
    canon = schedule.canonical()
    by_dst: dict = {}
    for tr in canon.transfers:
        by_dst.setdefault(tr.dst, []).append(tr)

    outcomes: List[RequestOutcome] = []
    for i in range(1, instance.n + 1):
        s, t = int(instance.srv[i]), float(instance.t[i])
        resident = any(
            iv.start < t - _TOL and iv.covers(t)
            for iv in canon.intervals
            if iv.server == s
        )
        if resident:
            outcomes.append(RequestOutcome(i, "hit", latency.hit))
            continue
        arriving = [
            tr for tr in by_dst.get(s, []) if abs(tr.time - t) <= _TOL
        ]
        if arriving:
            tr = arriving[0]
            outcomes.append(
                RequestOutcome(
                    i, "fetch", latency.fetch(tr.src, s, cluster), src=tr.src
                )
            )
            continue
        # Covered from exactly t by an interval without a matching
        # transfer record (e.g. zero-length landing atoms) — treat as a
        # fetch of unknown source.
        covered_at_t = any(
            iv.covers(t) for iv in canon.intervals if iv.server == s
        )
        if covered_at_t:
            outcomes.append(
                RequestOutcome(i, "fetch", latency.fetch_base + 0.0, src=-1)
            )
            continue
        raise InvalidScheduleError(
            f"request r_{i} = (s{s}, {t:.6g}) is not served by the schedule"
        )
    return EmulationReport(outcomes=outcomes, cost=canon.total_cost(instance.cost))
