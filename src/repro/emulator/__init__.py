"""Latency emulator: pricing the axis the paper's model abstracts away."""

from .emulator import EmulationReport, RequestOutcome, emulate
from .frontier import FrontierPoint, cost_latency_frontier, pareto_front
from .latency import LatencyModel

__all__ = [
    "EmulationReport",
    "FrontierPoint",
    "LatencyModel",
    "RequestOutcome",
    "cost_latency_frontier",
    "emulate",
    "pareto_front",
]
