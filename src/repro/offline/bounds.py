"""Cost bounds from Section IV: marginal and running bounds.

These are thin, vectorised views over the instance pre-scan, packaged for
the analysis and benchmark layers (the instance itself already stores
``b_i`` and ``B_i``).  They also host the bound-quality diagnostics used
in EXPERIMENTS.md: how tight ``B_n`` is relative to ``C(n)`` across
workloads, which quantifies how much of the optimal cost is "forced" by
marginal services versus spanning-cache structure.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.instance import ProblemInstance

__all__ = ["marginal_bounds", "running_bound", "BoundReport", "bound_report"]


def marginal_bounds(instance: ProblemInstance) -> np.ndarray:
    """``b_i = min(λ, μσ_i)`` for ``i = 0..n`` (Definition 4; ``b_0 = 0``)."""
    return instance.b


def running_bound(instance: ProblemInstance) -> float:
    """``B_n`` — the paper's lower bound on ``C(n)`` (Definition 5)."""
    return instance.running_bound()


@dataclass(frozen=True)
class BoundReport:
    """Tightness diagnostics of the running bound against the optimum.

    Attributes
    ----------
    lower_bound:
        ``B_n``.
    optimal_cost:
        ``C(n)`` from the fast DP.
    gap:
        ``C(n) - B_n`` (non-negative by Definitions 5/6).
    ratio:
        ``C(n) / B_n`` (``1.0`` when the bound is tight; ``inf`` if
        ``B_n = 0``, which only happens for empty sequences).
    """

    lower_bound: float
    optimal_cost: float
    gap: float
    ratio: float


def bound_report(instance: ProblemInstance) -> BoundReport:
    """Compute bound-tightness diagnostics for ``instance``."""
    from .dp import solve_offline

    opt = solve_offline(instance).optimal_cost
    lb = instance.running_bound()
    return BoundReport(
        lower_bound=lb,
        optimal_cost=opt,
        gap=opt - lb,
        ratio=(opt / lb) if lb > 0 else float("inf"),
    )
