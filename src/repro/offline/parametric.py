"""Parametric sensitivity: how the optimum moves with the cost ratio.

The homogeneous model has one effective knob — ``λ/μ`` — and the optimal
*value* is piecewise linear in ``λ`` at fixed ``μ`` (each fixed schedule's
cost is affine in ``λ``; the optimum is their lower envelope, i.e. a
concave piecewise-linear function whose slope is the transfer count of
the active schedule).  This module sweeps ``λ``, tracks where the optimal
*structure* changes (the envelope's breakpoints, located to tolerance by
bisection on the transfer count), and reports each regime's schedule
signature.

Uses: pricing what-ifs ("would the plan change if egress doubled?") and
regression tests on envelope concavity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from ..core.instance import ProblemInstance
from ..core.transforms import with_cost
from ..core.types import CostModel
from .dp import solve_offline

__all__ = ["SensitivityPoint", "lambda_sensitivity", "lambda_breakpoints"]


@dataclass(frozen=True)
class SensitivityPoint:
    """The optimum at one ``λ`` value.

    Attributes
    ----------
    lam:
        Transfer cost.
    optimal_cost:
        ``C(n)`` at that ``λ``.
    transfers:
        Number of transfers in the optimal schedule — the local slope
        ``dC/dλ`` of the cost envelope.
    copy_time:
        Total held copy-time of the optimal schedule.
    """

    lam: float
    optimal_cost: float
    transfers: int
    copy_time: float


def _solve_at(instance: ProblemInstance, lam: float) -> SensitivityPoint:
    inst = with_cost(
        instance, CostModel(mu=instance.cost.mu, lam=lam, beta=instance.cost.beta)
    )
    res = solve_offline(inst)
    sched = res.schedule().canonical()
    return SensitivityPoint(
        lam=lam,
        optimal_cost=res.optimal_cost,
        transfers=len(sched.transfers),
        copy_time=sum(iv.duration for iv in sched.intervals),
    )


def lambda_sensitivity(
    instance: ProblemInstance, lam_grid: Sequence[float]
) -> List[SensitivityPoint]:
    """Evaluate the optimum at each ``λ`` in ``lam_grid`` (sorted)."""
    grid = sorted(float(x) for x in lam_grid)
    if not grid:
        raise ValueError("need at least one lambda value")
    if grid[0] <= 0:
        raise ValueError("lambda values must be positive")
    return [_solve_at(instance, lam) for lam in grid]


def lambda_breakpoints(
    instance: ProblemInstance,
    lam_lo: float,
    lam_hi: float,
    tol: float = 1e-4,
    max_segments: int = 64,
) -> List[float]:
    """Locate the ``λ`` values where the optimal transfer count changes.

    Bisects on the transfer count (the envelope slope) between ``lam_lo``
    and ``lam_hi``; returns breakpoints to absolute tolerance ``tol``.
    Segments beyond ``max_segments`` raise — a safety net, since the
    envelope has at most ``n`` distinct slopes.
    """
    if not 0 < lam_lo < lam_hi:
        raise ValueError("need 0 < lam_lo < lam_hi")

    def slope(lam: float) -> int:
        return _solve_at(instance, lam).transfers

    breakpoints: List[float] = []
    segments = [(lam_lo, slope(lam_lo), lam_hi, slope(lam_hi))]
    while segments:
        lo, s_lo, hi, s_hi = segments.pop()
        if s_lo == s_hi:
            continue
        if hi - lo <= tol:
            breakpoints.append(0.5 * (lo + hi))
            continue
        if len(breakpoints) + len(segments) > max_segments:
            raise RuntimeError(
                f"more than {max_segments} envelope segments; widen tol"
            )
        mid = 0.5 * (lo + hi)
        s_mid = slope(mid)
        segments.append((lo, s_lo, mid, s_mid))
        segments.append((mid, s_mid, hi, s_hi))
    return sorted(breakpoints)
