"""Result object shared by all off-line DP solvers.

Every solver (fast ``O(mn)``, naive ``O(n²)``, and the binary-search
variant) fills the same :class:`OfflineResult`: the cost vectors ``C`` and
``D`` of the paper's Recurrences (2) and (5) plus the argmin metadata
needed to backtrack an explicit optimal schedule.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from ..core.instance import ProblemInstance

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..schedule.schedule import Schedule

__all__ = ["OfflineResult", "FROM_C", "FROM_D"]

#: ``choice_d_tag`` value: D(i) attained via the boundary case C(p(i)).
FROM_C = 0
#: ``choice_d_tag`` value: D(i) attained via a pivot D(κ), κ ∈ π(i).
FROM_D = 1


@dataclass
class OfflineResult:
    """Solved off-line instance: cost vectors plus backtracking choices.

    Attributes
    ----------
    instance:
        The solved instance.
    C:
        ``C[i]`` — optimal cost of serving ``r_0..r_i`` (Definition 6).
    D:
        ``D[i]`` — semi-optimal cost with ``r_i`` served by the cache on
        ``s_i`` (Definition 7); ``+inf`` where infeasible.
    served_by_cache:
        ``True`` at ``i`` iff ``C[i]`` chose the ``D(i)`` branch of
        Recurrence (2), i.e. ``r_i`` is served by the local cache.
    choice_d_tag:
        For each ``i`` with finite ``D[i]``: :data:`FROM_C` if the boundary
        case won, :data:`FROM_D` if a pivot ``κ`` won.
    choice_d_k:
        The predecessor index: ``p(i)`` when ``choice_d_tag == FROM_C``,
        the winning pivot ``κ`` when ``FROM_D``; ``-1`` where undefined.
    solver:
        Name of the algorithm that produced the result.
    """

    instance: ProblemInstance
    C: np.ndarray
    D: np.ndarray
    served_by_cache: np.ndarray
    choice_d_tag: np.ndarray
    choice_d_k: np.ndarray
    solver: str = "unknown"
    _schedule: "Schedule" = field(default=None, repr=False)  # type: ignore[assignment]

    @property
    def optimal_cost(self) -> float:
        """``C(n)``: cost of the optimal schedule ``Ψ*(n)``."""
        return float(self.C[-1])

    @property
    def lower_bound(self) -> float:
        """The running bound ``B_n ≤ C(n)`` (Definition 5)."""
        return self.instance.running_bound()

    def schedule(self) -> "Schedule":
        """Reconstruct (and cache) the optimal schedule by backtracking."""
        if self._schedule is None:
            from .reconstruct import reconstruct_schedule

            self._schedule = reconstruct_schedule(self)
        return self._schedule

    def agrees_with(self, other: "OfflineResult", rtol: float = 1e-9) -> bool:
        """True iff both results carry identical cost vectors."""
        return bool(
            np.allclose(self.C, other.C, rtol=rtol)
            and np.allclose(
                np.where(np.isfinite(self.D), self.D, -1.0),
                np.where(np.isfinite(other.D), other.D, -1.0),
                rtol=rtol,
            )
        )

    def __repr__(self) -> str:
        return (
            f"OfflineResult(solver={self.solver!r}, n={self.instance.n}, "
            f"m={self.instance.num_servers}, C(n)={self.optimal_cost:.6g})"
        )
