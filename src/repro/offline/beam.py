"""Beam-search solver for large and/or heterogeneous fleets.

The fast ``O(mn)`` DP is exact only under homogeneity; the exact
subset-state oracle handles arbitrary costs but is ``O(n·3^m)`` and
capped at ``m = 16``.  This module fills the gap: a *beam search* over
the same copy-holder state space that keeps only the ``width`` best
states per request, with a restricted but expressive move set:

* keep every current copy,
* drop any single copy,
* collapse to any single copy,

each followed by serving the request (free if the kept set covers it,
else the cheapest transfer in).  With ``width ≥ 3^m`` and small fleets
the search visits enough states to match the oracle on most instances;
at fixed width it scales to fleets of any size (states are Python int
bitmasks) with ``O(n · width · m)`` work.

The result is an upper bound by construction — every visited trajectory
is feasible — so it brackets the true heterogeneous optimum from above
while the homogenised DP brackets the *homogeneous relaxation*; the E1
benchmark uses both.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..core.instance import ProblemInstance
from ..network.costmodel import HeterogeneousCostModel
from ..schedule.schedule import Schedule

__all__ = ["solve_beam", "BeamResult"]


@dataclass
class BeamResult:
    """Outcome of the beam search.

    Attributes
    ----------
    cost:
        Cost of the best trajectory found (an upper bound on optimal).
    states:
        Copy-holder bitmask after each request along that trajectory.
    schedule:
        Materialised feasible schedule (canonical form).
    width:
        Beam width used.
    """

    cost: float
    states: List[int]
    schedule: Schedule
    width: int


def _mask_rate(mask: int, mu: np.ndarray) -> float:
    total = 0.0
    mm = mask
    while mm:
        low = mm & -mm
        total += float(mu[low.bit_length() - 1])
        mm ^= low
    return total


def _cheapest_in(mask: int, s: int, lam: np.ndarray) -> Tuple[float, int]:
    best, src = math.inf, -1
    mm = mask
    while mm:
        low = mm & -mm
        j = low.bit_length() - 1
        mm ^= low
        if j != s and float(lam[j, s]) < best:
            best, src = float(lam[j, s]), j
    return best, src


def solve_beam(
    instance: ProblemInstance,
    het: Optional[HeterogeneousCostModel] = None,
    width: int = 64,
    build_schedule: bool = True,
) -> BeamResult:
    """Beam search over copy-holder states.

    Parameters
    ----------
    instance:
        The problem instance (any ``m``).
    het:
        Optional heterogeneous cost model (defaults to the instance's
        homogeneous one).
    width:
        States kept per step (``>= 1``).
    build_schedule:
        Also materialise the winning trajectory as a schedule.
    """
    if width < 1:
        raise ValueError(f"beam width must be >= 1, got {width}")
    m, n = instance.num_servers, instance.n
    t, srv = instance.t, instance.srv
    if het is None:
        mu = np.full(m, instance.cost.mu)
        lam = np.full((m, m), instance.cost.lam)
        np.fill_diagonal(lam, 0.0)
    else:
        het.check(m)
        mu, lam = het.mu, het.lam

    # beam: state mask -> (value, parent index in trace, kept mask)
    beam: Dict[int, float] = {1 << instance.origin: 0.0}
    trace: List[Dict[int, Tuple[int, int]]] = []  # per step: state -> (prev, kept)

    for i in range(1, n + 1):
        gap = float(t[i] - t[i - 1])
        s = int(srv[i])
        s_bit = 1 << s
        nxt: Dict[int, float] = {}
        parents: Dict[int, Tuple[int, int]] = {}

        def consider(prev_state: int, kept: int, value: float) -> None:
            if kept == 0:
                return
            base = value + gap * _mask_rate(kept, mu)
            if kept & s_bit:
                new, cost = kept, base
            else:
                tr, _src = _cheapest_in(kept, s, lam)
                new, cost = kept | s_bit, base + tr
            if cost < nxt.get(new, math.inf):
                nxt[new] = cost
                parents[new] = (prev_state, kept)

        for state, value in beam.items():
            consider(state, state, value)  # keep all
            mm = state
            while mm:
                low = mm & -mm
                mm ^= low
                if state != low:
                    consider(state, state ^ low, value)  # drop one
                    consider(state, low, value)  # keep only one
        # Prune to the beam width.
        if len(nxt) > width:
            kept_states = sorted(nxt, key=nxt.get)[:width]
            nxt = {k: nxt[k] for k in kept_states}
            parents = {k: parents[k] for k in kept_states}
        beam = nxt
        trace.append(parents)

    best_state = min(beam, key=beam.get) if beam else (1 << instance.origin)
    best_cost = beam.get(best_state, 0.0)

    states = [0] * (n + 1)
    kept_sets = [0] * (n + 1)
    cur = best_state
    for i in range(n, 0, -1):
        states[i] = cur
        prev, kept = trace[i - 1][cur]
        kept_sets[i] = kept
        cur = prev
    states[0] = 1 << instance.origin

    sched = Schedule()
    if build_schedule and n:
        for i in range(1, n + 1):
            kept = kept_sets[i]
            for j in range(m):
                if kept >> j & 1:
                    sched.hold(j, float(t[i - 1]), float(t[i]))
            s = int(srv[i])
            if not (kept >> s & 1):
                _, src = _cheapest_in(kept, s, lam)
                sched.transfer(src, s, float(t[i]))
                sched.hold(s, float(t[i]), float(t[i]))
        sched = sched.canonical()

    return BeamResult(
        cost=float(best_cost), states=states, schedule=sched, width=width
    )
