"""Off-line optimal algorithms (paper Section IV) and validation oracles.

* :func:`solve_offline` — the paper's ``O(mn)`` fast DP (Contribution 1).
* :func:`solve_offline_naive` — direct ``O(n²)`` sweep (correctness oracle
  and scaling baseline).
* :func:`solve_offline_bisect` — binary-search pivots, ``O(nm log n)``.
* :func:`solve_exact` — exponential subset-state oracle, also covering the
  heterogeneous-cost extension.
* :func:`reconstruct_schedule` — optimal schedule via backtracking.
"""

from .beam import BeamResult, solve_beam
from .bounds import BoundReport, bound_report, marginal_bounds, running_bound
from .dp import optimal_cost, solve_offline
from .exact import ExactResult, solve_exact
from .naive import solve_offline_bisect, solve_offline_naive
from .parametric import SensitivityPoint, lambda_breakpoints, lambda_sensitivity
from .reconstruct import reconstruct_schedule
from .result import FROM_C, FROM_D, OfflineResult
from .streaming import StreamingSolver

__all__ = [
    "FROM_C",
    "FROM_D",
    "StreamingSolver",
    "BeamResult",
    "BoundReport",
    "ExactResult",
    "OfflineResult",
    "SensitivityPoint",
    "bound_report",
    "marginal_bounds",
    "lambda_breakpoints",
    "lambda_sensitivity",
    "optimal_cost",
    "reconstruct_schedule",
    "running_bound",
    "solve_beam",
    "solve_exact",
    "solve_offline",
    "solve_offline_bisect",
    "solve_offline_naive",
]
