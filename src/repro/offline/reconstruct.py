"""Backtracking an explicit optimal schedule from the DP choice metadata.

The DP computes costs; this module materialises the schedule ``Ψ*(n)``
(paper Fig. 6 shows the same reconstruction "phase by phase").  Walking
back from ``r_n``:

* a **transfer-served** request (Recurrence 2's second branch) contributes
  ``H(s_{i-1}, t_{i-1}, t_i)`` plus ``Tr(s_{i-1}, s_i, t_i)`` and recurses
  on ``C(i-1)``;
* a **cache-served** request (branch ``D(i)``) contributes the final cache
  ``H(s_i, t_{p(i)}, t_i)``, then serves every intermediate request
  ``r_j`` (``k < j < i``, where ``k`` is the DP predecessor) at its
  marginal bound ``b_j``: a short own-server cache ``H(s_j, t_{p(j)}, t_j)``
  when ``μσ_j ≤ λ``, otherwise a transfer out of the spanning cache
  ``Tr(s_i, s_j, t_j)``; finally it recurses on ``C(p(i))`` or ``D(κ)``
  per the recorded choice.

Overlapping fragments are merged by the schedule container; by Theorem 1
the merged cost equals ``C(n)`` exactly, which
:func:`reconstruct_schedule` asserts (`verify=True`) so any divergence
between theory and materialisation fails loudly.
"""

from __future__ import annotations

from ..core.types import InvalidScheduleError
from ..schedule.schedule import Schedule
from .result import FROM_C, OfflineResult

__all__ = ["reconstruct_schedule"]


def reconstruct_schedule(result: OfflineResult, verify: bool = True) -> Schedule:
    """Materialise the optimal schedule recorded in ``result``.

    Parameters
    ----------
    result:
        A solved :class:`~repro.offline.result.OfflineResult`.
    verify:
        Assert that the merged schedule's cost equals ``C(n)`` (cheap, and
        the strongest possible internal consistency check — it exercises
        Lemmas 1–4 end to end).

    Returns
    -------
    Schedule
        The canonical optimal schedule.
    """
    inst = result.instance
    t, srv, p, sigma = inst.t, inst.srv, inst.p, inst.sigma
    mu, lam = inst.cost.mu, inst.cost.lam
    sched = Schedule()

    def serve_marginal(j: int, host: int) -> None:
        """Serve intermediate request ``r_j`` at its bound ``b_j``."""
        if p[j] >= 0 and mu * sigma[j] <= lam:
            sched.hold(int(srv[j]), float(t[p[j]]), float(t[j]))
        else:
            sched.transfer(host, int(srv[j]), float(t[j]))

    # Explicit work stack of ("C"|"D", index) frames; recursion depth can
    # reach n, which would overflow Python's stack on long sequences.
    stack = [("C", inst.n)]
    while stack:
        kind, i = stack.pop()
        if i <= 0:
            continue
        if kind == "C" and not result.served_by_cache[i]:
            # Transfer branch: cache on s_{i-1} through the gap, then move.
            sched.hold(int(srv[i - 1]), float(t[i - 1]), float(t[i]))
            sched.transfer(int(srv[i - 1]), int(srv[i]), float(t[i]))
            stack.append(("C", i - 1))
            continue
        # Cache branch (C chose D, or we were asked for D directly).
        q = int(p[i])
        if q < 0:
            raise InvalidScheduleError(
                f"DP chose the cache branch for r_{i} which has no previous "
                f"request on its server — solver metadata is corrupt"
            )
        sched.hold(int(srv[i]), float(t[q]), float(t[i]))
        k = int(result.choice_d_k[i])
        for j in range(k + 1, i):
            serve_marginal(j, host=int(srv[i]))
        if result.choice_d_tag[i] == FROM_C:
            stack.append(("C", k))
        else:
            stack.append(("D", k))

    sched = sched.canonical()
    if verify:
        realized = sched.total_cost(inst.cost)
        want = result.optimal_cost
        if abs(realized - want) > 1e-6 * max(1.0, abs(want)):
            raise InvalidScheduleError(
                f"reconstructed schedule costs {realized!r} but DP computed "
                f"C(n)={want!r} ({result.solver}); Theorem 1 violated"
            )
    return sched
