"""Incremental (streaming) form of the off-line DP.

The recurrences of Section IV sweep requests left to right and only ever
look backward, so they support *online arrival of the off-line problem*:
requests are appended one at a time and the optimal cost of the prefix
is maintained.  The default ``kernel="frontier"`` advances the same
incremental pivot accumulator as the batch frontier kernel
(:class:`repro.kernels.frontier.FrontierState`) — amortised ``O(1 +
|π(i)|)`` per append, ``O(n + m + P)`` for the stream.  The historic
``kernel="reference"`` path re-bisects per server on every append
(``O(m log n)`` each, ``O(nm log n)`` total); both produce bit-identical
prefixes.

This powers two things the batch solver cannot do:

* **receding-horizon planning** — the :class:`~repro.online.lookahead`
  algorithms re-plan on a sliding window of known-future requests;
* **regret tracking** — an online service can maintain "what would the
  optimum have paid so far" next to its own meter, in real time.

The streaming state converts to a standard
:class:`~repro.offline.result.OfflineResult` at any point
(:meth:`StreamingSolver.result`), from which schedules reconstruct as
usual; equality with the batch solver is property-tested.
"""

from __future__ import annotations

import bisect
import math
from typing import List, Optional

import numpy as np

from ..core.instance import ProblemInstance
from ..core.types import CostModel, InvalidInstanceError
from ..kernels.frontier import FrontierState
from .result import FROM_C, FROM_D, OfflineResult

__all__ = ["StreamingSolver"]

#: Valid ``kernel=`` values for :class:`StreamingSolver`.
_KERNELS = ("auto", "frontier", "reference")


class StreamingSolver:
    """Maintain the optimal prefix cost ``C(i)`` under appended requests.

    Parameters
    ----------
    num_servers:
        Fleet size ``m``.
    cost:
        Homogeneous cost model.
    origin:
        Server initially holding the item.
    start_time:
        ``t_0``.
    kernel:
        Per-append pivot machinery: ``"frontier"`` (incremental
        accumulator, amortised ``O(1 + |π(i)|)`` per append) or
        ``"reference"`` (per-server binary search, ``O(m log n)``).
        ``"auto"`` (default) picks the frontier.  Identical results
        either way — pinned by ``tests/offline/test_kernels.py``.
    """

    def __init__(
        self,
        num_servers: int,
        cost: Optional[CostModel] = None,
        origin: int = 0,
        start_time: float = 0.0,
        kernel: str = "auto",
    ):
        if num_servers <= 0:
            raise InvalidInstanceError(f"need m >= 1, got {num_servers}")
        if not 0 <= origin < num_servers:
            raise InvalidInstanceError(
                f"origin {origin} outside [0, {num_servers})"
            )
        if kernel not in _KERNELS:
            raise ValueError(f"kernel must be one of {_KERNELS}, got {kernel!r}")
        self.kernel = "frontier" if kernel == "auto" else kernel
        self.m = num_servers
        self.cost = cost if cost is not None else CostModel()
        self.origin = origin
        # Index 0 is the boundary request r_0.
        self.t: List[float] = [float(start_time)]
        self.srv: List[int] = [origin]
        self.p: List[int] = [-1]
        self.sigma: List[float] = [math.inf]
        self.b: List[float] = [0.0]
        self.B: List[float] = [0.0]
        self.C: List[float] = [0.0]
        self.D: List[float] = [math.inf]
        self._tag: List[int] = [-1]
        self._arg: List[int] = [-1]
        self._on_server: List[List[int]] = [[] for _ in range(num_servers)]
        self._on_server[origin].append(0)
        self._frontier = (
            FrontierState(num_servers, origin)
            if self.kernel == "frontier"
            else None
        )

    # -- core ------------------------------------------------------------------

    @property
    def n(self) -> int:
        """Number of appended requests (excluding ``r_0``)."""
        return len(self.t) - 1

    @property
    def optimal_cost(self) -> float:
        """``C(n)`` of the current prefix."""
        return self.C[-1]

    def append(self, time: float, server: int) -> float:
        """Append request ``(time, server)``; returns the new ``C(n)``.

        Times must be strictly increasing and servers in range.
        """
        time = float(time)
        server = int(server)
        if time <= self.t[-1]:
            raise InvalidInstanceError(
                f"append time {time} not after current horizon {self.t[-1]}"
            )
        if not 0 <= server < self.m:
            raise InvalidInstanceError(
                f"server {server} outside [0, {self.m})"
            )
        mu, lam = self.cost.mu, self.cost.lam
        i = len(self.t)
        own = self._on_server[server]
        q = own[-1] if own else -1

        self.t.append(time)
        self.srv.append(server)
        self.p.append(q)
        sigma = time - self.t[q] if q >= 0 else math.inf
        self.sigma.append(sigma)
        b_i = min(lam, mu * sigma)
        self.b.append(b_i)
        self.B.append(self.B[-1] + b_i)

        D_i, tag, arg = math.inf, -1, -1
        fr = self._frontier
        if q >= 0:
            best = self.C[q] - self.B[q]
            tag, arg = FROM_C, q
            if fr is not None:
                # Frontier kernel: the accumulated running minimum IS
                # the pivot minimum (value ties already broken toward
                # the smaller server id, matching the scan below).
                acc = fr.run_min[server]
                if acc < best:
                    best, tag, arg = acc, FROM_D, fr.run_arg[server]
            else:
                for j in range(self.m):
                    idx = self._on_server[j]
                    pos = bisect.bisect_left(idx, q)
                    if pos < len(idx):
                        k = idx[pos]
                        if k < i:
                            v = self.D[k] - self.B[k]
                            if v < best:
                                best, tag, arg = v, FROM_D, k
            D_i = best + mu * sigma + self.B[i - 1]
        self.D.append(D_i)
        self._tag.append(tag)
        self._arg.append(arg)

        via_transfer = self.C[i - 1] + mu * (time - self.t[i - 1]) + lam
        self.C.append(min(D_i, via_transfer))
        own.append(i)
        if fr is not None:
            value = D_i - self.B[i]
            fr.push(i, q, value, server)
            fr.reopen(server, i, value)
        return self.C[-1]

    def extend(self, requests) -> float:
        """Append many ``(time, server)`` pairs; returns the final ``C(n)``."""
        for time, server in requests:
            self.append(time, server)
        return self.optimal_cost

    # -- snapshots --------------------------------------------------------------

    def instance(self) -> ProblemInstance:
        """The current prefix as a regular :class:`ProblemInstance`."""
        return ProblemInstance.from_arrays(
            np.asarray(self.t[1:]),
            np.asarray(self.srv[1:], dtype=np.int64),
            num_servers=self.m,
            cost=self.cost,
            origin=self.origin,
            start_time=self.t[0],
        )

    def result(self) -> OfflineResult:
        """Snapshot as an :class:`OfflineResult` (reconstructible)."""
        n1 = len(self.t)
        served_by_cache = np.zeros(n1, dtype=bool)
        for i in range(1, n1):
            served_by_cache[i] = self.D[i] <= (
                self.C[i - 1]
                + self.cost.mu * (self.t[i] - self.t[i - 1])
                + self.cost.lam
            )
        return OfflineResult(
            instance=self.instance(),
            C=np.asarray(self.C),
            D=np.asarray(self.D),
            served_by_cache=served_by_cache,
            choice_d_tag=np.asarray(self._tag, dtype=np.int64),
            choice_d_k=np.asarray(self._arg, dtype=np.int64),
            solver="streaming-dp",
        )

    def __repr__(self) -> str:
        return (
            f"StreamingSolver(n={self.n}, m={self.m}, "
            f"C(n)={self.optimal_cost:.6g})"
        )
