"""Exact subset-state dynamic program — the independent optimality oracle.

The paper *proves* the ``O(mn)`` recurrences optimal (Theorem 1).  This
module re-derives optimal costs by an algorithm that shares nothing with
those recurrences: an exponential DP over the set of servers holding live
copies.  Between consecutive requests the schedule chooses which copies to
keep (each kept copy pays ``μ·gap``); at a request instant the item must be
on the requesting server — already kept, or transferred in for ``λ``.

Transfers are restricted to request instants ending on the requesting
server, which is without loss of optimality by the paper's Observation 1
(standard form, via Veeravalli 2003, Theorem 1).

Complexity is ``O(n · 3^m)`` — exponential in ``m`` — so this solver is a
*validation oracle* for small fleets, not a production path.  The test
suite runs it against the fast DP on thousands of random instances.

The oracle intentionally generalises the paper's model, enabling the
heterogeneous-cost extension experiment (DESIGN.md, Ext E1):

* per-server caching rates ``μ_j``,
* per-pair transfer costs ``λ_{jk}``,
* optional finite upload cost ``β`` from external storage (Table II's
  ``β``, unused by the paper's recurrences).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from ..core.instance import ProblemInstance
from ..network.costmodel import HeterogeneousCostModel
from ..schedule.schedule import Schedule

__all__ = ["solve_exact", "ExactResult"]

#: Hard cap on fleet size; 3^16 ≈ 43M states per step is already painful.
_MAX_SERVERS = 16


@dataclass
class ExactResult:
    """Outcome of the exact subset-state DP.

    Attributes
    ----------
    optimal_cost:
        Minimum total service cost.
    states:
        Optimal copy-holder bitmask after each request (length ``n+1``).
    kept_sets:
        For each step ``i >= 1``, the bitmask of copies kept through the
        gap ``(t_{i-1}, t_i)`` on the optimal trajectory (index 0 unused).
        The receding-horizon planner executes ``kept_sets[1]``.
    schedule:
        Materialised optimal schedule (canonical form).
    """

    optimal_cost: float
    states: List[int]
    kept_sets: List[int]
    schedule: Schedule


def _nonempty_submasks(mask: int):
    """Yield all non-empty submasks of ``mask`` (standard bit trick)."""
    sub = mask
    while sub:
        yield sub
        sub = (sub - 1) & mask


def solve_exact(
    instance: ProblemInstance,
    het: Optional[HeterogeneousCostModel] = None,
    build_schedule: bool = True,
    initial_holders: Optional[List[int]] = None,
) -> ExactResult:
    """Exactly solve ``instance`` by exhausting copy-holder subsets.

    Parameters
    ----------
    instance:
        The problem instance (``num_servers <= 16``).
    het:
        Optional heterogeneous cost model; when given, overrides the
        instance's homogeneous ``μ``/``λ`` with per-server / per-pair
        values (the Ext E1 generalisation).
    build_schedule:
        Also backtrack an explicit optimal schedule.
    initial_holders:
        Servers holding copies at ``t_0``.  Defaults to the instance's
        origin only; the receding-horizon planner passes its live copy
        set so windows re-plan from the executed state.

    Returns
    -------
    ExactResult
    """
    m = instance.num_servers
    if m > _MAX_SERVERS:
        raise ValueError(
            f"exact solver is exponential in m; got m={m} > {_MAX_SERVERS}"
        )
    n = instance.n
    t, srv = instance.t, instance.srv

    if het is None:
        mu_vec = np.full(m, instance.cost.mu)
        lam_mat = np.full((m, m), instance.cost.lam)
        np.fill_diagonal(lam_mat, 0.0)
        beta = instance.cost.beta
    else:
        het.check(m)
        mu_vec, lam_mat, beta = het.mu, het.lam, het.beta

    # Precompute caching cost of holding exactly the servers in `mask`
    # for one time unit.
    hold_rate = np.zeros(1 << m)
    for mask in range(1, 1 << m):
        low = mask & -mask
        hold_rate[mask] = hold_rate[mask ^ low] + mu_vec[low.bit_length() - 1]

    # Cheapest transfer into server s from any member of `mask`.
    def transfer_in(mask: int, s: int) -> float:
        best = math.inf
        mm = mask
        while mm:
            low = mm & -mm
            j = low.bit_length() - 1
            if j != s:
                best = min(best, float(lam_mat[j, s]))
            mm ^= low
        return best

    if initial_holders is None:
        start_mask = 1 << instance.origin
    else:
        start_mask = 0
        for h in initial_holders:
            if not 0 <= h < m:
                raise ValueError(f"initial holder {h} outside [0, {m})")
            start_mask |= 1 << h
        if start_mask == 0:
            raise ValueError("initial_holders must be non-empty")

    size = 1 << m
    INF = math.inf
    V = [INF] * size
    V[start_mask] = 0.0
    parents: List[List[Tuple[int, int]]] = []  # per step: (prev_state, kept)

    for i in range(1, n + 1):
        gap = float(t[i] - t[i - 1])
        s = int(srv[i])
        s_bit = 1 << s
        NV = [INF] * size
        NP: List[Tuple[int, int]] = [(-1, 0)] * size
        for S in range(1, size):
            v = V[S]
            if v == INF:
                continue
            for K in _nonempty_submasks(S):
                base = v + gap * hold_rate[K]
                if K & s_bit:
                    if base < NV[K]:
                        NV[K] = base
                        NP[K] = (S, K)
                else:
                    new = K | s_bit
                    c = base + transfer_in(K, s)
                    if c < NV[new]:
                        NV[new] = c
                        NP[new] = (S, K)
                    if math.isfinite(beta):
                        c = base + beta
                        if c < NV[new]:
                            NV[new] = c
                            NP[new] = (S, K)
        V = NV
        parents.append(NP)

    best_state = min(range(1, size), key=lambda S: V[S])
    best_cost = V[best_state]

    states = [0] * (n + 1)
    kept_sets = [0] * (n + 1)
    cur = best_state
    for i in range(n, 0, -1):
        states[i] = cur
        prev, kept = parents[i - 1][cur]
        kept_sets[i] = kept
        cur = prev
    states[0] = start_mask

    sched = Schedule()
    if build_schedule:
        for i in range(1, n + 1):
            kept = kept_sets[i]
            for j in range(m):
                if kept >> j & 1:
                    sched.hold(j, float(t[i - 1]), float(t[i]))
            s = int(srv[i])
            if not (kept >> s & 1):
                # Served by a transfer (or upload): pick the realising source.
                src_cost = transfer_in(kept, s)
                if math.isfinite(beta) and beta < src_cost:
                    # Upload: modelled as a zero-length hold only; the cost
                    # bookkeeping lives in `best_cost`, and Schedule has no
                    # upload atom — record the landing instant.
                    sched.hold(s, float(t[i]), float(t[i]))
                else:
                    src = min(
                        (j for j in range(m) if (kept >> j & 1) and j != s),
                        key=lambda j: float(lam_mat[j, s]),
                    )
                    sched.transfer(src, s, float(t[i]))
                    sched.hold(s, float(t[i]), float(t[i]))
        sched = sched.canonical()

    return ExactResult(
        optimal_cost=float(best_cost),
        states=states,
        kept_sets=kept_sets,
        schedule=sched,
    )
