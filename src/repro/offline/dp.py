"""The fast optimal off-line algorithm — ``O(mn)`` time and space.

Implements the paper's Section IV recurrences:

.. math::

    C(i) &= \\min\\{ D(i),\\ C(i-1) + \\mu\\,\\delta t_{i-1,i} + \\lambda \\} \\\\
    D(i) &= \\min\\Big\\{ C(p(i)) + \\mu\\sigma_i + B_{i-1} - B_{p(i)},\\
            \\min_{\\kappa \\in \\pi(i)} D(\\kappa) + \\mu\\sigma_i
            + B_{i-1} - B_\\kappa \\Big\\}

with ``C(0) = 0`` and ``D(i) = +inf`` for the first request on each server
(its dummy predecessor sits at ``-inf``).  The cover index set ``π(i)``
(Definition 8) holds at most one candidate per server — the request whose
server interval spans ``t_{p(i)}`` — and is enumerated in ``O(m)`` via the
instance's pivot lookup (pointer matrix, paper Fig. 5) so the whole sweep
is ``O(mn)``.

Ties between the cache branch ``D(i)`` and the transfer branch are broken
toward the cache branch; this guarantees reconstruction never emits a
self-transfer (when ``s_i = s_{i-1}`` the cache branch is strictly cheaper
by ``λ``, so the transfer branch can only win when the servers differ).
"""

from __future__ import annotations

import warnings
from typing import Union

import numpy as np

from ..core.instance import ProblemInstance
from .result import FROM_C, FROM_D, OfflineResult

__all__ = ["solve_offline", "optimal_cost", "KERNELS"]

#: Valid ``kernel=`` values for :func:`solve_offline`.
KERNELS = ("auto", "frontier", "reference", "batch")

#: ``vectorized="auto"`` switches the reference kernel to the numpy
#: pivot gather at this fleet size.  Calibrated from the measured
#: crossover in ``benchmarks/bench_dp_kernels.py``
#: (``BENCH_dp_kernels.json``, ``vectorize_crossover`` series,
#: ``first_m_where_vectorized_wins``): at n=4000 the scalar pivot loop
#: wins for m ∈ {4, 8} and the gather wins from m = 16 up (the gather's
#: per-request numpy overhead is flat in ``m``; the scalar loop is
#: linear).  Re-run the bench after touching the reference sweep.
_VECTORIZE_MIN_M = 16


def solve_offline(
    instance: ProblemInstance,
    vectorized: Union[bool, str] = "auto",
    kernel: str = "auto",
) -> OfflineResult:
    """Solve ``instance`` optimally with the ``O(mn)`` dynamic program.

    Parameters
    ----------
    instance:
        Pre-scanned problem instance.
    vectorized:
        Reference-kernel knob: ``True`` gathers each request's pivot
        candidates with numpy (faster for large ``m``), ``False`` uses
        the scalar loop (faster for small ``m``), ``"auto"`` picks by
        ``m`` (:data:`_VECTORIZE_MIN_M`).  An explicit boolean pins
        ``kernel="reference"``: combined with the default
        ``kernel="auto"`` this emits a :class:`UserWarning` naming the
        downgrade (pass ``kernel="reference"`` to silence it), and
        combined with ``kernel="frontier"`` or ``kernel="batch"`` —
        kernels that have no vectorized knob — it raises ``ValueError``.
    kernel:
        ``"reference"`` runs the per-request ``O(mn)`` sweep above;
        ``"frontier"`` runs the amortised ``O(n + m + P)`` kernel
        (:func:`repro.kernels.frontier.solve_offline_frontier`);
        ``"batch"`` routes through the batched instance-major kernel
        (:func:`repro.kernels.batch.solve_offline_batch`, compiled C
        sweep when available — for a single instance this mostly
        matters as a correctness cross-check; the payoff is batching
        whole services);
        ``"auto"`` (default) picks the frontier kernel unless an
        explicit ``vectorized`` boolean pins the reference path.
        Every kernel returns byte-identical results — the choice is
        purely a throughput knob.

    Returns
    -------
    OfflineResult
        Cost vectors ``C``/``D`` plus backtracking metadata;
        ``result.schedule()`` materialises the optimal schedule.
    """
    if kernel not in KERNELS:
        raise ValueError(
            f"kernel must be one of {KERNELS}, got {kernel!r}"
        )
    if isinstance(vectorized, str):
        if vectorized != "auto":
            raise ValueError(
                f"vectorized must be True, False or 'auto', "
                f"got {vectorized!r} (strings like 'false' are not coerced)"
            )
        if kernel == "batch":
            from ..kernels.batch import solve_offline_batch

            return next(iter(solve_offline_batch([("", instance)]).values()))
        if kernel != "reference":
            from ..kernels.frontier import solve_offline_frontier

            return solve_offline_frontier(instance)
        vectorized = instance.num_servers >= _VECTORIZE_MIN_M
    elif kernel in ("frontier", "batch"):
        raise ValueError(
            f"kernel={kernel!r} has no vectorized knob; pass "
            "vectorized='auto' (the default) or kernel='reference'"
        )
    elif kernel == "auto":
        # An explicit boolean can only mean the reference sweep.  That
        # downgrade used to be silent (the docstring said "implies
        # kernel='reference'" and nothing surfaced it); make it loud and
        # pin the kernel so the combination stays unambiguous.
        warnings.warn(
            "explicit vectorized= boolean pins kernel='reference' "
            "(kernel='auto' would otherwise pick the frontier kernel); "
            "pass kernel='reference' to silence this warning",
            UserWarning,
            stacklevel=2,
        )
    n = instance.n
    t, srv = instance.t, instance.srv
    p, sigma, B = instance.p, instance.sigma, instance.B
    mu, lam = instance.cost.mu, instance.cost.lam

    C = np.zeros(n + 1, dtype=np.float64)
    D = np.full(n + 1, np.inf, dtype=np.float64)
    served_by_cache = np.zeros(n + 1, dtype=bool)
    choice_d_tag = np.full(n + 1, -1, dtype=np.int64)
    choice_d_k = np.full(n + 1, -1, dtype=np.int64)

    pivots = instance._pivots
    m = instance.num_servers
    use_matrix = vectorized and pivots.mode == "matrix"
    F = pivots._first_at_or_after if use_matrix else None

    for i in range(1, n + 1):
        q = int(p[i])
        if q >= 0:
            # Boundary case of Recurrence (5): extend from C(p(i)).
            best = C[q] - B[q]
            tag, arg = FROM_C, q
            # Pivot cases: κ ∈ π(i), one candidate per server.
            if use_matrix:
                ks = F[q]
                ks = ks[(ks >= 0) & (ks < i)]
                if ks.size:
                    vals = D[ks] - B[ks]
                    j = int(np.argmin(vals))
                    if vals[j] < best:
                        best, tag, arg = float(vals[j]), FROM_D, int(ks[j])
            else:
                for server_j in range(m):
                    k = pivots.first_at_or_after(server_j, q)
                    if 0 <= k < i:
                        v = D[k] - B[k]
                        if v < best:
                            best, tag, arg = v, FROM_D, k
            D[i] = best + mu * sigma[i] + B[i - 1]
            choice_d_tag[i] = tag
            choice_d_k[i] = arg
        via_transfer = C[i - 1] + mu * (t[i] - t[i - 1]) + lam
        if D[i] <= via_transfer:
            C[i] = D[i]
            served_by_cache[i] = True
        else:
            C[i] = via_transfer

    return OfflineResult(
        instance=instance,
        C=C,
        D=D,
        served_by_cache=served_by_cache,
        choice_d_tag=choice_d_tag,
        choice_d_k=choice_d_k,
        solver="fast-dp",
    )


def optimal_cost(instance: ProblemInstance) -> float:
    """Convenience wrapper: the optimal total service cost ``C(n)``."""
    return solve_offline(instance).optimal_cost
