"""Reference off-line solvers: the straightforward ``O(n²)`` sweep.

The paper notes (Section IV) that a direct implementation of Recurrences
(2) and (5) runs in ``O(n²)`` because computing ``D(i)`` may check up to
``O(n)`` previous requests.  This module implements exactly that — the
cover set ``π(i) = {k : p(k) < p(i) ≤ k < i}`` is found by scanning all
earlier indices — and serves two purposes:

* a correctness oracle for the fast ``O(mn)`` solver (both must produce
  identical ``C``/``D`` vectors on every instance), and
* the "previous algorithm" baseline in the speed-up benchmark that
  reproduces the paper's Contribution 1 comparison (the paper compares
  against Veeravalli's ``O(n m² log m)`` algorithm, which is not published
  in a reproducible form; the ``O(n²)`` sweep plus the binary-search
  variant below bracket it — see DESIGN.md §2, Substitutions).

``solve_offline_bisect`` is the intermediate variant: identical DP, but
pivot candidates located by per-server binary search (``O(n m log n)``
time, ``O(n + m)`` extra space).
"""

from __future__ import annotations

import numpy as np

from ..core.instance import PivotLookup, ProblemInstance
from .result import FROM_C, FROM_D, OfflineResult

__all__ = ["solve_offline_naive", "solve_offline_bisect"]


def solve_offline_naive(instance: ProblemInstance) -> OfflineResult:
    """Solve by the direct ``O(n²)`` implementation of the recurrences."""
    n = instance.n
    t = instance.t
    p, sigma, B = instance.p, instance.sigma, instance.B
    mu, lam = instance.cost.mu, instance.cost.lam

    C = np.zeros(n + 1, dtype=np.float64)
    D = np.full(n + 1, np.inf, dtype=np.float64)
    served_by_cache = np.zeros(n + 1, dtype=bool)
    choice_d_tag = np.full(n + 1, -1, dtype=np.int64)
    choice_d_k = np.full(n + 1, -1, dtype=np.int64)

    for i in range(1, n + 1):
        q = int(p[i])
        if q >= 0:
            best = C[q] - B[q]
            tag, arg = FROM_C, q
            # Direct scan for π(i): every k < i with p(k) < p(i) <= k.
            for k in range(1, i):
                if p[k] < q <= k:
                    v = D[k] - B[k]
                    if v < best:
                        best, tag, arg = v, FROM_D, k
            # r_0 qualifies when q == 0 (k = 0, p(0) = -1 < 0 <= 0); its
            # D is +inf so it never wins, matching the fast solver.
            D[i] = best + mu * sigma[i] + B[i - 1]
            choice_d_tag[i] = tag
            choice_d_k[i] = arg
        via_transfer = C[i - 1] + mu * (t[i] - t[i - 1]) + lam
        if D[i] <= via_transfer:
            C[i] = D[i]
            served_by_cache[i] = True
        else:
            C[i] = via_transfer

    return OfflineResult(
        instance=instance,
        C=C,
        D=D,
        served_by_cache=served_by_cache,
        choice_d_tag=choice_d_tag,
        choice_d_k=choice_d_k,
        solver="naive-dp",
    )


def solve_offline_bisect(instance: ProblemInstance) -> OfflineResult:
    """Solve with binary-search pivot lookup (``O(n m log n)``).

    Functionally identical to :func:`repro.offline.dp.solve_offline`; kept
    as a distinct entry point so the scaling benchmark can chart all three
    complexity classes side by side.
    """
    n = instance.n
    t = instance.t
    p, sigma, B = instance.p, instance.sigma, instance.B
    mu, lam = instance.cost.mu, instance.cost.lam
    lookup = PivotLookup(instance.srv, instance.num_servers, mode="bisect")
    m = instance.num_servers

    C = np.zeros(n + 1, dtype=np.float64)
    D = np.full(n + 1, np.inf, dtype=np.float64)
    served_by_cache = np.zeros(n + 1, dtype=bool)
    choice_d_tag = np.full(n + 1, -1, dtype=np.int64)
    choice_d_k = np.full(n + 1, -1, dtype=np.int64)

    for i in range(1, n + 1):
        q = int(p[i])
        if q >= 0:
            best = C[q] - B[q]
            tag, arg = FROM_C, q
            for server_j in range(m):
                k = lookup.first_at_or_after(server_j, q)
                if 0 <= k < i:
                    v = D[k] - B[k]
                    if v < best:
                        best, tag, arg = v, FROM_D, k
            D[i] = best + mu * sigma[i] + B[i - 1]
            choice_d_tag[i] = tag
            choice_d_k[i] = arg
        via_transfer = C[i - 1] + mu * (t[i] - t[i - 1]) + lam
        if D[i] <= via_transfer:
            C[i] = D[i]
            served_by_cache[i] = True
        else:
            C[i] = via_transfer

    return OfflineResult(
        instance=instance,
        C=C,
        D=D,
        served_by_cache=served_by_cache,
        choice_d_tag=choice_d_tag,
        choice_d_k=choice_d_k,
        solver="bisect-dp",
    )
