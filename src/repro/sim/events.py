"""Discrete-event substrate: a lazy-invalidation event queue.

The online Speculative Caching algorithm (paper Section V) is event
driven: besides request arrivals it reacts to *copy expiration* events
whose due times move every time a copy is refreshed.  Rescheduling a heap
entry is awkward, so the queue uses the standard lazy-invalidation trick:
entries are never removed early; a popped entry is delivered only if its
``(server, due)`` pair still matches the caller's live bookkeeping.

Events at exactly equal times are grouped by :meth:`EventQueue.pop_group`
because the paper's expiration rules are defined over *simultaneous*
events (step 4: "at most two expiration events resulted from a transfer
could occur at the same time").
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

__all__ = ["Event", "EventQueue"]


@dataclass(frozen=True, order=True)
class Event:
    """A scheduled occurrence.

    Ordering is ``(time, seq)`` — FIFO among equal times — so replays are
    deterministic.

    Parameters
    ----------
    time:
        Due instant.
    seq:
        Monotone tie-breaker assigned by the queue.
    kind:
        Free-form tag (e.g. ``"expire"``).
    server:
        Subject server id (or ``-1`` for global events).
    """

    time: float
    seq: int
    kind: str = field(compare=False, default="expire")
    server: int = field(compare=False, default=-1)


class EventQueue:
    """Min-heap of :class:`Event` with lazy invalidation helpers."""

    def __init__(self) -> None:
        self._heap: List[Event] = []
        # Explicit integer counter (not itertools.count) so queue state is
        # fully introspectable: checkpoint/restore and the state-digest
        # machinery of :mod:`repro.runtime` must capture the tie-break
        # sequence exactly to reproduce pop order after a resume.
        self._counter = 0

    def push(self, time: float, kind: str = "expire", server: int = -1) -> Event:
        """Schedule an event; returns the stored entry."""
        ev = Event(time=time, seq=self._counter, kind=kind, server=server)
        self._counter += 1
        heapq.heappush(self._heap, ev)
        return ev

    def __len__(self) -> int:
        return len(self._heap)

    def peek_time(self) -> Optional[float]:
        """Due time of the earliest entry, or ``None`` when empty."""
        return self._heap[0].time if self._heap else None

    def pop(self) -> Event:
        """Pop the earliest entry (caller validates staleness)."""
        return heapq.heappop(self._heap)

    def pop_group(
        self,
        before: float,
        is_valid: Callable[[Event], bool],
    ) -> Optional[Tuple[float, List[Event]]]:
        """Pop the next *valid* simultaneous group due strictly before ``before``.

        Stale entries (for which ``is_valid`` returns ``False``) are
        discarded on the way.  Returns ``(time, events)`` or ``None`` when
        nothing valid is due.  Validity is re-checked within the group so a
        pair whose first member's handling invalidates the second is
        delivered correctly (the caller re-validates anyway).
        """
        while self._heap and self._heap[0].time < before:
            ev = heapq.heappop(self._heap)
            if not is_valid(ev):
                continue
            group = [ev]
            while (
                self._heap
                and self._heap[0].time == ev.time
            ):
                nxt = heapq.heappop(self._heap)
                if is_valid(nxt):
                    group.append(nxt)
            return ev.time, group
        return None

    def clear(self) -> None:
        """Drop all entries."""
        self._heap.clear()

    def state_summary(self) -> dict:
        """Canonical plain-data view of the queue for state digests.

        Includes *stale* entries and the tie-break counter: both influence
        future pop order, so two queues must agree on them for a resumed
        run to replay bit-identically.
        """
        return {
            "counter": self._counter,
            "heap": sorted(
                (ev.time, ev.seq, ev.kind, ev.server) for ev in self._heap
            ),
        }
