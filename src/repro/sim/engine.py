"""Generic drivers for online caching algorithms.

The engine replays an instance's requests in time order against any
:class:`~repro.online.base.OnlineAlgorithm`: before each request it lets
the algorithm process its internal timers strictly up to the request
instant (copy expirations), then delivers the request; at the end it
truncates the run at the service horizon ``t_n`` and collects the
:class:`~repro.sim.recorder.OnlineRunResult`.

Online algorithms see requests one at a time and nothing else — the
engine enforces the information model of Section V (no lookahead).

:func:`run_online_faulty` extends the replay with a
:class:`~repro.faults.plan.FaultPlan`: crash/recover events are delivered
to the algorithm interleaved with requests in time order (at equal
instants, fault events strike first — a crash at a request time beats the
request), a crashed server's cached copy is lost, and *blackout* (no live
copy anywhere) is a first-class observed outcome rather than a crash of
the simulation.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

import numpy as np

from ..core.instance import ProblemInstance
from .recorder import OnlineRunResult

if TYPE_CHECKING:  # pragma: no cover
    from ..emulator.latency import LatencyModel
    from ..faults.injector import FaultyRunResult
    from ..faults.plan import FaultPlan
    from ..online.base import OnlineAlgorithm

__all__ = ["run_online", "run_online_faulty"]

#: Hooks an algorithm must expose to run under fault injection.
_FAULT_HOOKS = ("attach_faults", "on_server_crash", "on_server_recover")


def _check_time_order(instance: ProblemInstance) -> None:
    """Reject out-of-order request streams before any state is touched.

    :class:`~repro.core.instance.ProblemInstance` construction already
    enforces strictly increasing times, but the engine also accepts
    duck-typed instances (trace adapters, test probes); replaying a
    decreasing timestamp would silently corrupt algorithm timer state,
    so fail loudly instead.
    """
    t = np.asarray(instance.t, dtype=np.float64)
    if t.ndim != 1 or t.shape[0] != instance.n + 1:
        raise ValueError(
            f"instance.t must be a flat array of n+1={instance.n + 1} "
            f"timestamps, got shape {t.shape}"
        )
    bad = np.flatnonzero(np.diff(t) < 0)
    if bad.size:
        i = int(bad[0])
        raise ValueError(
            f"request timestamps must be non-decreasing: t[{i + 1}]="
            f"{t[i + 1]} < t[{i}]={t[i]}; refusing to replay an "
            f"out-of-order stream"
        )


def run_online(
    algorithm: "OnlineAlgorithm", instance: ProblemInstance
) -> OnlineRunResult:
    """Drive ``algorithm`` over ``instance`` and return the run result.

    The algorithm object is reset by the call (``begin``), so one object
    can be reused across instances; runs are deterministic given the
    algorithm's own RNG seeding.
    """
    _check_time_order(instance)
    algorithm.begin(instance)
    for i in range(1, instance.n + 1):
        t = float(instance.t[i])
        algorithm.advance(t)
        algorithm.serve(i, t, int(instance.srv[i]))
    return algorithm.end(float(instance.t[-1]))


def run_online_faulty(
    algorithm: "OnlineAlgorithm",
    instance: ProblemInstance,
    plan: "FaultPlan",
    latency: Optional["LatencyModel"] = None,
) -> "FaultyRunResult":
    """Drive a fault-aware algorithm over ``instance`` under ``plan``.

    The algorithm must implement the fault hooks (``attach_faults``,
    ``on_server_crash``, ``on_server_recover``) —
    :class:`~repro.online.resilient.SpeculativeCachingResilient` is the
    reference implementation.  Delivery contract:

    * crash/recover events and requests are interleaved in time order;
      at equal instants fault events are delivered first (recoveries
      before crashes, so a returning replica target is usable at once);
    * before each fault event and each request, ``advance`` processes
      the algorithm's own timers strictly up to that instant;
    * after every delivery the engine observes the live-copy count, so
      zero-copy periods surface as *blackout* windows on the result
      instead of crashing the run.

    Determinism: a fixed ``(algorithm config, instance, plan)`` triple
    yields a bit-identical :class:`~repro.faults.injector.FaultyRunResult`
    including its fault log.
    """
    from ..faults.injector import FaultContext, FaultyRunResult

    missing = [h for h in _FAULT_HOOKS if not hasattr(algorithm, h)]
    if missing:
        raise TypeError(
            f"{type(algorithm).__name__} is not fault-aware: missing "
            f"hook(s) {missing}; use SpeculativeCachingResilient or "
            f"implement the fault protocol"
        )
    _check_time_order(instance)

    t0, t_end = float(instance.t[0]), float(instance.t[-1])
    ctx = FaultContext(plan, instance.num_servers, latency=latency)
    algorithm.attach_faults(ctx)
    try:
        algorithm.begin(instance)
        ctx.observe_copies(len(algorithm.rec.open_servers()), t0)
        events = plan.events(start=t0, end=t_end)
        e = 0

        def deliver_until(t: float) -> None:
            nonlocal e
            while e < len(events) and events[e].time <= t:
                ev = events[e]
                e += 1
                algorithm.advance(ev.time)
                if ev.kind == "crash":
                    ctx.mark_down(ev.server, ev.time)
                    algorithm.on_server_crash(ev.server, ev.time)
                else:
                    ctx.mark_up(ev.server, ev.time)
                    algorithm.on_server_recover(ev.server, ev.time)
                ctx.observe_copies(len(algorithm.rec.open_servers()), ev.time)

        for i in range(1, instance.n + 1):
            t = float(instance.t[i])
            deliver_until(t)
            algorithm.advance(t)
            algorithm.serve(i, t, int(instance.srv[i]))
            ctx.observe_copies(len(algorithm.rec.open_servers()), t)
        deliver_until(t_end)
        base = algorithm.end(t_end)
        ctx.close(t_end)
    finally:
        algorithm.attach_faults(None)

    return FaultyRunResult(
        schedule=base.schedule,
        cost=base.cost,
        counters=base.counters,
        lifetimes=base.lifetimes,
        algorithm=base.algorithm,
        transfers=base.transfers,
        blackouts=list(ctx.blackouts),
        reseeds=list(ctx.reseeds),
        penalties=dict(ctx.penalties),
        fault_log=list(ctx.log),
        retry_latency=ctx.retry_latency,
    )
