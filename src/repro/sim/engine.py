"""Generic driver for online caching algorithms.

The engine replays an instance's requests in time order against any
:class:`~repro.online.base.OnlineAlgorithm`: before each request it lets
the algorithm process its internal timers strictly up to the request
instant (copy expirations), then delivers the request; at the end it
truncates the run at the service horizon ``t_n`` and collects the
:class:`~repro.sim.recorder.OnlineRunResult`.

Online algorithms see requests one at a time and nothing else — the
engine enforces the information model of Section V (no lookahead).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..core.instance import ProblemInstance
from .recorder import OnlineRunResult

if TYPE_CHECKING:  # pragma: no cover
    from ..online.base import OnlineAlgorithm

__all__ = ["run_online"]


def run_online(
    algorithm: "OnlineAlgorithm", instance: ProblemInstance
) -> OnlineRunResult:
    """Drive ``algorithm`` over ``instance`` and return the run result.

    The algorithm object is reset by the call (``begin``), so one object
    can be reused across instances; runs are deterministic given the
    algorithm's own RNG seeding.
    """
    algorithm.begin(instance)
    for i in range(1, instance.n + 1):
        t = float(instance.t[i])
        algorithm.advance(t)
        algorithm.serve(i, t, int(instance.srv[i]))
    return algorithm.end(float(instance.t[-1]))
