"""Generic drivers for online caching algorithms.

The engine replays an instance's requests in time order against any
:class:`~repro.online.base.OnlineAlgorithm`: before each request it lets
the algorithm process its internal timers strictly up to the request
instant (copy expirations), then delivers the request; at the end it
truncates the run at the service horizon ``t_n`` and collects the
:class:`~repro.sim.recorder.OnlineRunResult`.

Online algorithms see requests one at a time and nothing else — the
engine enforces the information model of Section V (no lookahead).

:func:`run_online_faulty` extends the replay with a
:class:`~repro.faults.plan.FaultPlan`: crash/recover events are delivered
to the algorithm interleaved with requests in time order, a crashed
server's cached copy is lost, and *blackout* (no live copy anywhere) is a
first-class observed outcome rather than a crash of the simulation.

:func:`run_online_faulty` is a thin loop over :class:`ReplayDriver`, a
*stepwise* executor that delivers exactly one event per
:meth:`ReplayDriver.step` call.  The step granularity is what makes runs
supervisable: the :mod:`repro.runtime` layer journals each delivered
event, snapshots the driver between steps, and resumes a killed run
bit-identically from ``snapshot + journal tail``.  Fault-free
:func:`run_online` takes the array-backed fast path of
:mod:`repro.kernels.replay` by default — the same hook-call sequence
without per-event object dispatch — and falls back to the driver with
``fast=False``.

Event tie-break contract (pinned by ``tests/sim/test_engine.py``):
at equal instants delivery order is **recover < crash < request** —
fault events strike before the request they coincide with (a crash at a
request time beats the request), and a replica target recovering at the
instant another server dies is usable immediately.  Equal-time events of
the same kind keep their source order (requests by index, fault events
by server id).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional, Union

import numpy as np

from ..core.instance import ProblemInstance
from .recorder import OnlineRunResult

if TYPE_CHECKING:  # pragma: no cover
    from ..emulator.latency import LatencyModel
    from ..faults.injector import FaultyRunResult
    from ..faults.plan import FaultPlan
    from ..online.base import OnlineAlgorithm

__all__ = [
    "ReplayEvent",
    "ReplayDriver",
    "merged_event_stream",
    "run_online",
    "run_online_faulty",
]

#: Hooks an algorithm must expose to run under fault injection.
_FAULT_HOOKS = ("attach_faults", "on_server_crash", "on_server_recover")

#: Delivery priority at equal instants: recoveries, then crashes, then
#: requests.  This is the single point of truth for the tie-break rule.
_EVENT_ORDER = {"recover": 0, "crash": 1, "request": 2}


@dataclass(frozen=True)
class ReplayEvent:
    """One unit of engine work: a request or a fault occurrence.

    Attributes
    ----------
    time:
        Delivery instant.
    kind:
        ``"request"``, ``"crash"`` or ``"recover"``.
    index:
        Request index ``i`` (``-1`` for fault events).
    server:
        Requesting server for requests, subject server for faults.
    """

    time: float
    kind: str
    index: int = -1
    server: int = -1

    def sort_key(self):
        return (self.time, _EVENT_ORDER[self.kind])


def _check_time_order(instance: ProblemInstance) -> None:
    """Reject out-of-order request streams before any state is touched.

    :class:`~repro.core.instance.ProblemInstance` construction already
    enforces strictly increasing times, but the engine also accepts
    duck-typed instances (trace adapters, test probes); replaying a
    decreasing timestamp would silently corrupt algorithm timer state,
    so fail loudly instead.
    """
    t = np.asarray(instance.t, dtype=np.float64)
    if t.ndim != 1 or t.shape[0] != instance.n + 1:
        raise ValueError(
            f"instance.t must be a flat array of n+1={instance.n + 1} "
            f"timestamps, got shape {t.shape}"
        )
    bad = np.flatnonzero(np.diff(t) < 0)
    if bad.size:
        i = int(bad[0])
        raise ValueError(
            f"request timestamps must be non-decreasing: t[{i + 1}]="
            f"{t[i + 1]} < t[{i}]={t[i]}; refusing to replay an "
            f"out-of-order stream"
        )


def merged_event_stream(
    instance: ProblemInstance, plan: Optional["FaultPlan"] = None
) -> List[ReplayEvent]:
    """The full delivery sequence for a (possibly faulty) replay.

    Requests ``r_1..r_n`` merged with the plan's crash/recover events
    clipped to ``[t_0, t_n]``, ordered by ``(time, recover < crash <
    request)``.  The sort is stable, so equal-``(time, kind)`` events
    keep their source order: requests by index, fault events in
    :meth:`~repro.faults.plan.FaultPlan.events` order (server id).
    """
    events: List[ReplayEvent] = []
    if plan is not None:
        t0, t_end = float(instance.t[0]), float(instance.t[-1])
        for fe in plan.events(start=t0, end=t_end):
            events.append(ReplayEvent(time=fe.time, kind=fe.kind, server=fe.server))
    for i in range(1, instance.n + 1):
        events.append(
            ReplayEvent(
                time=float(instance.t[i]),
                kind="request",
                index=i,
                server=int(instance.srv[i]),
            )
        )
    events.sort(key=ReplayEvent.sort_key)
    return events


class ReplayDriver:
    """Stepwise executor of one run: one delivered event per :meth:`step`.

    The constructor performs the whole run *prologue* (hook validation,
    time-order check, fault-context attachment, ``algorithm.begin``), so
    a freshly-built driver is already at sequence position 0 with the
    initial copy placed on the origin server.  ``step()`` delivers the
    next event; ``finish()`` runs the epilogue and returns the result.

    The object is deliberately self-contained and picklable: a driver
    pickled between two ``step()`` calls and restored in a fresh process
    continues the run bit-identically (the basis of
    :mod:`repro.runtime.snapshot`).

    Parameters
    ----------
    algorithm:
        The online policy.  Must implement the fault hooks
        (``attach_faults`` / ``on_server_crash`` / ``on_server_recover``)
        when ``plan`` is given.
    instance:
        The request sequence to replay.
    plan:
        Optional fault plan; ``None`` runs the plain engine contract of
        :func:`run_online`.
    latency:
        Optional latency model for the fault context's retry ledger.
    """

    def __init__(
        self,
        algorithm: "OnlineAlgorithm",
        instance: ProblemInstance,
        plan: Optional["FaultPlan"] = None,
        latency: Optional["LatencyModel"] = None,
    ):
        if plan is not None:
            missing = [h for h in _FAULT_HOOKS if not hasattr(algorithm, h)]
            if missing:
                raise TypeError(
                    f"{type(algorithm).__name__} is not fault-aware: missing "
                    f"hook(s) {missing}; use SpeculativeCachingResilient or "
                    f"implement the fault protocol"
                )
        _check_time_order(instance)
        self.algorithm = algorithm
        self.instance = instance
        self.plan = plan
        self.t0 = float(instance.t[0])
        self.t_end = float(instance.t[-1])
        self.ctx = None
        if plan is not None:
            from ..faults.injector import FaultContext

            self.ctx = FaultContext(plan, instance.num_servers, latency=latency)
            algorithm.attach_faults(self.ctx)
        self.stream = merged_event_stream(instance, plan)
        self.pos = 0
        self._requests_delivered = 0
        self.finished = False
        algorithm.begin(instance)
        if self.ctx is not None:
            self.ctx.observe_copies(len(algorithm.rec.open_servers()), self.t0)

    # -- progress ----------------------------------------------------------------

    @property
    def done(self) -> bool:
        """True once every event has been delivered."""
        return self.pos >= len(self.stream)

    @property
    def total_events(self) -> int:
        """Length of the full delivery sequence."""
        return len(self.stream)

    @property
    def last_time(self) -> float:
        """Instant of the most recently delivered event (``t_0`` if none)."""
        if self.pos == 0:
            return self.t0
        return self.stream[self.pos - 1].time

    @property
    def requests_delivered(self) -> int:
        """How many requests have landed (they land in index order).

        Partial-result validation needs this alongside :attr:`last_time`:
        a run killed between two equal-instant events may leave a request
        undelivered *at* the time horizon, which a time bound alone
        cannot express (``validate_schedule``'s ``upto_request``).

        Maintained incrementally by :meth:`step` — supervisor budget
        polling reads this once per delivered event, and rescanning the
        stream prefix each time made those runs ``O(n²)``.  The fallback
        recount covers drivers unpickled from snapshots written before
        the counter existed.
        """
        if getattr(self, "_requests_delivered", None) is None:
            self._requests_delivered = sum(
                1 for ev in self.stream[: self.pos] if ev.kind == "request"
            )
        return self._requests_delivered

    def step(self) -> Optional[ReplayEvent]:
        """Deliver the next event; returns it, or ``None`` when done.

        Delivery contract (identical to the historic monolithic loops):
        ``advance`` processes the algorithm's own timers strictly up to
        the event instant, then the event lands, then the fault context
        observes the live-copy count so blackout windows surface.
        """
        if self.done or self.finished:
            return None
        ev = self.stream[self.pos]
        if ev.kind == "request":
            # Read via the property first: pos still excludes ev, so the
            # legacy-snapshot recount stays consistent with the counter.
            self._requests_delivered = self.requests_delivered + 1
        self.pos += 1
        algorithm = self.algorithm
        algorithm.advance(ev.time)
        if ev.kind == "request":
            algorithm.serve(ev.index, ev.time, ev.server)
        elif ev.kind == "crash":
            self.ctx.mark_down(ev.server, ev.time)
            algorithm.on_server_crash(ev.server, ev.time)
        else:
            self.ctx.mark_up(ev.server, ev.time)
            algorithm.on_server_recover(ev.server, ev.time)
        if self.ctx is not None:
            self.ctx.observe_copies(len(algorithm.rec.open_servers()), ev.time)
        return ev

    # -- results ----------------------------------------------------------------

    def finish(self) -> Union[OnlineRunResult, "FaultyRunResult"]:
        """Epilogue of a fully-delivered run; returns the run result."""
        if not self.done:
            raise RuntimeError(
                f"run not complete: {self.pos}/{len(self.stream)} events "
                f"delivered; use partial_result() for a degraded prefix"
            )
        return self._finalize(self.t_end)

    def partial_result(self) -> Union[OnlineRunResult, "FaultyRunResult"]:
        """Degraded result truncated at the last delivered event.

        A first-class partial outcome for deadline-exhausted supervised
        runs: the schedule covers exactly ``[t_0, last_time]`` and the
        fault ledger is closed at that instant.  The driver must be
        snapshotted *first* if it is ever to resume — finalisation
        consumes the algorithm state.
        """
        return self._finalize(self.last_time)

    def _finalize(self, t_cut: float):
        if self.finished:
            raise RuntimeError("run already finalised")
        self.finished = True
        base = self.algorithm.end(t_cut)
        if self.ctx is None:
            return base
        from ..faults.injector import FaultyRunResult

        ctx = self.ctx
        ctx.close(t_cut)
        self.detach()
        return FaultyRunResult(
            schedule=base.schedule,
            cost=base.cost,
            counters=base.counters,
            lifetimes=base.lifetimes,
            algorithm=base.algorithm,
            transfers=base.transfers,
            blackouts=list(ctx.blackouts),
            reseeds=list(ctx.reseeds),
            penalties=dict(ctx.penalties),
            fault_log=list(ctx.log),
            retry_latency=ctx.retry_latency,
        )

    def detach(self) -> None:
        """Clear the algorithm's fault-context reference (idempotent)."""
        if self.ctx is not None and hasattr(self.algorithm, "attach_faults"):
            self.algorithm.attach_faults(None)

    # -- introspection ----------------------------------------------------------------

    def state_summary(self) -> dict:
        """Canonical plain-data view of the whole run state for digests."""
        summary = {
            "pos": self.pos,
            "total": len(self.stream),
            "algorithm": self.algorithm.state_summary(),
        }
        if self.ctx is not None:
            summary["faults"] = self.ctx.state_summary()
        return summary


def run_online(
    algorithm: "OnlineAlgorithm",
    instance: ProblemInstance,
    fast: bool = True,
    kernel: str = "auto",
) -> OnlineRunResult:
    """Drive ``algorithm`` over ``instance`` and return the run result.

    The algorithm object is reset by the call (``begin``), so one object
    can be reused across instances; runs are deterministic given the
    algorithm's own RNG seeding.

    ``kernel`` selects the execution path (bit-identical results on all
    of them, pinned by ``tests/online/test_online_kernels.py``):

    * ``"auto"`` (default): the array-native vector kernel of
      :mod:`repro.kernels.online` when the policy is exactly
      :class:`~repro.online.speculative.SpeculativeCaching` (no
      subclass) and ``fast`` is on; the per-event path otherwise.
    * ``"event"``: always replay through the policy's own hooks.
    * ``"vector"``: require the vector kernel; raises ``ValueError``
      for policies it cannot replicate.

    On the per-event path, ``fast=True`` (default) replays through the
    array-backed loop of :mod:`repro.kernels.replay` — no per-event
    dataclass dispatch, same hook-call sequence, bit-identical results
    (the engine test-suite pins this against a stepwise
    :class:`ReplayDriver` run).  Pass ``fast=False`` to force the
    driver path, e.g. when profiling the stepwise machinery itself.
    """
    from ..kernels.online import ONLINE_KERNELS, run_online_vector, vectorizable

    if kernel not in ONLINE_KERNELS:
        raise ValueError(
            f"unknown online kernel {kernel!r}; valid: {ONLINE_KERNELS}"
        )
    if kernel == "vector" or (kernel == "auto" and fast and vectorizable(algorithm)):
        if not vectorizable(algorithm):
            raise ValueError(
                f"kernel='vector' requires a plain SpeculativeCaching "
                f"policy, got {type(algorithm).__name__}; use "
                f"kernel='event' or 'auto'"
            )
        _check_time_order(instance)
        return run_online_vector(
            instance,
            window_factor=algorithm.window_factor,
            epoch_size=algorithm.epoch_size,
            algorithm_name=algorithm.name,
        )
    if fast:
        from ..kernels.replay import replay_fault_free

        _check_time_order(instance)
        return replay_fault_free(algorithm, instance)
    driver = ReplayDriver(algorithm, instance)
    while not driver.done:
        driver.step()
    return driver.finish()


def run_online_faulty(
    algorithm: "OnlineAlgorithm",
    instance: ProblemInstance,
    plan: "FaultPlan",
    latency: Optional["LatencyModel"] = None,
) -> "FaultyRunResult":
    """Drive a fault-aware algorithm over ``instance`` under ``plan``.

    The algorithm must implement the fault hooks (``attach_faults``,
    ``on_server_crash``, ``on_server_recover``) —
    :class:`~repro.online.resilient.SpeculativeCachingResilient` is the
    reference implementation.  Delivery contract:

    * crash/recover events and requests are interleaved in time order;
      at equal instants fault events are delivered first (recoveries
      before crashes, so a returning replica target is usable at once);
    * before each fault event and each request, ``advance`` processes
      the algorithm's own timers strictly up to that instant;
    * after every delivery the engine observes the live-copy count, so
      zero-copy periods surface as *blackout* windows on the result
      instead of crashing the run.

    Determinism: a fixed ``(algorithm config, instance, plan)`` triple
    yields a bit-identical :class:`~repro.faults.injector.FaultyRunResult`
    including its fault log.
    """
    driver = ReplayDriver(algorithm, instance, plan=plan, latency=latency)
    try:
        while not driver.done:
            driver.step()
        return driver.finish()
    finally:
        driver.detach()
