"""Copy-lifetime recording for online runs.

Online algorithms create, refresh and delete copies; the recorder turns
that activity into (a) a :class:`~repro.schedule.schedule.Schedule`, (b)
aggregate counters, and (c) the per-lifetime ledger the Double-Transfer
transformation of Section V needs (each lifetime's last *useful* instant
versus its deletion instant gives the speculative tail ``ω``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..core.types import CostModel
from ..schedule.schedule import Schedule

__all__ = ["CopyLifetime", "RunRecorder", "OnlineRunResult"]


@dataclass
class CopyLifetime:
    """One contiguous stay of the item on one server.

    Attributes
    ----------
    server:
        Holder.
    start:
        Creation instant (``t_0`` for the initial copy, else the arrival
        of the incoming transfer).
    end:
        Deletion instant (``None`` while alive).
    last_refresh:
        Most recent *useful* instant: serving a local request, sourcing a
        transfer, or creation.  The speculative tail is
        ``end - last_refresh``.
    created_by:
        ``"initial"`` or ``"transfer"``.
    transfer_index:
        Index into the run's transfer list for the incoming transfer that
        created this lifetime (``-1`` for the initial copy).
    ended_by:
        ``"expire"``, ``"epoch-reset"`` or ``"truncate"``.
    """

    server: int
    start: float
    end: Optional[float] = None
    last_refresh: float = 0.0
    created_by: str = "initial"
    transfer_index: int = -1
    ended_by: str = ""

    @property
    def alive(self) -> bool:
        """True while not yet deleted."""
        return self.end is None

    def tail(self) -> float:
        """Idle time between last useful instant and deletion."""
        if self.end is None:
            raise ValueError("lifetime still alive")
        return self.end - self.last_refresh


@dataclass
class OnlineRunResult:
    """Outcome of driving an online algorithm over an instance.

    Attributes
    ----------
    schedule:
        The realised schedule (canonical form).
    cost:
        ``Π`` of the run under the instance's cost model.
    counters:
        Aggregate statistics (transfers, local hits, expirations, ...).
    lifetimes:
        Per-copy ledger in creation order.
    algorithm:
        Name of the algorithm that produced the run.
    """

    schedule: Schedule
    cost: float
    counters: Dict[str, int]
    lifetimes: List[CopyLifetime]
    algorithm: str = "unknown"
    transfers: List[tuple] = field(default_factory=list)

    def transfers_raw(self) -> List[tuple]:
        """Transfers in creation order as ``(time, src, dst)`` tuples.

        Creation order matters: :attr:`CopyLifetime.transfer_index` points
        into this list (canonicalising the schedule re-sorts its copy).
        """
        return self.transfers

    @property
    def num_transfers(self) -> int:
        """Total transfers charged."""
        return len(self.schedule.transfers)

    def __repr__(self) -> str:
        return (
            f"OnlineRunResult(algorithm={self.algorithm!r}, "
            f"cost={self.cost:.6g}, transfers={self.num_transfers})"
        )


class RunRecorder:
    """Mutable ledger an online algorithm writes while running."""

    def __init__(self, num_servers: int, model: CostModel):
        self.model = model
        self.num_servers = num_servers
        self.lifetimes: List[CopyLifetime] = []
        self._open: Dict[int, CopyLifetime] = {}
        self.transfers: List[tuple] = []  # (time, src, dst)
        self.counters: Dict[str, int] = {
            "transfers": 0,
            "local_hits": 0,
            "expirations": 0,
            "extensions": 0,
            "epochs": 0,
        }

    # -- copy events ----------------------------------------------------------

    def copy_created(
        self, server: int, t: float, created_by: str = "transfer"
    ) -> CopyLifetime:
        """Open a lifetime on ``server`` at ``t``."""
        if server in self._open:
            raise RuntimeError(f"server {server} already holds a copy")
        life = CopyLifetime(
            server=server,
            start=t,
            last_refresh=t,
            created_by=created_by,
            transfer_index=len(self.transfers) - 1 if created_by == "transfer" else -1,
        )
        self._open[server] = life
        self.lifetimes.append(life)
        return life

    def copy_refreshed(self, server: int, t: float) -> None:
        """Record a useful touch (local hit or transfer sourcing)."""
        self._open[server].last_refresh = t

    def copy_deleted(self, server: int, t: float, ended_by: str = "expire") -> None:
        """Close the lifetime on ``server`` at ``t``."""
        life = self._open.pop(server)
        life.end = t
        life.ended_by = ended_by

    def holds_copy(self, server: int) -> bool:
        """True iff a lifetime is currently open on ``server``."""
        return server in self._open

    def open_servers(self) -> List[int]:
        """Servers currently holding a copy."""
        return sorted(self._open)

    # -- transfers ----------------------------------------------------------------

    def transfer(self, src: int, dst: int, t: float) -> int:
        """Record a transfer; returns its index."""
        self.transfers.append((t, src, dst))
        self.counters["transfers"] += 1
        return len(self.transfers) - 1

    # -- introspection ----------------------------------------------------------------

    def state_summary(self) -> dict:
        """Canonical plain-data view of the ledger for state digests.

        Captures every mutable field — open and closed lifetimes,
        transfers, counters — so the digest of a restored run can only
        match the original if the recorded history is bit-identical.
        """
        return {
            "counters": dict(self.counters),
            "transfers": [list(t) for t in self.transfers],
            "open": self.open_servers(),
            "lifetimes": [
                [
                    life.server,
                    life.start,
                    life.end,
                    life.last_refresh,
                    life.created_by,
                    life.transfer_index,
                    life.ended_by,
                ]
                for life in self.lifetimes
            ],
        }

    # -- finalisation ----------------------------------------------------------------

    def finalize(self, t_end: float, algorithm: str) -> OnlineRunResult:
        """Close surviving copies at ``t_end`` and build the result.

        Truncating at the service horizon only discards speculative tails
        that extend past ``t_n``; this makes online/off-line comparisons
        apples-to-apples (the off-line optimum never caches past ``t_n``)
        and can only lower the online cost, so competitive-ratio
        measurements remain valid upper-bound witnesses.
        """
        for server in list(self._open):
            self.copy_deleted(server, t_end, ended_by="truncate")
        sched = Schedule()
        for life in self.lifetimes:
            end = life.end if life.end is not None else t_end
            sched.hold(life.server, life.start, min(end, t_end))
        for (t, src, dst) in self.transfers:
            sched.transfer(src, dst, t)
        sched = sched.canonical()
        return OnlineRunResult(
            schedule=sched,
            cost=sched.total_cost(self.model),
            counters=dict(self.counters),
            lifetimes=list(self.lifetimes),
            algorithm=algorithm,
            transfers=list(self.transfers),
        )
