"""Discrete-event simulation substrate for the online algorithms."""

from .engine import run_online, run_online_faulty
from .events import Event, EventQueue
from .recorder import CopyLifetime, OnlineRunResult, RunRecorder

__all__ = [
    "CopyLifetime",
    "Event",
    "EventQueue",
    "OnlineRunResult",
    "RunRecorder",
    "run_online",
    "run_online_faulty",
]
