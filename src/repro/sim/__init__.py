"""Discrete-event simulation substrate for the online algorithms."""

from .engine import (
    ReplayDriver,
    ReplayEvent,
    merged_event_stream,
    run_online,
    run_online_faulty,
)
from .events import Event, EventQueue
from .recorder import CopyLifetime, OnlineRunResult, RunRecorder

__all__ = [
    "CopyLifetime",
    "Event",
    "EventQueue",
    "OnlineRunResult",
    "ReplayDriver",
    "ReplayEvent",
    "RunRecorder",
    "merged_event_stream",
    "run_online",
    "run_online_faulty",
]
