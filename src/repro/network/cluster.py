"""Fully connected cluster substrate.

Models the paper's server fleet ``S = {s^1..s^m}``: a fully connected
network of cache-capable servers, optionally laid out over a planar region
so that mobility workloads can map user positions to their serving edge
server (the "next generation mobile cloud" setting of Section I).

The cluster is deliberately simple — the algorithms only need ``m`` and a
cost model — but carrying explicit server objects with positions lets the
workload generators, the trace miner and the examples speak the same
vocabulary as the paper's motivating scenario.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..core.types import CostModel
from .costmodel import HeterogeneousCostModel, homogeneous_as_heterogeneous

__all__ = ["Server", "Cluster"]


@dataclass(frozen=True)
class Server:
    """One cache-capable edge server.

    Parameters
    ----------
    sid:
        Zero-based server id.
    position:
        Optional planar coordinates of the server's site, used by mobility
        workloads to assign users to their nearest server.
    name:
        Human-readable label (defaults to ``s<id>``).
    """

    sid: int
    position: Optional[Tuple[float, float]] = None
    name: str = ""

    def label(self) -> str:
        """Display name."""
        return self.name or f"s{self.sid}"


class Cluster:
    """A fully connected fleet of servers plus its cost model.

    Parameters
    ----------
    num_servers:
        Fleet size ``m``.
    cost:
        Homogeneous cost model (the paper's regime).
    positions:
        Optional ``(m, 2)`` site coordinates.  When omitted and a layout is
        requested, :meth:`grid` or :meth:`random_layout` can build one.
    origin:
        Server initially holding the data item.
    """

    def __init__(
        self,
        num_servers: int,
        cost: Optional[CostModel] = None,
        positions: Optional[Sequence[Tuple[float, float]]] = None,
        origin: int = 0,
    ):
        if num_servers <= 0:
            raise ValueError(f"cluster needs at least one server, got {num_servers}")
        if not 0 <= origin < num_servers:
            raise ValueError(f"origin {origin} outside [0, {num_servers})")
        self.cost = cost if cost is not None else CostModel()
        self.origin = origin
        if positions is not None:
            positions = [tuple(map(float, p)) for p in positions]
            if len(positions) != num_servers:
                raise ValueError(
                    f"got {len(positions)} positions for {num_servers} servers"
                )
        self.servers: List[Server] = [
            Server(i, positions[i] if positions is not None else None)
            for i in range(num_servers)
        ]

    # -- constructors ----------------------------------------------------------

    @classmethod
    def grid(
        cls,
        rows: int,
        cols: int,
        spacing: float = 1.0,
        cost: Optional[CostModel] = None,
        origin: int = 0,
    ) -> "Cluster":
        """A ``rows × cols`` grid of edge sites with uniform spacing."""
        positions = [
            (c * spacing, r * spacing) for r in range(rows) for c in range(cols)
        ]
        return cls(rows * cols, cost=cost, positions=positions, origin=origin)

    @classmethod
    def random_layout(
        cls,
        num_servers: int,
        extent: float = 10.0,
        cost: Optional[CostModel] = None,
        origin: int = 0,
        rng: Optional[np.random.Generator] = None,
    ) -> "Cluster":
        """Servers placed uniformly at random in ``[0, extent]²``."""
        rng = rng if rng is not None else np.random.default_rng()
        pts = rng.uniform(0.0, extent, size=(num_servers, 2))
        return cls(
            num_servers,
            cost=cost,
            positions=[tuple(p) for p in pts],
            origin=origin,
        )

    # -- queries ----------------------------------------------------------------

    @property
    def num_servers(self) -> int:
        """Fleet size ``m``."""
        return len(self.servers)

    @property
    def has_layout(self) -> bool:
        """True iff all servers carry planar positions."""
        return all(s.position is not None for s in self.servers)

    def positions(self) -> np.ndarray:
        """``(m, 2)`` array of site coordinates (requires a layout)."""
        if not self.has_layout:
            raise ValueError("cluster has no planar layout")
        return np.array([s.position for s in self.servers], dtype=np.float64)

    def nearest_server(self, xy: Sequence[float]) -> int:
        """Id of the server closest to point ``xy`` (requires a layout)."""
        pts = self.positions()
        d2 = ((pts - np.asarray(xy, dtype=np.float64)) ** 2).sum(axis=1)
        return int(np.argmin(d2))

    def nearest_servers(self, xys: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`nearest_server` for an ``(k, 2)`` point array."""
        pts = self.positions()
        d2 = ((xys[:, None, :] - pts[None, :, :]) ** 2).sum(axis=2)
        return np.argmin(d2, axis=1).astype(np.int64)

    def heterogeneous_model(self) -> HeterogeneousCostModel:
        """The cluster's cost model lifted to matrix form."""
        return homogeneous_as_heterogeneous(self.cost, self.num_servers)

    def __repr__(self) -> str:
        return (
            f"Cluster(m={self.num_servers}, mu={self.cost.mu}, "
            f"lam={self.cost.lam}, origin={self.origin}, "
            f"layout={self.has_layout})"
        )
