"""Cost models for the provisioned cloud cluster.

The paper analyses the **homogeneous** model (identical ``μ`` everywhere,
identical ``λ`` between every pair) and argues it is realistic because a
provisioned data-service substrate is a subset of homogeneous resources
(Section III).  :class:`HeterogeneousCostModel` is the natural
generalisation used by the Ext E1 experiment: per-server caching rates and
a per-pair transfer-cost matrix.  Only the exact subset-state solver
honours it — the fast recurrences are *correct only under homogeneity*
(their marginal-bound bookkeeping assumes a single ``λ``), which the
extension benchmark demonstrates empirically.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..core.types import CostModel

__all__ = ["HeterogeneousCostModel", "homogeneous_as_heterogeneous"]


@dataclass
class HeterogeneousCostModel:
    """Per-server / per-pair cost model.

    Parameters
    ----------
    mu:
        Array of shape ``(m,)``: caching cost per unit time on each server.
    lam:
        Array of shape ``(m, m)``: transfer cost between each ordered pair;
        the diagonal must be zero.
    beta:
        Upload cost from external storage (``inf`` disables uploads).
    """

    mu: np.ndarray
    lam: np.ndarray
    beta: float = math.inf

    def __post_init__(self) -> None:
        self.mu = np.asarray(self.mu, dtype=np.float64)
        self.lam = np.asarray(self.lam, dtype=np.float64)
        if self.mu.ndim != 1:
            raise ValueError(f"mu must be 1-D, got shape {self.mu.shape}")
        m = self.mu.shape[0]
        if self.lam.shape != (m, m):
            raise ValueError(
                f"lam must have shape ({m}, {m}), got {self.lam.shape}"
            )
        if np.any(self.mu <= 0):
            raise ValueError("all caching rates must be positive")
        if np.any(np.diag(self.lam) != 0):
            raise ValueError("lam diagonal must be zero (no self-transfers)")
        off = self.lam[~np.eye(m, dtype=bool)]
        if np.any(off <= 0):
            raise ValueError("all pairwise transfer costs must be positive")

    @property
    def num_servers(self) -> int:
        """Fleet size ``m``."""
        return int(self.mu.shape[0])

    def check(self, m: int) -> None:
        """Raise unless this model covers exactly ``m`` servers."""
        if self.num_servers != m:
            raise ValueError(
                f"cost model covers {self.num_servers} servers, instance has {m}"
            )

    def is_homogeneous(self, rtol: float = 1e-12) -> bool:
        """True iff all rates coincide (the paper's analysed regime)."""
        m = self.num_servers
        off = self.lam[~np.eye(m, dtype=bool)]
        return bool(
            np.allclose(self.mu, self.mu[0], rtol=rtol)
            and (off.size == 0 or np.allclose(off, off[0], rtol=rtol))
        )

    def as_homogeneous(self) -> CostModel:
        """Collapse to a :class:`CostModel`; requires homogeneity."""
        if not self.is_homogeneous():
            raise ValueError("cost model is not homogeneous")
        m = self.num_servers
        off = self.lam[~np.eye(m, dtype=bool)]
        lam = float(off[0]) if off.size else 1.0
        return CostModel(mu=float(self.mu[0]), lam=lam, beta=self.beta)


def homogeneous_as_heterogeneous(
    model: CostModel, m: int
) -> HeterogeneousCostModel:
    """Lift a homogeneous model to matrix form over ``m`` servers."""
    lam = np.full((m, m), model.lam, dtype=np.float64)
    np.fill_diagonal(lam, 0.0)
    return HeterogeneousCostModel(
        mu=np.full(m, model.mu, dtype=np.float64), lam=lam, beta=model.beta
    )
