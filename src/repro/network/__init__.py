"""Cluster substrate: servers, layouts and (heterogeneous) cost models."""

from .cluster import Cluster, Server
from .costmodel import HeterogeneousCostModel, homogeneous_as_heterogeneous

__all__ = [
    "Cluster",
    "HeterogeneousCostModel",
    "Server",
    "homogeneous_as_heterogeneous",
]
