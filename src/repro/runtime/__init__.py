"""repro.runtime — crash-safe, supervised execution of engine runs.

The paper's engine is an event-ordered replay; this package makes any
such run *killable, resumable and deadline-bounded*:

* :mod:`~repro.runtime.journal` — a write-ahead JSONL event journal
  (monotone sequence numbers, per-event state digests, torn-tail
  recovery);
* :mod:`~repro.runtime.snapshot` — atomic checkpoints of the full
  engine + policy + fault-context state, including RNG streams and open
  cache intervals;
* :mod:`~repro.runtime.supervisor` — drives a run under wall-clock /
  event-count budgets, pauses into a first-class degraded partial
  result, and resumes from ``snapshot + journal tail`` bit-identically;
* :mod:`~repro.runtime.digest` — the canonical state digests the other
  three agree on.
"""

from .digest import canonical_json, digest_value, state_digest
from .journal import JournalCorruptError, RunJournal
from .snapshot import RunSnapshot, SnapshotIntegrityError
from .supervisor import (
    ResumeDivergenceError,
    RunBudget,
    SupervisedRun,
    Supervisor,
)

__all__ = [
    "JournalCorruptError",
    "ResumeDivergenceError",
    "RunBudget",
    "RunJournal",
    "RunSnapshot",
    "SnapshotIntegrityError",
    "SupervisedRun",
    "Supervisor",
    "canonical_json",
    "digest_value",
    "state_digest",
]
