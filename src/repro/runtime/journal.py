"""Write-ahead event journal for engine-driven runs.

A :class:`RunJournal` is an append-only sequence of JSON records, one per
delivered engine event, each carrying a monotone sequence number and the
post-delivery state digest.  File-backed journals are written
line-by-line (JSONL) with an ``fsync`` per append — the write-ahead
discipline: by the time a run can observe an event's effects, the event
is durable.

Recovery semantics follow the classic WAL contract: a process killed
mid-append may leave a torn final line; :meth:`RunJournal.load` drops a
trailing partial record (and only a trailing one — a torn line in the
*middle* of a journal means external corruption and raises).  Sequence
numbers must be contiguous from 0; any gap raises.

Record shapes (all plain JSON objects):

* ``{"seq": 0, "kind": "begin", ...metadata..., "digest": h}`` — run
  prologue, digest of the initial state;
* ``{"seq": k, "kind": "request"|"crash"|"recover", "time": t, ...}`` —
  the ``k``-th delivered event, digest of the state *after* delivery;
* ``{"seq": n, "kind": "finish", "cost": c, "digest": h}`` — epilogue.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Optional

__all__ = ["JournalCorruptError", "RunJournal"]


class JournalCorruptError(ValueError):
    """The journal file violates the WAL contract (non-tail corruption)."""


class RunJournal:
    """Append-only event journal, in-memory or file-backed.

    Parameters
    ----------
    path:
        JSONL file to append to (created/truncated by :meth:`open_fresh`,
        appended to after :meth:`load`).  ``None`` keeps the journal
        purely in memory — useful for supervised runs that only need
        divergence detection, not crash durability.
    sync:
        Fsync after every append (default).  Turning it off trades
        durability of the final few records for speed.
    """

    def __init__(self, path: Optional[str] = None, sync: bool = True):
        self.path = os.fspath(path) if path is not None else None
        self.sync = sync
        self.records: List[Dict] = []
        self._fh = None

    # -- lifecycle ----------------------------------------------------------------

    @classmethod
    def open_fresh(cls, path: Optional[str], sync: bool = True) -> "RunJournal":
        """Start a new journal, truncating any file at ``path``."""
        journal = cls(path, sync=sync)
        if journal.path is not None:
            journal._fh = open(journal.path, "w", encoding="utf-8")
        return journal

    @classmethod
    def load(cls, path: str, sync: bool = True) -> "RunJournal":
        """Read a journal back, dropping a torn trailing record.

        The returned journal is positioned for appending: record ``k``
        of a resumed run either *verifies* against the loaded tail or,
        past the tail, extends the file.
        """
        journal = cls(path, sync=sync)
        with open(path, "r", encoding="utf-8") as fh:
            lines = fh.read().split("\n")
        if lines and lines[-1] == "":
            lines.pop()
        for lineno, line in enumerate(lines):
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                if lineno == len(lines) - 1:
                    break  # torn tail from a mid-append kill: discard
                raise JournalCorruptError(
                    f"{path}: unparseable record at line {lineno + 1} "
                    f"(not the tail — journal corrupt)"
                )
            journal._check_next(record)
            journal.records.append(record)
        # Re-write the valid prefix if a torn tail was dropped, then append.
        journal._fh = open(path, "w", encoding="utf-8")
        for record in journal.records:
            journal._fh.write(json.dumps(record, allow_nan=True) + "\n")
        journal._fh.flush()
        return journal

    def flush(self, fsync: bool = False) -> None:
        """Flush buffered appends; optionally fsync (no-op for in-memory).

        Callers that append with ``sync=False`` for throughput (batched
        writers such as :class:`repro.service.server.CacheServer`) use
        this as an explicit durability barrier: one ``fsync`` covers the
        whole batch while the write-ahead discipline — durable before
        observable — still holds.
        """
        if self._fh is not None:
            self._fh.flush()
            if fsync:
                os.fsync(self._fh.fileno())

    def close(self) -> None:
        """Flush and close the backing file (no-op for in-memory)."""
        if self._fh is not None:
            self._fh.flush()
            self._fh.close()
            self._fh = None

    # -- appends ----------------------------------------------------------------

    def _check_next(self, record: Dict) -> None:
        seq = record.get("seq")
        if seq != len(self.records):
            raise JournalCorruptError(
                f"non-contiguous sequence: expected {len(self.records)}, "
                f"got {seq!r}"
            )
        if "digest" not in record:
            raise JournalCorruptError(f"record {seq} carries no state digest")

    def append(self, record: Dict) -> int:
        """Durably append one record; returns its sequence number.

        ``record`` must already carry ``seq`` (the next contiguous
        number) and ``digest``; the journal enforces both.
        """
        self._check_next(record)
        self.records.append(record)
        if self._fh is not None:
            self._fh.write(json.dumps(record, allow_nan=True) + "\n")
            self._fh.flush()
            if self.sync:
                os.fsync(self._fh.fileno())
        return record["seq"]

    # -- queries ----------------------------------------------------------------

    @property
    def last_seq(self) -> int:
        """Highest sequence number recorded (``-1`` when empty)."""
        return len(self.records) - 1

    def record_at(self, seq: int) -> Optional[Dict]:
        """The record with sequence number ``seq``, or ``None``."""
        if 0 <= seq < len(self.records):
            return self.records[seq]
        return None

    def digests(self) -> List[str]:
        """All recorded digests in sequence order."""
        return [r["digest"] for r in self.records]

    def __len__(self) -> int:
        return len(self.records)

    def __repr__(self) -> str:
        where = self.path if self.path is not None else "<memory>"
        return f"RunJournal({where!r}, {len(self.records)} records)"
