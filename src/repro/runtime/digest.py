"""Canonical state digests for crash-safe runs.

A *state digest* is a short hex string identifying the complete mutable
state of a :class:`~repro.sim.engine.ReplayDriver` at an event boundary:
algorithm timers and queue, recorder ledger, fault context (RNG stream
position included) and the driver's stream position.  The journal stores
one digest per sequence number, which gives resume two strong
guarantees:

* **divergence detection** — a resumed run re-executes the journal tail
  and must reproduce the recorded digest at every sequence number; the
  first mismatch aborts the resume instead of silently forking history;
* **equivalence proof** — two runs with equal digests at every sequence
  number delivered the same events to the same state, so their final
  schedules, costs and fault logs are bit-identical.

Digests are computed over a canonical JSON encoding (sorted keys, exact
float repr, NaN/Infinity allowed — SC uses ``-inf`` expiries) of the
``state_summary()`` tree, hashed with SHA-256 and truncated.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any

__all__ = ["canonical_json", "digest_value", "state_digest"]

#: Hex characters kept from the SHA-256; 16 (64 bits) is plenty for
#: divergence detection while keeping journal lines readable.
_DIGEST_LEN = 16


def canonical_json(value: Any) -> str:
    """Deterministic JSON encoding of a plain-data tree.

    Keys are sorted and floats use their exact ``repr`` (``json`` emits
    shortest-roundtrip representations), so two structurally-equal trees
    always encode identically — across processes and platforms.
    """
    return json.dumps(
        value, sort_keys=True, separators=(",", ":"), allow_nan=True
    )


def digest_value(value: Any) -> str:
    """SHA-256 (truncated) of the canonical encoding of ``value``."""
    blob = canonical_json(value).encode("utf-8")
    return hashlib.sha256(blob).hexdigest()[:_DIGEST_LEN]


def state_digest(driver) -> str:
    """Digest of a :class:`~repro.sim.engine.ReplayDriver`'s full state."""
    return digest_value(driver.state_summary())
