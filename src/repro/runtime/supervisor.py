"""Run supervision: deadline budgets, journaling, kill/resume.

The :class:`Supervisor` executes any engine-driven run (plain or
fault-injected) one event at a time, journaling every delivery with a
state digest, checkpointing periodically, and enforcing a
:class:`RunBudget`.  Three outcomes, all first-class:

* **completed** — every event delivered; the result is exactly what the
  monolithic :func:`~repro.sim.engine.run_online_faulty` would return;
* **degraded** — the budget ran out: the supervisor checkpoints the run
  (so it can still resume later), then returns a *valid partial* result
  truncated at the last journaled event, flagged with its completion
  fraction — it never raises and never silently truncates;
* **resumed** — :meth:`Supervisor.resume` rebuilds the driver from the
  latest snapshot, re-verifies every journal-tail digest as it
  re-executes, and continues; a fixed scenario killed and resumed at any
  event boundary yields a final result bit-identical to the
  uninterrupted run.

Budgets bound *this process's* work — wall-clock seconds and/or an
absolute event-sequence ceiling.  Event ceilings are deterministic and
double as chaos kill points: :mod:`repro.faults.chaos` uses them to
kill the runner itself mid-scenario and assert resume equivalence.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Optional, Union

from ..core.instance import ProblemInstance
from ..faults.plan import FaultPlan
from ..sim.engine import ReplayDriver
from ..sim.recorder import OnlineRunResult
from .digest import state_digest
from .journal import RunJournal
from .snapshot import RunSnapshot

__all__ = ["ResumeDivergenceError", "RunBudget", "SupervisedRun", "Supervisor"]


class ResumeDivergenceError(RuntimeError):
    """A resumed run failed to reproduce the journaled state digests."""


@dataclass(frozen=True)
class RunBudget:
    """Deadline bounds for one supervised execution slice.

    Parameters
    ----------
    max_events:
        Absolute event-sequence ceiling: execution pauses once this many
        events have been delivered *in total* (across run + resumes).
        Deterministic — the kill point of choice for tests and chaos.
    max_seconds:
        Wall-clock allowance for this slice, measured from the moment
        :meth:`Supervisor.run` / :meth:`Supervisor.resume` starts
        stepping.  Affects only *where* the run pauses, never any
        simulated outcome.
    """

    max_events: Optional[int] = None
    max_seconds: Optional[float] = None

    def __post_init__(self) -> None:
        if self.max_events is not None and self.max_events < 0:
            raise ValueError(f"max_events must be >= 0, got {self.max_events}")
        if self.max_seconds is not None and self.max_seconds < 0:
            raise ValueError(f"max_seconds must be >= 0, got {self.max_seconds}")


@dataclass
class SupervisedRun:
    """Outcome of one supervised execution slice.

    Attributes
    ----------
    result:
        The run result — final when :attr:`completed`, else a valid
        partial truncated at :attr:`last_time`.
    completed:
        True iff every event was delivered and the run finalised.
    completion_fraction:
        Delivered events over total events (1.0 for completed runs and
        for empty streams).
    events_delivered / events_total:
        Progress in event counts (absolute, across resumes).
    last_seq:
        Sequence number of the last journaled record.
    last_time:
        Instant of the last delivered event (``t_0`` if none) — the
        horizon the partial schedule is valid up to.
    requests_delivered:
        Requests delivered so far — pass as ``upto_request`` when
        validating a partial (equal-instant kills leave an undelivered
        request *at* ``last_time``, which the time horizon alone cannot
        express).
    resumed_from_seq:
        Snapshot sequence this slice restarted from (``None`` for a
        fresh run).
    digests:
        The journal's digest column, one entry per sequence number.
    """

    result: OnlineRunResult
    completed: bool
    completion_fraction: float
    events_delivered: int
    events_total: int
    last_seq: int
    last_time: float
    requests_delivered: int = 0
    resumed_from_seq: Optional[int] = None
    digests: list = field(default_factory=list)

    @property
    def degraded(self) -> bool:
        """True iff this is a deadline-truncated partial result."""
        return not self.completed


class Supervisor:
    """Crash-safe executor for one (algorithm, instance, plan) scenario.

    Parameters
    ----------
    algorithm_factory:
        Zero-argument callable building a *fresh* policy; called once
        per :meth:`run` (resume restores the pickled policy instead).
    instance:
        The request sequence.
    plan:
        Optional fault plan (``None`` = plain engine semantics).
    latency:
        Optional latency model for the fault context.
    journal_path / snapshot_path:
        Durable WAL and checkpoint locations.  ``None`` keeps both in
        memory: kill/resume then only works within this process via the
        supervisor's retained state (exactly what the chaos harness
        needs); cross-process crash-safety needs real paths.
    snapshot_every:
        Checkpoint cadence in events.  The supervisor also checkpoints
        unconditionally when a budget expires, so resume never replays
        more than the slice since the last boundary.
    sync:
        Fsync journal appends (see :class:`~repro.runtime.journal.RunJournal`).
    checkpoint_on_pause:
        Checkpoint at the exact pause point when a budget expires
        (default).  Disabling it leaves the last *periodic* checkpoint
        as the resume point — the state a hard process kill would leave
        behind — so resume must re-execute the journal tail; the test
        suite uses this to exercise tail replay deterministically.
    """

    def __init__(
        self,
        algorithm_factory: Callable[[], object],
        instance: ProblemInstance,
        plan: Optional[FaultPlan] = None,
        latency=None,
        journal_path: Optional[str] = None,
        snapshot_path: Optional[str] = None,
        snapshot_every: int = 64,
        sync: bool = True,
        checkpoint_on_pause: bool = True,
    ):
        if snapshot_every < 1:
            raise ValueError(f"snapshot_every must be >= 1, got {snapshot_every}")
        self.algorithm_factory = algorithm_factory
        self.instance = instance
        self.plan = plan
        self.latency = latency
        self.journal_path = journal_path
        self.snapshot_path = snapshot_path
        self.snapshot_every = snapshot_every
        self.sync = sync
        self.checkpoint_on_pause = checkpoint_on_pause
        #: Last checkpoint (kept in memory even when also written to disk).
        self.last_snapshot: Optional[RunSnapshot] = None
        self._journal: Optional[RunJournal] = None

    # -- public API ----------------------------------------------------------------

    def run(self, budget: Optional[RunBudget] = None) -> SupervisedRun:
        """Execute the scenario from the start under ``budget``."""
        driver = ReplayDriver(
            self.algorithm_factory(),
            self.instance,
            plan=self.plan,
            latency=self.latency,
        )
        journal = RunJournal.open_fresh(self.journal_path, sync=self.sync)
        journal.append(
            {
                "seq": 0,
                "kind": "begin",
                "time": driver.t0,
                "algorithm": getattr(driver.algorithm, "name", "unknown"),
                "n": self.instance.n,
                "m": self.instance.num_servers,
                "plan_seed": self.plan.seed if self.plan is not None else None,
                "events_total": driver.total_events,
                "digest": state_digest(driver),
            }
        )
        self._checkpoint(driver)
        return self._drive(driver, journal, budget, resumed_from=None)

    def resume(self, budget: Optional[RunBudget] = None) -> SupervisedRun:
        """Continue a killed or paused run from ``snapshot + journal tail``.

        Restores the latest checkpoint, then re-executes forward.  For
        every sequence number the journal already covers, the recomputed
        state digest must match the recorded one — any mismatch raises
        :class:`ResumeDivergenceError` rather than forking history.
        """
        snapshot = self._load_snapshot()
        driver = snapshot.restore()
        journal = self._load_journal()
        if journal.last_seq < snapshot.seq:
            raise ResumeDivergenceError(
                f"journal ends at seq {journal.last_seq} but snapshot is at "
                f"seq {snapshot.seq}: journal is not this run's WAL"
            )
        recorded = journal.record_at(snapshot.seq)
        if recorded is not None and recorded["digest"] != snapshot.digest:
            raise ResumeDivergenceError(
                f"snapshot digest {snapshot.digest} at seq {snapshot.seq} "
                f"contradicts journal digest {recorded['digest']}"
            )
        return self._drive(
            driver, journal, budget, resumed_from=snapshot.seq
        )

    # -- internals ----------------------------------------------------------------

    def _load_snapshot(self) -> RunSnapshot:
        if self.snapshot_path is not None:
            return RunSnapshot.load(self.snapshot_path)
        if self.last_snapshot is None:
            raise RuntimeError(
                "nothing to resume: no snapshot_path configured and no "
                "in-memory checkpoint present"
            )
        return self.last_snapshot

    def _load_journal(self) -> RunJournal:
        if self.journal_path is not None:
            return RunJournal.load(self.journal_path, sync=self.sync)
        if self._journal is None:
            raise RuntimeError(
                "nothing to resume: no journal_path configured and no "
                "in-memory journal present"
            )
        return self._journal

    def _checkpoint(self, driver: ReplayDriver) -> None:
        snapshot = RunSnapshot.capture(driver)
        self.last_snapshot = snapshot
        if self.snapshot_path is not None:
            snapshot.save(self.snapshot_path)

    def _drive(
        self,
        driver: ReplayDriver,
        journal: RunJournal,
        budget: Optional[RunBudget],
        resumed_from: Optional[int],
    ) -> SupervisedRun:
        self._journal = journal
        budget = budget or RunBudget()
        deadline = (
            time.monotonic() + budget.max_seconds
            if budget.max_seconds is not None
            else None
        )
        while not driver.done:
            if budget.max_events is not None and driver.pos >= budget.max_events:
                return self._pause(driver, journal, resumed_from)
            if deadline is not None and time.monotonic() >= deadline:
                return self._pause(driver, journal, resumed_from)
            ev = driver.step()
            seq = driver.pos
            digest = state_digest(driver)
            record = {
                "seq": seq,
                "kind": ev.kind,
                "time": ev.time,
                "index": ev.index,
                "server": ev.server,
                "digest": digest,
            }
            recorded = journal.record_at(seq)
            if recorded is not None:
                if recorded["digest"] != digest:
                    raise ResumeDivergenceError(
                        f"resume diverged at seq {seq}: recomputed digest "
                        f"{digest} != journaled {recorded['digest']}"
                    )
            else:
                journal.append(record)
            if driver.pos % self.snapshot_every == 0 and not driver.done:
                self._checkpoint(driver)
        # Epilogue: finalise, journal the outcome, release the WAL.
        result = driver.finish()
        seq = driver.pos + 1
        if journal.record_at(seq) is None:
            journal.append(
                {
                    "seq": seq,
                    "kind": "finish",
                    "time": driver.t_end,
                    "cost": result.cost,
                    "digest": journal.records[-1]["digest"],
                }
            )
        journal.close()
        return SupervisedRun(
            result=result,
            completed=True,
            completion_fraction=1.0,
            events_delivered=driver.pos,
            events_total=driver.total_events,
            last_seq=journal.last_seq,
            last_time=driver.t_end,
            requests_delivered=driver.requests_delivered,
            resumed_from_seq=resumed_from,
            digests=journal.digests(),
        )

    def _pause(
        self,
        driver: ReplayDriver,
        journal: RunJournal,
        resumed_from: Optional[int],
    ) -> SupervisedRun:
        """Budget exhausted: checkpoint, then return a degraded partial."""
        if self.checkpoint_on_pause:
            self._checkpoint(driver)  # before partial_result consumes the state
        total = driver.total_events
        delivered = driver.pos
        last_time = driver.last_time
        requests_delivered = driver.requests_delivered
        result = driver.partial_result()
        journal.close()
        return SupervisedRun(
            result=result,
            completed=False,
            completion_fraction=(delivered / total) if total else 1.0,
            events_delivered=delivered,
            events_total=total,
            last_seq=journal.last_seq,
            last_time=last_time,
            requests_delivered=requests_delivered,
            resumed_from_seq=resumed_from,
            digests=journal.digests(),
        )
