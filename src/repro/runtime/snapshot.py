"""Checkpoints: full engine + policy + fault-context state snapshots.

A :class:`RunSnapshot` captures a :class:`~repro.sim.engine.ReplayDriver`
wholesale — algorithm timers and event queue, recorder ledger (including
*open* cache intervals), fault context with its live RNG stream, retry
and penalty ledgers, and the driver's stream position — by pickling the
driver object graph.  Restoring the pickle in a fresh process yields a
driver that continues the run bit-identically; the recorded state digest
lets the restorer verify integrity before trusting it.

Snapshots are written atomically (temp file + ``os.replace``) so a kill
during checkpointing can never destroy the previous good snapshot.
"""

from __future__ import annotations

import os
import pickle
from dataclasses import dataclass

from ..sim.engine import ReplayDriver
from .digest import state_digest

__all__ = ["RunSnapshot", "SnapshotIntegrityError"]

#: Format marker so a future layout change fails loudly, not weirdly.
_FORMAT = "repro-runtime-snapshot-v1"


class SnapshotIntegrityError(RuntimeError):
    """A restored snapshot does not reproduce its recorded digest."""


@dataclass
class RunSnapshot:
    """One durable checkpoint of a run.

    Attributes
    ----------
    seq:
        Sequence number (events delivered) at capture time.
    digest:
        State digest at capture time.
    blob:
        Pickled driver.
    """

    seq: int
    digest: str
    blob: bytes

    @classmethod
    def capture(cls, driver: ReplayDriver) -> "RunSnapshot":
        """Snapshot ``driver`` between two steps."""
        if driver.finished:
            raise RuntimeError("cannot snapshot a finalised run")
        return cls(
            seq=driver.pos,
            digest=state_digest(driver),
            blob=pickle.dumps(driver, protocol=pickle.HIGHEST_PROTOCOL),
        )

    def restore(self) -> ReplayDriver:
        """Rebuild the driver and verify it against the recorded digest."""
        driver = pickle.loads(self.blob)
        got = state_digest(driver)
        if got != self.digest or driver.pos != self.seq:
            raise SnapshotIntegrityError(
                f"restored state digest {got} at seq {driver.pos} does not "
                f"match snapshot ({self.digest} at seq {self.seq})"
            )
        return driver

    # -- persistence ----------------------------------------------------------------

    def save(self, path: str) -> None:
        """Atomically write the snapshot to ``path``."""
        payload = {
            "format": _FORMAT,
            "seq": self.seq,
            "digest": self.digest,
            "blob": self.blob,
        }
        tmp = f"{path}.tmp"
        with open(tmp, "wb") as fh:
            pickle.dump(payload, fh, protocol=pickle.HIGHEST_PROTOCOL)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)

    @classmethod
    def load(cls, path: str) -> "RunSnapshot":
        """Read a snapshot written by :meth:`save`."""
        with open(path, "rb") as fh:
            payload = pickle.load(fh)
        if not isinstance(payload, dict) or payload.get("format") != _FORMAT:
            raise SnapshotIntegrityError(
                f"{path}: not a {_FORMAT} file"
            )
        return cls(
            seq=payload["seq"], digest=payload["digest"], blob=payload["blob"]
        )

    def size_bytes(self) -> int:
        """Pickled payload size (diagnostics)."""
        return len(self.blob)
