"""Named-experiment registry: regenerate paper tables from the CLI.

Each entry maps an experiment id from DESIGN.md's index to a compact
function returning the regenerated table as text.  The pytest benchmark
suite remains the authoritative, assertion-carrying harness; this
registry exists so ``repro-cache experiment <id>`` can reproduce any
table without a test runner — the "show me the numbers" path for a
downstream user.
"""

from __future__ import annotations

from typing import Callable, Dict, List

import numpy as np

from ..offline.dp import solve_offline
from ..online.double_transfer import double_transfer
from ..online.reductions import verify_theorem3
from ..online.speculative import SpeculativeCaching
from .competitive import adversarial_gap_sweep, ratio_statistics
from .tables import format_table

__all__ = ["EXPERIMENTS", "run_experiment", "list_experiments"]


def _exp_fig6() -> str:
    from ..paperdata import fig6_instance

    inst = fig6_instance()
    res = solve_offline(inst)
    rows = [
        {
            "i": i,
            "t_i": float(inst.t[i]),
            "s_i": f"s^{int(inst.srv[i]) + 1}",
            "b_i": float(inst.b[i]),
            "B_i": float(inst.B[i]),
            "C(i)": float(res.C[i]),
            "D(i)": float(res.D[i]),
        }
        for i in range(inst.n + 1)
    ]
    return format_table(
        rows, precision=4, title="Fig 6 running example (paper: C(7)=8.9)"
    )


def _exp_fig2() -> str:
    from ..paperdata import fig2_instance

    inst = fig2_instance()
    sched = solve_offline(inst).schedule()
    rows = [
        {
            "caching": sched.caching_cost(inst.cost),
            "transfer": sched.transfer_cost(inst.cost),
            "total": sched.total_cost(inst.cost),
            "paper": "3.2 + 4.0 = 7.2",
        }
    ]
    return format_table(rows, precision=4, title="Fig 2 decomposition")


def _exp_fig7() -> str:
    from ..paperdata import fig7_instance
    from ..schedule.diagram import render_schedule

    inst = fig7_instance()
    run = SpeculativeCaching(epoch_size=5).run(inst)
    table = format_table(
        [dict(run.counters, cost=run.cost)],
        precision=4,
        title="Fig 7 SC epoch (5 transfers)",
    )
    return table + "\n" + render_schedule(run.schedule, inst)


def _exp_dt_chain() -> str:
    from ..workloads.synthetic import poisson_zipf_instance

    rows = []
    for seed in range(5):
        inst = poisson_zipf_instance(60, 5, rate=1.2, rng=seed)
        rep = verify_theorem3(inst)
        rows.append(
            {
                "seed": seed,
                "Π(SC)": rep.sc_cost,
                "Π(OPT)": rep.opt_cost,
                "ratio": rep.ratio,
                "Π(DT')": rep.dt_reduced,
                "3n'λ": rep.lemma7_bound,
                "Π(OPT')": rep.opt_reduced,
                "n'λ": rep.lemma8_bound,
                "holds": rep.holds(),
            }
        )
    return format_table(rows, precision=5, title="Theorem 3 chain (Figs 8-10)")


def _exp_table1() -> str:
    from ..classic.paging import LRU, BeladyMIN, simulate_paging
    from ..workloads.synthetic import poisson_zipf_instance

    inst = poisson_zipf_instance(400, 8, rate=1.5, zipf_s=1.1, rng=42)
    res = solve_offline(inst)
    pages = inst.srv[1:].tolist()
    belady = simulate_paging(pages, 3, BeladyMIN())
    lru = simulate_paging(pages, 3, LRU())
    sc = SpeculativeCaching().run(inst)
    rows = [
        {
            "regime": "classic (capacity k=3)",
            "off-line optimum": f"Belady hit ratio {belady.hit_ratio:.3f}",
            "online": f"LRU hit ratio {lru.hit_ratio:.3f}",
        },
        {
            "regime": "cloud (cost-driven)",
            "off-line optimum": f"O(mn) DP cost {res.optimal_cost:.4g}",
            "online": f"SC cost {sc.cost:.4g} "
            f"(ratio {sc.cost / res.optimal_cost:.3f})",
        },
    ]
    return format_table(rows, title="Table I contrast, regenerated")


def _exp_ratio() -> str:
    from ..workloads.synthetic import mmpp_instance, poisson_zipf_instance

    rows = []
    for name, insts in (
        (
            "poisson-zipf",
            [poisson_zipf_instance(120, 6, rate=1.2, rng=s) for s in range(8)],
        ),
        ("bursty-mmpp", [mmpp_instance(120, 6, rng=s) for s in range(8)]),
    ):
        stats = ratio_statistics(insts)
        rows.append(
            {
                "workload": name,
                "mean": stats.mean,
                "p95": stats.p95,
                "worst": stats.worst,
                "bound": 3.0,
            }
        )
    return format_table(rows, precision=4, title="C2: empirical SC/OPT ratios")


def _exp_adversary() -> str:
    rows = adversarial_gap_sweep(m=4, rounds=20)
    return format_table(
        rows, precision=4, title="C2: cyclic adversary gap sweep (m=4)"
    )


def _exp_ladder() -> str:
    from ..online.horizon import RecedingHorizonPlanner
    from ..online.predictive import (
        MarkovPredictor,
        OracleNextRequest,
        PredictiveCaching,
    )
    from ..workloads.synthetic import poisson_zipf_instance

    insts = [poisson_zipf_instance(100, 5, rate=1.0, rng=s) for s in range(6)]
    opts = [solve_offline(i).optimal_cost for i in insts]
    rows = []
    for name, factory in (
        ("SC", lambda: SpeculativeCaching()),
        ("markov", lambda: PredictiveCaching(MarkovPredictor())),
        ("lookahead k=5", lambda: PredictiveCaching(OracleNextRequest(horizon=5))),
        ("oracle", lambda: PredictiveCaching(OracleNextRequest())),
        ("MPC k=5", lambda: RecedingHorizonPlanner(horizon=5)),
    ):
        ratios = [factory().run(i).cost / o for i, o in zip(insts, opts)]
        rows.append({"policy": name, "mean ratio": float(np.mean(ratios))})
    rows.append({"policy": "OPT", "mean ratio": 1.0})
    return format_table(rows, precision=4, title="E2: information ladder")


def _exp_multi_item() -> str:
    from ..service.multi import (
        MultiItemOnlineService,
        multi_item_workload,
        solve_offline_multi,
    )

    svc = multi_item_workload(8, 400, 8, rng=8)
    off = solve_offline_multi(svc)
    online = MultiItemOnlineService(lambda: SpeculativeCaching()).run(svc)
    rows = [
        {
            "items": svc.num_items,
            "requests": svc.total_requests,
            "opt cost": off.total_cost,
            "SC cost": online.total_cost,
            "SC/OPT": online.total_cost / off.total_cost,
        }
    ]
    return format_table(rows, precision=4, title="E3: multi-item service")


EXPERIMENTS: Dict[str, Callable[[], str]] = {
    "fig2": _exp_fig2,
    "fig6": _exp_fig6,
    "fig7": _exp_fig7,
    "dt-chain": _exp_dt_chain,
    "table1": _exp_table1,
    "ratio": _exp_ratio,
    "adversary": _exp_adversary,
    "ladder": _exp_ladder,
    "multi-item": _exp_multi_item,
}


def list_experiments() -> List[str]:
    """Registered experiment ids, sorted."""
    return sorted(EXPERIMENTS)


def run_experiment(name: str) -> str:
    """Regenerate one experiment's table; raises ``KeyError`` on unknown id."""
    if name not in EXPERIMENTS:
        raise KeyError(
            f"unknown experiment {name!r}; choose from {list_experiments()}"
        )
    return EXPERIMENTS[name]()
