"""Closed-form costs for analytically tractable workloads.

Where the optimal (or a policy's) cost has a hand-derivable formula, the
formula belongs in the library: it documents the theory and gives the
test-suite oracle values that are independent of every solver.

* :func:`single_server_optimal` — all requests on one server: the
  optimum is forced (rent the whole horizon, plus one transfer if the
  server is not the origin).
* :func:`never_delete_cost` — the NeverDelete policy's bill in closed
  form: each touched server rents from its first request to the horizon,
  plus one transfer per newly touched non-origin server.
* :func:`migration_only_cost` — re-exported from the space-time module.
* :func:`round_robin_envelope` — upper/lower envelope for the cyclic
  workload (``m`` servers, fixed gap ``g``): the optimum is bracketed by
  the running bound from below and the best of three pure strategies
  (park-and-transfer / cache-everywhere / migrate) from above.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.instance import ProblemInstance
from ..core.types import CostModel
from ..schedule.spacetime import migration_only_cost

__all__ = [
    "single_server_optimal",
    "never_delete_cost",
    "migration_only_cost",
    "RoundRobinEnvelope",
    "round_robin_envelope",
]


def single_server_optimal(instance: ProblemInstance) -> float:
    """Optimal cost when every request hits one server.

    Coverage forces ``μ·(t_n − t_0)`` of rent; if the requests' server is
    not the origin exactly one transfer is unavoidable (and sufficient).
    Raises if the instance touches more than one server.
    """
    servers = set(int(s) for s in instance.srv[1:])
    if len(servers) > 1:
        raise ValueError(f"instance touches several servers: {sorted(servers)}")
    if not servers:
        return 0.0
    s = servers.pop()
    rent = instance.cost.mu * instance.horizon
    return rent + (instance.cost.lam if s != instance.origin else 0.0)


def never_delete_cost(instance: ProblemInstance) -> float:
    """Closed-form bill of the NeverDelete policy.

    The origin copy rents the whole horizon; every other touched server
    rents from its first request to ``t_n`` and pays one incoming
    transfer.  (Runs are horizon-truncated, matching the online engine.)
    """
    mu, lam = instance.cost.mu, instance.cost.lam
    t_end = float(instance.t[-1])
    total = mu * instance.horizon  # origin copy
    seen = {instance.origin}
    for i in range(1, instance.n + 1):
        s = int(instance.srv[i])
        if s not in seen:
            seen.add(s)
            total += lam + mu * (t_end - float(instance.t[i]))
    return total


@dataclass(frozen=True)
class RoundRobinEnvelope:
    """Cost envelope for the cyclic workload.

    Attributes
    ----------
    lower:
        The running bound ``B_n`` (``n · min(λ, μ·m·g)``) plus the
        mandatory coverage rent not counted by marginal services.
    park:
        Park the copy on one server; transfer to every request off it.
    cache_all:
        Bring every server a copy on its first request and keep all.
    migrate:
        Single copy following the requests.
    """

    lower: float
    park: float
    cache_all: float
    migrate: float

    @property
    def upper(self) -> float:
        """Best pure strategy."""
        return min(self.park, self.cache_all, self.migrate)


def round_robin_envelope(
    m: int, gap: float, rounds: int, cost: CostModel
) -> RoundRobinEnvelope:
    """Envelope for ``rounds`` cycles of ``m`` servers at fixed ``gap``.

    Requests hit servers ``1, 2, .., m-1, 0, 1, ..`` at times
    ``g, 2g, ..`` with the item starting on server 0 at ``t = 0``
    (matching :func:`repro.analysis.competitive.cyclic_adversary`).
    """
    if m < 2 or rounds < 1 or gap <= 0:
        raise ValueError("need m >= 2, rounds >= 1, gap > 0")
    n = m * rounds
    mu, lam = cost.mu, cost.lam
    horizon = n * gap

    # Lower: the running bound B_n.  Servers 1..m-1 see their first
    # request with an infinite server interval (b = λ); server 0's first
    # request r_m links back to the boundary request r_0 (σ = m·g); every
    # later request has σ = m·g.
    first = min(m - 1, n)
    b_later = min(lam, mu * m * gap)
    lower = first * lam + max(0, n - first) * b_later

    # Park on server 0: rent the horizon; every request not on server 0
    # pays a transfer.  Server 0 is hit `rounds` times (pattern 1..m-1,0).
    park = mu * horizon + lam * (n - rounds)

    # Cache-everywhere: server j's copy arrives at its first request and
    # rents to the horizon; m-1 incoming transfers (origin already holds).
    cache_all = mu * horizon  # origin copy
    for j in range(1, m):
        first_hit = j * gap
        cache_all += lam + mu * (horizon - first_hit)

    migrate = mu * horizon + lam * n  # every request switches servers

    return RoundRobinEnvelope(
        lower=float(lower),
        park=float(park),
        cache_all=float(cache_all),
        migrate=float(migrate),
    )
