"""Process-parallel execution of sweeps and ratio studies.

Benchmark sweeps are embarrassingly parallel — independent instances,
independent solvers — and the heavy ones (exact oracles, wide beams,
many seeds) benefit from fanning out across cores.  This module wraps
``concurrent.futures.ProcessPoolExecutor`` with the project's
conventions:

* work items must be *module-level callables plus picklable arguments*
  (lambdas are rejected early with a clear message rather than a dead
  pool);
* results return in submission order, so parallel and serial runs are
  bit-identical and the test-suite asserts that;
* ``processes=1`` bypasses the pool entirely (no fork cost in tests or
  on single-core boxes).
"""

from __future__ import annotations

import functools
import itertools
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from .sweeps import Sweep

__all__ = ["parallel_map", "sweep_parallel", "ratio_study"]


def _check_picklable_callable(fn: Callable) -> None:
    """Fail fast on callables that cannot cross a process boundary.

    ``functools.partial`` pickles by reference to its ``func``, and a bound
    method pickles by reference to its underlying function — so a partial
    over a lambda (or a method of a class defined inside a function) kills
    the pool mid-run unless the wrapper chain is unwrapped here first.
    """
    root: Any = fn
    while True:
        if isinstance(root, functools.partial):
            root = root.func
            continue
        underlying = getattr(root, "__func__", None)  # bound (class)methods
        if underlying is not None and underlying is not root:
            root = underlying
            continue
        break
    name = getattr(root, "__name__", "")
    qualname = getattr(root, "__qualname__", "")
    if name == "<lambda>" or "<locals>" in qualname:
        raise ValueError(
            f"{fn!r} cannot cross process boundaries; use a module-level "
            f"function (functools.partial over one is fine)"
        )


def parallel_map(
    fn: Callable[..., Any],
    args_list: Sequence[Tuple],
    processes: Optional[int] = None,
) -> List[Any]:
    """``[fn(*args) for args in args_list]`` across a process pool.

    Parameters
    ----------
    fn:
        Module-level callable (must survive pickling).
    args_list:
        One argument tuple per task.
    processes:
        Pool size; ``1`` (or an empty task list) runs serially in-process.
    """
    if processes is not None and processes < 1:
        raise ValueError(f"processes must be >= 1, got {processes}")
    if processes == 1 or not args_list:
        return [fn(*args) for args in args_list]
    _check_picklable_callable(fn)
    with ProcessPoolExecutor(max_workers=processes) as pool:
        futures = [pool.submit(fn, *args) for args in args_list]
        return [f.result() for f in futures]


def sweep_parallel(
    grid: Mapping[str, Iterable[Any]],
    measure: Callable[..., Mapping[str, Any]],
    processes: Optional[int] = None,
) -> Sweep:
    """Parallel twin of :func:`repro.analysis.sweeps.sweep`.

    Grid points are distributed over the pool; row order equals the
    serial sweep's product order regardless of completion order.
    """
    keys = list(grid.keys())
    points = [
        dict(zip(keys, combo))
        for combo in itertools.product(*(list(grid[k]) for k in keys))
    ]
    results = parallel_map(
        _measure_kwargs, [(measure, p) for p in points], processes=processes
    )
    out = Sweep()
    for point, result in zip(points, results):
        row = dict(point)
        row.update(result)
        out.rows.append(row)
    return out


def _measure_kwargs(measure: Callable[..., Mapping[str, Any]], point: Dict) -> Dict:
    return dict(measure(**point))


def _ratio_block(
    workload_fn: Callable,
    seeds: Sequence[int],
    algo_factory: Callable,
    kernel: str = "auto",
) -> List[float]:
    """Ratios for one seed block: ONE batched online + ONE batched DP call."""
    from .competitive import _online_costs, _opt_costs, _ratios

    insts = [workload_fn(int(s)) for s in seeds]
    opts = _opt_costs(insts)
    costs = _online_costs(insts, algo_factory, kernel=kernel)
    return _ratios(costs, opts)


def ratio_study(
    workload_fn: Callable[[int], Any],
    seeds: Sequence[int],
    algo_factory: Callable[[], Any],
    processes: Optional[int] = None,
    kernel: str = "auto",
    block_size: Optional[int] = None,
) -> List[float]:
    """Per-seed ``Π(ALG)/Π(OPT)`` ratios, optionally across a pool.

    ``workload_fn(seed)`` builds the instance; ``algo_factory()`` builds
    a fresh policy.  Both must be module-level for ``processes > 1``.

    Seeds are chunked into blocks (default: one per process) and each
    block is measured with ONE batched online-kernel call paired with
    ONE batched DP call — no per-seed Python dispatch.  Results are
    flattened back in seed order, so the study is bit-identical to the
    historic per-seed loop regardless of ``processes`` or
    ``block_size``; ``kernel="event"`` pins the per-event oracle path.
    """
    seeds = [int(s) for s in seeds]
    if not seeds:
        return []
    if block_size is None:
        workers = processes if processes is not None and processes > 1 else 1
        block_size = max(1, -(-len(seeds) // workers))
    if block_size < 1:
        raise ValueError(f"block_size must be >= 1, got {block_size}")
    blocks = [seeds[i : i + block_size] for i in range(0, len(seeds), block_size)]
    results = parallel_map(
        _ratio_block,
        [(workload_fn, block, algo_factory, kernel) for block in blocks],
        processes=processes,
    )
    return [r for block in results for r in block]
