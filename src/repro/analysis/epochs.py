"""Per-epoch competitive accounting.

Theorem 3's statement is *per epoch*: within each run of ``E`` transfers
SC pays at most three times what the optimum would pay for the same
stretch (starting from the epoch's hand-over state).  This module slices
an instance along the epoch boundaries an SC run actually produced and
evaluates the bound segment by segment — turning the proof's structure
into a measurable table.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..core.instance import ProblemInstance
from ..core.transforms import split_at
from ..offline.dp import solve_offline
from ..online.speculative import SpeculativeCaching

__all__ = ["EpochRow", "epoch_report"]


@dataclass(frozen=True)
class EpochRow:
    """One epoch's accounting.

    Attributes
    ----------
    index:
        Epoch number (0-based).
    first_request, last_request:
        Request-index range (1-based, inclusive) the epoch served.
    sc_cost:
        SC's cost attributed to the epoch's time span.
    opt_cost:
        Optimal cost of serving the epoch's requests from the hand-over
        state (previous epoch's final request server).
    """

    index: int
    first_request: int
    last_request: int
    sc_cost: float
    opt_cost: float

    @property
    def ratio(self) -> float:
        """Per-epoch empirical ratio."""
        return self.sc_cost / self.opt_cost if self.opt_cost > 0 else float("inf")


def epoch_report(
    instance: ProblemInstance, epoch_size: int, max_epochs: Optional[int] = None
) -> List[EpochRow]:
    """Evaluate the per-epoch Theorem-3 accounting on ``instance``.

    Runs SC with ``epoch_size`` transfers per epoch, splits the request
    sequence at the realised epoch boundaries, and solves each segment
    optimally from its hand-over state.  The sum of per-epoch optima can
    exceed the global optimum (hand-over states are SC's, not OPT's), so
    per-epoch ratios are *conservative* — they still must sit under 3.
    """
    if epoch_size < 1:
        raise ValueError(f"epoch_size must be >= 1, got {epoch_size}")
    run = SpeculativeCaching(epoch_size=epoch_size).run(instance)

    # Epoch boundaries = request indices whose service completed an epoch.
    boundaries: List[int] = []
    transfers_seen = 0
    tr_times = sorted(t for (t, _s, _d) in run.transfers)
    idx = 0
    for i in range(1, instance.n + 1):
        t_i = float(instance.t[i])
        while idx < len(tr_times) and tr_times[idx] <= t_i:
            idx += 1
            transfers_seen += 1
            if transfers_seen % epoch_size == 0:
                boundaries.append(i)
    if not boundaries or boundaries[-1] != instance.n:
        boundaries.append(instance.n)

    rows: List[EpochRow] = []
    remaining = instance
    consumed = 0
    for e, boundary in enumerate(boundaries):
        if max_epochs is not None and e >= max_epochs:
            break
        count = boundary - consumed
        head, tail = split_at(remaining, count)
        t_lo = float(head.t[0])
        t_hi = float(head.t[-1]) if head.n else t_lo
        sc_cost = _cost_in_span(run, instance.cost, t_lo, t_hi)
        opt_cost = solve_offline(head).optimal_cost
        rows.append(
            EpochRow(
                index=e,
                first_request=consumed + 1,
                last_request=boundary,
                sc_cost=sc_cost,
                opt_cost=opt_cost,
            )
        )
        remaining = tail
        consumed = boundary
    return rows


def _cost_in_span(run, cost, t_lo: float, t_hi: float) -> float:
    """SC cost attributed to ``[t_lo, t_hi]`` (rent clipped, transfers by
    instant; boundary transfers belong to the epoch they complete)."""
    caching = sum(
        max(0.0, min(iv.end, t_hi) - max(iv.start, t_lo))
        for iv in run.schedule.canonical().intervals
    )
    transfers = sum(1 for (t, _s, _d) in run.transfers if t_lo < t <= t_hi)
    return cost.mu * caching + cost.lam * transfers
