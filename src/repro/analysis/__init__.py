"""Analysis layer: competitive measurement, sweeps, table formatting."""

from .competitive import (
    RatioStats,
    adversarial_gap_sweep,
    alternating_adversary,
    cyclic_adversary,
    empirical_ratio,
    ratio_grid,
    ratio_statistics,
    ttl_gamma_sweep,
)
from .bootstrap import BootstrapCI, bootstrap_ci, bootstrap_mean_ratio
from .calibration import PRICE_POINTS, PricingPlan, calibrate, describe_window
from .epochs import EpochRow, epoch_report
from .experiments import list_experiments, run_experiment
from .parallel import parallel_map, ratio_study, sweep_parallel
from .sweeps import Sweep, sweep, timed
from .tables import format_markdown, format_series, format_table
from .theory import (
    RoundRobinEnvelope,
    never_delete_cost,
    round_robin_envelope,
    single_server_optimal,
)

__all__ = [
    "BootstrapCI",
    "EpochRow",
    "PRICE_POINTS",
    "PricingPlan",
    "RatioStats",
    "RoundRobinEnvelope",
    "Sweep",
    "adversarial_gap_sweep",
    "alternating_adversary",
    "cyclic_adversary",
    "empirical_ratio",
    "format_markdown",
    "format_series",
    "format_table",
    "bootstrap_ci",
    "bootstrap_mean_ratio",
    "calibrate",
    "describe_window",
    "epoch_report",
    "list_experiments",
    "never_delete_cost",
    "parallel_map",
    "ratio_grid",
    "ratio_statistics",
    "ratio_study",
    "ttl_gamma_sweep",
    "round_robin_envelope",
    "run_experiment",
    "single_server_optimal",
    "sweep",
    "sweep_parallel",
    "timed",
]
