"""Parameter-sweep harness shared by the benchmark suite.

A sweep runs a measurement function over a parameter grid, collecting one
row dict per point; timing is measured with ``perf_counter`` so benches
can report scaling series without pytest-benchmark's repetition overhead
where a single representative timing per point suffices (pytest-benchmark
still times the headline kernels).
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Mapping, Sequence

__all__ = ["sweep", "timed", "Sweep"]


def timed(fn: Callable[[], Any]) -> Dict[str, Any]:
    """Run ``fn`` once, returning ``{"seconds": wall_time, "value": result}``."""
    t0 = time.perf_counter()
    value = fn()
    return {"seconds": time.perf_counter() - t0, "value": value}


@dataclass
class Sweep:
    """Collected sweep rows with table/series export."""

    rows: List[Dict[str, Any]] = field(default_factory=list)

    def add(self, **row: Any) -> None:
        """Append one row."""
        self.rows.append(row)

    def column(self, name: str) -> List[Any]:
        """Values of one column across rows."""
        return [r[name] for r in self.rows]

    def table(self, headers: Sequence[str] = None, **kwargs) -> str:
        """Render as ASCII via :func:`repro.analysis.tables.format_table`."""
        from .tables import format_table

        return format_table(self.rows, headers=headers, **kwargs)

    def __len__(self) -> int:
        return len(self.rows)


def sweep(
    grid: Mapping[str, Iterable[Any]],
    measure: Callable[..., Mapping[str, Any]],
) -> Sweep:
    """Run ``measure(**point)`` over the Cartesian product of ``grid``.

    Each call's returned mapping is merged with the grid point to form a
    row.  Iteration order is the product order of the grid's insertion
    order, so results are deterministic.
    """
    out = Sweep()
    keys = list(grid.keys())
    for combo in itertools.product(*(list(grid[k]) for k in keys)):
        point = dict(zip(keys, combo))
        result = measure(**point)
        row = dict(point)
        row.update(result)
        out.rows.append(row)
    return out
