"""Plain-text table / series formatting for benchmark output.

Benchmarks print the rows they regenerate in the same shape the paper
reports them (EXPERIMENTS.md cross-references these).  The formatter is
dependency-free: fixed-width ASCII with right-aligned numerics, plus a
Markdown variant for dropping straight into the docs.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

__all__ = ["format_table", "format_markdown", "format_series"]


def _render_cell(value: Any, precision: int) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.{precision}g}"
    return str(value)


def _normalise(
    rows: Sequence[Dict[str, Any]],
    headers: Optional[Sequence[str]],
    precision: int,
) -> Tuple[List[str], List[List[str]]]:
    if not rows:
        raise ValueError("need at least one row")
    cols = list(headers) if headers is not None else list(rows[0].keys())
    table = [
        [_render_cell(r.get(c, ""), precision) for c in cols] for r in rows
    ]
    return cols, table


def format_table(
    rows: Sequence[Dict[str, Any]],
    headers: Optional[Sequence[str]] = None,
    precision: int = 5,
    title: Optional[str] = None,
) -> str:
    """Fixed-width ASCII table from a list of row dicts."""
    cols, table = _normalise(rows, headers, precision)
    widths = [
        max(len(c), *(len(row[i]) for row in table)) for i, c in enumerate(cols)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(c.rjust(w) for c, w in zip(cols, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in table:
        lines.append("  ".join(v.rjust(w) for v, w in zip(row, widths)))
    return "\n".join(lines)


def format_markdown(
    rows: Sequence[Dict[str, Any]],
    headers: Optional[Sequence[str]] = None,
    precision: int = 5,
) -> str:
    """GitHub-flavoured Markdown table from a list of row dicts."""
    cols, table = _normalise(rows, headers, precision)
    lines = ["| " + " | ".join(cols) + " |"]
    lines.append("|" + "|".join("---" for _ in cols) + "|")
    for row in table:
        lines.append("| " + " | ".join(row) + " |")
    return "\n".join(lines)


def format_series(
    xs: Sequence[Any],
    ys: Sequence[Any],
    x_label: str = "x",
    y_label: str = "y",
    precision: int = 5,
) -> str:
    """Two-column series (a 'figure' in text form)."""
    rows = [{x_label: x, y_label: y} for x, y in zip(xs, ys)]
    return format_table(rows, headers=[x_label, y_label], precision=precision)
