"""Calibrating the abstract cost model from cloud pricing.

The paper's premise is that next-generation caching is *monetary*.  This
module closes the loop from real pricing structure to the model's two
parameters:

* ``μ`` (cost per unit time of one cached copy) comes from a storage
  price in $/GB·month and the item size;
* ``λ`` (cost per transfer) comes from a data-egress price in $/GB plus
  an optional per-request charge.

The interesting derived quantity is the speculative window
``Δt = λ/μ`` — *how long a copy is worth keeping idle* — which for
typical object-store pricing comes out at **days to weeks**, a
vivid sanity check that cost-driven caching is nothing like RAM caching.

The bundled :data:`PRICE_POINTS` are representative, rounded list-price
figures for three common provider tiers (documented as illustrative, not
quotes); pass your own :class:`PricingPlan` for anything load-bearing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..core.types import CostModel

__all__ = ["PricingPlan", "PRICE_POINTS", "calibrate", "describe_window"]

_HOURS_PER_MONTH = 730.0


@dataclass(frozen=True)
class PricingPlan:
    """Cloud pricing inputs.

    Parameters
    ----------
    storage_per_gb_month:
        $ per GB-month of cached storage.
    egress_per_gb:
        $ per GB moved between servers/regions.
    request_fee:
        Flat $ per transfer operation (often ~0).
    """

    storage_per_gb_month: float
    egress_per_gb: float
    request_fee: float = 0.0

    def __post_init__(self) -> None:
        if self.storage_per_gb_month <= 0 or self.egress_per_gb < 0:
            raise ValueError("prices must be positive (egress may be 0)")
        if self.egress_per_gb == 0 and self.request_fee == 0:
            raise ValueError("free transfers make the model degenerate")
        if self.request_fee < 0:
            raise ValueError("request_fee must be non-negative")


#: Illustrative list-price points (rounded; not quotes).
PRICE_POINTS: Dict[str, PricingPlan] = {
    "object-store-standard": PricingPlan(0.023, 0.09, 0.0004 / 1000),
    "object-store-infrequent": PricingPlan(0.0125, 0.09, 0.001 / 1000),
    "cdn-edge": PricingPlan(0.30, 0.02, 0.0),
}


def calibrate(
    plan: PricingPlan, item_size_gb: float, time_unit_hours: float = 1.0
) -> CostModel:
    """Derive a :class:`CostModel` for one item under ``plan``.

    Parameters
    ----------
    item_size_gb:
        Size of the shared data item.
    time_unit_hours:
        How many wall-clock hours one model time-unit represents (the
        request timestamps' unit).

    Returns
    -------
    CostModel
        ``mu`` in $/time-unit per copy, ``lam`` in $ per transfer.
    """
    if item_size_gb <= 0:
        raise ValueError(f"item size must be positive, got {item_size_gb}")
    if time_unit_hours <= 0:
        raise ValueError(f"time unit must be positive, got {time_unit_hours}")
    mu_per_hour = plan.storage_per_gb_month * item_size_gb / _HOURS_PER_MONTH
    lam = plan.egress_per_gb * item_size_gb + plan.request_fee
    return CostModel(mu=mu_per_hour * time_unit_hours, lam=lam)


def describe_window(model: CostModel, time_unit_hours: float = 1.0) -> str:
    """Human-readable speculative window (``Δt = λ/μ``)."""
    hours = model.speculative_window * time_unit_hours
    if hours < 1.0 / 60:
        return f"{hours * 3600:.1f} seconds"
    if hours < 1.0:
        return f"{hours * 60:.1f} minutes"
    if hours < 48.0:
        return f"{hours:.1f} hours"
    return f"{hours / 24:.1f} days"
