"""Bootstrap confidence intervals for benchmark statistics.

Ratio studies report means over a handful of seeds; without error bars
those means over-claim.  This module adds nonparametric bootstrap CIs
(percentile method) for any per-instance statistic, so benchmark tables
can print ``mean [lo, hi]`` instead of bare points.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence

import numpy as np

__all__ = [
    "BootstrapCI",
    "bootstrap_ci",
    "bootstrap_mean_ratio",
    "bootstrap_t_ci",
]


@dataclass(frozen=True)
class BootstrapCI:
    """A point estimate with its bootstrap interval.

    Attributes
    ----------
    estimate:
        The statistic on the full sample.
    lo, hi:
        Percentile-bootstrap confidence bounds.
    confidence:
        Nominal coverage (e.g. 0.95).
    resamples:
        Bootstrap iterations used.
    """

    estimate: float
    lo: float
    hi: float
    confidence: float
    resamples: int

    def __contains__(self, value: float) -> bool:
        return self.lo - 1e-12 <= value <= self.hi + 1e-12

    def __str__(self) -> str:
        return (
            f"{self.estimate:.4g} "
            f"[{self.lo:.4g}, {self.hi:.4g}]@{self.confidence:.0%}"
        )


def bootstrap_ci(
    sample: Sequence[float],
    statistic: Callable[[np.ndarray], float] = np.mean,
    confidence: float = 0.95,
    resamples: int = 2000,
    rng: Optional[np.random.Generator] = None,
) -> BootstrapCI:
    """Percentile-bootstrap CI for ``statistic`` over ``sample``.

    Parameters
    ----------
    sample:
        Observations (at least one).
    statistic:
        Reducer applied to each resample (default: mean).
    confidence:
        Nominal two-sided coverage in ``(0, 1)``.
    resamples:
        Bootstrap iterations.
    rng:
        Generator (defaults to a fixed seed so tables are reproducible).
    """
    data = np.asarray(list(sample), dtype=np.float64)
    if data.size == 0:
        raise ValueError("need a non-empty sample")
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    if resamples < 1:
        raise ValueError(f"resamples must be >= 1, got {resamples}")
    g = rng if rng is not None else np.random.default_rng(0)
    idx = g.integers(0, data.size, size=(resamples, data.size))
    stats = np.apply_along_axis(statistic, 1, data[idx])
    alpha = (1.0 - confidence) / 2.0
    return BootstrapCI(
        estimate=float(statistic(data)),
        lo=float(np.quantile(stats, alpha)),
        hi=float(np.quantile(stats, 1.0 - alpha)),
        confidence=confidence,
        resamples=resamples,
    )


def bootstrap_t_ci(
    sample: Sequence[float],
    confidence: float = 0.95,
    resamples: int = 2000,
    rng: Optional[np.random.Generator] = None,
) -> BootstrapCI:
    """Bootstrap-*t* (studentized) CI for the **mean** of ``sample``.

    Resamples the t-statistic ``(mean* - mean) / se*`` and inverts its
    empirical quantiles around the analytic standard error — second-order
    accurate, so it keeps closer-to-nominal coverage than the percentile
    method on small, skewed samples (Hall 1988).  The trace-sampling
    estimator leans on this: at a 1-5% item sample the tail often holds
    only 10-30 observations.

    Degenerate samples (fewer than two points, or zero variance) return
    a point interval.
    """
    data = np.asarray(list(sample), dtype=np.float64)
    if data.size == 0:
        raise ValueError("need a non-empty sample")
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    if resamples < 1:
        raise ValueError(f"resamples must be >= 1, got {resamples}")
    n = data.size
    mean = float(data.mean())
    if n < 2 or float(data.std(ddof=1)) == 0.0:
        return BootstrapCI(mean, mean, mean, confidence, resamples)
    se = float(data.std(ddof=1)) / np.sqrt(n)
    g = rng if rng is not None else np.random.default_rng(0)
    idx = g.integers(0, n, size=(resamples, n))
    draws = data[idx]
    r_mean = draws.mean(axis=1)
    r_se = draws.std(axis=1, ddof=1) / np.sqrt(n)
    ok = r_se > 0
    if not ok.any():
        return BootstrapCI(mean, mean, mean, confidence, resamples)
    t = (r_mean[ok] - mean) / r_se[ok]
    alpha = (1.0 - confidence) / 2.0
    return BootstrapCI(
        estimate=mean,
        lo=float(mean - np.quantile(t, 1.0 - alpha) * se),
        hi=float(mean - np.quantile(t, alpha) * se),
        confidence=confidence,
        resamples=resamples,
    )


def bootstrap_mean_ratio(
    workload_fn: Callable[[int], object],
    seeds: Sequence[int],
    algo_factory: Callable[[], object],
    confidence: float = 0.95,
    processes: Optional[int] = None,
) -> BootstrapCI:
    """CI for the mean ALG/OPT ratio over seeded workloads.

    Composes :func:`repro.analysis.parallel.ratio_study` with
    :func:`bootstrap_ci`; pass module-level callables for ``processes > 1``.
    """
    from .parallel import ratio_study

    ratios = ratio_study(workload_fn, seeds, algo_factory, processes=processes)
    return bootstrap_ci(ratios, confidence=confidence)
