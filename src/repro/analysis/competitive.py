"""Empirical competitive-ratio measurement and adversarial sequences.

The paper proves ``Π(SC) ≤ 3·Π(OPT)`` (Theorem 3) but reports no
measurements.  This module provides the measurement harness used by the
benchmark suite:

* :func:`empirical_ratio` — one algorithm, one instance, one ratio.
* :func:`ratio_statistics` — ratio distribution over a workload family.
* Adversarial generators probing how close SC gets to its bound:
  :func:`cyclic_adversary` requests servers round-robin with the gap set
  to a multiple of the speculative window ``Δt = λ/μ`` (just past the
  window is the painful spot: SC pays the dead copy's rent *and* the
  transfer), and :func:`adversarial_gap_sweep` scans that multiple for
  the worst ratio.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, List, Optional, Sequence

import numpy as np

from ..core.instance import ProblemInstance
from ..core.types import CostModel
from ..offline.dp import solve_offline
from ..online.base import OnlineAlgorithm
from ..online.speculative import SpeculativeCaching

__all__ = [
    "empirical_ratio",
    "RatioStats",
    "ratio_statistics",
    "cyclic_adversary",
    "alternating_adversary",
    "adversarial_gap_sweep",
]


def empirical_ratio(
    instance: ProblemInstance, algorithm: Optional[OnlineAlgorithm] = None
) -> float:
    """``Π(ALG) / Π(OPT)`` on one instance (ALG defaults to SC)."""
    algorithm = algorithm if algorithm is not None else SpeculativeCaching()
    online_cost = algorithm.run(instance).cost
    opt = solve_offline(instance).optimal_cost
    return online_cost / opt if opt > 0 else float("inf")


@dataclass
class RatioStats:
    """Summary of a ratio sample.

    Attributes
    ----------
    ratios:
        Raw per-instance ratios.
    """

    ratios: np.ndarray

    @property
    def mean(self) -> float:
        """Sample mean."""
        return float(self.ratios.mean())

    @property
    def worst(self) -> float:
        """Sample maximum — the empirical competitive ratio witness."""
        return float(self.ratios.max())

    @property
    def p95(self) -> float:
        """95th percentile."""
        return float(np.percentile(self.ratios, 95))

    def __repr__(self) -> str:
        return (
            f"RatioStats(n={self.ratios.size}, mean={self.mean:.4f}, "
            f"p95={self.p95:.4f}, worst={self.worst:.4f})"
        )


def ratio_statistics(
    instances: Iterable[ProblemInstance],
    algorithm_factory: Callable[[], OnlineAlgorithm] = SpeculativeCaching,
) -> RatioStats:
    """Ratio distribution of an algorithm family over many instances."""
    ratios = [empirical_ratio(inst, algorithm_factory()) for inst in instances]
    if not ratios:
        raise ValueError("need at least one instance")
    return RatioStats(np.asarray(ratios))


def cyclic_adversary(
    m: int,
    rounds: int,
    gap_factor: float,
    cost: Optional[CostModel] = None,
    origin: int = 0,
) -> ProblemInstance:
    """Round-robin requests with inter-request gap ``gap_factor · λ/μ``.

    The painful regime is a *per-server revisit period* ``m · gap`` just
    past the speculative window: every request misses (its server's copy
    expired moments earlier), so SC pays a transfer *plus* a full window
    of dead rent per request, while the off-line optimum parks the copy
    on one server and pays little beyond the forced transfers.  The gap
    sweep below locates this spot empirically (for ``m = 4`` it peaks
    near ``gap_factor ≈ 0.35``, ratio ≈ 2.1).
    """
    cost = cost if cost is not None else CostModel()
    if m < 2:
        raise ValueError("cyclic adversary needs m >= 2")
    if rounds < 1 or gap_factor <= 0:
        raise ValueError("rounds >= 1 and gap_factor > 0 required")
    gap = gap_factor * cost.speculative_window
    n = m * rounds
    times = gap * np.arange(1, n + 1)
    servers = (np.arange(1, n + 1) + origin) % m
    return ProblemInstance.from_arrays(
        times, servers, num_servers=m, cost=cost, origin=origin
    )


def alternating_adversary(
    rounds: int,
    gap_factor: float,
    cost: Optional[CostModel] = None,
) -> ProblemInstance:
    """Two servers alternating — the ``m = 2`` cyclic special case."""
    return cyclic_adversary(2, rounds, gap_factor, cost=cost)


def adversarial_gap_sweep(
    m: int,
    rounds: int = 20,
    gap_factors: Optional[Sequence[float]] = None,
    cost: Optional[CostModel] = None,
) -> List[dict]:
    """Scan gap factors for the worst SC ratio; rows sorted by factor.

    Returns one dict per factor with keys ``gap_factor``, ``ratio``,
    ``sc_cost``, ``opt_cost`` — the series behind the competitive-ratio
    benchmark's adversarial panel.
    """
    if gap_factors is None:
        gap_factors = np.concatenate(
            [np.linspace(0.2, 0.95, 6), np.linspace(1.001, 3.0, 12)]
        )
    rows = []
    for gf in gap_factors:
        inst = cyclic_adversary(m, rounds, float(gf), cost=cost)
        sc_cost = SpeculativeCaching().run(inst).cost
        opt = solve_offline(inst).optimal_cost
        rows.append(
            {
                "gap_factor": float(gf),
                "sc_cost": sc_cost,
                "opt_cost": opt,
                "ratio": sc_cost / opt if opt else float("inf"),
            }
        )
    return rows
