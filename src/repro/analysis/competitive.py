"""Empirical competitive-ratio measurement and adversarial sequences.

The paper proves ``Π(SC) ≤ 3·Π(OPT)`` (Theorem 3) but reports no
measurements.  This module provides the measurement harness used by the
benchmark suite:

* :func:`empirical_ratio` — one algorithm, one instance, one ratio.
* :func:`ratio_statistics` — ratio distribution over a workload family.
* :func:`ratio_grid` — a whole algorithm grid over shared instances,
  with OPT solved ONCE per instance and reused across the grid.
* :func:`ttl_gamma_sweep` — the TTL(γ) window ablation as one batched
  γ-grid call (per-item column prep hoisted out of the γ loop).
* Adversarial generators probing how close SC gets to its bound:
  :func:`cyclic_adversary` requests servers round-robin with the gap set
  to a multiple of the speculative window ``Δt = λ/μ`` (just past the
  window is the painful spot: SC pays the dead copy's rent *and* the
  transfer), and :func:`adversarial_gap_sweep` scans that multiple for
  the worst ratio.

Execution model: every multi-instance entry point packs its instances
into one :class:`~repro.kernels.batch.BatchLayout` and pairs ONE batched
online-kernel call with ONE batched DP call per instance block — no
per-instance Python dispatch on the hot path.  Results are bit-identical
to the per-event/per-item loops (both kernels are differentially gated),
and ``kernel="event"`` pins the per-event oracle path for audits.  All
OPT solves route through the single :func:`_opt_costs` seam, which the
solve-count regression test stubs to pin "OPT solved once per instance".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence

import numpy as np

from ..core.instance import ProblemInstance
from ..core.types import CostModel
from ..kernels.batch import BatchLayout, solve_layout
from ..kernels.online import (
    run_online_layout,
    sweep_layout,
    vector_policy_config,
)
from ..offline.dp import solve_offline
from ..online.base import OnlineAlgorithm
from ..online.speculative import SpeculativeCaching

__all__ = [
    "empirical_ratio",
    "RatioStats",
    "ratio_statistics",
    "ratio_grid",
    "ttl_gamma_sweep",
    "cyclic_adversary",
    "alternating_adversary",
    "adversarial_gap_sweep",
]


def _opt_costs(instances: Sequence[ProblemInstance]) -> List[float]:
    """``Π(OPT)`` per instance via ONE batched DP call.

    The single seam every harness entry point routes OPT solves through:
    grids and γ-sweeps call it once per instance block and reuse the
    costs across every algorithm/γ, and the solve-count regression test
    stubs it to pin that contract.  The batched kernel is bit-identical
    to per-instance ``solve_offline`` (gated by the benchmark suite), so
    ratios match the historic per-item harness exactly.
    """
    if not instances:
        return []
    layout = BatchLayout.from_instances(
        [(str(i), inst) for i, inst in enumerate(instances)]
    )
    return [res.optimal_cost for res in solve_layout(layout)]


def _online_costs(
    instances: Sequence[ProblemInstance],
    algorithm_factory: Callable[[], OnlineAlgorithm],
    kernel: str = "auto",
) -> List[float]:
    """``Π(ALG)`` per instance; one batched kernel call when eligible."""
    probe = algorithm_factory()
    config = vector_policy_config(probe) if kernel != "event" else None
    if config is not None:
        window_factor, epoch_size, _name = config
        layout = BatchLayout.from_instances(
            [(str(i), inst) for i, inst in enumerate(instances)]
        )
        return [
            run.cost for run in run_online_layout(layout, window_factor, epoch_size)
        ]
    if kernel == "vector":
        raise ValueError(
            f"kernel='vector' requires a plain SpeculativeCaching policy, "
            f"got {type(probe).__name__}; use kernel='event' or 'auto'"
        )
    return [
        algorithm_factory().run(inst, kernel=kernel).cost for inst in instances
    ]


def _ratios(costs: Sequence[float], opts: Sequence[float]) -> List[float]:
    return [
        cost / opt if opt > 0 else float("inf") for cost, opt in zip(costs, opts)
    ]


def empirical_ratio(
    instance: ProblemInstance,
    algorithm: Optional[OnlineAlgorithm] = None,
    kernel: str = "auto",
    opt_cost: Optional[float] = None,
) -> float:
    """``Π(ALG) / Π(OPT)`` on one instance (ALG defaults to SC).

    ``opt_cost`` short-circuits the OPT solve when the caller already
    holds it (grid sweeps solve OPT once per instance and reuse it).
    """
    algorithm = algorithm if algorithm is not None else SpeculativeCaching()
    online_cost = algorithm.run(instance, kernel=kernel).cost
    opt = solve_offline(instance).optimal_cost if opt_cost is None else opt_cost
    return online_cost / opt if opt > 0 else float("inf")


@dataclass
class RatioStats:
    """Summary of a ratio sample.

    Attributes
    ----------
    ratios:
        Raw per-instance ratios.
    """

    ratios: np.ndarray

    @property
    def mean(self) -> float:
        """Sample mean."""
        return float(self.ratios.mean())

    @property
    def worst(self) -> float:
        """Sample maximum — the empirical competitive ratio witness."""
        return float(self.ratios.max())

    @property
    def p95(self) -> float:
        """95th percentile."""
        return float(np.percentile(self.ratios, 95))

    def __repr__(self) -> str:
        return (
            f"RatioStats(n={self.ratios.size}, mean={self.mean:.4f}, "
            f"p95={self.p95:.4f}, worst={self.worst:.4f})"
        )


def ratio_statistics(
    instances: Iterable[ProblemInstance],
    algorithm_factory: Callable[[], OnlineAlgorithm] = SpeculativeCaching,
    kernel: str = "auto",
) -> RatioStats:
    """Ratio distribution of an algorithm family over many instances.

    One batched online call + one batched DP call over the whole block
    (per-instance loops only for vector-ineligible policies or
    ``kernel="event"``); ratios are bit-identical either way.
    """
    insts = list(instances)
    if not insts:
        raise ValueError("need at least one instance")
    opts = _opt_costs(insts)
    costs = _online_costs(insts, algorithm_factory, kernel=kernel)
    return RatioStats(np.asarray(_ratios(costs, opts)))


def ratio_grid(
    instances: Iterable[ProblemInstance],
    algorithms: Mapping[str, Callable[[], OnlineAlgorithm]],
    kernel: str = "auto",
) -> Dict[str, RatioStats]:
    """Ratio distributions for a whole algorithm grid over shared instances.

    OPT is solved ONCE per instance (one batched DP call) and reused
    across every algorithm — the historic harness re-solved it per
    algorithm on the same instance.  Returns ``{algorithm name:
    RatioStats}`` in the mapping's order.
    """
    insts = list(instances)
    if not insts:
        raise ValueError("need at least one instance")
    if not algorithms:
        raise ValueError("need at least one algorithm")
    opts = _opt_costs(insts)
    return {
        name: RatioStats(
            np.asarray(_ratios(_online_costs(insts, factory, kernel=kernel), opts))
        )
        for name, factory in algorithms.items()
    }


def ttl_gamma_sweep(
    instances: Iterable[ProblemInstance],
    gammas: Sequence[float],
    epoch_size: Optional[int] = None,
    kernel: str = "auto",
) -> List[dict]:
    """TTL(γ) window ablation over shared instances; one row per γ.

    The γ-grid broadcasts over window values: instances are packed once
    and :func:`repro.kernels.online.sweep_layout` hoists the per-item
    column prep out of the γ loop, so widening the grid costs only the
    state-machine replay.  OPT is solved ONCE (one batched DP call) and
    reused by every γ.  Rows carry ``gamma``, ``mean``, ``worst``,
    ``p95`` and the raw ``ratios`` list; ``kernel="event"`` re-runs the
    per-event oracle per γ instead (bit-identical, for audits).
    """
    insts = list(instances)
    if not insts:
        raise ValueError("need at least one instance")
    gammas = [float(g) for g in gammas]
    opts = _opt_costs(insts)
    rows: List[dict] = []
    if kernel != "event":
        layout = BatchLayout.from_instances(
            [(str(i), inst) for i, inst in enumerate(insts)]
        )
        grid = sweep_layout(layout, gammas, epoch_size)
        cost_rows = [[run.cost for run in runs] for runs in grid]
    else:
        cost_rows = [
            [
                SpeculativeCaching(window_factor=g, epoch_size=epoch_size)
                .run(inst, kernel="event")
                .cost
                for inst in insts
            ]
            for g in gammas
        ]
    for g, costs in zip(gammas, cost_rows):
        stats = RatioStats(np.asarray(_ratios(costs, opts)))
        rows.append(
            {
                "gamma": g,
                "mean": stats.mean,
                "worst": stats.worst,
                "p95": stats.p95,
                "ratios": [float(r) for r in stats.ratios],
            }
        )
    return rows


def cyclic_adversary(
    m: int,
    rounds: int,
    gap_factor: float,
    cost: Optional[CostModel] = None,
    origin: int = 0,
) -> ProblemInstance:
    """Round-robin requests with inter-request gap ``gap_factor · λ/μ``.

    The painful regime is a *per-server revisit period* ``m · gap`` just
    past the speculative window: every request misses (its server's copy
    expired moments earlier), so SC pays a transfer *plus* a full window
    of dead rent per request, while the off-line optimum parks the copy
    on one server and pays little beyond the forced transfers.  The gap
    sweep below locates this spot empirically (for ``m = 4`` it peaks
    near ``gap_factor ≈ 0.35``, ratio ≈ 2.1).
    """
    cost = cost if cost is not None else CostModel()
    if m < 2:
        raise ValueError("cyclic adversary needs m >= 2")
    if rounds < 1 or gap_factor <= 0:
        raise ValueError("rounds >= 1 and gap_factor > 0 required")
    gap = gap_factor * cost.speculative_window
    n = m * rounds
    times = gap * np.arange(1, n + 1)
    servers = (np.arange(1, n + 1) + origin) % m
    return ProblemInstance.from_arrays(
        times, servers, num_servers=m, cost=cost, origin=origin
    )


def alternating_adversary(
    rounds: int,
    gap_factor: float,
    cost: Optional[CostModel] = None,
) -> ProblemInstance:
    """Two servers alternating — the ``m = 2`` cyclic special case."""
    return cyclic_adversary(2, rounds, gap_factor, cost=cost)


def adversarial_gap_sweep(
    m: int,
    rounds: int = 20,
    gap_factors: Optional[Sequence[float]] = None,
    cost: Optional[CostModel] = None,
    kernel: str = "auto",
) -> List[dict]:
    """Scan gap factors for the worst SC ratio; rows sorted by factor.

    Returns one dict per factor with keys ``gap_factor``, ``ratio``,
    ``sc_cost``, ``opt_cost`` — the series behind the competitive-ratio
    benchmark's adversarial panel.  The whole scan is two batched kernel
    calls (one online, one DP) over every generated instance.
    """
    if gap_factors is None:
        gap_factors = np.concatenate(
            [np.linspace(0.2, 0.95, 6), np.linspace(1.001, 3.0, 12)]
        )
    insts = [cyclic_adversary(m, rounds, float(gf), cost=cost) for gf in gap_factors]
    opts = _opt_costs(insts)
    sc_costs = _online_costs(insts, SpeculativeCaching, kernel=kernel)
    return [
        {
            "gap_factor": float(gf),
            "sc_cost": sc_cost,
            "opt_cost": opt,
            "ratio": sc_cost / opt if opt else float("inf"),
        }
        for gf, sc_cost, opt in zip(gap_factors, sc_costs, opts)
    ]
