"""The paper's worked examples as first-class, importable fixtures.

The paper's "evaluation" consists of worked examples whose numbers can be
checked exactly; this module pins them down once so tests, benchmarks and
EXPERIMENTS.md all reference the same instances.

* :func:`fig6_instance` — the running example of Figs. 5/6 (m=4, origin
  ``s^1``, μ=λ=1).  The request sequence is reconstructed from the
  worked arithmetic in Section IV (the figure itself prints ``n = 8``
  including the boundary request ``r_0``; the text's computations cover
  ``r_1..r_7`` and every derived number below is stated explicitly in
  the text).  Expected values: :data:`FIG6_EXPECTED`.
* :func:`fig7_instance` — an SC epoch with exactly 5 transfers in the
  shape of Fig. 7 (the paper draws, but does not tabulate, its sequence;
  this instance exercises every rule of the SC state machine: window
  hits, transfer+source refresh, paired expirations, lone-copy extension
  and the epoch reset).
* :func:`fig2_instance` — a standard-form example whose *optimal* cost
  decomposes exactly as Fig. 2's caption: caching ``3.2μ`` and transfer
  ``4λ`` at ``μ = λ = 1`` (total 7.2).  Fig. 2's own request sequence is
  not printed in the paper; this instance reproduces the caption's
  numbers and structure.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from .core.instance import ProblemInstance
from .core.types import CostModel

__all__ = [
    "FIG6_REQUESTS",
    "FIG6_EXPECTED",
    "FIG7_REQUESTS",
    "FIG2_REQUESTS",
    "FIG2_EXPECTED",
    "fig6_instance",
    "fig7_instance",
    "fig2_instance",
]

#: Figs. 5/6 request vector ``(time, server)`` — servers 0-based
#: (paper's ``s^1`` is server 0).  Derived step by step from the text:
#: ``C(1) = C(0) + 1 + 0.5``   → t₁ = 0.5 on a fresh server (s^2)
#: ``C(2) = C(1) + 0.3 + 1``   → t₂ = 0.8 on s^3
#: ``C(3) = C(2) + 0.3 + 1``   → t₃ = 1.1 on s^4
#: ``D(4) = C(0) + 1.4 + 3-0`` → t₄ = 1.4 back on s^1 (σ₄ = 1.4, p(4)=0)
#: ``D(5) = 4.4 + 2.1 + 4-4``  → t₅ = 2.6 on s^2 (pivot κ = 4)
#: ``b₆ = 0.6``                → t₆ = 3.2 on s^2 (σ₆ = 0.6)
#: ``D(7): μσ₇ = 3.2, p(7)=2`` → t₇ = 4.0 on s^3
#: and Fig. 5's cache intervals [0, 1.4] on s^1, [0.5, 2.6] on s^2
#: confirm the reconstruction.
FIG6_REQUESTS: List[Tuple[float, int]] = [
    (0.5, 1),
    (0.8, 2),
    (1.1, 3),
    (1.4, 0),
    (2.6, 1),
    (3.2, 1),
    (4.0, 2),
]

#: Every number the text states for the running example.
FIG6_EXPECTED: Dict[str, object] = {
    "C": [0.0, 1.5, 2.8, 4.1, 4.4, 6.5, 7.1, 8.9],
    "D_finite": {4: 4.4, 5: 6.5, 6: 7.1, 7: 9.2},
    "b": [0.0, 1.0, 1.0, 1.0, 1.0, 1.0, 0.6, 1.0],
    "B": [0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 5.6, 6.6],
    "D7_candidates": [9.6, 9.2, 10.3, 10.3],  # paper prints 10.03 (typo)
    "optimal_cost": 8.9,
    "pivot_intervals_at_t_p7": {0: (0.0, 1.4), 1: (0.5, 2.6)},
}


def fig6_instance() -> ProblemInstance:
    """The Figs. 5/6 running example (m=4, μ=λ=1, origin 0)."""
    return ProblemInstance(
        FIG6_REQUESTS, num_servers=4, cost=CostModel(mu=1.0, lam=1.0), origin=0
    )


#: A single SC epoch with 5 transfers (Fig. 7's shape), μ=λ=1 (Δt = 1).
#: Walkthrough: r₁ misses (transfer 1); r₂ hits s1's window; r₃ and r₄
#: miss (transfers 2, 3); the long gap to r₅ expires everything except
#: the lone survivor on s3, which extends twice before sourcing
#: transfer 4; r₆ misses (transfer 5) and completes the epoch.
FIG7_REQUESTS: List[Tuple[float, int]] = [
    (0.5, 1),
    (1.0, 1),
    (1.3, 2),
    (1.6, 3),
    (4.0, 0),
    (4.5, 1),
]


def fig7_instance() -> ProblemInstance:
    """A 5-transfer SC epoch in the shape of Fig. 7 (m=4, μ=λ=1)."""
    return ProblemInstance(
        FIG7_REQUESTS, num_servers=4, cost=CostModel(mu=1.0, lam=1.0), origin=0
    )


#: Standard-form example reproducing Fig. 2's caption arithmetic:
#: optimal = 3.2 caching + 4.0 transfer = 7.2 at μ = λ = 1 (m = 3).
FIG2_REQUESTS: List[Tuple[float, int]] = [
    (1.4, 2),
    (1.6, 1),
    (2.2, 1),
    (2.8, 2),
    (3.0, 0),
    (3.2, 1),
]

FIG2_EXPECTED: Dict[str, float] = {
    "caching_cost": 3.2,
    "transfer_cost": 4.0,
    "optimal_cost": 7.2,
}


def fig2_instance() -> ProblemInstance:
    """Instance whose optimum decomposes per Fig. 2's caption (7.2 total)."""
    return ProblemInstance(
        FIG2_REQUESTS, num_servers=3, cost=CostModel(mu=1.0, lam=1.0), origin=0
    )
