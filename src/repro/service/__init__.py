"""Multi-item service layer (exact per-item decomposition, sharded parallel)."""

from .fabric import (
    SEGMENT_PREFIX,
    CircuitOpenError,
    RetryPolicy,
    ServicePool,
    active_segments,
)
from .sharding import SHARD_STRATEGIES, plan_shards
from .multi import (
    TRANSPORTS,
    MultiItemInstance,
    MultiItemOfflineResult,
    MultiItemOnlineService,
    multi_item_workload,
    solve_offline_multi,
)
from .server import CacheServer, ServerConfig, route_item, run_server
from .proxy import ChaosProxy, run_proxy
from .cluster import ClusterConfig, Replica, ReplicaSet, run_cluster

__all__ = [
    "CacheServer",
    "ChaosProxy",
    "CircuitOpenError",
    "ClusterConfig",
    "Replica",
    "ReplicaSet",
    "MultiItemInstance",
    "RetryPolicy",
    "SEGMENT_PREFIX",
    "SHARD_STRATEGIES",
    "ServerConfig",
    "ServicePool",
    "TRANSPORTS",
    "active_segments",
    "plan_shards",
    "route_item",
    "run_cluster",
    "run_proxy",
    "run_server",
    "MultiItemOfflineResult",
    "MultiItemOnlineService",
    "multi_item_workload",
    "solve_offline_multi",
]
