"""Multi-item service layer (exact per-item decomposition, sharded parallel)."""

from .sharding import SHARD_STRATEGIES, plan_shards
from .multi import (
    MultiItemInstance,
    MultiItemOfflineResult,
    MultiItemOnlineService,
    multi_item_workload,
    solve_offline_multi,
)

__all__ = [
    "MultiItemInstance",
    "SHARD_STRATEGIES",
    "plan_shards",
    "MultiItemOfflineResult",
    "MultiItemOnlineService",
    "multi_item_workload",
    "solve_offline_multi",
]
