"""Multi-item service layer (exact per-item decomposition)."""

from .multi import (
    MultiItemInstance,
    MultiItemOfflineResult,
    MultiItemOnlineService,
    multi_item_workload,
    solve_offline_multi,
)

__all__ = [
    "MultiItemInstance",
    "MultiItemOfflineResult",
    "MultiItemOnlineService",
    "multi_item_workload",
    "solve_offline_multi",
]
