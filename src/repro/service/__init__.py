"""Multi-item service layer (exact per-item decomposition, sharded parallel)."""

from .fabric import SEGMENT_PREFIX, ServicePool, active_segments
from .sharding import SHARD_STRATEGIES, plan_shards
from .multi import (
    TRANSPORTS,
    MultiItemInstance,
    MultiItemOfflineResult,
    MultiItemOnlineService,
    multi_item_workload,
    solve_offline_multi,
)

__all__ = [
    "MultiItemInstance",
    "SEGMENT_PREFIX",
    "SHARD_STRATEGIES",
    "ServicePool",
    "TRANSPORTS",
    "active_segments",
    "plan_shards",
    "MultiItemOfflineResult",
    "MultiItemOnlineService",
    "multi_item_workload",
    "solve_offline_multi",
]
