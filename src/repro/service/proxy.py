"""Deterministic wire-level chaos proxy for the serving front-end.

A :class:`ChaosProxy` sits between clients and one upstream
:class:`~repro.service.server.CacheServer` (or anything speaking the
same tiny HTTP/1.1 dialect) and perturbs traffic according to a seeded
:class:`~repro.faults.plan.NetworkFaultPlan`:

* **latency/jitter** — requests are held before forwarding;
* **connection resets** — the client socket is aborted after a
  deterministic fraction of the response bytes has been relayed;
* **byte-level torn writes** — responses are written in small fragments
  with scheduler yields between them, exercising framing robustness;
* **duplicated requests** — the request is forwarded upstream twice and
  the extra response discarded, driving the server's exactly-once
  dedupe path from the *network* side;
* **reordered completions** — responses are held so concurrent
  connections overtake each other;
* **black-holes** — accepted requests stall (no response, no reset)
  while a black-hole window or the manual switch is active;
* **full partitions** — new connections are dropped on arrival and
  every live relay is aborted while a partition window or the manual
  switch is active.

Determinism: every per-message decision is a pure function of
``(plan.seed, connection_index, message_index)`` — see
:meth:`NetworkFaultPlan.perturbation` — so the same plan over the same
traffic injects the byte-identical perturbation sequence; a proxy with
an empty plan is byte-transparent (relayed bytes equal upstream bytes,
verbatim).  Window schedules are keyed to proxy uptime; the
:attr:`partition` / :attr:`blackhole` switches give chaos suites exact,
event-boundary control on top.

The proxy parses HTTP/1.1 framing (``Content-Length`` bodies, the only
dialect both ends of this repo speak) purely to find message boundaries;
the bytes it relays are the bytes it read, unmodified.
"""

from __future__ import annotations

import asyncio
import json
import signal
from pathlib import Path
from typing import Optional, Set, Tuple

from ..faults.plan import NetworkFaultPlan

__all__ = ["ChaosProxy", "run_proxy"]

#: Poll cadence (seconds) while a black-hole stalls a request.
_STALL_TICK = 0.01


async def _read_message(reader: asyncio.StreamReader) -> Optional[bytes]:
    """One full HTTP/1.1 message (head + body), raw bytes as read.

    Returns ``None`` on a clean EOF before the first byte.  Raises
    ``asyncio.IncompleteReadError`` on a torn message — the caller
    aborts the relay, which is exactly what a half-written peer
    deserves.
    """
    head = bytearray()
    line = await reader.readline()
    if not line:
        return None
    head += line
    length = 0
    while True:
        line = await reader.readline()
        if not line:
            raise asyncio.IncompleteReadError(bytes(head), None)
        head += line
        if line in (b"\r\n", b"\n"):
            break
        key, _, value = line.decode("latin-1").partition(":")
        if key.strip().lower() == "content-length":
            length = int(value.strip() or "0")
    body = await reader.readexactly(length) if length else b""
    return bytes(head) + body


class ChaosProxy:
    """Seeded TCP fault injector in front of one upstream server.

    Usage (in-process; the CLI wraps this via :func:`run_proxy`)::

        proxy = ChaosProxy("127.0.0.1", server_port, plan=plan)
        await proxy.start()
        ...                      # traffic against proxy.port
        proxy.partition = True   # manual chaos control (thread-safe flip)
        await proxy.stop()
    """

    def __init__(
        self,
        upstream_host: str,
        upstream_port: int,
        plan: Optional[NetworkFaultPlan] = None,
        host: str = "127.0.0.1",
        port: int = 0,
    ):
        self.upstream_host = upstream_host
        self.upstream_port = upstream_port
        self.plan = plan if plan is not None else NetworkFaultPlan()
        self.host = host
        self._requested_port = port
        #: Manual switches, OR-ed with the plan's uptime windows.
        self.partition = False
        self.blackhole = False
        self.counters = {
            "connections": 0,
            "messages": 0,
            "delayed": 0,
            "duplicated": 0,
            "resets": 0,
            "torn": 0,
            "held": 0,
            "stalled": 0,
            "partition_drops": 0,
            "upstream_failures": 0,
        }
        self._server: Optional[asyncio.AbstractServer] = None
        self._t0 = 0.0
        self._conns = 0
        self._live: Set[asyncio.WriteTransport] = set()

    # -- lifecycle -----------------------------------------------------------

    @property
    def port(self) -> int:
        assert self._server is not None
        return self._server.sockets[0].getsockname()[1]

    def uptime(self) -> float:
        return asyncio.get_running_loop().time() - self._t0

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle, self.host, self._requested_port
        )
        self._t0 = asyncio.get_running_loop().time()

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        self._abort_live()

    def _abort_live(self) -> None:
        """Hard-reset every in-flight relay (the partition fist)."""
        for transport in list(self._live):
            transport.abort()
        self._live.clear()

    def set_partition(self, on: bool) -> None:
        """Flip the manual partition switch; ``on`` aborts live relays."""
        self.partition = on
        if on:
            self._abort_live()

    # -- fault-state queries ---------------------------------------------------

    def _partition_active(self) -> bool:
        return self.partition or self.plan.partition_at(self.uptime())

    def _blackhole_active(self) -> bool:
        return self.blackhole or self.plan.blackhole_at(self.uptime())

    # -- the relay -------------------------------------------------------------

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        conn = self._conns
        self._conns += 1
        self.counters["connections"] += 1
        if self._partition_active():
            self.counters["partition_drops"] += 1
            writer.transport.abort()
            return
        try:
            up_reader, up_writer = await asyncio.open_connection(
                self.upstream_host, self.upstream_port
            )
        except OSError:
            self.counters["upstream_failures"] += 1
            writer.transport.abort()
            return
        self._live.add(writer.transport)
        self._live.add(up_writer.transport)
        try:
            await self._relay(conn, reader, writer, up_reader, up_writer)
        except (
            asyncio.IncompleteReadError,
            ConnectionError,
            OSError,
            ValueError,
        ):
            pass  # torn peer or mid-relay abort: drop both sides
        finally:
            self._live.discard(writer.transport)
            self._live.discard(up_writer.transport)
            for w in (writer, up_writer):
                w.close()
                try:
                    await w.wait_closed()
                except (ConnectionError, OSError):
                    pass

    async def _relay(
        self,
        conn: int,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        up_reader: asyncio.StreamReader,
        up_writer: asyncio.StreamWriter,
    ) -> None:
        msg = 0
        while True:
            request = await _read_message(reader)
            if request is None:
                return
            if self._partition_active():
                writer.transport.abort()
                up_writer.transport.abort()
                return
            while self._blackhole_active():
                # Accept-then-stall: the request is read but never
                # answered until the hole closes (the client's timeout
                # path is what this exercises).
                self.counters["stalled"] += 1
                await asyncio.sleep(_STALL_TICK)
            p = self.plan.perturbation(conn, msg)
            self.counters["messages"] += 1
            msg += 1
            if p.delay > 0.0:
                self.counters["delayed"] += 1
                await asyncio.sleep(p.delay)
            up_writer.write(request)
            await up_writer.drain()
            if p.duplicate:
                self.counters["duplicated"] += 1
                up_writer.write(request)
                await up_writer.drain()
            response = await _read_message(up_reader)
            if response is None:
                writer.transport.abort()
                return
            if p.duplicate:
                # The server answered the duplicate too; swallow it so
                # the client's request/response pairing stays intact.
                extra = await _read_message(up_reader)
                if extra is None:
                    writer.transport.abort()
                    return
            if p.hold > 0.0:
                self.counters["held"] += 1
                await asyncio.sleep(p.hold)
            if p.reset_frac is not None:
                self.counters["resets"] += 1
                cut = int(p.reset_frac * len(response))
                if cut:
                    writer.write(response[:cut])
                    try:
                        await writer.drain()
                    except (ConnectionError, OSError):
                        pass
                writer.transport.abort()
                up_writer.transport.abort()
                return
            if p.fragment is not None:
                self.counters["torn"] += 1
                for i in range(0, len(response), p.fragment):
                    writer.write(response[i : i + p.fragment])
                    await writer.drain()
                    await asyncio.sleep(0)
            else:
                writer.write(response)
                await writer.drain()


def run_proxy(
    upstream_host: str,
    upstream_port: int,
    plan: Optional[NetworkFaultPlan] = None,
    host: str = "127.0.0.1",
    port: int = 0,
    meta_path: Optional[str] = None,
) -> int:
    """Blocking CLI entry: relay until SIGTERM/SIGINT, then stop."""

    async def _main() -> int:
        proxy = ChaosProxy(
            upstream_host, upstream_port, plan=plan, host=host, port=port
        )
        await proxy.start()
        if meta_path is not None:
            Path(meta_path).write_text(
                json.dumps({"host": host, "port": proxy.port}) + "\n"
            )
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGTERM, signal.SIGINT):
            loop.add_signal_handler(sig, stop.set)
        print(
            f"chaos proxy on {host}:{proxy.port} -> "
            f"{upstream_host}:{upstream_port} "
            f"[{(plan or NetworkFaultPlan()).describe()}]",
            flush=True,
        )
        await stop.wait()
        await proxy.stop()
        print(f"proxy stopped: {proxy.counters}", flush=True)
        return 0

    return asyncio.run(_main())
