"""Resilient live request-serving front-end.

Everything else in the repro is offline/batch; this module is the
long-running surface: an asyncio HTTP/JSON server that accepts request
events over the wire, routes them by item hash to per-shard
:class:`~repro.offline.streaming.StreamingSolver` banks, and streams
back serve/transfer decisions plus running cost and savings-vs-baseline
gauges.  Robustness is the headline, not an afterthought:

* **Admission control and bounded queues.**  Every shard owns a bounded
  :class:`asyncio.Queue`; when it is full the request is refused with
  ``429`` and a ``Retry-After`` hint — latency stays bounded because the
  backlog does.  Between the *degrade watermark* and full, requests are
  still accepted (and journaled) but receive the cheapest-feasible
  decision — transfer from origin at cost ``λ`` — without touching the
  DP, so the hot path sheds work before it sheds requests.
* **Per-request deadline budgets.**  Each request carries a deadline
  (``deadline_ms`` in the body, or the server default), expressed through
  :class:`~repro.runtime.supervisor.RunBudget` semantics: the budget
  bounds *this response's* wall clock, never any decision.  On expiry
  the client gets a degraded-partial response (``degraded: true``,
  ``status: "pending"``) while the accepted event still processes — a
  later duplicate resend returns the settled decision.
* **Per-shard circuit breakers.**  Unexpected processing failures trip a
  shard's breaker after a threshold of consecutive errors; an open shard
  sheds with ``503`` until its cooldown elapses (half-open probe next).
  The offline verification pool carries its own
  :class:`~repro.service.fabric.RetryPolicy` breaker.
* **Graceful drain.**  SIGTERM (and SIGINT) stop admission (``/readyz``
  flips to 503, new posts get 503 + ``Retry-After``), drain every shard
  queue, fsync and close the journals, then exit 0.
* **Crash-safe resume.**  Every accepted event is written ahead to a
  per-shard :class:`~repro.runtime.journal.RunJournal` (fsync before the
  response leaves) together with a *chained decision digest*.  A
  SIGKILLed server restarted with ``resume=True`` replays its journals
  through fresh solvers, re-verifies every recorded digest
  (:class:`~repro.runtime.supervisor.ResumeDivergenceError` on the first
  mismatch), and continues; the decision stream — and therefore the
  digest chain — is bit-identical to an uninterrupted run over the same
  accepted events.  Duplicate resends of already-journaled events are
  answered from the decision index without being re-applied, so an
  at-least-once client yields exactly-once state transitions.

Decisions are the *prefix-optimal* choices of the streaming DP: after
appending request ``i``, the item is served from cache iff
``D(i) <= C(i-1) + μ·(t_i - t_{i-1}) + λ`` — the same rule
:meth:`StreamingSolver.result` records.  The running ``optimal_cost``
gauge is the exact off-line optimum of the prefix served so far; the
``baseline_cost`` gauge is what the naive always-transfer policy would
have paid on the same events (``μ·Δt + λ`` each — holding cost is
mandatory in the model, so ``λ·n`` alone is *not* an upper bound), so
``savings`` is a live regret-vs-offline meter for the naive policy.  ``GET /offline``
re-solves the current snapshot through the shared-memory
:class:`~repro.service.fabric.ServicePool` and cross-checks the
streaming totals.

The wire protocol is deliberately tiny HTTP/1.1 (keep-alive, JSON
bodies) so the stdlib is enough on both ends; see ``docs/API.md`` for
the endpoint and degradation contract.
"""

from __future__ import annotations

import asyncio
import json
import signal
import zlib
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from ..core.types import CostModel, InvalidInstanceError
from ..offline.streaming import StreamingSolver
from ..runtime.digest import digest_value
from ..runtime.journal import RunJournal
from ..runtime.supervisor import ResumeDivergenceError, RunBudget

__all__ = ["ServerConfig", "CacheServer", "route_item", "run_server"]

#: Reason phrases for the handful of statuses the server emits.
_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    421: "Misdirected Request",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


def route_item(name: str, shards: int) -> int:
    """Shard index of an item: stable content hash, balanced by design.

    Uses ``zlib.crc32`` (never the salted builtin ``hash``) so placement
    is identical across processes and runs — the same discipline as the
    ``"hash"`` strategy of :func:`repro.service.sharding.plan_shards`.
    Stability and balance are property-tested in
    ``tests/service/test_server_properties.py``.
    """
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    return zlib.crc32(name.encode("utf-8")) % shards


@dataclass(frozen=True)
class ServerConfig:
    """Knobs of one :class:`CacheServer`.

    The degradation ladder, in order of increasing pressure:

    1. queue depth below ``degrade_watermark × queue_depth`` — full
       service (DP append, exact decision);
    2. at or above the watermark but not full — accepted and journaled,
       but answered with the cheapest-feasible decision (origin
       transfer, cost ``λ``) without touching the DP;
    3. queue full — refused with ``429`` + ``Retry-After``
       (never journaled: the event did not enter the system);
    4. shard breaker open, or draining — refused with ``503``.
    """

    host: str = "127.0.0.1"
    port: int = 0
    shards: int = 4
    #: Shard indices this server owns (``None`` = all of them).  A
    #: request routed to a shard outside this set is answered ``421``
    #: so a cluster-aware client refreshes its routing map; a
    #: :class:`~repro.service.cluster.ReplicaSet` moves shards between
    #: replicas at runtime via ``POST /admin/acquire``.
    owned_shards: Optional[Tuple[int, ...]] = None
    num_servers: int = 8
    mu: float = 1.0
    lam: float = 1.0
    origin: int = 0
    kernel: str = "auto"
    #: Bounded per-shard queue depth (admission limit).
    queue_depth: int = 256
    #: Fraction of ``queue_depth`` beyond which service degrades.
    degrade_watermark: float = 0.75
    #: Default per-request deadline (ms); bodies may override per request.
    deadline_ms: float = 1000.0
    #: ``Retry-After`` hint (seconds) on 429/503 responses.
    retry_after: float = 0.05
    #: Consecutive shard-worker failures that open the shard breaker.
    breaker_threshold: int = 5
    #: Seconds an open shard breaker sheds before the half-open probe.
    breaker_cooldown: float = 1.0
    #: Directory for per-shard write-ahead journals (None = in-memory:
    #: drain-safe but not crash-safe).
    journal_dir: Optional[str] = None
    #: Resume from existing journals instead of starting fresh.
    resume: bool = False
    #: Fsync journal appends before responding (the WAL discipline).
    sync: bool = True
    #: Worker pool for ``GET /offline`` verification solves (1 = serial).
    pool_processes: int = 1
    #: Sliding dedupe-window width in event-time units (``None`` =
    #: unbounded).  Entries of the ``(item, time)`` decision index older
    #: than ``frontier - dedupe_window`` are evicted; a resend of an
    #: evicted event is answered ``409`` exactly like a stale non-dup.
    dedupe_window: Optional[float] = None
    #: Discovery-file name written into ``journal_dir`` once the socket
    #: is bound (cluster supervisors give each replica its own name so
    #: replicas can share one journal directory).
    meta_name: str = "server.json"

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise ValueError(f"shards must be >= 1, got {self.shards}")
        if self.owned_shards is not None:
            owned = tuple(sorted(set(int(s) for s in self.owned_shards)))
            if not owned:
                raise ValueError("owned_shards must not be empty")
            if owned[0] < 0 or owned[-1] >= self.shards:
                raise ValueError(
                    f"owned_shards {owned} outside [0, {self.shards})"
                )
            object.__setattr__(self, "owned_shards", owned)
        if self.dedupe_window is not None and not self.dedupe_window > 0.0:
            raise ValueError(
                f"dedupe_window must be positive, got {self.dedupe_window}"
            )
        if self.queue_depth < 1:
            raise ValueError(f"queue_depth must be >= 1, got {self.queue_depth}")
        if not 0.0 < self.degrade_watermark <= 1.0:
            raise ValueError(
                f"degrade_watermark must be in (0, 1], got {self.degrade_watermark}"
            )
        # Deadline validation rides on RunBudget's own contract.
        RunBudget(max_seconds=self.deadline_ms / 1000.0)
        if self.resume and self.journal_dir is None:
            raise ValueError("resume=True requires journal_dir")

    @property
    def cost(self) -> CostModel:
        return CostModel(mu=self.mu, lam=self.lam)


class _ShardBreaker:
    """Consecutive-failure circuit breaker guarding one shard worker."""

    def __init__(self, threshold: int, cooldown: float):
        self.threshold = threshold
        self.cooldown = cooldown
        self.failures = 0
        self.opened_until = 0.0
        self.trips = 0

    def allow(self, now: float) -> bool:
        """True iff the shard may accept work (closed or half-open)."""
        return self.failures < self.threshold or now >= self.opened_until

    def record_failure(self, now: float) -> None:
        self.failures += 1
        if self.failures >= self.threshold:
            self.opened_until = now + self.cooldown
            self.trips += 1

    def record_success(self) -> None:
        self.failures = 0

    @property
    def state(self) -> str:
        return "open" if self.failures >= self.threshold else "closed"


@dataclass
class _Event:
    """One admitted request event travelling through a shard queue."""

    item: str
    time: float
    server: int
    degraded: bool
    future: "asyncio.Future[dict]" = field(repr=False, default=None)  # type: ignore[assignment]


class _Shard:
    """One shard: solver bank, WAL, decision index, bounded queue."""

    def __init__(self, index: int, config: ServerConfig):
        self.index = index
        self.config = config
        self.solvers: Dict[str, StreamingSolver] = {}
        self.queue: "asyncio.Queue[Optional[_Event]]" = asyncio.Queue(
            maxsize=config.queue_depth
        )
        self.breaker = _ShardBreaker(
            config.breaker_threshold, config.breaker_cooldown
        )
        self.journal: Optional[RunJournal] = None
        self.seq = 0
        self.digest = digest_value({"shard": index, "shards": config.shards})
        #: (item, time) -> settled response payload, for duplicate resends.
        #: Bounded by ``config.dedupe_window``: a sliding window keyed to
        #: the shard's event-time frontier (see :meth:`_evict_dedupe`).
        self.index_by_key: Dict[Tuple[str, float], dict] = {}
        #: Apply-order ledger of live dedupe entries (time, key).
        self.dedupe_order: "deque[Tuple[float, Tuple[str, float]]]" = deque()
        #: Max event time applied on this shard (the window frontier).
        self.frontier = float("-inf")
        #: Max event time ever evicted from the dedupe index: resends at
        #: or below this can no longer be told apart from stale events,
        #: so admission answers them 409.
        self.evicted_horizon = float("-inf")
        self.processed = 0
        self.degraded = 0
        #: Running cost of the naive always-transfer policy over the
        #: full-service events (``μ·Δt + λ`` each — the ``via_transfer``
        #: branch taken at every step), the live upper bound on optimal.
        self.baseline = 0.0
        self.decisions = {"cache": 0, "transfer": 0}
        #: Test hook: when set, the worker waits on it before each event.
        self.gate: Optional[asyncio.Event] = None

    # -- pure state transitions (shared by live serving and resume replay) --

    def journal_path(self) -> Optional[str]:
        if self.config.journal_dir is None:
            return None
        return str(Path(self.config.journal_dir) / f"shard-{self.index}.jsonl")

    def open_journal(self) -> None:
        path = self.journal_path()
        self.journal = RunJournal.open_fresh(path, sync=False)
        self.journal.append(
            {
                "seq": 0,
                "kind": "begin",
                "shard": self.index,
                "shards": self.config.shards,
                "m": self.config.num_servers,
                "mu": self.config.mu,
                "lam": self.config.lam,
                "digest": self.digest,
            }
        )
        self.flush_journal()

    def flush_journal(self) -> None:
        """Fsync appended records (the respond-after-durable barrier)."""
        if self.journal is not None:
            self.journal.flush(fsync=self.config.sync)

    def apply(self, item: str, time: float, server: int, degraded: bool) -> dict:
        """Apply one accepted event to shard state; returns the response.

        Pure function of the accepted-event sequence: the same events in
        the same order yield the same decisions, costs, and digest chain
        regardless of wall clock, load, or process lifetime — this is
        what makes kill/resume bit-identical.
        """
        cost = self.config.cost
        if degraded:
            decision, item_cost, event_cost = "transfer", 0.0, cost.lam
            self.degraded += 1
        else:
            solver = self.solvers.get(item)
            if solver is None:
                solver = StreamingSolver(
                    self.config.num_servers,
                    cost=cost,
                    origin=self.config.origin,
                    kernel=self.config.kernel,
                )
                self.solvers[item] = solver
            prev_t = solver.t[-1]
            prev_c = solver.C[-1]
            item_cost = solver.append(time, server)
            via_transfer = prev_c + cost.mu * (time - prev_t) + cost.lam
            decision = "cache" if solver.D[-1] <= via_transfer else "transfer"
            event_cost = item_cost - prev_c
            self.baseline += cost.mu * (time - prev_t) + cost.lam
            self.decisions[decision] += 1
        self.seq += 1
        self.processed += 1
        core = {
            "kind": "degraded" if degraded else "request",
            "item": item,
            "time": time,
            "server": server,
            "decision": decision,
            "cost": event_cost,
        }
        self.digest = digest_value([self.digest, core])
        payload = {
            "item": item,
            "time": time,
            "server": server,
            "shard": self.index,
            "seq": self.seq,
            "decision": decision,
            "cost": event_cost,
            "item_cost": item_cost,
            "degraded": degraded,
            "duplicate": False,
            "status": "done",
        }
        self.index_by_key[(item, time)] = payload
        if time > self.frontier:
            self.frontier = time
        if self.config.dedupe_window is not None:
            self.dedupe_order.append((time, (item, time)))
            self._evict_dedupe()
        return payload

    def _evict_dedupe(self) -> None:
        """Slide the dedupe window up to the shard's time frontier.

        Entries are evicted in apply order once their event time falls
        behind ``frontier - dedupe_window``; per-item times are strictly
        increasing, so apply order tracks event time closely enough that
        the index size stays proportional to the window, never to the
        run length (regression-tested in ``test_server.py``).
        """
        cutoff = self.frontier - self.config.dedupe_window
        while self.dedupe_order and self.dedupe_order[0][0] < cutoff:
            t_old, key = self.dedupe_order.popleft()
            self.index_by_key.pop(key, None)
            if t_old > self.evicted_horizon:
                self.evicted_horizon = t_old

    def journal_event(self, core_payload: dict) -> None:
        """Write-ahead record for the event just applied."""
        if self.journal is None:
            return
        self.journal.append(
            {
                "seq": self.seq,
                "kind": "degraded" if core_payload["degraded"] else "request",
                "item": core_payload["item"],
                "time": core_payload["time"],
                "server": core_payload["server"],
                "digest": self.digest,
            }
        )

    def resume_from_journal(self) -> int:
        """Rebuild state by replaying the WAL; verify every digest.

        Returns the number of replayed events.  Raises
        :class:`ResumeDivergenceError` on the first digest mismatch —
        resume never silently forks history.
        """
        path = self.journal_path()
        assert path is not None
        self.journal = RunJournal.load(path, sync=False)
        replayed = 0
        for record in self.journal.records:
            if record["kind"] == "begin":
                if record["digest"] != self.digest:
                    raise ResumeDivergenceError(
                        f"shard {self.index}: journal begin digest "
                        f"{record['digest']} != {self.digest} (shard layout "
                        f"or config changed under resume)"
                    )
                continue
            self.apply(
                record["item"],
                record["time"],
                record["server"],
                record["kind"] == "degraded",
            )
            if record["digest"] != self.digest:
                raise ResumeDivergenceError(
                    f"shard {self.index}: resume diverged at seq "
                    f"{record['seq']}: recomputed digest {self.digest} != "
                    f"journaled {record['digest']}"
                )
            replayed += 1
        return replayed

    def optimal_cost(self) -> float:
        return sum(s.optimal_cost for s in self.solvers.values())

    def stats_row(self) -> dict:
        return {
            "shard": self.index,
            "seq": self.seq,
            "digest": self.digest,
            "queue": self.queue.qsize(),
            "items": len(self.solvers),
            "processed": self.processed,
            "degraded": self.degraded,
            "breaker": self.breaker.state,
            "breaker_trips": self.breaker.trips,
        }


class CacheServer:
    """The asyncio request-serving front-end (see module docstring).

    Usage (tests drive it in-process; the CLI via :func:`run_server`)::

        server = CacheServer(ServerConfig(port=0, journal_dir="/tmp/j"))
        await server.start()           # binds; resumes if configured
        ...                            # HTTP traffic against server.port
        await server.shutdown()        # drain, flush, close (SIGTERM path)
    """

    def __init__(self, config: ServerConfig):
        self.config = config
        owned = (
            config.owned_shards
            if config.owned_shards is not None
            else tuple(range(config.shards))
        )
        #: Owned shards by global shard index.  A cluster supervisor can
        #: grow this set at runtime via ``POST /admin/acquire``; routing
        #: (:func:`route_item`) is always over ``config.shards`` total.
        self.shards: Dict[int, _Shard] = {
            i: _Shard(i, config) for i in owned
        }
        self.draining = False
        self.started = False
        self.replayed_events = 0
        self.counters = {
            "accepted": 0,
            "shed_429": 0,
            "shed_503": 0,
            "duplicates": 0,
            "conflicts": 0,
            "misrouted": 0,
            "errors": 0,
            "deadline_expired": 0,
        }
        self._server: Optional[asyncio.AbstractServer] = None
        self._workers: List[asyncio.Task] = []
        self._pool = None
        self._closed = asyncio.Event()

    # -- lifecycle -----------------------------------------------------------

    @property
    def port(self) -> int:
        assert self._server is not None
        return self._server.sockets[0].getsockname()[1]

    async def start(self) -> None:
        if self.config.journal_dir is not None:
            Path(self.config.journal_dir).mkdir(parents=True, exist_ok=True)
        for shard in self.shards.values():
            if self.config.resume and Path(shard.journal_path() or "").exists():
                self.replayed_events += shard.resume_from_journal()
            else:
                shard.open_journal()
            self._workers.append(asyncio.create_task(self._worker(shard)))
        self._server = await asyncio.start_server(
            self._handle_conn, self.config.host, self.config.port
        )
        self.started = True
        if self.config.journal_dir is not None:
            # Discovery file for supervisors / the chaos driver: written
            # only after the socket is bound, so its presence means ready.
            meta = Path(self.config.journal_dir) / self.config.meta_name
            meta.write_text(
                json.dumps(
                    {
                        "host": self.config.host,
                        "port": self.port,
                        "shards": self.config.shards,
                        "owned": sorted(self.shards),
                    }
                )
                + "\n"
            )

    def acquire_shard(self, index: int) -> int:
        """Take ownership of shard ``index`` (the failover handoff).

        Resumes from the shard's per-shard WAL when one exists — digest
        verification included, so the acquired state is provably the
        dead owner's durable prefix — or opens a fresh journal when it
        does not.  Returns the number of replayed events.  Must run on
        the server's event loop.
        """
        if not 0 <= index < self.config.shards:
            raise ValueError(
                f"shard {index} outside [0, {self.config.shards})"
            )
        if index in self.shards:
            return 0
        shard = _Shard(index, self.config)
        path = shard.journal_path()
        replayed = 0
        if path is not None and Path(path).exists():
            replayed = shard.resume_from_journal()
            self.replayed_events += replayed
        else:
            shard.open_journal()
        self.shards[index] = shard
        self._workers.append(asyncio.create_task(self._worker(shard)))
        return replayed

    async def shutdown(self) -> None:
        """Graceful drain: stop admission, flush queues, close journals."""
        if self.draining:
            await self._closed.wait()
            return
        self.draining = True
        for shard in self.shards.values():
            await shard.queue.put(None)  # sentinel after all accepted work
        await asyncio.gather(*self._workers, return_exceptions=True)
        for shard in self.shards.values():
            shard.flush_journal()
            if shard.journal is not None:
                shard.journal.close()
        if self._pool is not None:
            self._pool.close()
            self._pool = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        self._closed.set()

    async def wait_closed(self) -> None:
        await self._closed.wait()

    # -- admission + processing ----------------------------------------------

    def _admit(self, item: str, time: float, server: int) -> Tuple[int, object]:
        """Admission decision: (status, _Event | error payload)."""
        if self.draining:
            self.counters["shed_503"] += 1
            return 503, {"error": "draining"}
        index = route_item(item, self.config.shards)
        shard = self.shards.get(index)
        if shard is None:
            self.counters["misrouted"] += 1
            return 421, {
                "error": f"shard {index} not owned here",
                "shard": index,
                "owned": sorted(self.shards),
            }
        now = asyncio.get_running_loop().time()
        if not shard.breaker.allow(now):
            self.counters["shed_503"] += 1
            return 503, {"error": "circuit open", "shard": shard.index}
        key = (item, float(time))
        hit = shard.index_by_key.get(key)
        if hit is not None:
            self.counters["duplicates"] += 1
            return 200, dict(hit, duplicate=True)
        if float(time) <= shard.evicted_horizon:
            # The dedupe window has slid past this instant: a resend of
            # an applied event and a stale newcomer are no longer
            # distinguishable, so both get the stale-event answer.
            self.counters["conflicts"] += 1
            return 409, {
                "error": f"event at t={float(time):.9g} is behind the "
                f"dedupe window (evicted horizon "
                f"{shard.evicted_horizon:.9g})",
            }
        solver = shard.solvers.get(item)
        if solver is not None and float(time) <= solver.t[-1]:
            self.counters["conflicts"] += 1
            return 409, {
                "error": f"stale event: item {item!r} horizon is "
                f"{solver.t[-1]:.9g}, got {float(time):.9g}",
            }
        depth = shard.queue.qsize()
        if depth >= self.config.queue_depth:
            self.counters["shed_429"] += 1
            return 429, {"error": "queue full", "shard": shard.index}
        degraded = depth >= self.config.degrade_watermark * self.config.queue_depth
        event = _Event(item=item, time=float(time), server=int(server), degraded=degraded)
        event.future = asyncio.get_running_loop().create_future()
        shard.queue.put_nowait(event)
        self.counters["accepted"] += 1
        return 200, event

    async def _worker(self, shard: _Shard) -> None:
        """Single writer for one shard's state, WAL, and decision index."""
        loop = asyncio.get_running_loop()
        while True:
            if shard.gate is not None:  # test hook: hold the queue intact
                await shard.gate.wait()
            event = await shard.queue.get()
            if event is None:
                return
            batch = [event]
            # Opportunistically drain what is already queued so one fsync
            # covers the whole batch (write-ahead still holds: responses
            # resolve only after the flush below).
            while not shard.queue.empty() and len(batch) < 64:
                nxt = shard.queue.get_nowait()
                if nxt is None:
                    shard.queue.put_nowait(None)  # keep the drain sentinel
                    break
                batch.append(nxt)
            settled: List[Tuple[_Event, dict]] = []
            for ev in batch:
                try:
                    hit = shard.index_by_key.get((ev.item, ev.time))
                    if hit is not None:
                        # The same logical event was applied earlier in
                        # this batch window (client retry overlapping its
                        # own in-flight original): answer, don't re-apply.
                        self.counters["duplicates"] += 1
                        settled.append((ev, dict(hit, duplicate=True)))
                        continue
                    payload = shard.apply(ev.item, ev.time, ev.server, ev.degraded)
                    shard.journal_event(payload)
                    shard.breaker.record_success()
                    settled.append((ev, payload))
                except InvalidInstanceError as exc:
                    # Client-shaped input error that slipped past admission
                    # (e.g. equal-time race inside one batch): reject the
                    # event without charging the breaker.
                    settled.append((ev, {"error": str(exc), "_status": 400}))
                except Exception as exc:  # noqa: BLE001 - breaker boundary
                    shard.breaker.record_failure(loop.time())
                    self.counters["errors"] += 1
                    settled.append(
                        (ev, {"error": f"internal: {exc}", "_status": 500})
                    )
            shard.flush_journal()
            for ev, payload in settled:
                if not ev.future.done():
                    ev.future.set_result(payload)
            await asyncio.sleep(0)  # yield to responders between batches

    async def _respond_request(self, body: dict) -> Tuple[int, dict, list]:
        try:
            item = str(body["item"])
            time = float(body["time"])
            server = int(body["server"])
        except (KeyError, TypeError, ValueError) as exc:
            return 400, {"error": f"bad event: {exc}"}, []
        deadline_ms = body.get("deadline_ms", self.config.deadline_ms)
        try:
            budget = RunBudget(max_seconds=float(deadline_ms) / 1000.0)
        except (TypeError, ValueError) as exc:
            return 400, {"error": f"bad deadline: {exc}"}, []
        status, outcome = self._admit(item, time, server)
        if status != 200:
            retry = [("Retry-After", f"{self.config.retry_after:.3f}")] if status in (429, 503) else []
            return status, outcome, retry
        if not isinstance(outcome, _Event):
            return status, outcome, []  # settled duplicate
        try:
            payload = await asyncio.wait_for(
                asyncio.shield(outcome.future), timeout=budget.max_seconds
            )
        except asyncio.TimeoutError:
            # Deadline budget expired: degraded-partial response; the
            # accepted event still processes and a duplicate resend will
            # return the settled decision.
            self.counters["deadline_expired"] += 1
            return 200, {
                "item": item,
                "shard": route_item(item, self.config.shards),
                "decision": None,
                "degraded": True,
                "duplicate": False,
                "status": "pending",
            }, []
        status = payload.pop("_status", 200) if "_status" in payload else 200
        return status, payload, []

    # -- endpoints ------------------------------------------------------------

    def _stats(self) -> dict:
        shards = [self.shards[i] for i in sorted(self.shards)]
        optimal = sum(s.optimal_cost() for s in shards)
        processed = sum(s.processed for s in shards)
        degraded = sum(s.degraded for s in shards)
        baseline = sum(s.baseline for s in shards)
        decisions = {"cache": 0, "transfer": 0}
        for s in shards:
            for k in decisions:
                decisions[k] += s.decisions[k]
        rows = [s.stats_row() for s in shards]
        return {
            "requests": dict(self.counters),
            "items": sum(len(s.solvers) for s in shards),
            "processed": processed,
            "degraded_decisions": degraded,
            "decisions": decisions,
            "optimal_cost": optimal,
            "baseline_cost": baseline,
            "savings_vs_always_transfer": baseline - optimal,
            "replayed_events": self.replayed_events,
            "draining": self.draining,
            "shards": rows,
            "digest": digest_value([(r["shard"], r["seq"], r["digest"]) for r in rows]),
        }

    def _snapshot_items(self) -> Tuple[dict, float]:
        """Freeze per-item instances + streaming total (in the event loop,
        so the executor-side solve below never races shard workers)."""
        items = {
            name: solver.instance()
            for index in sorted(self.shards)
            for name, solver in sorted(self.shards[index].solvers.items())
        }
        return items, sum(s.optimal_cost() for s in self.shards.values())

    def _offline_check(self, items: dict, streaming_total: float) -> dict:
        """Re-solve a frozen snapshot through the service layer."""
        from .fabric import CircuitOpenError, RetryPolicy, ServicePool
        from .multi import MultiItemInstance, solve_offline_multi

        if not items:
            return {"error": "no items yet", "_status": 409}
        service = MultiItemInstance(items)
        if self.config.pool_processes > 1:
            if self._pool is None:
                self._pool = ServicePool(
                    self.config.pool_processes, retry=RetryPolicy()
                )
            try:
                off = self._pool.solve(service)
            except CircuitOpenError as exc:
                return {"error": str(exc), "_status": 503}
        else:
            off = solve_offline_multi(service, kernel=self.config.kernel)
        offline_total = off.total_cost
        drift = abs(offline_total - streaming_total)
        return {
            "items": len(items),
            "offline_total": offline_total,
            "streaming_total": streaming_total,
            "match": drift <= 1e-9 * max(1.0, abs(offline_total)),
        }

    async def _dispatch(self, method: str, path: str, body: bytes) -> Tuple[int, dict, list]:
        if path == "/healthz":
            return 200, {"ok": True}, []
        if path == "/readyz":
            ready = self.started and not self.draining
            breakers = [
                self.shards[i].breaker.state for i in sorted(self.shards)
            ]
            status = 200 if ready else 503
            extra = [] if ready else [("Retry-After", f"{self.config.retry_after:.3f}")]
            return status, {
                "ready": ready,
                "breakers": breakers,
                "owned": sorted(self.shards),
            }, extra
        if path == "/admin/acquire" and method == "POST":
            if self.draining:
                return 503, {"error": "draining"}, []
            try:
                parsed = json.loads(body or b"{}")
                index = int(parsed["shard"])
            except (json.JSONDecodeError, KeyError, TypeError, ValueError) as exc:
                return 400, {"error": f"bad acquire: {exc}"}, []
            try:
                replayed = self.acquire_shard(index)
            except ValueError as exc:
                return 400, {"error": str(exc)}, []
            except ResumeDivergenceError as exc:
                self.counters["errors"] += 1
                return 500, {"error": f"acquire diverged: {exc}"}, []
            return 200, {
                "shard": index,
                "replayed": replayed,
                "owned": sorted(self.shards),
            }, []
        if path == "/stats" and method == "GET":
            return 200, self._stats(), []
        if path == "/offline" and method == "GET":
            items, streaming_total = self._snapshot_items()
            payload = await asyncio.get_running_loop().run_in_executor(
                None, self._offline_check, items, streaming_total
            )
            return payload.pop("_status", 200), payload, []
        if path == "/request" and method == "POST":
            try:
                parsed = json.loads(body or b"{}")
            except json.JSONDecodeError as exc:
                return 400, {"error": f"bad json: {exc}"}, []
            return await self._respond_request(parsed)
        if path == "/batch" and method == "POST":
            try:
                parsed = json.loads(body or b"{}")
                events = parsed["events"]
            except (json.JSONDecodeError, KeyError, TypeError) as exc:
                return 400, {"error": f"bad batch: {exc}"}, []
            results = []
            for ev in events:
                status, payload, _ = await self._respond_request(ev)
                results.append({"status": status, **payload})
            return 200, {"results": results}, []
        if path in ("/request", "/batch", "/stats", "/offline", "/admin/acquire"):
            return 405, {"error": f"{method} not allowed on {path}"}, []
        return 404, {"error": f"no such endpoint: {path}"}, []

    # -- HTTP plumbing ---------------------------------------------------------

    async def _handle_conn(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                parts = line.decode("latin-1").split()
                if len(parts) != 3:
                    writer.write(self._render(400, {"error": "bad request line"}, [], False))
                    await writer.drain()
                    break
                method, path, _version = parts
                headers: Dict[str, str] = {}
                while True:
                    hline = await reader.readline()
                    if hline in (b"\r\n", b"\n", b""):
                        break
                    key, _, value = hline.decode("latin-1").partition(":")
                    headers[key.strip().lower()] = value.strip()
                length = int(headers.get("content-length", "0") or "0")
                body = await reader.readexactly(length) if length else b""
                path = path.split("?", 1)[0]
                try:
                    status, payload, extra = await self._dispatch(method, path, body)
                except Exception as exc:  # noqa: BLE001 - last-resort boundary
                    self.counters["errors"] += 1
                    status, payload, extra = 500, {"error": f"internal: {exc}"}, []
                keep = headers.get("connection", "keep-alive").lower() != "close"
                writer.write(self._render(status, payload, extra, keep))
                await writer.drain()
                if not keep:
                    break
        except (asyncio.IncompleteReadError, ConnectionError, ValueError):
            pass  # torn connection or unparseable framing: drop it
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    @staticmethod
    def _render(status: int, payload: dict, extra: list, keep: bool) -> bytes:
        blob = json.dumps(payload).encode("utf-8")
        head = [
            f"HTTP/1.1 {status} {_REASONS.get(status, 'OK')}",
            "Content-Type: application/json",
            f"Content-Length: {len(blob)}",
            f"Connection: {'keep-alive' if keep else 'close'}",
        ]
        head.extend(f"{k}: {v}" for k, v in extra)
        return ("\r\n".join(head) + "\r\n\r\n").encode("latin-1") + blob


def run_server(config: ServerConfig) -> int:
    """Blocking CLI entry: serve until SIGTERM/SIGINT, drain, exit 0."""

    async def _main() -> int:
        server = CacheServer(config)
        await server.start()
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGTERM, signal.SIGINT):
            loop.add_signal_handler(
                sig, lambda: asyncio.ensure_future(server.shutdown())
            )
        owned = (
            f"owning {','.join(map(str, sorted(server.shards)))} of "
            if config.owned_shards is not None
            else ""
        )
        print(
            f"serving on http://{config.host}:{server.port} "
            f"({owned}{config.shards} shards, queue depth {config.queue_depth}, "
            f"journal {config.journal_dir or '<memory>'}"
            + (f", resumed {server.replayed_events} events" if config.resume else "")
            + ")",
            flush=True,
        )
        await server.wait_closed()
        print("drained and stopped", flush=True)
        return 0

    return asyncio.run(_main())
