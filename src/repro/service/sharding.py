"""Item sharding for the process-parallel multi-item service layer.

Under the homogeneous cost model the multi-item problem decomposes
exactly into independent per-item instances (see :mod:`repro.service.multi`),
so the service layer is embarrassingly parallel: partition the items into
shards, ship each shard to a worker process, and merge.  This module owns
the partitioning and the module-level shard workers
(:func:`repro.analysis.parallel.parallel_map` requires picklable,
module-level callables — closures die at the pool boundary).

Two strategies are provided:

* ``"size"`` (default) — longest-processing-time greedy: items sorted by
  request count descending go to the currently lightest shard.  The DP is
  ``O(mn)`` per item, so request count is a faithful proxy for work and
  this keeps shard makespans balanced even under Zipf-skewed volumes.
* ``"hash"`` — stable content hash of the item name (``zlib.crc32``, *not*
  the salted builtin ``hash``) modulo the shard count.  Placement of an
  item never depends on which other items are present, which matters when
  shards map to long-lived worker state across requests.

Both strategies are deterministic functions of the item names and sizes;
empty shards are dropped.  Sharding never affects results: the callers in
:mod:`repro.service.multi` merge shard outputs back into the original
item order, so parallel runs are bit-identical to serial ones regardless
of strategy or shard count.
"""

from __future__ import annotations

import heapq
import zlib
from dataclasses import replace
from typing import Callable, Dict, List, Sequence, Tuple

from ..core.instance import ProblemInstance
from ..kernels.batch import BatchLayout, solve_layout
from ..kernels.online import run_online_layout, vector_policy_config
from ..offline.dp import solve_offline
from ..offline.result import OfflineResult
from ..online.base import OnlineAlgorithm
from ..sim.recorder import OnlineRunResult

__all__ = ["plan_shards", "SHARD_STRATEGIES"]

#: Supported values for ``strategy=`` across the service layer.
SHARD_STRATEGIES = ("size", "hash")


def plan_shards(
    items: Dict[str, ProblemInstance],
    shards: int,
    strategy: str = "size",
) -> List[List[str]]:
    """Partition item names into at most ``shards`` non-empty bins.

    Parameters
    ----------
    items:
        Item name → instance (the ``items`` dict of a
        :class:`~repro.service.multi.MultiItemInstance`).
    shards:
        Target shard count (``>= 1``); fewer may be returned when there
        are fewer items than shards, or when hashing leaves bins empty.
    strategy:
        ``"size"`` (LPT greedy on request counts) or ``"hash"``
        (``crc32(name) % shards``).

    Returns
    -------
    list of list of str
        Deterministic partition of the item names; within each shard the
        names keep the input dict's order.
    """
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    if strategy not in SHARD_STRATEGIES:
        raise ValueError(
            f"unknown shard strategy {strategy!r}; choose from {SHARD_STRATEGIES}"
        )
    names = list(items)
    shards = min(shards, len(names))
    bins: List[List[str]] = [[] for _ in range(shards)]
    if strategy == "hash":
        for name in names:
            bins[zlib.crc32(name.encode("utf-8")) % shards].append(name)
    else:  # size: LPT greedy, ties broken by input order then bin index
        order = sorted(range(len(names)), key=lambda i: (-items[names[i]].n, i))
        # Heap keyed (load, bin index): each placement is O(log shards)
        # instead of the former loads.index(min(loads)) linear scan —
        # O(items log shards) total, not O(items × shards).  The heap
        # pops the lexicographic minimum, which is exactly the scan's
        # answer (lightest bin, lowest index among ties), so plans are
        # byte-identical to the old loop (golden-pinned in
        # tests/service/test_sharding.py).
        heap = [(0, b) for b in range(shards)]
        for i in order:
            load, b = heapq.heappop(heap)
            bins[b].append(names[i])
            heapq.heappush(heap, (load + items[names[i]].n, b))
        input_rank = {name: i for i, name in enumerate(names)}
        for b in bins:
            b.sort(key=input_rank.__getitem__)
    return [b for b in bins if b]


# ---------------------------------------------------------------------------
# The *pickle transport*: shard descriptors and workers (module-level so
# they survive pickling into a process pool).  This is one of two
# transports the service layer offers — the other is the zero-copy
# shared-memory fabric of :mod:`repro.service.fabric`, which ships the
# same raw columns through a SharedMemory arena instead of the pool pipe
# and is the default (``transport="shm"``).  Here, shards travel as
# *packed* descriptors — the raw request arrays plus construction
# parameters, never the pre-scanned instance.  The pivot matrix alone is
# ``m × n`` int64, an order of magnitude more bytes than the arrays it
# derives from, and instance construction is deterministic — so
# rebuilding in the worker both shrinks the outbound pickle and moves
# the O(mn) pre-scan into the parallel section while keeping results
# bit-identical.  Both transports rebuild instances with the same
# deterministic constructor, so results agree bit-for-bit with each
# other and with serial runs.
# ---------------------------------------------------------------------------


def _pack_item(name: str, inst: ProblemInstance) -> Tuple:
    """Flatten an item to a small picklable descriptor."""
    return (
        name,
        inst.t[1:],
        inst.srv[1:],
        inst.num_servers,
        inst.cost,
        inst.origin,
        float(inst.t[0]),
        inst._pivots.mode,  # resolved, so the worker keeps the same backend
    )


def _unpack_item(desc: Tuple) -> Tuple[str, ProblemInstance]:
    """Rebuild the instance a descriptor encodes (bit-identical pre-scan)."""
    name, t, srv, m, cost, origin, start, pivot_mode = desc
    inst = ProblemInstance.from_arrays(
        t,
        srv,
        num_servers=m,
        cost=cost,
        origin=origin,
        start_time=start,
        pivot_mode=pivot_mode,
    )
    return name, inst


def _solve_shard(
    descs: Sequence[Tuple], kernel: str = "auto"
) -> List[Tuple[str, OfflineResult]]:
    """Solve every item in one shard with the fast DP (pickle transport).

    ``kernel`` selects the DP sweep (``"auto"``/``"frontier"``/
    ``"reference"``/``"batch"``, see :func:`repro.offline.dp.solve_offline`)
    — the choice travels with the shard so workers and the serial path
    run the same code, and results stay bit-identical regardless.

    ``"auto"`` and ``"batch"`` solve the whole shard with ONE call to the
    batched instance-major kernel, straight from the descriptors' raw
    columns (:meth:`repro.kernels.batch.BatchLayout.from_columns`) —
    no per-item instance rebuild, no pivot-matrix build, no per-item
    Python loop.  ``"frontier"``/``"reference"`` keep the per-item path.

    Instances never cross back over the pool boundary — the parent holds
    the equivalent object and re-attaches it on merge, so only the DP's
    cost/choice vectors pay the return pickle.  The batch path's results
    are born instance-free; the per-item path strips via
    ``dataclasses.replace`` rather than mutating the solver's returned
    object in place (batch results are views into shared stacked arrays,
    and the same discipline keeps every result object immutable-by-
    convention).  (The shm transport goes further: workers write the
    vectors into a preallocated shared result region and return only
    ``(name, solver)`` acks — see
    :func:`repro.service.fabric._worker_solve_shard`.)
    """
    if kernel in ("auto", "batch"):
        layout = BatchLayout.from_columns(
            [
                (name, t, srv, m, cost.mu, cost.lam, origin, start)
                for name, t, srv, m, cost, origin, start, _mode in descs
            ]
        )
        return list(zip(layout.names, solve_layout(layout)))
    out: List[Tuple[str, OfflineResult]] = []
    for desc in descs:
        name, inst = _unpack_item(desc)
        res = solve_offline(inst, kernel=kernel)
        # Strip a *copy*, never the returned object: solvers may hand
        # back views into shared arrays.
        out.append((name, replace(res, instance=None, _schedule=None)))
    return out


def _run_shard(
    policy_factory: Callable[[], OnlineAlgorithm],
    descs: Sequence[Tuple],
    kernel: str = "auto",
) -> List[Tuple[str, OnlineRunResult]]:
    """Serve every item in one shard with a fresh policy per item.

    When the policy is vector-kernel eligible (plain
    ``SpeculativeCaching``) and ``kernel`` allows it, the whole shard is
    packed into one :class:`BatchLayout` and served with ONE batched
    online-kernel call — bit-identical to the per-item loop, including
    output order (``from_columns`` preserves item order).
    """
    probe = policy_factory()
    config = vector_policy_config(probe) if kernel != "event" else None
    if config is not None:
        if not descs:
            return []
        window_factor, epoch_size, algo_name = config
        layout = BatchLayout.from_columns(
            [
                (name, t, srv, m, cost.mu, cost.lam, origin, start)
                for name, t, srv, m, cost, origin, start, _mode in descs
            ]
        )
        runs = run_online_layout(
            layout, window_factor, epoch_size, algorithm_name=algo_name
        )
        return [(name, run.to_result()) for name, run in zip(layout.names, runs)]
    if kernel == "vector":
        raise ValueError(
            f"kernel='vector' requires a plain SpeculativeCaching policy, "
            f"got {type(probe).__name__}; use kernel='event' or 'auto'"
        )
    out: List[Tuple[str, OnlineRunResult]] = []
    for desc in descs:
        name, inst = _unpack_item(desc)
        out.append((name, policy_factory().run(inst, kernel=kernel)))
    return out
