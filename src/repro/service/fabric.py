"""Zero-copy shared-memory data plane for the multi-item service layer.

The pickled transport of :mod:`repro.service.sharding` re-serialises every
shard descriptor into a *fresh* process pool on every call: pool spawn,
pickle out, instance rebuild, result pickle back.  After the PR-4 kernel
work the solve itself is cheap enough that this data movement dominates
the service layer's wall clock.  This module removes it:

* :class:`ServiceArena` — the packed raw request arrays of one
  :class:`~repro.service.multi.MultiItemInstance` living in a single
  :class:`multiprocessing.shared_memory.SharedMemory` block.  Workers
  attach **once** per (worker, service) pair and read the columns as
  numpy views — no per-call pickling, no copies.
* :class:`ResultRegion` — a preallocated shared block sized for the
  service's per-item DP result arrays (``C``/``D``/``served_by_cache``/
  ``choice_d_tag``/``choice_d_k``).  Workers write their slices in
  place; the merge step copies them out with plain ``memcpy`` instead of
  un-pickling megabytes of arrays.
* :class:`ServicePool` — a persistent, lazily spawned process pool that
  owns both regions, caches worker-side instance builds across calls,
  survives worker crashes under a configurable :class:`RetryPolicy`
  (broken pools are respawned and the unfinished shards retried with
  jittered, capped exponential backoff — the same discipline as SC-R's
  transfer retries — behind a circuit breaker that fails fast once the
  workload keeps killing workers; the arenas outlive the workers), and
  **guarantees unlink** of every segment it created on ``close()``,
  garbage collection of the service object, interpreter exit, and error
  paths.  ``close()`` is idempotent, thread-safe under concurrent
  double-close, and bounds its worker join so interpreter shutdown can
  never hang on a wedged worker.

Segment lifetime rules (also documented in ``docs/API.md``):

* Only the parent process ever calls ``unlink()``; workers attach
  untracked and never close (their mappings die with the process).
* Every segment name carries the :data:`SEGMENT_PREFIX` prefix so tests
  and CI can scan ``/dev/shm`` for leaks, and every live segment is
  recorded in a module-level registry (:func:`active_segments`).
* An ``atexit`` hook releases anything still live at interpreter exit.

Determinism: the arena stores the instances' own ``t``/``srv`` bytes and
workers rebuild instances with the same deterministic constructor used
serially, so results through this transport are bit-identical to serial
solves — the same guarantee (and tests) the pickled transport carries.
"""

from __future__ import annotations

import atexit
import os
import random
import threading
import time
import uuid
import weakref
from collections import OrderedDict
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.instance import ProblemInstance
from ..core.types import CostModel
from ..offline.dp import solve_offline
from ..offline.result import OfflineResult
from ..online.base import OnlineAlgorithm
from ..sim.recorder import OnlineRunResult
from .sharding import plan_shards

__all__ = [
    "CircuitOpenError",
    "RetryPolicy",
    "ServicePool",
    "ServiceArena",
    "ResultRegion",
    "active_segments",
    "SEGMENT_PREFIX",
]

#: Prefix of every shared-memory segment this module creates.  CI and the
#: leak tests scan ``/dev/shm`` for this prefix after runs.
SEGMENT_PREFIX = "reprosvc"

#: Byte alignment of every array inside a segment (cache-line friendly,
#: and keeps float64 views aligned regardless of neighbouring columns).
_ALIGN = 64

#: Parent-side registry of live segments: name -> SharedMemory.
_LIVE_SEGMENTS: Dict[str, shared_memory.SharedMemory] = {}


def active_segments() -> Tuple[str, ...]:
    """Names of the shared-memory segments this process currently owns.

    Empty after every ``ServicePool.close()`` / context exit — the leak
    tests and the CI job assert exactly that.
    """
    return tuple(sorted(_LIVE_SEGMENTS))


def _new_segment(nbytes: int) -> shared_memory.SharedMemory:
    name = f"{SEGMENT_PREFIX}-{os.getpid()}-{uuid.uuid4().hex[:12]}"
    shm = shared_memory.SharedMemory(name=name, create=True, size=max(nbytes, 1))
    _LIVE_SEGMENTS[shm.name] = shm
    return shm


def _release_segment(shm: Optional[shared_memory.SharedMemory]) -> None:
    """Close + unlink a parent-owned segment; idempotent and non-raising."""
    if shm is None:
        return
    _LIVE_SEGMENTS.pop(shm.name, None)
    for op in (shm.close, shm.unlink):
        try:
            op()
        except (FileNotFoundError, BufferError):  # already gone / view alive
            pass


@atexit.register
def _release_all_segments() -> None:  # pragma: no cover - exit hook
    for shm in list(_LIVE_SEGMENTS.values()):
        _release_segment(shm)


def _attach_untracked(name: str) -> shared_memory.SharedMemory:
    """Worker-side attach that leaves unlink ownership with the parent.

    ``SharedMemory(name=...)`` registers the segment with the process's
    resource tracker even when merely attaching; on worker exit the
    tracker would then unlink (or warn about) a segment the parent still
    owns.  Python 3.13 grew ``track=False`` for exactly this; on older
    interpreters we suppress the registration call for the duration of
    the attach.  (Unregistering *after* the attach would be wrong there:
    fork-started workers share the parent's tracker process, whose cache
    is one set per resource type, so a worker-side unregister would
    erase the parent's own registration and break its unlink.)
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)  # type: ignore[call-arg]
    except TypeError:
        from multiprocessing import resource_tracker

        orig_register = resource_tracker.register
        resource_tracker.register = lambda *a, **k: None  # type: ignore[assignment]
        try:
            return shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = orig_register


def _aligned(offset: int) -> int:
    return (offset + _ALIGN - 1) // _ALIGN * _ALIGN


# ---------------------------------------------------------------------------
# Arena: the service's raw request columns, packed once, attached per worker.
# ---------------------------------------------------------------------------

#: Per-item arena entry: (name, n, t_offset, srv_offset, origin, start_time,
#: pivot_mode).  Travels to workers as a plain tuple — a few dozen bytes per
#: item versus the kilobytes the pickled transport ships.
ArenaEntry = Tuple[str, int, int, int, int, float, str]


class ServiceArena:
    """A service's packed ``t``/``srv`` columns in one shared block."""

    def __init__(
        self,
        shm: shared_memory.SharedMemory,
        entries: Dict[str, ArenaEntry],
        num_servers: int,
        cost: CostModel,
    ):
        self.shm = shm
        self.entries = entries
        self.num_servers = num_servers
        self.cost = cost

    @classmethod
    def pack(cls, service) -> "ServiceArena":
        """Copy every item's request columns into a fresh segment."""
        offset = 0
        slots: List[Tuple[str, ProblemInstance, int, int]] = []
        for name, inst in service.items.items():
            t_off = _aligned(offset)
            srv_off = _aligned(t_off + inst.n * 8)
            offset = srv_off + inst.n * 8
            slots.append((name, inst, t_off, srv_off))
        shm = _new_segment(offset)
        try:
            entries: Dict[str, ArenaEntry] = {}
            for name, inst, t_off, srv_off in slots:
                n = inst.n
                t_view = np.frombuffer(shm.buf, np.float64, n, t_off)
                s_view = np.frombuffer(shm.buf, np.int64, n, srv_off)
                t_view[:] = inst.t[1:]
                s_view[:] = inst.srv[1:]
                entries[name] = (
                    name,
                    n,
                    t_off,
                    srv_off,
                    inst.origin,
                    float(inst.t[0]),
                    inst._pivots.mode,
                )
            return cls(shm, entries, service.num_servers, service.cost)
        except BaseException:
            _release_segment(shm)
            raise

    def release(self) -> None:
        """Unlink the segment (parent-side; idempotent)."""
        _release_segment(self.shm)
        self.shm = None


# ---------------------------------------------------------------------------
# Result region: per-item DP output arrays at precomputed offsets.
# ---------------------------------------------------------------------------

#: Per-item result entry: (C_off, D_off, served_off, tag_off, k_off, n).
ResultEntry = Tuple[int, int, int, int, int, int]

#: (dtype, bytes-per-element) of the five OfflineResult arrays, in order.
_RESULT_FIELDS = (
    (np.float64, 8),  # C
    (np.float64, 8),  # D
    (np.bool_, 1),  # served_by_cache
    (np.int64, 8),  # choice_d_tag
    (np.int64, 8),  # choice_d_k
)


def _result_views(
    buf, entry: ResultEntry
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    n1 = entry[5] + 1
    return tuple(  # type: ignore[return-value]
        np.frombuffer(buf, dtype, n1, off)
        for (dtype, _), off in zip(_RESULT_FIELDS, entry[:5])
    )


class ResultRegion:
    """Preallocated shared block for every item's solve output."""

    def __init__(self, shm: shared_memory.SharedMemory, entries: Dict[str, ResultEntry]):
        self.shm = shm
        self.entries = entries

    @classmethod
    def allocate(cls, service) -> "ResultRegion":
        offset = 0
        entries: Dict[str, ResultEntry] = {}
        for name, inst in service.items.items():
            n1 = inst.n + 1
            offs = []
            for _, width in _RESULT_FIELDS:
                offset = _aligned(offset)
                offs.append(offset)
                offset += n1 * width
            entries[name] = (*offs, inst.n)  # type: ignore[assignment]
        return cls(_new_segment(offset), entries)

    def read_item(self, name: str) -> Tuple[np.ndarray, ...]:
        """Copy one item's arrays out of the region (plain memcpy)."""
        return tuple(
            np.array(v, copy=True) for v in _result_views(self.shm.buf, self.entries[name])
        )

    def release(self) -> None:
        _release_segment(self.shm)
        self.shm = None


# ---------------------------------------------------------------------------
# Worker side.  Workers cache attached segments and built instances across
# calls — the whole point of the persistent pool: attach once, rebuild once,
# then every subsequent call is pure solve.
# ---------------------------------------------------------------------------

#: arena segment name -> (SharedMemory, {item name: ProblemInstance}).
_WORKER_ARENAS: "OrderedDict[str, Tuple[shared_memory.SharedMemory, Dict[str, ProblemInstance]]]" = OrderedDict()
#: result segment name -> SharedMemory.
_WORKER_RESULTS: "OrderedDict[str, shared_memory.SharedMemory]" = OrderedDict()
#: Worker-side cache caps (per segment kind).  Old entries just drop their
#: *references* — unlink stays with the parent.
_WORKER_CACHE_CAP = 8


def _worker_cache_put(cache: OrderedDict, key: str, value) -> None:
    cache[key] = value
    cache.move_to_end(key)
    while len(cache) > _WORKER_CACHE_CAP:
        cache.popitem(last=False)


def _worker_arena(arena_name: str):
    hit = _WORKER_ARENAS.get(arena_name)
    if hit is None:
        hit = (_attach_untracked(arena_name), {})
        _worker_cache_put(_WORKER_ARENAS, arena_name, hit)
    return hit


def _worker_instance(
    arena_name: str, meta: Tuple[int, float, float], entry: ArenaEntry
) -> ProblemInstance:
    shm, instances = _worker_arena(arena_name)
    name, n, t_off, srv_off, origin, start, pivot_mode = entry
    inst = instances.get(name)
    if inst is None:
        m, mu, lam = meta
        inst = ProblemInstance.from_arrays(
            np.frombuffer(shm.buf, np.float64, n, t_off),
            np.frombuffer(shm.buf, np.int64, n, srv_off),
            num_servers=m,
            cost=CostModel(mu=mu, lam=lam),
            origin=origin,
            start_time=start,
            pivot_mode=pivot_mode,
        )
        instances[name] = inst
    return inst


def _worker_solve_shard(
    arena_name: str,
    meta: Tuple[int, float, float],
    entries: Sequence[ArenaEntry],
    kernel: str,
    result_name: str,
    result_entries: Sequence[ResultEntry],
) -> List[Tuple[str, str]]:
    """Solve one shard, writing result arrays into the shared region.

    Returns only ``(item name, solver tag)`` pairs — the arrays never
    cross the pipe.  With ``kernel`` ``"auto"``/``"batch"`` the whole
    shard is solved by ONE call to the batched instance-major kernel,
    packed straight from the arena's zero-copy column views — no
    instance construction (and no pivot-matrix build) in the worker at
    all.  ``"frontier"``/``"reference"`` keep the per-item path with
    its cached instance builds.
    """
    from ..kernels.batch import BatchLayout, solve_layout

    res_shm = _WORKER_RESULTS.get(result_name)
    if res_shm is None:
        res_shm = _attach_untracked(result_name)
        _worker_cache_put(_WORKER_RESULTS, result_name, res_shm)
    out: List[Tuple[str, str]] = []
    if kernel in ("auto", "batch"):
        shm, _ = _worker_arena(arena_name)
        m, mu, lam = meta
        layout = BatchLayout.from_columns(
            [
                (
                    name,
                    np.frombuffer(shm.buf, np.float64, n, t_off),
                    np.frombuffer(shm.buf, np.int64, n, srv_off),
                    m,
                    mu,
                    lam,
                    origin,
                    start,
                )
                for name, n, t_off, srv_off, origin, start, _mode in entries
            ]
        )
        results = solve_layout(layout)
        for entry, res_entry, res in zip(entries, result_entries, results):
            views = _result_views(res_shm.buf, res_entry)
            for view, src in zip(
                views,
                (
                    res.C,
                    res.D,
                    res.served_by_cache,
                    res.choice_d_tag,
                    res.choice_d_k,
                ),
            ):
                view[:] = src  # copy out of the batch's shared arrays
            out.append((entry[0], res.solver))
        return out
    for entry, res_entry in zip(entries, result_entries):
        inst = _worker_instance(arena_name, meta, entry)
        res = solve_offline(inst, kernel=kernel)
        views = _result_views(res_shm.buf, res_entry)
        for view, src in zip(
            views,
            (res.C, res.D, res.served_by_cache, res.choice_d_tag, res.choice_d_k),
        ):
            view[:] = src
        out.append((entry[0], res.solver))
    return out


def _worker_run_shard(
    arena_name: str,
    meta: Tuple[int, float, float],
    entries: Sequence[ArenaEntry],
    policy_factory: Callable[[], OnlineAlgorithm],
    kernel: str = "auto",
) -> List[Tuple[str, OnlineRunResult]]:
    """Serve one shard online.  Inputs arrive zero-copy via the arena;
    results (schedules, counters — policy artefacts, not fixed-size
    arrays) return through the pipe as in the pickled transport.

    With a vector-eligible policy (plain ``SpeculativeCaching``) and
    ``kernel`` ``"auto"``/``"vector"``, the whole shard is served by ONE
    batched online-kernel call packed straight from the arena's
    zero-copy column views — no instance construction in the worker at
    all — bit-identical to the per-item loop."""
    from ..kernels.batch import BatchLayout
    from ..kernels.online import run_online_layout, vector_policy_config

    probe = policy_factory()
    config = vector_policy_config(probe) if kernel != "event" else None
    if config is not None:
        if not entries:
            return []
        window_factor, epoch_size, algo_name = config
        shm, _ = _worker_arena(arena_name)
        m, mu, lam = meta
        layout = BatchLayout.from_columns(
            [
                (
                    name,
                    np.frombuffer(shm.buf, np.float64, n, t_off),
                    np.frombuffer(shm.buf, np.int64, n, srv_off),
                    m,
                    mu,
                    lam,
                    origin,
                    start,
                )
                for name, n, t_off, srv_off, origin, start, _mode in entries
            ]
        )
        runs = run_online_layout(
            layout, window_factor, epoch_size, algorithm_name=algo_name
        )
        return [(name, run.to_result()) for name, run in zip(layout.names, runs)]
    if kernel == "vector":
        raise ValueError(
            f"kernel='vector' requires a plain SpeculativeCaching policy, "
            f"got {type(probe).__name__}; use kernel='event' or 'auto'"
        )
    out: List[Tuple[str, OnlineRunResult]] = []
    for entry in entries:
        inst = _worker_instance(arena_name, meta, entry)
        out.append((entry[0], policy_factory().run(inst, kernel=kernel)))
    return out


# ---------------------------------------------------------------------------
# Crash-recovery policy: retry/backoff + circuit breaker.
# ---------------------------------------------------------------------------


class CircuitOpenError(RuntimeError):
    """The pool's circuit breaker is open: calls fail fast until cooldown."""


@dataclass(frozen=True)
class RetryPolicy:
    """Crash-recovery discipline for :class:`ServicePool` submissions.

    A worker crash (``BrokenProcessPool``) breaks only the in-flight
    call: the executor is respawned and the *unfinished* shards are
    retried — completed shards keep their results — up to ``retries``
    times, sleeping a jittered, capped exponential backoff between
    attempts (``min(max_delay, base_delay · 2^attempt)`` scaled by a
    uniform ``[1 - jitter, 1]`` draw, the same shape as SC-R's transfer
    retries).  Jitter affects only *when* a retry runs, never any
    result: solves are pure, so retried calls stay bit-identical.

    Calls that exhaust their retries charge the pool's circuit breaker;
    after ``breaker_threshold`` consecutive failed *calls* the breaker
    opens and subsequent calls raise :class:`CircuitOpenError`
    immediately — shedding instead of burning CPU respawning a pool the
    workload keeps killing — until ``breaker_cooldown`` seconds pass,
    when one half-open probe call is let through (success closes the
    breaker, failure re-opens it).
    """

    retries: int = 3
    base_delay: float = 0.05
    max_delay: float = 2.0
    jitter: float = 0.5
    breaker_threshold: int = 3
    breaker_cooldown: float = 5.0

    def __post_init__(self) -> None:
        if self.retries < 0:
            raise ValueError(f"retries must be >= 0, got {self.retries}")
        if self.base_delay < 0 or self.max_delay < self.base_delay:
            raise ValueError(
                f"need 0 <= base_delay <= max_delay, got "
                f"{self.base_delay}/{self.max_delay}"
            )
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError(f"jitter must be in [0, 1], got {self.jitter}")
        if self.breaker_threshold < 1:
            raise ValueError(
                f"breaker_threshold must be >= 1, got {self.breaker_threshold}"
            )
        if self.breaker_cooldown < 0:
            raise ValueError(
                f"breaker_cooldown must be >= 0, got {self.breaker_cooldown}"
            )

    def delay(self, attempt: int) -> float:
        """Backoff before retry ``attempt`` (0-based), jittered."""
        base = min(self.max_delay, self.base_delay * (2.0 ** attempt))
        return base * (1.0 - self.jitter * random.random())


class _PoolBreaker:
    """Consecutive-call-failure breaker (see :class:`RetryPolicy`)."""

    def __init__(self, policy: RetryPolicy):
        self.policy = policy
        self.failures = 0
        self.opened_until = 0.0
        self.trips = 0

    def check(self) -> None:
        if (
            self.failures >= self.policy.breaker_threshold
            and time.monotonic() < self.opened_until
        ):
            raise CircuitOpenError(
                f"service pool circuit open after {self.failures} "
                f"consecutive failed calls; retry after "
                f"{self.opened_until - time.monotonic():.2f}s"
            )

    def record_success(self) -> None:
        self.failures = 0

    def record_failure(self) -> None:
        self.failures += 1
        if self.failures >= self.policy.breaker_threshold:
            self.opened_until = time.monotonic() + self.policy.breaker_cooldown
            self.trips += 1

    @property
    def state(self) -> str:
        return (
            "open"
            if self.failures >= self.policy.breaker_threshold
            and time.monotonic() < self.opened_until
            else "closed"
        )


# ---------------------------------------------------------------------------
# The persistent pool.
# ---------------------------------------------------------------------------


def _close_pool_state(state: dict, join_timeout: Optional[float] = 5.0) -> None:
    """Release a pool's executor and segments; idempotent and race-safe.

    Operates on the pool's ``__dict__`` so ``weakref.finalize`` can fire
    it without keeping the pool alive.  Explicit ``close()``, garbage
    collection, and interpreter exit (finalize's atexit leg) may all
    call this concurrently; the lock plus the pop-then-release dance
    makes every ordering safe.  The executor join is bounded: workers
    that outlive ``join_timeout`` are terminated, then killed, so
    shutdown can never hang on a wedged worker.
    """
    lock = state.get("_close_lock")
    if lock is None:  # pragma: no cover - partially constructed pool
        return
    with lock:
        if state.get("_closed"):
            return
        state["_closed"] = True
        executor = state.get("_executor")
        state["_executor"] = None
        services = dict(state.get("_services") or {})
        if state.get("_services") is not None:
            state["_services"].clear()
    if executor is not None:
        executor.shutdown(wait=False, cancel_futures=True)
        deadline = (
            time.monotonic() + join_timeout if join_timeout is not None else None
        )
        for proc in list((getattr(executor, "_processes", None) or {}).values()):
            remaining = (
                max(0.0, deadline - time.monotonic())
                if deadline is not None
                else None
            )
            proc.join(remaining)
            if proc.is_alive():
                proc.terminate()
                proc.join(0.5)
            if proc.is_alive():  # pragma: no cover - hard-wedged worker
                proc.kill()
                proc.join(0.5)
    for entry in services.values():
        _, arena, region, finalizer = entry
        finalizer.detach()
        arena.release()
        region.release()


class ServicePool:
    """Persistent zero-copy process pool for the multi-item service layer.

    Parameters
    ----------
    processes:
        Worker count (``>= 1``).  Workers spawn lazily on the first
        :meth:`solve`/:meth:`serve` call and are reused across calls and
        across services until :meth:`close`.
    retry:
        Crash-recovery :class:`RetryPolicy` (respawn + jittered capped
        backoff + circuit breaker).  The default retries three times;
        ``RetryPolicy(retries=0)`` fails a call on the first break.
    join_timeout:
        Upper bound (seconds) on waiting for workers during
        :meth:`close`; survivors are terminated, then killed.  ``None``
        waits forever (the pre-hardening behaviour).

    Usage::

        with ServicePool(processes=4) as pool:
            off = pool.solve(service)           # packs + attaches once
            off2 = pool.solve(service)          # pure solve: arrays cached
            runs = pool.serve(service, SpeculativeCaching)

    Every shared segment the pool creates is unlinked on ``close()`` (the
    context manager calls it), when the owning service object is garbage
    collected, and at interpreter exit.  A crashed worker breaks only the
    in-flight call: the pool respawns its executor and retries the
    unfinished shards under ``retry`` — the arenas are parent-owned and
    survive.  ``close()`` is idempotent and safe to race from explicit
    calls, ``__del__``, ``weakref.finalize``, and atexit simultaneously.
    """

    def __init__(
        self,
        processes: int,
        retry: Optional[RetryPolicy] = None,
        join_timeout: Optional[float] = 5.0,
    ):
        if processes < 1:
            raise ValueError(f"processes must be >= 1, got {processes}")
        self.processes = processes
        self.retry = retry if retry is not None else RetryPolicy()
        self.join_timeout = join_timeout
        self._breaker = _PoolBreaker(self.retry)
        self._executor: Optional[ProcessPoolExecutor] = None
        #: id(service) -> (weakref, ServiceArena, ResultRegion, finalizer)
        self._services: Dict[int, Tuple] = {}
        self._closed = False
        self._close_lock = threading.Lock()
        # The finalizer operates on __dict__, never self, so it cannot
        # keep the pool alive; finalize's own atexit hook gives the
        # interpreter-exit leg.
        self._finalizer = weakref.finalize(
            self, _close_pool_state, self.__dict__, join_timeout
        )

    # -- lifecycle -----------------------------------------------------------

    def _ensure_executor(self) -> ProcessPoolExecutor:
        if self._closed:
            raise RuntimeError("ServicePool is closed")
        if self._executor is None:
            self._executor = ProcessPoolExecutor(max_workers=self.processes)
        return self._executor

    def _respawn_executor(self) -> ProcessPoolExecutor:
        if self._executor is not None:
            self._executor.shutdown(wait=False, cancel_futures=True)
            self._executor = None
        return self._ensure_executor()

    def close(self) -> None:
        """Shut workers down and unlink every segment.

        Idempotent and race-safe: explicit calls, ``__del__``,
        ``weakref.finalize`` and atexit may all fire concurrently and
        each segment is still released exactly once.  The worker join is
        bounded by ``join_timeout`` (wedged workers are terminated, then
        killed), so interpreter shutdown can never hang here.
        """
        _close_pool_state(self.__dict__, self.join_timeout)

    def __enter__(self) -> "ServicePool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - gc safety net
        try:
            self.close()
        except Exception:
            pass

    @property
    def closed(self) -> bool:
        return self._closed

    # -- region management ---------------------------------------------------

    @staticmethod
    def _release_service_entry(arena: ServiceArena, region: ResultRegion) -> None:
        arena.release()
        region.release()

    def _regions_for(self, service) -> Tuple[ServiceArena, ResultRegion]:
        """Pack (or look up) the arena + result region of a service.

        Keyed by object identity with a weakref guard: when the service
        is garbage collected its segments are unlinked immediately, so a
        long-lived pool serving many workloads cannot accumulate
        segments for dead services.
        """
        key = id(service)
        entry = self._services.get(key)
        if entry is not None and entry[0]() is service:
            return entry[1], entry[2]
        arena = ServiceArena.pack(service)
        try:
            region = ResultRegion.allocate(service)
        except BaseException:
            arena.release()
            raise
        finalizer = weakref.finalize(
            service, self._release_service_entry, arena, region
        )
        self._services[key] = (weakref.ref(service), arena, region, finalizer)
        return arena, region

    # -- submission with crash recovery --------------------------------------

    def _run_tasks(self, fn, tasks: List[tuple]) -> List[list]:
        """Submit one task per shard, recovering crashes under ``retry``.

        Completed shards keep their results across respawns; only the
        unfinished ones are resubmitted, after a jittered backoff.  A
        call that exhausts its retries charges the circuit breaker;
        with the breaker open, calls raise :class:`CircuitOpenError`
        immediately (the half-open probe after cooldown closes it again
        on success).  Results are position-stable, so recovery never
        affects merge order or values.
        """
        self._breaker.check()
        policy = self.retry
        results: List[Optional[list]] = [None] * len(tasks)
        pending = list(range(len(tasks)))
        last_error: Optional[BaseException] = None
        for attempt in range(policy.retries + 1):
            executor = (
                self._ensure_executor() if last_error is None else self._respawn_executor()
            )
            try:
                # A pool that already noticed its dead workers raises
                # from submit() itself, not just from result().
                futures = {i: executor.submit(fn, *tasks[i]) for i in pending}
            except BrokenProcessPool as exc:
                last_error = exc
                if attempt < policy.retries:
                    time.sleep(policy.delay(attempt))
                continue
            broken = False
            still_pending = []
            for i, future in futures.items():
                try:
                    results[i] = future.result()
                except BrokenProcessPool as exc:
                    last_error = exc
                    broken = True
                    still_pending.append(i)
            pending = still_pending
            if not pending:
                self._breaker.record_success()
                return results  # type: ignore[return-value]
            if broken and attempt < policy.retries:
                time.sleep(policy.delay(attempt))
        # Leave no broken executor behind: the next call (if the breaker
        # lets it through) starts from a fresh spawn.
        if self._executor is not None:
            self._executor.shutdown(wait=False, cancel_futures=True)
            self._executor = None
        self._breaker.record_failure()
        raise RuntimeError(
            f"service pool broke {policy.retries + 1} attempts in a row "
            f"({len(pending)}/{len(tasks)} shards unfinished — workers "
            f"crashing on this workload?)"
        ) from last_error

    # -- public API ----------------------------------------------------------

    def solve(
        self,
        service,
        shards: Optional[int] = None,
        shard_strategy: str = "size",
        kernel: str = "auto",
    ):
        """Zero-copy parallel twin of :func:`repro.service.multi.solve_offline_multi`.

        Bit-identical to the serial solve: same ``per_item`` key order,
        same arrays, same totals.
        """
        from .multi import MultiItemOfflineResult

        arena, region = self._regions_for(service)
        plan = plan_shards(service.items, shards or self.processes, shard_strategy)
        meta = (service.num_servers, service.cost.mu, service.cost.lam)
        tasks = [
            (
                arena.shm.name,
                meta,
                [arena.entries[name] for name in shard],
                kernel,
                region.shm.name,
                [region.entries[name] for name in shard],
            )
            for shard in plan
        ]
        acks = self._run_tasks(_worker_solve_shard, tasks)
        solver_by_item = {name: solver for chunk in acks for name, solver in chunk}
        missing = set(service.items) - set(solver_by_item)
        if missing:  # pragma: no cover - would indicate a sharding bug
            raise RuntimeError(f"shard merge lost items: {sorted(missing)}")
        per_item: Dict[str, OfflineResult] = {}
        for name, inst in service.items.items():
            C, D, served, tag, k = region.read_item(name)
            per_item[name] = OfflineResult(
                instance=inst,
                C=C,
                D=D,
                served_by_cache=served,
                choice_d_tag=tag,
                choice_d_k=k,
                solver=solver_by_item[name],
            )
        return MultiItemOfflineResult(per_item=per_item)

    def serve(
        self,
        service,
        policy_factory: Callable[[], OnlineAlgorithm],
        shards: Optional[int] = None,
        shard_strategy: str = "size",
        kernel: str = "auto",
    ) -> Dict[str, OnlineRunResult]:
        """Zero-copy-input parallel online serve; returns item -> run.

        ``kernel`` selects the workers' online execution path
        (``"auto"`` / ``"event"`` / ``"vector"``, see
        :func:`repro.sim.engine.run_online`); with an eligible policy
        each worker serves its whole shard with one batched kernel call.
        """
        from ..analysis.parallel import _check_picklable_callable

        _check_picklable_callable(policy_factory)
        arena, _ = self._regions_for(service)
        plan = plan_shards(service.items, shards or self.processes, shard_strategy)
        meta = (service.num_servers, service.cost.mu, service.cost.lam)
        tasks = [
            (
                arena.shm.name,
                meta,
                [arena.entries[name] for name in shard],
                policy_factory,
                kernel,
            )
            for shard in plan
        ]
        results = self._run_tasks(_worker_run_shard, tasks)
        merged = {name: run for chunk in results for name, run in chunk}
        missing = set(service.items) - set(merged)
        if missing:  # pragma: no cover - would indicate a sharding bug
            raise RuntimeError(f"shard merge lost items: {sorted(missing)}")
        return {name: merged[name] for name in service.items}
