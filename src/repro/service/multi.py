"""Multi-item data service layer.

The paper analyses a single shared item; a real data service hosts many.
Under the homogeneous cost model items do not interact (no capacity
bound couples them), so the service-level problem decomposes exactly:
the optimal multi-item schedule is the union of per-item optima, and any
per-item online policy runs independently per item.  This module provides
that service layer — the setting of the paper's reference [4] (Wang,
Veeravalli, Tham: multiple shared data items in clouds) restricted to
the homogeneous regime where decomposition is exact:

* :class:`MultiItemInstance` — per-item request sequences over one
  cluster, buildable from a mixed service log;
* :func:`solve_offline_multi` — per-item fast DP plus aggregation,
  optionally sharded across a process pool;
* :class:`MultiItemOnlineService` — run an online policy factory per
  item over the merged event stream, optionally sharded likewise;
* :func:`multi_item_workload` — Zipf-over-items × per-item Poisson
  synthesis.

Because decomposition is exact, the parallel paths are *guaranteed*
bit-identical to the serial ones: items are partitioned into picklable
shard descriptors (:mod:`repro.service.sharding`), each worker runs the
very same per-item solver or policy, and the merge step re-keys results
in the original item order.  Same dicts, same costs, same counters —
``processes`` is purely a throughput knob.

A capacity-coupled variant (items competing for bounded cache space) is
deliberately out of scope: it breaks the decomposition theorem and is
exactly what the paper's "next generation" framing argues away.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional

import numpy as np

from ..analysis.parallel import _check_picklable_callable, parallel_map
from ..core.instance import ProblemInstance
from ..core.types import CostModel, InvalidInstanceError
from ..offline.dp import solve_offline
from ..offline.result import OfflineResult
from ..online.base import OnlineAlgorithm
from ..sim.recorder import OnlineRunResult
from ..workloads.synthetic import RngLike, _rng, zipf_weights
from ..workloads.traces import TraceRecord
from .sharding import _pack_item, _run_shard, _solve_shard, plan_shards

__all__ = [
    "MultiItemInstance",
    "MultiItemOfflineResult",
    "MultiItemOnlineService",
    "solve_offline_multi",
    "multi_item_workload",
]


class MultiItemInstance:
    """Per-item request sequences sharing one cluster and cost model.

    Parameters
    ----------
    items:
        Mapping from item name to its :class:`ProblemInstance`.  All
        instances must agree on fleet size and cost model (they may have
        different origins — each item starts wherever it was uploaded).
    """

    def __init__(self, items: Dict[str, ProblemInstance]):
        if not items:
            raise InvalidInstanceError("need at least one item")
        sizes = {inst.num_servers for inst in items.values()}
        costs = {inst.cost for inst in items.values()}
        if len(sizes) != 1:
            raise InvalidInstanceError(f"items disagree on fleet size: {sizes}")
        if len(costs) != 1:
            raise InvalidInstanceError("items disagree on cost model")
        self.items = dict(items)
        self.num_servers = sizes.pop()
        self.cost = costs.pop()

    @classmethod
    def from_records(
        cls,
        records: Iterable[TraceRecord],
        num_servers: Optional[int] = None,
        cost: Optional[CostModel] = None,
        origin: int = 0,
    ) -> "MultiItemInstance":
        """Split a mixed service log by item and mine each sequence."""
        from ..workloads.traces import mine_instance

        by_item: Dict[str, List[TraceRecord]] = {}
        for r in records:
            by_item.setdefault(r.item or "item-0", []).append(r)
        if num_servers is None:
            num_servers = max(r.server for rs in by_item.values() for r in rs) + 1
        items = {
            name: mine_instance(
                rs, num_servers=num_servers, cost=cost, origin=origin
            )
            for name, rs in by_item.items()
        }
        return cls(items)

    @classmethod
    def from_columnar(
        cls,
        trace,
        num_servers: Optional[int] = None,
        cost: Optional[CostModel] = None,
        origin: int = 0,
    ) -> "MultiItemInstance":
        """Build the service straight from a columnar trace (zero rows).

        ``trace`` is a :class:`~repro.workloads.columnar.ColumnarTrace`
        or a path to one.  Per-item sequences are carved out of the
        mapped columns with vectorized masks — no intermediate
        :class:`~repro.workloads.traces.TraceRecord` objects — and each
        is mined with the same construction as :meth:`from_records`, so
        the result is bit-identical to the CSV path on the same log.
        Items keep first-appearance order, matching ``from_records``'s
        insertion order.
        """
        from ..workloads.columnar import ColumnarTrace, _mine_selected

        if not isinstance(trace, ColumnarTrace):
            trace = ColumnarTrace.open(trace)
        if trace.rows == 0:
            raise InvalidInstanceError("need at least one item")
        if num_servers is None:
            num_servers = int(trace.servers.max()) + 1
        # One stable argsort groups the rows by raw item id while keeping
        # original row order inside each group — O(rows log rows) total,
        # versus one full-column scan per item.
        ids = np.asarray(trace.item_ids)
        order = np.argsort(ids, kind="stable")
        bounds = np.flatnonzero(np.diff(ids[order])) + 1
        segments = np.split(order, bounds)
        # Group raw ids under their display names ("" defaults to
        # "item-0", exactly like from_records), in first-appearance row
        # order so the dict key order matches the CSV path.
        groups: Dict[str, List[np.ndarray]] = {}
        for seg in sorted(segments, key=lambda s: int(s[0])):
            name = trace.item_table[int(ids[seg[0]])] or "item-0"
            groups.setdefault(name, []).append(seg)
        times, servers = trace.times, trace.servers
        items: Dict[str, ProblemInstance] = {}
        for name, segs in groups.items():
            idx = segs[0] if len(segs) == 1 else np.sort(np.concatenate(segs))
            items[name] = _mine_selected(
                times[idx],
                servers[idx],
                num_servers=num_servers,
                cost=cost,
                origin=origin,
                min_gap=1e-9,
            )
        return cls(items)

    @property
    def num_items(self) -> int:
        """Number of hosted items."""
        return len(self.items)

    @property
    def total_requests(self) -> int:
        """Requests across all items."""
        return sum(inst.n for inst in self.items.values())

    def __repr__(self) -> str:
        return (
            f"MultiItemInstance(items={self.num_items}, "
            f"requests={self.total_requests}, m={self.num_servers})"
        )


@dataclass
class MultiItemOfflineResult:
    """Aggregate of per-item optimal solutions.

    Attributes
    ----------
    per_item:
        Item name → :class:`OfflineResult`.
    """

    per_item: Dict[str, OfflineResult]

    @property
    def total_cost(self) -> float:
        """Service-level optimal cost (sum of per-item optima)."""
        return sum(r.optimal_cost for r in self.per_item.values())

    @property
    def total_lower_bound(self) -> float:
        """Sum of per-item running bounds."""
        return sum(r.lower_bound for r in self.per_item.values())

    def cost_breakdown(self) -> Dict[str, float]:
        """Item name → optimal cost, sorted by cost descending."""
        return dict(
            sorted(
                ((k, r.optimal_cost) for k, r in self.per_item.items()),
                key=lambda kv: -kv[1],
            )
        )


def _shard_tasks(
    service: MultiItemInstance, shards: int, strategy: str
) -> List[tuple]:
    """Picklable shard descriptors: one ``(descs,)`` argument tuple per shard."""
    plan = plan_shards(service.items, shards, strategy=strategy)
    return [
        ([_pack_item(name, service.items[name]) for name in shard],)
        for shard in plan
    ]


def _shard_solve_tasks(
    service: MultiItemInstance, shards: int, strategy: str, kernel: str
) -> List[tuple]:
    """Like :func:`_shard_tasks`, with the DP kernel riding along."""
    return [
        task + (kernel,)
        for task in _shard_tasks(service, shards, strategy)
    ]


def _merge_shard_results(
    service: MultiItemInstance, shard_results: Iterable[List[tuple]]
) -> Dict[str, object]:
    """Re-key shard outputs into the service's original item order.

    This is what makes parallel runs bit-identical to serial ones: the
    merged dict iterates in ``service.items`` order no matter how the
    shards were cut or which worker finished first.
    """
    merged = {name: res for chunk in shard_results for name, res in chunk}
    missing = set(service.items) - set(merged)
    if missing:  # pragma: no cover - would indicate a sharding bug
        raise RuntimeError(f"shard merge lost items: {sorted(missing)}")
    return {name: merged[name] for name in service.items}


#: Valid ``transport=`` values for the parallel service paths.
TRANSPORTS = ("shm", "pickle")


def solve_offline_multi(
    service: MultiItemInstance,
    processes: Optional[int] = None,
    shards: Optional[int] = None,
    shard_strategy: str = "size",
    kernel: str = "auto",
    transport: str = "shm",
    pool: Optional["ServicePool"] = None,
) -> MultiItemOfflineResult:
    """Optimal service-level schedule: per-item fast DP, exact by
    decomposition (no capacity coupling in the homogeneous model).

    Parameters
    ----------
    service:
        The hosted items.
    processes:
        Pool size; ``None`` or ``1`` solves serially in-process.
    shards:
        Shard count for ``processes > 1`` (default: one shard per
        process).  More shards than processes gives the pool slack to
        balance uneven items.
    shard_strategy:
        ``"size"`` (default) or ``"hash"``; see
        :func:`repro.service.sharding.plan_shards`.
    kernel:
        DP sweep — ``"auto"`` / ``"frontier"`` / ``"reference"`` /
        ``"batch"``.  ``"auto"`` (default) and ``"batch"`` solve the
        whole service (serially) or each shard (in workers) with ONE
        call to the batched instance-major kernel
        (:func:`repro.kernels.batch.solve_offline_batch`);
        ``"frontier"``/``"reference"`` run
        :func:`repro.offline.dp.solve_offline` per item.  All choices
        are bit-identical.
    transport:
        ``"shm"`` (default) ships shards through the zero-copy
        shared-memory fabric (:mod:`repro.service.fabric`);
        ``"pickle"`` uses the per-call pickled descriptors of
        :mod:`repro.service.sharding`.  Purely a throughput knob.
    pool:
        A persistent :class:`~repro.service.fabric.ServicePool` to
        reuse across calls (implies the shm transport; its worker
        count wins over ``processes``).  Without one, ``processes > 1``
        spins up an ephemeral pool for this call and tears it down —
        segments unlinked — before returning, error or not.

    Whatever the knobs, the result is bit-identical to the serial solve:
    same ``per_item`` key order, same cost vectors, same totals.
    """
    if processes is not None and processes < 1:
        raise ValueError(f"processes must be >= 1, got {processes}")
    if transport not in TRANSPORTS:
        raise ValueError(
            f"transport must be one of {TRANSPORTS}, got {transport!r}"
        )
    if pool is not None:
        return pool.solve(
            service, shards=shards, shard_strategy=shard_strategy, kernel=kernel
        )
    if processes is None or processes == 1:
        if kernel in ("auto", "batch"):
            # One batched kernel call for the whole service: the packed
            # instance-major sweep (repro.kernels.batch) replaces the
            # per-item solve_offline loop — same arrays bit-for-bit,
            # but the per-item Python orchestration cost is gone.
            from ..kernels.batch import solve_offline_batch

            return MultiItemOfflineResult(
                per_item=solve_offline_batch(service.items)
            )
        return MultiItemOfflineResult(
            per_item={
                name: solve_offline(inst, kernel=kernel)
                for name, inst in service.items.items()
            }
        )
    if transport == "shm":
        from .fabric import ServicePool

        with ServicePool(processes) as ephemeral:
            return ephemeral.solve(
                service,
                shards=shards,
                shard_strategy=shard_strategy,
                kernel=kernel,
            )
    tasks = _shard_solve_tasks(
        service, shards or processes, shard_strategy, kernel
    )
    results = parallel_map(_solve_shard, tasks, processes=processes)
    per_item = _merge_shard_results(service, results)
    for name, res in per_item.items():
        res.instance = service.items[name]  # stripped by _solve_shard
    return MultiItemOfflineResult(per_item=per_item)


@dataclass
class MultiItemOnlineService:
    """Run an online policy independently per hosted item.

    Parameters
    ----------
    policy_factory:
        Zero-argument callable producing a fresh
        :class:`~repro.online.base.OnlineAlgorithm` per item.
    """

    policy_factory: Callable[[], OnlineAlgorithm]
    runs: Dict[str, OnlineRunResult] = field(default_factory=dict)

    def run(
        self,
        service: MultiItemInstance,
        processes: Optional[int] = None,
        shards: Optional[int] = None,
        shard_strategy: str = "size",
        transport: str = "shm",
        pool: Optional["ServicePool"] = None,
        kernel: str = "auto",
    ) -> "MultiItemOnlineService":
        """Serve every item's stream; returns self for chaining.

        With ``processes > 1`` the items are sharded across a process
        pool (``shards`` bins, default one per process; ``shard_strategy``
        as in :func:`repro.service.sharding.plan_shards`).  The policy
        factory must then be picklable — a module-level callable such as
        the policy class itself, not a lambda; this is checked *before*
        the pool spawns.  ``transport``/``pool`` select how request
        sequences reach the workers, exactly as in
        :func:`solve_offline_multi` — shared-memory fabric by default,
        ``"pickle"`` for the per-call descriptor path.  Each item still
        gets a fresh policy from the factory, so ``runs`` is
        bit-identical to a serial run: same key order, same costs, same
        counters.

        ``kernel`` selects the online execution path (``"auto"`` /
        ``"event"`` / ``"vector"``): with an eligible policy (plain
        ``SpeculativeCaching``), ``"auto"`` serves the whole item batch
        — or each worker its whole shard — with ONE batched
        online-kernel call instead of a per-item hook replay, still
        bit-identical to the serial per-item loop.
        """
        from ..kernels.online import (
            ONLINE_KERNELS,
            run_online_batch,
            vector_policy_config,
        )

        if processes is not None and processes < 1:
            raise ValueError(f"processes must be >= 1, got {processes}")
        if transport not in TRANSPORTS:
            raise ValueError(
                f"transport must be one of {TRANSPORTS}, got {transport!r}"
            )
        if kernel not in ONLINE_KERNELS:
            raise ValueError(
                f"unknown online kernel {kernel!r}; valid: {ONLINE_KERNELS}"
            )
        if pool is not None:
            self.runs = pool.serve(
                service,
                self.policy_factory,
                shards=shards,
                shard_strategy=shard_strategy,
                kernel=kernel,
            )
            return self
        if processes is None or processes == 1:
            config = (
                vector_policy_config(self.policy_factory())
                if kernel != "event"
                else None
            )
            if config is not None:
                window_factor, epoch_size, algo_name = config
                self.runs = run_online_batch(
                    service.items,
                    window_factor=window_factor,
                    epoch_size=epoch_size,
                    algorithm_name=algo_name,
                )
            elif kernel == "vector":
                raise ValueError(
                    "kernel='vector' requires a plain SpeculativeCaching "
                    "policy; use kernel='event' or 'auto'"
                )
            else:
                self.runs = {
                    name: self.policy_factory().run(inst, kernel=kernel)
                    for name, inst in service.items.items()
                }
            return self
        if transport == "shm":
            from .fabric import ServicePool

            with ServicePool(processes) as ephemeral:
                self.runs = ephemeral.serve(
                    service,
                    self.policy_factory,
                    shards=shards,
                    shard_strategy=shard_strategy,
                    kernel=kernel,
                )
            return self
        _check_picklable_callable(self.policy_factory)
        tasks = [
            (self.policy_factory,) + task + (kernel,)
            for task in _shard_tasks(service, shards or processes, shard_strategy)
        ]
        results = parallel_map(_run_shard, tasks, processes=processes)
        self.runs = _merge_shard_results(service, results)
        return self

    @property
    def total_cost(self) -> float:
        """Aggregate online cost."""
        if not self.runs:
            raise RuntimeError("call run() first")
        return sum(r.cost for r in self.runs.values())

    def counters(self) -> Dict[str, int]:
        """Summed counters across items."""
        out: Dict[str, int] = {}
        for run in self.runs.values():
            for k, v in run.counters.items():
                out[k] = out.get(k, 0) + v
        return out


def _apportion_counts(weights: np.ndarray, n_total: int) -> np.ndarray:
    """Largest-remainder apportionment of ``n_total`` requests.

    Invariants (the workload generator documents and tests both):
    ``counts.sum() == n_total`` exactly, and ``counts.min() >= 1``
    (callers guarantee ``n_total >= len(weights)``).  Naive
    ``round(weights * n_total)`` breaks the first invariant — rounding
    errors accumulate and the workload over- or under-shoots its budget.

    Floors are distributed first; the leftover goes to the largest
    fractional remainders (ties to the lower index, so the split is
    deterministic).  Items floored to zero are then funded by the
    largest bin, which by pigeonhole holds at least two requests.
    """
    quotas = np.asarray(weights, dtype=float) * n_total
    counts = np.floor(quotas).astype(int)
    remainders = quotas - counts
    deficit = int(n_total - counts.sum())
    if deficit > 0:
        order = np.lexsort((np.arange(len(counts)), -remainders))
        counts[order[:deficit]] += 1
    for idx in np.where(counts == 0)[0]:
        counts[int(np.argmax(counts))] -= 1
        counts[idx] += 1
    return counts


def multi_item_workload(
    num_items: int,
    n_total: int,
    m: int,
    item_zipf: float = 1.0,
    rate: float = 1.0,
    server_zipf: float = 0.8,
    cost: Optional[CostModel] = None,
    rng: RngLike = None,
) -> MultiItemInstance:
    """Synthesise a multi-item service workload.

    Items get request volume by a Zipf law (``item_zipf``); each item's
    own stream is Poisson in time with Zipf-skewed server popularity
    (independent permutations per item so hot servers differ across
    items, as they do in real services).

    Sizing invariant: the result has ``total_requests == n_total``
    *exactly*, with every item receiving at least one request.  Volumes
    are apportioned by the largest-remainder method (deterministic given
    the Zipf weights), so downstream benchmarks can treat ``n_total`` as
    a hard budget rather than a target the rounding may overshoot.
    """
    if num_items < 1 or n_total < num_items:
        raise InvalidInstanceError(
            f"need >= 1 item and n_total >= num_items, got "
            f"{num_items}/{n_total}"
        )
    g = _rng(rng)
    cost = cost if cost is not None else CostModel()
    weights = zipf_weights(num_items, item_zipf)
    counts = _apportion_counts(weights, n_total)
    items: Dict[str, ProblemInstance] = {}
    base_pop = zipf_weights(m, server_zipf)
    for k in range(num_items):
        perm = g.permutation(m)
        pop = base_pop[perm]
        gaps = g.exponential(1.0 / rate, size=int(counts[k]))
        times = np.cumsum(np.maximum(gaps, 1e-12))
        servers = g.choice(m, size=int(counts[k]), p=pop)
        items[f"item-{k}"] = ProblemInstance.from_arrays(
            times,
            servers,
            num_servers=m,
            cost=cost,
            origin=int(g.integers(0, m)),
        )
    return MultiItemInstance(items)
