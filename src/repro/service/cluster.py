"""Replicated serving cluster with WAL-backed shard failover.

A :class:`ReplicaSet` supervises N :class:`~repro.service.server.CacheServer`
replicas as real subprocesses over one *shared* journal directory.  The
``config.shards`` global shards are partitioned round-robin across
replicas (each replica serves only its subset; requests for foreign
shards get ``421`` so clients re-route), and every shard's state lives
in its own write-ahead journal file — which is what makes failover
exact:

* **Health checking.**  The supervisor polls every replica's
  ``/readyz`` through its *advertised* address — the chaos-proxy
  address when the cluster runs behind proxies — so a partitioned
  replica looks exactly as dead to the supervisor as it does to
  clients.  Process exit is detected immediately.
* **Fencing, then failover.**  A replica declared dead is first
  SIGKILLed (fencing: a partitioned-but-alive process must never keep
  appending to journals it no longer owns — the classic split-brain)
  and then its shards are re-leased round-robin to the survivors via
  ``POST /admin/acquire``.  Each survivor resumes the shard from its
  per-shard WAL, re-verifying every chained decision digest, so the
  acquired state is *provably* the byte-exact durable prefix of the
  dead owner — this is the bit-identical handoff the
  ``cluster_failover_suite`` asserts end to end.
* **Routing map.**  Shard ownership (with an epoch counter) is
  published atomically to ``cluster.json`` in the journal directory;
  :class:`~repro.service.loadgen.ClusterClient` reloads it on ``421``
  or connection failure and redrives through the dedupe path, so no
  decision is lost or duplicated across a handoff.
* **Chaos wiring.**  With ``proxy_plan`` set, every replica gets its
  own :class:`~repro.service.proxy.ChaosProxy` in front, and the map
  advertises proxy addresses; :meth:`set_partition` /
  :meth:`set_blackhole` give suites event-boundary-exact network
  faults per replica, while :meth:`kill_replica` is the crash butcher
  knife.

The supervisor runs its own asyncio loop on a daemon thread, so
synchronous callers (the chaos suite, benchmarks, the CLI) drive it
with plain method calls.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import subprocess
import sys
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from ..faults.plan import NetworkFaultPlan
from .loadgen import HttpClient
from .proxy import ChaosProxy

__all__ = ["ClusterConfig", "Replica", "ReplicaSet", "run_cluster"]


@dataclass(frozen=True)
class ClusterConfig:
    """Knobs of one :class:`ReplicaSet`."""

    journal_dir: str
    replicas: int = 3
    shards: int = 4
    num_servers: int = 8
    mu: float = 1.0
    lam: float = 1.0
    origin: int = 0
    kernel: str = "auto"
    host: str = "127.0.0.1"
    queue_depth: int = 256
    degrade_watermark: float = 1.0
    deadline_ms: float = 5000.0
    dedupe_window: Optional[float] = None
    sync: bool = True
    #: Seconds between health probes.
    health_interval: float = 0.2
    #: Consecutive probe failures that declare a replica dead.  Raise it
    #: (with the interval) above the longest partition you want the
    #: cluster to *ride out* instead of failing over.
    health_failures: int = 5
    #: Per-probe timeout (seconds).
    health_timeout: float = 1.0
    #: Seconds to wait for a replica subprocess to bind at startup.
    spawn_timeout: float = 30.0
    #: Optional wire-fault plan; one ChaosProxy per replica when set.
    proxy_plan: Optional[NetworkFaultPlan] = None
    #: Routing-map file name inside ``journal_dir``.
    map_name: str = "cluster.json"

    def __post_init__(self) -> None:
        if self.replicas < 1:
            raise ValueError(f"replicas must be >= 1, got {self.replicas}")
        if self.shards < 1:
            raise ValueError(f"shards must be >= 1, got {self.shards}")
        if self.health_failures < 1:
            raise ValueError(
                f"health_failures must be >= 1, got {self.health_failures}"
            )

    def assignment(self) -> Dict[int, List[int]]:
        """Initial shard partition: shard ``s`` -> replica ``s % N``."""
        owned: Dict[int, List[int]] = {i: [] for i in range(self.replicas)}
        for shard in range(self.shards):
            owned[shard % self.replicas].append(shard)
        return owned

    @property
    def map_path(self) -> str:
        return str(Path(self.journal_dir) / self.map_name)


@dataclass
class Replica:
    """Supervisor-side record of one replica subprocess."""

    index: int
    proc: subprocess.Popen
    host: str
    port: int
    proxy: Optional[ChaosProxy]
    owned: List[int]
    state: str = "live"  # live | dead
    health_fails: int = 0

    @property
    def advertised(self) -> Tuple[str, int]:
        """The address clients (and health probes) use."""
        if self.proxy is not None:
            return (self.proxy.host, self.proxy.port)
        return (self.host, self.port)

    @property
    def direct(self) -> Tuple[str, int]:
        """The supervisor's control-plane address (never proxied)."""
        return (self.host, self.port)


class ClusterError(RuntimeError):
    """The cluster cannot reach or keep a serving configuration."""


class ReplicaSet:
    """Replicated cluster supervisor (see module docstring).

    Usage::

        rs = ReplicaSet(ClusterConfig(journal_dir="/tmp/cluster"))
        rs.start()                      # spawns replicas, writes cluster.json
        ...                             # clients drive rs.config.map_path
        rs.kill_replica(1)              # SIGKILL + shard failover
        rs.set_partition(0, True)       # needs proxy_plan
        rs.stop()                       # SIGTERM drain everything
    """

    def __init__(self, config: ClusterConfig):
        self.config = config
        self.replicas: List[Replica] = []
        self.epoch = 0
        #: Completed failovers: {replica, shards, ready_s, epoch}.
        self.failover_log: List[dict] = []
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._stop_event: Optional[asyncio.Event] = None
        self._started = threading.Event()
        self._startup_error: Optional[BaseException] = None
        self._failing: set = set()

    # -- sync façade -----------------------------------------------------------

    def start(self, timeout: Optional[float] = None) -> None:
        """Spawn replicas + proxies and publish the first routing map.

        Blocks until the cluster is serving (every replica bound and
        health-checkable) or raises the startup error.
        """
        self._thread = threading.Thread(
            target=self._thread_main, name="replica-set", daemon=True
        )
        self._thread.start()
        budget = timeout if timeout is not None else self.config.spawn_timeout + 5
        if not self._started.wait(timeout=budget):
            self.stop()
            raise ClusterError("cluster did not start before the deadline")
        if self._startup_error is not None:
            self.stop()
            raise ClusterError(
                f"cluster startup failed: {self._startup_error}"
            ) from self._startup_error

    def stop(self) -> None:
        """SIGTERM-drain live replicas, stop proxies, join the loop."""
        loop = self._loop
        if loop is not None and self._stop_event is not None:
            try:
                loop.call_soon_threadsafe(self._stop_event.set)
            except RuntimeError:
                pass  # loop already closed
        if self._thread is not None:
            self._thread.join(timeout=60)
            self._thread = None
        # Belt and braces: reap anything the loop did not get to.
        for replica in self.replicas:
            if replica.proc.poll() is None:
                replica.proc.kill()
                replica.proc.wait(timeout=10)

    def _call(self, coro):
        assert self._loop is not None, "cluster not started"
        return asyncio.run_coroutine_threadsafe(coro, self._loop).result(60)

    def kill_replica(self, index: int, failover: bool = True) -> List[int]:
        """SIGKILL replica ``index``; with ``failover`` (default) move
        its shards to survivors immediately and return the moved list.

        ``failover=False`` leaves detection to the health loop — the
        path the detection-latency benchmark measures.
        """
        return self._call(self._kill_replica(index, failover))

    def set_partition(self, index: int, on: bool) -> None:
        """Flip replica ``index``'s proxy partition switch."""
        self._call(self._set_proxy(index, "partition", on))

    def set_blackhole(self, index: int, on: bool) -> None:
        """Flip replica ``index``'s proxy black-hole switch."""
        self._call(self._set_proxy(index, "blackhole", on))

    def live_replicas(self) -> List[int]:
        return [r.index for r in self.replicas if r.state == "live"]

    def owner_of(self, shard: int) -> int:
        """Replica index currently owning ``shard``."""
        for replica in self.replicas:
            if replica.state == "live" and shard in replica.owned:
                return replica.index
        raise ClusterError(f"shard {shard} has no live owner")

    @property
    def map_path(self) -> str:
        return self.config.map_path

    # -- the supervisor loop ---------------------------------------------------

    def _thread_main(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as exc:  # noqa: BLE001 - surfaced via start()
            self._startup_error = exc
            self._started.set()

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        config = self.config
        Path(config.journal_dir).mkdir(parents=True, exist_ok=True)
        try:
            assignment = config.assignment()
            for index in range(config.replicas):
                replica = await self._spawn_replica(index, assignment[index])
                self.replicas.append(replica)
            self._write_map()
            self._started.set()
            await self._health_loop()
        finally:
            await self._shutdown()

    def _serve_argv(self, index: int, owned: List[int]) -> List[str]:
        config = self.config
        argv = [
            sys.executable,
            "-m",
            "repro.cli",
            "--mu",
            str(config.mu),
            "--lam",
            str(config.lam),
            "--origin",
            str(config.origin),
            "--kernel",
            config.kernel,
            "serve",
            "--host",
            config.host,
            "--journal-dir",
            config.journal_dir,
            "--shards",
            str(config.shards),
            "--owned-shards",
            ",".join(map(str, owned)),
            "--meta-name",
            f"server-{index}.json",
            "-m",
            str(config.num_servers),
            "--queue-depth",
            str(config.queue_depth),
            "--degrade-watermark",
            str(config.degrade_watermark),
            "--deadline-ms",
            str(config.deadline_ms),
        ]
        if config.dedupe_window is not None:
            argv += ["--dedupe-window", str(config.dedupe_window)]
        if not config.sync:
            argv.append("--no-sync")
        return argv

    async def _spawn_replica(self, index: int, owned: List[int]) -> Replica:
        config = self.config
        meta = Path(config.journal_dir) / f"server-{index}.json"
        meta.unlink(missing_ok=True)
        proc = subprocess.Popen(
            self._serve_argv(index, owned),
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        deadline = time.monotonic() + config.spawn_timeout
        while True:
            if proc.poll() is not None:
                raise ClusterError(
                    f"replica {index} exited during startup "
                    f"(rc {proc.returncode})"
                )
            if meta.exists():
                try:
                    info = json.loads(meta.read_text())
                    break
                except (json.JSONDecodeError, KeyError):
                    pass  # mid-write
            if time.monotonic() > deadline:
                proc.kill()
                raise ClusterError(f"replica {index} did not bind in time")
            await asyncio.sleep(0.02)
        proxy = None
        if config.proxy_plan is not None:
            proxy = ChaosProxy(
                info["host"], info["port"],
                plan=config.proxy_plan, host=config.host,
            )
            await proxy.start()
        return Replica(
            index=index,
            proc=proc,
            host=info["host"],
            port=info["port"],
            proxy=proxy,
            owned=list(owned),
        )

    def _write_map(self) -> None:
        """Publish shard -> advertised-address routing, atomically."""
        self.epoch += 1
        shards = {}
        for replica in self.replicas:
            if replica.state != "live":
                continue
            host, port = replica.advertised
            for shard in replica.owned:
                shards[str(shard)] = {"host": host, "port": port}
        blob = json.dumps(
            {
                "epoch": self.epoch,
                "num_shards": self.config.shards,
                "shards": shards,
            },
            indent=0,
        )
        tmp = self.config.map_path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as fh:
            fh.write(blob + "\n")
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, self.config.map_path)

    async def _health_loop(self) -> None:
        assert self._stop_event is not None
        while not self._stop_event.is_set():
            try:
                await asyncio.wait_for(
                    self._stop_event.wait(), timeout=self.config.health_interval
                )
                return
            except asyncio.TimeoutError:
                pass
            for replica in list(self.replicas):
                if replica.state != "live" or replica.index in self._failing:
                    continue
                if replica.proc.poll() is not None:
                    await self._failover(replica)
                    continue
                if await self._probe(replica):
                    replica.health_fails = 0
                else:
                    replica.health_fails += 1
                    if replica.health_fails >= self.config.health_failures:
                        await self._failover(replica)

    async def _probe(self, replica: Replica) -> bool:
        host, port = replica.advertised
        client = HttpClient(
            host, port,
            connect_timeout=self.config.health_timeout,
            read_timeout=self.config.health_timeout,
        )
        try:
            status, _payload, _ = await client.request("GET", "/readyz")
            return status == 200
        except (
            ConnectionError,
            OSError,
            asyncio.IncompleteReadError,
            asyncio.TimeoutError,
        ):
            return False
        finally:
            await client.close()

    async def _kill_replica(self, index: int, failover: bool) -> List[int]:
        replica = self.replicas[index]
        if replica.state != "live":
            return []
        if replica.proc.poll() is None:
            replica.proc.send_signal(signal.SIGKILL)
        if failover:
            return await self._failover(replica)
        return []

    async def _set_proxy(self, index: int, attr: str, on: bool) -> None:
        replica = self.replicas[index]
        if replica.proxy is None:
            raise ClusterError(
                f"replica {index} has no chaos proxy (set proxy_plan)"
            )
        if attr == "partition":
            replica.proxy.set_partition(on)
        else:
            replica.proxy.blackhole = on

    async def _failover(self, replica: Replica) -> List[int]:
        """Fence ``replica`` and re-lease its shards to survivors."""
        if replica.state != "live" or replica.index in self._failing:
            return []
        self._failing.add(replica.index)
        t0 = time.monotonic()
        try:
            # Fencing: the owner must be dead before anyone resumes its
            # journals — SIGKILL is idempotent on an exited process.
            if replica.proc.poll() is None:
                replica.proc.send_signal(signal.SIGKILL)
            await asyncio.get_running_loop().run_in_executor(
                None, replica.proc.wait
            )
            replica.state = "dead"
            if replica.proxy is not None:
                await replica.proxy.stop()
            survivors = [r for r in self.replicas if r.state == "live"]
            if not survivors:
                raise ClusterError(
                    f"replica {replica.index} died with no survivors for "
                    f"shards {replica.owned}"
                )
            moved: List[int] = []
            for i, shard in enumerate(sorted(replica.owned)):
                target = survivors[i % len(survivors)]
                await self._acquire(target, shard)
                target.owned.append(shard)
                moved.append(shard)
            replica.owned = []
            self._write_map()
            self.failover_log.append(
                {
                    "replica": replica.index,
                    "shards": moved,
                    "ready_s": time.monotonic() - t0,
                    "epoch": self.epoch,
                }
            )
            return moved
        finally:
            self._failing.discard(replica.index)

    async def _acquire(self, target: Replica, shard: int) -> None:
        host, port = target.direct
        client = HttpClient(
            host, port, connect_timeout=5.0, read_timeout=30.0
        )
        try:
            status, payload, _ = await client.request(
                "POST", "/admin/acquire", {"shard": shard}
            )
        finally:
            await client.close()
        if status != 200:
            raise ClusterError(
                f"replica {target.index} refused shard {shard}: "
                f"{status} {payload}"
            )

    async def _shutdown(self) -> None:
        for replica in self.replicas:
            if replica.proxy is not None:
                await replica.proxy.stop()
            if replica.proc.poll() is None:
                replica.proc.send_signal(signal.SIGTERM)
        loop = asyncio.get_running_loop()
        for replica in self.replicas:
            if replica.proc.poll() is None:
                try:
                    await asyncio.wait_for(
                        loop.run_in_executor(None, replica.proc.wait),
                        timeout=30,
                    )
                except asyncio.TimeoutError:
                    replica.proc.kill()
                    await loop.run_in_executor(None, replica.proc.wait)


def run_cluster(config: ClusterConfig) -> int:
    """Blocking CLI entry: supervise until SIGTERM/SIGINT, then drain."""
    rs = ReplicaSet(config)
    rs.start()
    stop = threading.Event()
    for sig in (signal.SIGTERM, signal.SIGINT):
        signal.signal(sig, lambda *_args: stop.set())
    owners = {
        r.index: ",".join(map(str, sorted(r.owned))) for r in rs.replicas
    }
    print(
        f"cluster of {config.replicas} replicas serving {config.shards} "
        f"shards (map {rs.map_path}):",
        flush=True,
    )
    for replica in rs.replicas:
        host, port = replica.advertised
        proxied = " via chaos proxy" if replica.proxy is not None else ""
        print(
            f"  replica {replica.index}: http://{host}:{port}{proxied} "
            f"shards [{owners[replica.index]}]",
            flush=True,
        )
    stop.wait()
    rs.stop()
    print(f"cluster stopped (epoch {rs.epoch}, "
          f"{len(rs.failover_log)} failovers)", flush=True)
    return 0
