"""Trace-replaying load generator for the live serving front-end.

Feeds a merged, time-ordered event stream — from a columnar trace
container or a synthetic multi-item workload — into a running
:class:`~repro.service.server.CacheServer` over plain HTTP/1.1
keep-alive connections, and reports latency percentiles, achieved
throughput, and the shed/degraded accounting the robustness gates need.

Two driving disciplines:

* **open-loop** (``rate=<req/s>``) — every event has a *scheduled* send
  time (``i / rate`` after start) and is fired at that time regardless
  of how previous requests fared.  Latency is measured from the
  scheduled time, not the actual send, so queueing delay inside the
  generator counts against the server (no coordinated omission).  This
  is the discipline for overload experiments: at 2× the sustainable
  rate the server must shed with 429s rather than let latency grow
  without bound.
* **closed-loop** (``rate=None``) — a fixed set of workers send
  back-to-back, retrying 429/503/connection errors with jittered capped
  backoff until each event is accepted.  Because every event is
  eventually accepted exactly once (the server dedupes resends), the
  accepted-event sequence — and therefore the decision digest — is
  load-independent.  This is the discipline the kill/resume chaos proof
  drives.

Events within one item must keep strictly increasing times (the
streaming-DP contract); the closed-loop driver additionally keeps
per-item *order* by routing every item to a fixed worker lane, so
retries never reorder an item's events into 409 conflicts.
"""

from __future__ import annotations

import asyncio
import json
import random
import time as _time
import zlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "HttpClient",
    "LoadResult",
    "events_from_trace",
    "synthetic_events",
    "run_load",
    "replay",
]

#: (item, time, server) — one request event on the wire.
Event = Tuple[str, float, int]


class HttpClient:
    """Minimal asyncio HTTP/1.1 keep-alive client for JSON endpoints.

    One instance owns one connection; it reconnects transparently after
    a drop (server restart mid-chaos-run) on the next request.
    """

    def __init__(self, host: str, port: int):
        self.host = host
        self.port = port
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None

    async def _connect(self) -> None:
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port
        )

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionError, OSError):
                pass
            self._reader = self._writer = None

    async def request(
        self, method: str, path: str, body: Optional[dict] = None
    ) -> Tuple[int, dict, Dict[str, str]]:
        """One round trip; returns (status, json body, headers)."""
        if self._writer is None or self._writer.is_closing():
            await self._connect()
        assert self._reader is not None and self._writer is not None
        blob = json.dumps(body).encode("utf-8") if body is not None else b""
        head = (
            f"{method} {path} HTTP/1.1\r\nHost: {self.host}\r\n"
            f"Content-Length: {len(blob)}\r\nConnection: keep-alive\r\n\r\n"
        )
        self._writer.write(head.encode("latin-1") + blob)
        await self._writer.drain()
        status_line = await self._reader.readline()
        if not status_line:
            raise ConnectionError("server closed the connection")
        status = int(status_line.split()[1])
        headers: Dict[str, str] = {}
        while True:
            line = await self._reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            key, _, value = line.decode("latin-1").partition(":")
            headers[key.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or "0")
        raw = await self._reader.readexactly(length) if length else b""
        payload = json.loads(raw) if raw else {}
        return status, payload, headers


# ---------------------------------------------------------------------------
# Event streams.
# ---------------------------------------------------------------------------


def events_from_trace(path: str, limit: Optional[int] = None) -> List[Event]:
    """Merged time-ordered events from a columnar trace container."""
    from ..workloads.columnar import ColumnarTrace

    trace = ColumnarTrace.open(path)
    times = np.asarray(trace.times, dtype=float)
    servers = np.asarray(trace.servers, dtype=int)
    item_ids = np.asarray(trace.item_ids, dtype=int)
    order = np.argsort(times, kind="stable")
    table = trace.item_table
    events = [
        (table[item_ids[i]], float(times[i]), int(servers[i])) for i in order
    ]
    return events[:limit] if limit is not None else events


def synthetic_events(
    items: int = 8,
    count: int = 400,
    num_servers: int = 8,
    seed: int = 0,
) -> List[Event]:
    """Merged time-ordered events from a synthetic multi-item workload."""
    from .multi import multi_item_workload

    service = multi_item_workload(items, count, num_servers, rng=seed)
    events: List[Event] = []
    for name, instance in service.items.items():
        # Index 0 is the boundary request r_0 (origin placement), not
        # a wire event.
        for t, s in zip(instance.t[1:], instance.srv[1:]):
            events.append((name, float(t), int(s)))
    events.sort(key=lambda e: e[1])
    return events


# ---------------------------------------------------------------------------
# The generator.
# ---------------------------------------------------------------------------


@dataclass
class LoadResult:
    """What one load run observed (see :meth:`to_dict` for the report)."""

    sent: int
    statuses: Dict[int, int]
    degraded: int
    duplicates: int
    retries: int
    give_ups: int
    latencies_ms: List[float]
    elapsed: float
    stats: Optional[dict] = None

    def percentile(self, q: float) -> float:
        if not self.latencies_ms:
            return 0.0
        return float(np.percentile(np.asarray(self.latencies_ms), q))

    @property
    def accepted(self) -> int:
        return self.statuses.get(200, 0)

    @property
    def shed(self) -> int:
        return self.statuses.get(429, 0) + self.statuses.get(503, 0)

    def to_dict(self) -> dict:
        return {
            "sent": self.sent,
            "statuses": {str(k): v for k, v in sorted(self.statuses.items())},
            "accepted": self.accepted,
            "shed": self.shed,
            "shed_rate": self.shed / self.sent if self.sent else 0.0,
            "degraded": self.degraded,
            "duplicates": self.duplicates,
            "retries": self.retries,
            "give_ups": self.give_ups,
            "p50_ms": self.percentile(50),
            "p90_ms": self.percentile(90),
            "p99_ms": self.percentile(99),
            "elapsed_s": self.elapsed,
            "achieved_rps": self.sent / self.elapsed if self.elapsed else 0.0,
            "digest": (self.stats or {}).get("digest"),
            "optimal_cost": (self.stats or {}).get("optimal_cost"),
            "baseline_cost": (self.stats or {}).get("baseline_cost"),
        }


def _lane(item: str, lanes: int) -> int:
    """Fixed worker lane per item, so retries cannot reorder an item."""
    return zlib.crc32(item.encode("utf-8")) % lanes


async def _send_once(
    client: HttpClient, event: Event, result: LoadResult
) -> Tuple[int, dict]:
    item, t, server = event
    status, payload, _ = await client.request(
        "POST", "/request", {"item": item, "time": t, "server": server}
    )
    result.statuses[status] = result.statuses.get(status, 0) + 1
    if status == 200:
        if payload.get("degraded"):
            result.degraded += 1
        if payload.get("duplicate"):
            result.duplicates += 1
    return status, payload


async def run_load(
    host: str,
    port: int,
    events: Sequence[Event],
    rate: Optional[float] = None,
    concurrency: int = 8,
    retries: int = 8,
    backoff: float = 0.05,
    fetch_stats: bool = True,
) -> LoadResult:
    """Drive ``events`` against a server; see the module docstring.

    ``rate`` selects open-loop (target req/s, no retries — refused is
    refused) versus closed-loop (``None``: retry-until-accepted).
    """
    result = LoadResult(
        sent=0,
        statuses={},
        degraded=0,
        duplicates=0,
        retries=0,
        give_ups=0,
        latencies_ms=[],
        elapsed=0.0,
    )
    loop = asyncio.get_running_loop()
    started = loop.time()
    lanes = max(1, int(concurrency))
    clients = [HttpClient(host, port) for _ in range(lanes)]
    rng = random.Random(1234)

    if rate is not None:
        # Open-loop: fire each event at its scheduled time; latency is
        # measured from the *schedule*, so generator backlog counts.
        sem = asyncio.Semaphore(lanes * 8)

        async def fire(i: int, event: Event) -> None:
            scheduled = started + i / rate
            delay = scheduled - loop.time()
            if delay > 0:
                await asyncio.sleep(delay)
            async with sem:
                client = HttpClient(host, port)  # bursty: own connection
                try:
                    status, _payload = await _send_once(client, event, result)
                except (ConnectionError, OSError, asyncio.IncompleteReadError):
                    result.statuses[-1] = result.statuses.get(-1, 0) + 1
                    status = -1
                finally:
                    await client.close()
                result.sent += 1
                if status == 200:
                    result.latencies_ms.append(
                        (loop.time() - scheduled) * 1000.0
                    )

        await asyncio.gather(*(fire(i, ev) for i, ev in enumerate(events)))
    else:
        # Closed-loop: per-item lanes, retry shed/torn sends until
        # accepted (or retries exhausted -> give_up).
        queues: List[List[Event]] = [[] for _ in range(lanes)]
        for event in events:
            queues[_lane(event[0], lanes)].append(event)

        async def drain(lane: int) -> None:
            client = clients[lane]
            for event in queues[lane]:
                sent_at = loop.time()
                for attempt in range(retries + 1):
                    try:
                        status, _payload = await _send_once(
                            client, event, result
                        )
                    except (
                        ConnectionError,
                        OSError,
                        asyncio.IncompleteReadError,
                    ):
                        await client.close()
                        status = -1
                        result.statuses[-1] = result.statuses.get(-1, 0) + 1
                    if status not in (429, 503, -1):
                        result.latencies_ms.append(
                            (loop.time() - sent_at) * 1000.0
                        )
                        break
                    if attempt < retries:
                        result.retries += 1
                        pause = min(2.0, backoff * (2**attempt))
                        await asyncio.sleep(pause * (1 - 0.5 * rng.random()))
                else:
                    result.give_ups += 1
                result.sent += 1

        await asyncio.gather(*(drain(i) for i in range(lanes)))

    result.elapsed = loop.time() - started
    if fetch_stats:
        probe = HttpClient(host, port)
        try:
            _status, stats, _ = await probe.request("GET", "/stats")
            result.stats = stats
        finally:
            await probe.close()
    for client in clients:
        await client.close()
    return result


def replay(
    host: str,
    port: int,
    events: Sequence[Event],
    **kwargs,
) -> LoadResult:
    """Synchronous wrapper around :func:`run_load`."""
    return asyncio.run(run_load(host, port, events, **kwargs))
