"""Trace-replaying load generator for the live serving front-end.

Feeds a merged, time-ordered event stream — from a columnar trace
container or a synthetic multi-item workload — into a running
:class:`~repro.service.server.CacheServer` over plain HTTP/1.1
keep-alive connections, and reports latency percentiles, achieved
throughput, and the shed/degraded accounting the robustness gates need.

Two driving disciplines:

* **open-loop** (``rate=<req/s>``) — every event has a *scheduled* send
  time (``i / rate`` after start) and is fired at that time regardless
  of how previous requests fared.  Latency is measured from the
  scheduled time, not the actual send, so queueing delay inside the
  generator counts against the server (no coordinated omission).  This
  is the discipline for overload experiments: at 2× the sustainable
  rate the server must shed with 429s rather than let latency grow
  without bound.
* **closed-loop** (``rate=None``) — a fixed set of workers send
  back-to-back, retrying 429/503/connection errors with jittered capped
  backoff until each event is accepted.  Because every event is
  eventually accepted exactly once (the server dedupes resends), the
  accepted-event sequence — and therefore the decision digest — is
  load-independent.  This is the discipline the kill/resume chaos proof
  drives.

Events within one item must keep strictly increasing times (the
streaming-DP contract); the closed-loop driver additionally keeps
per-item *order* by routing every item to a fixed worker lane, so
retries never reorder an item's events into 409 conflicts.
"""

from __future__ import annotations

import asyncio
import json
import random
import time as _time
import zlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "ClusterClient",
    "ClusterMap",
    "HttpClient",
    "LoadResult",
    "cluster_stats",
    "events_from_trace",
    "synthetic_events",
    "run_cluster_load",
    "run_load",
    "replay",
    "replay_cluster",
]

#: (item, time, server) — one request event on the wire.
Event = Tuple[str, float, int]


class HttpClient:
    """Minimal asyncio HTTP/1.1 keep-alive client for JSON endpoints.

    One instance owns one connection; it reconnects transparently after
    a drop (server restart mid-chaos-run) on the next request.

    ``connect_timeout`` / ``read_timeout`` bound each phase of a round
    trip: on expiry the connection is closed (a half-read response must
    never be reused) and ``asyncio.TimeoutError`` propagates — the
    closed-loop retry path then reconnects and redrives the request,
    which the server's dedupe makes exactly-once.  ``None`` disables a
    timeout; a black-holed server then hangs the caller, which is
    exactly the failure mode these knobs exist to kill.
    """

    def __init__(
        self,
        host: str,
        port: int,
        connect_timeout: Optional[float] = None,
        read_timeout: Optional[float] = None,
    ):
        self.host = host
        self.port = port
        self.connect_timeout = connect_timeout
        self.read_timeout = read_timeout
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None

    async def _connect(self) -> None:
        self._reader, self._writer = await asyncio.wait_for(
            asyncio.open_connection(self.host, self.port),
            timeout=self.connect_timeout,
        )

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionError, OSError):
                pass
            self._reader = self._writer = None

    async def _read_response(self) -> Tuple[int, dict, Dict[str, str]]:
        assert self._reader is not None
        status_line = await self._reader.readline()
        if not status_line:
            raise ConnectionError("server closed the connection")
        parts = status_line.split()
        if len(parts) < 2 or not parts[1].isdigit():
            # A connection reset can truncate the status line mid-byte;
            # that is a dead connection, not a parse error.
            raise ConnectionError(
                f"malformed status line {status_line[:64]!r}"
            )
        status = int(parts[1])
        headers: Dict[str, str] = {}
        while True:
            line = await self._reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            key, _, value = line.decode("latin-1").partition(":")
            headers[key.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or "0")
        raw = await self._reader.readexactly(length) if length else b""
        try:
            payload = json.loads(raw) if raw else {}
        except json.JSONDecodeError as exc:
            raise ConnectionError(f"truncated response body: {exc}") from exc
        return status, payload, headers

    async def request(
        self, method: str, path: str, body: Optional[dict] = None
    ) -> Tuple[int, dict, Dict[str, str]]:
        """One round trip; returns (status, json body, headers)."""
        if self._writer is None or self._writer.is_closing():
            await self._connect()
        assert self._reader is not None and self._writer is not None
        blob = json.dumps(body).encode("utf-8") if body is not None else b""
        head = (
            f"{method} {path} HTTP/1.1\r\nHost: {self.host}\r\n"
            f"Content-Length: {len(blob)}\r\nConnection: keep-alive\r\n\r\n"
        )
        self._writer.write(head.encode("latin-1") + blob)
        await self._writer.drain()
        try:
            return await asyncio.wait_for(
                self._read_response(), timeout=self.read_timeout
            )
        except asyncio.TimeoutError:
            # The connection now holds a half-read (or never-sent)
            # response: poison — drop it before anyone reuses it.
            await self.close()
            raise


# ---------------------------------------------------------------------------
# Event streams.
# ---------------------------------------------------------------------------


def events_from_trace(path: str, limit: Optional[int] = None) -> List[Event]:
    """Merged time-ordered events from a columnar trace container."""
    from ..workloads.columnar import ColumnarTrace

    trace = ColumnarTrace.open(path)
    times = np.asarray(trace.times, dtype=float)
    servers = np.asarray(trace.servers, dtype=int)
    item_ids = np.asarray(trace.item_ids, dtype=int)
    order = np.argsort(times, kind="stable")
    table = trace.item_table
    events = [
        (table[item_ids[i]], float(times[i]), int(servers[i])) for i in order
    ]
    return events[:limit] if limit is not None else events


def synthetic_events(
    items: int = 8,
    count: int = 400,
    num_servers: int = 8,
    seed: int = 0,
) -> List[Event]:
    """Merged time-ordered events from a synthetic multi-item workload."""
    from .multi import multi_item_workload

    service = multi_item_workload(items, count, num_servers, rng=seed)
    events: List[Event] = []
    for name, instance in service.items.items():
        # Index 0 is the boundary request r_0 (origin placement), not
        # a wire event.
        for t, s in zip(instance.t[1:], instance.srv[1:]):
            events.append((name, float(t), int(s)))
    events.sort(key=lambda e: e[1])
    return events


# ---------------------------------------------------------------------------
# The generator.
# ---------------------------------------------------------------------------


@dataclass
class LoadResult:
    """What one load run observed (see :meth:`to_dict` for the report)."""

    sent: int
    statuses: Dict[int, int]
    degraded: int
    duplicates: int
    retries: int
    give_ups: int
    latencies_ms: List[float]
    elapsed: float
    stats: Optional[dict] = None

    def percentile(self, q: float) -> float:
        if not self.latencies_ms:
            return 0.0
        return float(np.percentile(np.asarray(self.latencies_ms), q))

    @property
    def accepted(self) -> int:
        return self.statuses.get(200, 0)

    @property
    def shed(self) -> int:
        return self.statuses.get(429, 0) + self.statuses.get(503, 0)

    def to_dict(self) -> dict:
        return {
            "sent": self.sent,
            "statuses": {str(k): v for k, v in sorted(self.statuses.items())},
            "accepted": self.accepted,
            "shed": self.shed,
            "shed_rate": self.shed / self.sent if self.sent else 0.0,
            "degraded": self.degraded,
            "duplicates": self.duplicates,
            "retries": self.retries,
            "give_ups": self.give_ups,
            "p50_ms": self.percentile(50),
            "p90_ms": self.percentile(90),
            "p99_ms": self.percentile(99),
            "elapsed_s": self.elapsed,
            "achieved_rps": self.sent / self.elapsed if self.elapsed else 0.0,
            "digest": (self.stats or {}).get("digest"),
            "optimal_cost": (self.stats or {}).get("optimal_cost"),
            "baseline_cost": (self.stats or {}).get("baseline_cost"),
        }


def _lane(item: str, lanes: int) -> int:
    """Fixed worker lane per item, so retries cannot reorder an item."""
    return zlib.crc32(item.encode("utf-8")) % lanes


async def _send_once(
    client: HttpClient, event: Event, result: LoadResult
) -> Tuple[int, dict]:
    item, t, server = event
    status, payload, _ = await client.request(
        "POST", "/request", {"item": item, "time": t, "server": server}
    )
    result.statuses[status] = result.statuses.get(status, 0) + 1
    if status == 200:
        if payload.get("degraded"):
            result.degraded += 1
        if payload.get("duplicate"):
            result.duplicates += 1
    return status, payload


async def run_load(
    host: str,
    port: int,
    events: Sequence[Event],
    rate: Optional[float] = None,
    concurrency: int = 8,
    retries: int = 8,
    backoff: float = 0.05,
    fetch_stats: bool = True,
    connect_timeout: Optional[float] = 5.0,
    read_timeout: Optional[float] = 15.0,
) -> LoadResult:
    """Drive ``events`` against a server; see the module docstring.

    ``rate`` selects open-loop (target req/s, no retries — refused is
    refused) versus closed-loop (``None``: retry-until-accepted).  A
    request that exceeds ``read_timeout`` counts as a torn send: the
    lane closes its connection, reconnects, and (closed-loop) redrives
    the event through the server's dedupe path — a stalled or
    black-holed server can no longer hang a lane forever.
    """
    result = LoadResult(
        sent=0,
        statuses={},
        degraded=0,
        duplicates=0,
        retries=0,
        give_ups=0,
        latencies_ms=[],
        elapsed=0.0,
    )
    loop = asyncio.get_running_loop()
    started = loop.time()
    lanes = max(1, int(concurrency))
    clients = [
        HttpClient(
            host, port,
            connect_timeout=connect_timeout, read_timeout=read_timeout,
        )
        for _ in range(lanes)
    ]
    rng = random.Random(1234)

    if rate is not None:
        # Open-loop: fire each event at its scheduled time; latency is
        # measured from the *schedule*, so generator backlog counts.
        sem = asyncio.Semaphore(lanes * 8)

        async def fire(i: int, event: Event) -> None:
            scheduled = started + i / rate
            delay = scheduled - loop.time()
            if delay > 0:
                await asyncio.sleep(delay)
            async with sem:
                client = HttpClient(  # bursty: own connection
                    host, port,
                    connect_timeout=connect_timeout,
                    read_timeout=read_timeout,
                )
                try:
                    status, _payload = await _send_once(client, event, result)
                except (
                    ConnectionError,
                    OSError,
                    asyncio.IncompleteReadError,
                    asyncio.TimeoutError,
                ):
                    result.statuses[-1] = result.statuses.get(-1, 0) + 1
                    status = -1
                finally:
                    await client.close()
                result.sent += 1
                if status == 200:
                    result.latencies_ms.append(
                        (loop.time() - scheduled) * 1000.0
                    )

        await asyncio.gather(*(fire(i, ev) for i, ev in enumerate(events)))
    else:
        # Closed-loop: per-item lanes, retry shed/torn sends until
        # accepted (or retries exhausted -> give_up).
        queues: List[List[Event]] = [[] for _ in range(lanes)]
        for event in events:
            queues[_lane(event[0], lanes)].append(event)

        async def drain(lane: int) -> None:
            client = clients[lane]
            for event in queues[lane]:
                sent_at = loop.time()
                for attempt in range(retries + 1):
                    try:
                        status, _payload = await _send_once(
                            client, event, result
                        )
                    except (
                        ConnectionError,
                        OSError,
                        asyncio.IncompleteReadError,
                        asyncio.TimeoutError,
                    ):
                        await client.close()
                        status = -1
                        result.statuses[-1] = result.statuses.get(-1, 0) + 1
                    if status not in (429, 503, -1):
                        result.latencies_ms.append(
                            (loop.time() - sent_at) * 1000.0
                        )
                        break
                    if attempt < retries:
                        result.retries += 1
                        pause = min(2.0, backoff * (2**attempt))
                        await asyncio.sleep(pause * (1 - 0.5 * rng.random()))
                else:
                    result.give_ups += 1
                result.sent += 1

        await asyncio.gather(*(drain(i) for i in range(lanes)))

    result.elapsed = loop.time() - started
    if fetch_stats:
        probe = HttpClient(host, port)
        try:
            _status, stats, _ = await probe.request("GET", "/stats")
            result.stats = stats
        finally:
            await probe.close()
    for client in clients:
        await client.close()
    return result


def replay(
    host: str,
    port: int,
    events: Sequence[Event],
    **kwargs,
) -> LoadResult:
    """Synchronous wrapper around :func:`run_load`."""
    return asyncio.run(run_load(host, port, events, **kwargs))


# ---------------------------------------------------------------------------
# Failover-aware cluster client.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ClusterMap:
    """One epoch of the cluster's shard-routing table.

    Written atomically (tmp + rename) by
    :class:`~repro.service.cluster.ReplicaSet` as ``cluster.json``;
    clients reload it whenever a request lands on a non-owner (``421``)
    or an endpoint stops answering.
    """

    epoch: int
    num_shards: int
    #: shard index -> (host, port) of the owning replica's data address.
    endpoints: Dict[int, Tuple[str, int]]

    @classmethod
    def load(cls, path: str) -> "ClusterMap":
        with open(path, "r", encoding="utf-8") as fh:
            data = json.load(fh)
        endpoints = {
            int(shard): (str(addr["host"]), int(addr["port"]))
            for shard, addr in data["shards"].items()
        }
        return cls(
            epoch=int(data["epoch"]),
            num_shards=int(data["num_shards"]),
            endpoints=endpoints,
        )

    def endpoint_for(self, item: str) -> Tuple[str, int]:
        shard = zlib.crc32(item.encode("utf-8")) % self.num_shards
        return self.endpoints[shard]


class ClusterClient:
    """Failover-aware closed-loop client over a replicated cluster.

    Routes every event to the replica owning its shard (per the latest
    :class:`ClusterMap`), and on any failure — connection refused/reset,
    read timeout, ``421`` misroute after a failover, ``429``/``503``
    shed — reloads the map, reconnects, and *redrives the same request*.
    The server's ``(item, time)`` dedupe makes the redrive exactly-once:
    however many times an event is sent, it is applied at most once and
    every send converges on the settled decision.

    ``hedge``: optional hedged-read delay (seconds).  When a send shows
    no response after the delay, a duplicate is fired on a *fresh*
    connection (again dedupe-safe) and the first settled answer wins —
    the standard tail-latency amputation under slow/lossy links.
    """

    def __init__(
        self,
        map_path: str,
        connect_timeout: Optional[float] = 2.0,
        read_timeout: Optional[float] = 5.0,
        hedge: Optional[float] = None,
    ):
        self.map_path = map_path
        self.connect_timeout = connect_timeout
        self.read_timeout = read_timeout
        self.hedge = hedge
        self.map: Optional[ClusterMap] = None
        self.refreshes = 0
        self.redrives = 0
        self.hedges = 0
        self._clients: Dict[Tuple[str, int], HttpClient] = {}

    def refresh(self) -> None:
        """Reload the routing map (keeps the old one on a torn read)."""
        try:
            self.map = ClusterMap.load(self.map_path)
            self.refreshes += 1
        except (OSError, ValueError, KeyError):
            pass  # mid-rename or missing: retry with the stale map

    def _client_for(self, addr: Tuple[str, int]) -> HttpClient:
        client = self._clients.get(addr)
        if client is None:
            client = HttpClient(
                addr[0],
                addr[1],
                connect_timeout=self.connect_timeout,
                read_timeout=self.read_timeout,
            )
            self._clients[addr] = client
        return client

    async def close(self) -> None:
        for client in self._clients.values():
            await client.close()
        self._clients.clear()

    async def _attempt(
        self, addr: Tuple[str, int], body: dict, fresh: bool
    ) -> Tuple[int, dict]:
        if fresh:
            client = HttpClient(
                addr[0],
                addr[1],
                connect_timeout=self.connect_timeout,
                read_timeout=self.read_timeout,
            )
            try:
                status, payload, _ = await client.request(
                    "POST", "/request", body
                )
                return status, payload
            finally:
                await client.close()
        client = self._client_for(addr)
        status, payload, _ = await client.request("POST", "/request", body)
        return status, payload

    async def send(self, event: Event) -> Tuple[int, dict]:
        """One routed attempt (hedged when configured); may raise."""
        if self.map is None:
            self.refresh()
        if self.map is None:
            raise ConnectionError(f"no cluster map at {self.map_path}")
        item, t, server = event
        addr = self.map.endpoint_for(item)
        body = {"item": item, "time": t, "server": server}
        if self.hedge is None:
            return await self._attempt(addr, body, fresh=False)
        primary = asyncio.ensure_future(self._attempt(addr, body, fresh=True))
        done, _pending = await asyncio.wait({primary}, timeout=self.hedge)
        if primary in done:
            return primary.result()
        self.hedges += 1
        backup = asyncio.ensure_future(self._attempt(addr, body, fresh=True))
        tasks = {primary, backup}
        try:
            while tasks:
                done, tasks = await asyncio.wait(
                    tasks, return_when=asyncio.FIRST_COMPLETED
                )
                for task in done:
                    if task.exception() is None:
                        return task.result()
            # Both attempts failed: surface the primary's error.
            return primary.result()
        finally:
            for task in (primary, backup):
                if not task.done():
                    task.cancel()

    async def send_until_done(
        self,
        event: Event,
        result: Optional[LoadResult] = None,
        retries: int = 64,
        backoff: float = 0.05,
        rng: Optional[random.Random] = None,
    ) -> Optional[dict]:
        """Redrive ``event`` until it settles; ``None`` on give-up.

        Retryable outcomes: shed (``429``/``503``), misroute (``421``,
        with a map refresh), deadline-degraded ``pending``, and any
        transport failure (reset, refused, timeout — the endpoint's
        client is dropped and the map refreshed, since a dead address
        usually means a failover is in flight).
        """
        rng = rng if rng is not None else random.Random(4321)
        for attempt in range(retries + 1):
            try:
                status, payload = await self.send(event)
            except (
                ConnectionError,
                OSError,
                asyncio.IncompleteReadError,
                asyncio.TimeoutError,
            ):
                status, payload = -1, None
                if self.map is not None:
                    item = event[0]
                    addr = self.map.endpoint_for(item)
                    stale = self._clients.pop(addr, None)
                    if stale is not None:
                        await stale.close()
            if result is not None:
                result.statuses[status] = result.statuses.get(status, 0) + 1
            if status == 200 and payload.get("status", "done") == "done":
                if result is not None:
                    if payload.get("degraded"):
                        result.degraded += 1
                    if payload.get("duplicate"):
                        result.duplicates += 1
                return payload
            if status not in (200, 421, 429, 503, -1):
                raise RuntimeError(
                    f"unexpected status {status} for {event}: {payload}"
                )
            if status in (421, -1):
                self.refresh()
            if attempt < retries:
                self.redrives += 1
                if result is not None:
                    result.retries += 1
                pause = min(1.0, backoff * (2 ** min(attempt, 5)))
                await asyncio.sleep(pause * (1 - 0.5 * rng.random()))
        return None


async def run_cluster_load(
    map_path: str,
    events: Sequence[Event],
    concurrency: int = 4,
    retries: int = 64,
    backoff: float = 0.05,
    connect_timeout: Optional[float] = 2.0,
    read_timeout: Optional[float] = 5.0,
    hedge: Optional[float] = None,
    fetch_stats: bool = True,
) -> LoadResult:
    """Closed-loop cluster replay: per-item lanes, redrive-until-settled.

    The cluster analogue of closed-loop :func:`run_load`: every event is
    eventually applied exactly once (dedupe absorbs redrives and
    hedges), so the merged decision stream — and its digest — is
    independent of which replicas failed, when, or how often the client
    had to re-route.
    """
    result = LoadResult(
        sent=0,
        statuses={},
        degraded=0,
        duplicates=0,
        retries=0,
        give_ups=0,
        latencies_ms=[],
        elapsed=0.0,
    )
    loop = asyncio.get_running_loop()
    started = loop.time()
    lanes = max(1, int(concurrency))
    clients = [
        ClusterClient(
            map_path,
            connect_timeout=connect_timeout,
            read_timeout=read_timeout,
            hedge=hedge,
        )
        for _ in range(lanes)
    ]
    queues: List[List[Event]] = [[] for _ in range(lanes)]
    for event in events:
        queues[_lane(event[0], lanes)].append(event)

    async def drain(lane: int) -> None:
        client = clients[lane]
        rng = random.Random(1000 + lane)
        for event in queues[lane]:
            sent_at = loop.time()
            payload = await client.send_until_done(
                event, result, retries=retries, backoff=backoff, rng=rng
            )
            if payload is None:
                result.give_ups += 1
            else:
                result.latencies_ms.append((loop.time() - sent_at) * 1000.0)
            result.sent += 1

    try:
        await asyncio.gather(*(drain(i) for i in range(lanes)))
        result.elapsed = loop.time() - started
        if fetch_stats:
            result.stats = await cluster_stats(map_path)
    finally:
        for client in clients:
            await client.close()
    return result


async def cluster_stats(map_path: str, timeout: float = 5.0) -> dict:
    """Merged ``/stats`` view of the whole cluster.

    Gathers per-shard rows from every distinct endpoint in the map,
    keeps each shard's row from its *owning* replica, and recomputes the
    merged decision digest with the exact formula a single server
    covering all shards uses — so a cluster and a lone reference server
    over the same events produce comparable digests.
    """
    from ..runtime.digest import digest_value

    cmap = ClusterMap.load(map_path)
    by_addr: Dict[Tuple[str, int], List[int]] = {}
    for shard, addr in cmap.endpoints.items():
        by_addr.setdefault(addr, []).append(shard)
    rows: Dict[int, dict] = {}
    totals = {
        "optimal_cost": 0.0,
        "baseline_cost": 0.0,
        "processed": 0,
        "degraded_decisions": 0,
    }
    replicas = []
    for addr, shards in sorted(by_addr.items()):
        client = HttpClient(
            addr[0], addr[1], connect_timeout=timeout, read_timeout=timeout
        )
        try:
            _status, stats, _ = await client.request("GET", "/stats")
        finally:
            await client.close()
        owned = set(shards)
        for row in stats.get("shards", []):
            if row["shard"] in owned:
                rows[row["shard"]] = row
        replicas.append({"addr": list(addr), "requests": stats.get("requests")})
        # Replica-level gauges cover exactly its owned shards (ownership
        # is disjoint across live replicas), so plain sums merge them.
        totals["optimal_cost"] += float(stats.get("optimal_cost", 0.0))
        totals["baseline_cost"] += float(stats.get("baseline_cost", 0.0))
        totals["processed"] += int(stats.get("processed", 0))
        totals["degraded_decisions"] += int(stats.get("degraded_decisions", 0))
    ordered = [rows[s] for s in sorted(rows)]
    return {
        "epoch": cmap.epoch,
        "num_shards": cmap.num_shards,
        "shards": ordered,
        "replicas": replicas,
        "digest": digest_value(
            [(r["shard"], r["seq"], r["digest"]) for r in ordered]
        ),
        **totals,
    }


def replay_cluster(map_path: str, events: Sequence[Event], **kwargs) -> LoadResult:
    """Synchronous wrapper around :func:`run_cluster_load`."""
    return asyncio.run(run_cluster_load(map_path, events, **kwargs))
