"""Core value types and pre-scanned problem instances.

This subpackage hosts the paper's Section III problem notation: requests,
the homogeneous cost model, schedule atoms, and :class:`ProblemInstance`
with its O(mn) pre-scan (``p(i)``, ``σ_i``, ``b_i``, ``B_i``, cover-index
lookup).
"""

from .instance import PivotLookup, ProblemInstance
from .transforms import (
    concat,
    permute_servers,
    scale_costs,
    split_at,
    time_scale,
    time_shift,
    with_cost,
)
from .types import (
    CacheInterval,
    CostModel,
    InvalidInstanceError,
    InvalidScheduleError,
    Request,
    Transfer,
    sort_requests,
)

__all__ = [
    "CacheInterval",
    "CostModel",
    "InvalidInstanceError",
    "InvalidScheduleError",
    "PivotLookup",
    "ProblemInstance",
    "Request",
    "Transfer",
    "concat",
    "permute_servers",
    "scale_costs",
    "sort_requests",
    "split_at",
    "time_scale",
    "time_shift",
    "with_cost",
]
