"""Core value types for the cost-driven data-caching problem.

The paper (Wang et al., ICPP 2017) models a single shared data item in a
fully connected network of ``m`` servers.  A request ``r_i = (s_i, t_i)``
asks for the item on server ``s_i`` at time ``t_i``; requests are strictly
time ordered.  Serving the sequence means choosing *cache intervals* (pay
``mu`` per unit time per live copy) and *transfers* (pay ``lam`` per
transfer) such that the item is present wherever and whenever requested,
and at least one copy exists at every instant.

This module defines the immutable value objects shared by every other
subsystem: :class:`Request`, :class:`CostModel`, and the schedule atoms
:class:`CacheInterval` and :class:`Transfer`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence, Tuple

__all__ = [
    "Request",
    "CostModel",
    "CacheInterval",
    "Transfer",
    "InvalidInstanceError",
    "InvalidScheduleError",
]


class InvalidInstanceError(ValueError):
    """Raised when a request sequence violates the problem's preconditions.

    Preconditions (Section III of the paper): strictly increasing request
    times, server ids in ``[0, m)``, and non-negative times relative to the
    start time ``t_0``.
    """


class InvalidScheduleError(ValueError):
    """Raised when a schedule fails feasibility validation.

    Feasibility (Section III, conditions 1 and 2): at least one live copy at
    every instant of the service horizon, every request served by a local
    copy or an incoming transfer, and every cache interval / transfer
    grounded in a chain of custody that starts at the origin server.
    """


@dataclass(frozen=True, order=True)
class Request:
    """A single data-item request ``r_i = (s_i, t_i)``.

    Parameters
    ----------
    time:
        Request instant ``t_i``.  Ordering of :class:`Request` objects is by
        time first, matching the paper's strictly time-ordered sequence.
    server:
        Zero-based server id ``s_i`` (the paper writes one-based ``s^j``;
        all public APIs of this library are zero-based).
    """

    time: float
    server: int

    def __post_init__(self) -> None:
        if self.server < 0:
            raise InvalidInstanceError(
                f"server id must be non-negative, got {self.server}"
            )
        if not math.isfinite(self.time):
            raise InvalidInstanceError(f"request time must be finite, got {self.time}")

    def as_tuple(self) -> Tuple[float, int]:
        """Return ``(time, server)`` for interop with array-based code."""
        return (self.time, self.server)


@dataclass(frozen=True)
class CostModel:
    """Homogeneous cost model of the paper.

    Parameters
    ----------
    mu:
        Caching cost per unit time per live copy (``μ`` in the paper).
    lam:
        Cost of one transfer between any pair of distinct servers (``λ``).
    beta:
        Optional upload cost from external storage to a server (``β`` in
        Table II).  The paper's recurrences never exercise uploads; ``beta``
        defaults to ``inf`` (uploads disabled) and is honoured only by the
        exact solver's optional extension.

    Notes
    -----
    The *speculative window* ``Δt = λ/μ`` (Section V) is the break-even
    horizon: caching an idle copy for ``Δt`` costs exactly one transfer.
    """

    mu: float = 1.0
    lam: float = 1.0
    beta: float = math.inf

    def __post_init__(self) -> None:
        if self.mu <= 0 or not math.isfinite(self.mu):
            raise ValueError(f"mu must be a finite positive float, got {self.mu}")
        if self.lam <= 0 or not math.isfinite(self.lam):
            raise ValueError(f"lam must be a finite positive float, got {self.lam}")
        if self.beta <= 0:
            raise ValueError(f"beta must be positive (possibly inf), got {self.beta}")

    @property
    def speculative_window(self) -> float:
        """Break-even idle horizon ``Δt = λ/μ`` used by the SC algorithm."""
        return self.lam / self.mu

    def caching_cost(self, duration: float) -> float:
        """Cost of keeping one copy alive for ``duration`` time units."""
        if duration < 0:
            raise ValueError(f"duration must be non-negative, got {duration}")
        return self.mu * duration

    def marginal_bound(self, sigma: float) -> float:
        """Marginal cost bound ``b_i = min(λ, μσ_i)`` (Definition 4)."""
        return min(self.lam, self.mu * sigma)


@dataclass(frozen=True, order=True)
class CacheInterval:
    """A copy held on ``server`` during ``[start, end]`` (``H(s, x, y)``).

    Ordering is ``(server, start, end)`` so that sorted interval lists group
    per server and run left to right, which the validator and the diagram
    renderer rely on.
    """

    server: int
    start: float
    end: float

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise InvalidScheduleError(
                f"cache interval ends before it starts: [{self.start}, {self.end}]"
            )
        if self.server < 0:
            raise InvalidScheduleError(f"negative server id {self.server}")

    @property
    def duration(self) -> float:
        """Length of the interval in time units."""
        return self.end - self.start

    def covers(self, t: float) -> bool:
        """True iff the copy is live at instant ``t`` (closed interval)."""
        return self.start <= t <= self.end

    def overlaps(self, other: "CacheInterval") -> bool:
        """True iff both intervals are on the same server and share time."""
        return (
            self.server == other.server
            and self.start <= other.end
            and other.start <= self.end
        )


@dataclass(frozen=True, order=True)
class Transfer:
    """An instantaneous transfer ``Tr(src, dst, time)``.

    The paper assumes negligible transfer latency (Section III), so a
    transfer made at a request time can serve that request.  ``weight``
    carries the edge weight for the Double-Transfer accounting of Section V
    (``λ + ω``); plain schedules leave it at ``None`` meaning "charge λ".
    """

    time: float
    src: int
    dst: int
    weight: float = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.src < 0 or self.dst < 0:
            raise InvalidScheduleError(
                f"negative server id in transfer {self.src}->{self.dst}"
            )
        if self.src == self.dst:
            raise InvalidScheduleError(
                f"self-transfer on server {self.src} at t={self.time}"
            )

    def cost(self, model: CostModel) -> float:
        """Charged cost: the DT weight if set, otherwise ``λ``."""
        return model.lam if self.weight is None else self.weight


def sort_requests(requests: Iterable[Request]) -> Sequence[Request]:
    """Return requests sorted by time, rejecting ties.

    The paper requires ``t_i < t_{i+1}`` strictly; simultaneous requests are
    rejected rather than silently reordered.
    """
    ordered = sorted(requests)
    for a, b in zip(ordered, ordered[1:]):
        if b.time <= a.time:
            raise InvalidInstanceError(
                f"request times must be strictly increasing: {a} then {b}"
            )
    return ordered


def iter_pairs(seq: Sequence[Request]) -> Iterator[Tuple[Request, Request]]:
    """Yield consecutive request pairs ``(r_i, r_{i+1})``."""
    return zip(seq, seq[1:])
