"""Instance transformations with known cost-theoretic effects.

These are the symmetries and surgeries of the homogeneous model, exposed
as first-class operations because the test-suite and the analysis layer
lean on them:

* :func:`time_shift` — costs depend only on gaps; ``C(n)`` is invariant.
* :func:`time_scale` — scaling time by ``c`` scales every caching charge
  by ``c``; with ``μ`` rescaled to ``μ/c`` the optimum is invariant
  (exposed as ``rescale_mu=True``).
* :func:`scale_costs` — scaling ``μ`` and ``λ`` jointly by ``c`` scales
  ``C(n)`` by exactly ``c``.
* :func:`permute_servers` — relabelling servers (origin mapped along) is
  a pure symmetry of the homogeneous model; ``C(n)`` is invariant.
* :func:`split_at` / :func:`concat` — cut a sequence at a request index
  or glue two sequences; used by epoch-style analyses.  Optimal cost is
  *subadditive* under concatenation up to one bridging transfer.
* :func:`with_cost` — swap the cost model, keeping requests.

Every claimed invariance is enforced by property tests in
``tests/core/test_transforms.py``.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from .instance import ProblemInstance
from .types import CostModel, InvalidInstanceError

__all__ = [
    "time_shift",
    "time_scale",
    "scale_costs",
    "permute_servers",
    "split_at",
    "concat",
    "with_cost",
]


def _rebuild(
    inst: ProblemInstance,
    times: np.ndarray,
    servers: np.ndarray,
    cost: CostModel,
    origin: int,
    start_time: float,
) -> ProblemInstance:
    return ProblemInstance.from_arrays(
        times,
        servers,
        num_servers=inst.num_servers,
        cost=cost,
        origin=origin,
        start_time=start_time,
    )


def time_shift(inst: ProblemInstance, delta: float) -> ProblemInstance:
    """Shift every instant (including ``t_0``) by ``delta``.

    ``C(n)`` is invariant: the model only sees gaps.
    """
    return _rebuild(
        inst,
        inst.t[1:] + delta,
        inst.srv[1:],
        inst.cost,
        inst.origin,
        float(inst.t[0]) + delta,
    )


def time_scale(
    inst: ProblemInstance, factor: float, rescale_mu: bool = False
) -> ProblemInstance:
    """Scale every gap by ``factor`` (> 0).

    With ``rescale_mu=True`` the caching rate is divided by ``factor`` so
    every caching charge — and hence ``C(n)`` — is invariant.  Without it
    caching charges scale by ``factor`` while transfers stay put.
    """
    if factor <= 0:
        raise InvalidInstanceError(f"scale factor must be positive, got {factor}")
    t0 = float(inst.t[0])
    cost = inst.cost
    if rescale_mu:
        cost = CostModel(mu=cost.mu / factor, lam=cost.lam, beta=cost.beta)
    return _rebuild(
        inst,
        t0 + (inst.t[1:] - t0) * factor,
        inst.srv[1:],
        cost,
        inst.origin,
        t0,
    )


def scale_costs(inst: ProblemInstance, factor: float) -> ProblemInstance:
    """Scale ``μ`` and ``λ`` jointly by ``factor``; ``C(n)`` scales with it."""
    if factor <= 0:
        raise InvalidInstanceError(f"cost factor must be positive, got {factor}")
    cost = CostModel(
        mu=inst.cost.mu * factor,
        lam=inst.cost.lam * factor,
        beta=inst.cost.beta if np.isinf(inst.cost.beta) else inst.cost.beta * factor,
    )
    return _rebuild(
        inst, inst.t[1:], inst.srv[1:], cost, inst.origin, float(inst.t[0])
    )


def permute_servers(
    inst: ProblemInstance, perm: Sequence[int]
) -> ProblemInstance:
    """Relabel servers by the permutation ``perm`` (``new = perm[old]``).

    A pure symmetry of the homogeneous model; ``C(n)`` is invariant and
    optimal schedules map onto each other atom by atom.
    """
    perm = np.asarray(perm, dtype=np.int64)
    m = inst.num_servers
    if perm.shape != (m,) or sorted(perm.tolist()) != list(range(m)):
        raise InvalidInstanceError(
            f"perm must be a permutation of 0..{m - 1}, got {perm.tolist()}"
        )
    return _rebuild(
        inst,
        inst.t[1:],
        perm[inst.srv[1:]],
        inst.cost,
        int(perm[inst.origin]),
        float(inst.t[0]),
    )


def split_at(
    inst: ProblemInstance, k: int
) -> Tuple[ProblemInstance, ProblemInstance]:
    """Split into requests ``1..k`` and ``k+1..n``.

    The head keeps the original boundary request; the tail is re-anchored
    with its origin at the head's final request server and its ``t_0`` at
    that request's instant — i.e. the state a schedule would naturally
    hand over (the paper's epoch boundary does exactly this).
    """
    if not 0 <= k <= inst.n:
        raise InvalidInstanceError(f"split index {k} outside [0, {inst.n}]")
    head = _rebuild(
        inst,
        inst.t[1 : k + 1],
        inst.srv[1 : k + 1],
        inst.cost,
        inst.origin,
        float(inst.t[0]),
    )
    tail_origin = int(inst.srv[k])
    tail = _rebuild(
        inst,
        inst.t[k + 1 :],
        inst.srv[k + 1 :],
        inst.cost,
        tail_origin,
        float(inst.t[k]),
    )
    return head, tail


def concat(a: ProblemInstance, b: ProblemInstance) -> ProblemInstance:
    """Glue ``b``'s requests after ``a``'s (shifting ``b`` if needed).

    Requires equal fleets and cost models.  ``b``'s boundary request is
    dropped (its origin becomes an ordinary constraint no longer
    enforced), so ``C(a ⧺ b) ≤ C(a) + C(b) + λ`` — subadditivity up to
    one bridging transfer — which the property tests check.
    """
    if a.num_servers != b.num_servers:
        raise InvalidInstanceError("fleet sizes differ")
    if a.cost != b.cost:
        raise InvalidInstanceError("cost models differ")
    gap = float(np.diff(a.t).mean()) if a.n else 1.0
    shift = 0.0
    if b.n and b.t[1] <= a.t[-1]:
        shift = float(a.t[-1]) - float(b.t[1]) + gap
    return _rebuild(
        a,
        np.concatenate([a.t[1:], b.t[1:] + shift]),
        np.concatenate([a.srv[1:], b.srv[1:]]),
        a.cost,
        a.origin,
        float(a.t[0]),
    )


def with_cost(inst: ProblemInstance, cost: CostModel) -> ProblemInstance:
    """Same requests, different cost model."""
    return _rebuild(
        inst, inst.t[1:], inst.srv[1:], cost, inst.origin, float(inst.t[0])
    )
