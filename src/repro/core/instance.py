"""Problem instances and the O(mn) pre-scan of the paper's Section IV.

A :class:`ProblemInstance` bundles the strictly time-ordered request vector
``R = <r_1..r_n>``, the boundary request ``r_0 = (origin, t_0)``, and the
homogeneous :class:`~repro.core.types.CostModel`.  Construction performs the
paper's *pre-scan* (proof of Theorem 2): it computes, as flat numpy arrays,

* ``p[i]``   — index of the previous request on the same server (``p(i)``),
  with ``-1`` standing in for the dummy requests ``r_{-j} = (s^j, -inf)``;
* ``sigma[i]`` — the server interval ``σ_i = t_i - t_{p(i)}`` (``inf`` for
  the first request on a server);
* ``b[i]``   — the marginal cost bound ``b_i = min(λ, μσ_i)`` (Definition 4);
* ``B[i]``   — the running bound ``B_i = Σ_{j<=i} b_j`` (Definition 5);

plus the pivot-lookup structure used by the fast DP: for every request
``r_i`` and every server ``s^j``, the unique request ``k`` on ``s^j`` whose
server interval ``(t_{p(k)}, t_k]`` contains ``t_{p(i)}`` — i.e. the cover
index set ``π(i)`` of Definition 8 — retrievable in ``O(m)`` per request.

Two interchangeable pivot-lookup backends are provided:

``"matrix"``
    The paper-faithful pointer matrix (Fig. 5): ``O(mn)`` space, ``O(1)``
    per (request, server) probe.
``"bisect"``
    Per-server sorted index lists probed with binary search: ``O(n + m)``
    extra space, ``O(log n)`` per probe.  Used automatically when the
    matrix would be large.

Both return identical pivot sets; the test suite asserts this.
"""

from __future__ import annotations

import math
from typing import Iterable, List, Optional, Sequence, Union

import numpy as np

from ..kernels.prescan import (
    build_pivot_matrix,
    per_server_lists,
    prescan_arrays,
)
from .types import CostModel, InvalidInstanceError, Request

__all__ = ["ProblemInstance", "PivotLookup"]

#: Above this many matrix cells the "auto" pivot mode switches to bisect.
_MATRIX_CELL_BUDGET = 50_000_000


class PivotLookup:
    """Cover-index (``π(i)``) lookup over a request sequence.

    Given the arrays of a :class:`ProblemInstance`, answers *"which request
    on server j has its server interval spanning request index q?"* — the
    primitive the fast DP needs to enumerate ``π(i)`` in ``O(m)``.

    Parameters
    ----------
    servers:
        ``srv[0..n]`` array (index 0 is the boundary request ``r_0``).
    num_servers:
        ``m``.
    mode:
        ``"matrix"``, ``"bisect"`` or ``"auto"``.
    """

    def __init__(self, servers: np.ndarray, num_servers: int, mode: str = "auto"):
        n1 = servers.shape[0]  # n + 1 entries including r_0
        if mode == "auto":
            mode = "matrix" if n1 * num_servers <= _MATRIX_CELL_BUDGET else "bisect"
        if mode not in ("matrix", "bisect"):
            raise ValueError(f"unknown pivot lookup mode {mode!r}")
        self.mode = mode
        self._m = num_servers
        self._srv = servers
        # Per-server sorted request-index lists (needed by both modes for
        # p(i) computation elsewhere; cheap to keep).
        self._per_server: List[np.ndarray] = per_server_lists(
            servers, num_servers
        )
        if mode == "matrix":
            # F[q, j] = min{k >= q : srv[k] == j}, -1 = none — the
            # paper's pointer rows (Fig. 5), built by the vectorized
            # suffix sweep of repro.kernels.prescan.
            self._first_at_or_after = build_pivot_matrix(servers, num_servers)
        else:
            self._first_at_or_after = None

    def requests_on(self, server: int) -> np.ndarray:
        """Sorted request indices made on ``server`` (including ``r_0``)."""
        return self._per_server[server]

    def first_at_or_after(self, server: int, q: int) -> int:
        """Smallest request index ``k >= q`` on ``server``, or ``-1``."""
        if self.mode == "matrix":
            return int(self._first_at_or_after[q, server])
        idx = self._per_server[server]
        pos = int(np.searchsorted(idx, q, side="left"))
        return int(idx[pos]) if pos < idx.shape[0] else -1

    def cover_set(self, i: int, p_i: int) -> List[int]:
        """The cover index set ``π(i) = {k : p(k) < p(i) <= k < i}``.

        ``p_i`` must be the caller's precomputed ``p(i)`` (index of the
        previous request on ``s_i``); callers pass it to avoid recomputing.
        At most one ``k`` per server qualifies: the first request on that
        server at or after index ``p(i)`` automatically has ``p(k) < p(i)``.

        Returns an unordered list of candidate indices (possibly empty).
        """
        if p_i < 0:
            return []
        out: List[int] = []
        for j in range(self._m):
            k = self.first_at_or_after(j, p_i)
            if 0 <= k < i:
                out.append(k)
        return out


class ProblemInstance:
    """An immutable, pre-scanned data-caching problem instance.

    Parameters
    ----------
    requests:
        The request vector ``<r_1..r_n>`` — an iterable of
        :class:`~repro.core.types.Request` or ``(time, server)`` pairs,
        strictly increasing in time.  Must not include the boundary request
        ``r_0``; it is synthesised from ``origin``/``start_time``.
    num_servers:
        ``m``.  Defaults to ``max(server id) + 1``.  Servers with no
        requests are permitted (they simply never enter any schedule),
        although the paper ignores them.
    cost:
        The homogeneous :class:`~repro.core.types.CostModel`.
    origin:
        Server initially holding the data item (paper: ``s^1``; here 0).
    start_time:
        ``t_0`` of the boundary request ``r_0``; defaults to ``0.0`` and
        must precede ``t_1``.
    pivot_mode:
        Pivot-lookup backend, ``"matrix"`` / ``"bisect"`` / ``"auto"``.

    Attributes
    ----------
    t, srv:
        Arrays of length ``n+1``; index 0 is ``r_0``.
    p, sigma, b, B:
        Pre-scan arrays (see module docstring), length ``n+1``; entry 0 is
        a boundary value (``p[0] = -1``, ``b[0] = B[0] = 0``).
    """

    def __init__(
        self,
        requests: Iterable[Union[Request, Sequence[float]]],
        num_servers: Optional[int] = None,
        cost: Optional[CostModel] = None,
        origin: int = 0,
        start_time: float = 0.0,
        pivot_mode: str = "auto",
    ):
        reqs = [
            r if isinstance(r, Request) else Request(float(r[0]), int(r[1]))
            for r in requests
        ]
        n = len(reqs)
        t = np.empty(n + 1, dtype=np.float64)
        srv = np.empty(n + 1, dtype=np.int64)
        t[0], srv[0] = float(start_time), int(origin)
        for i, r in enumerate(reqs, start=1):
            t[i], srv[i] = r.time, r.server
        self._init_arrays(t, srv, num_servers, cost, origin, pivot_mode)

    def _init_arrays(
        self,
        t: np.ndarray,
        srv: np.ndarray,
        num_servers: Optional[int],
        cost: Optional[CostModel],
        origin: int,
        pivot_mode: str,
    ) -> None:
        """Shared tail of construction: validate, pre-scan, freeze.

        ``t``/``srv`` are the full length ``n+1`` arrays including the
        boundary request ``r_0`` at index 0; both are owned by the
        instance from here on (callers must pass fresh copies).
        """
        self.cost = cost if cost is not None else CostModel()
        self.origin = int(origin)
        n = t.shape[0] - 1
        if np.any(np.diff(t) <= 0):
            bad = int(np.flatnonzero(np.diff(t) <= 0)[0])
            raise InvalidInstanceError(
                f"request times must be strictly increasing after t_0="
                f"{t[0]}; violation at index {bad + 1} (t={t[bad + 1]})"
            )
        m = int(num_servers) if num_servers is not None else int(srv.max()) + 1
        if m <= 0:
            raise InvalidInstanceError(f"need at least one server, got m={m}")
        if srv.max() >= m or self.origin >= m or self.origin < 0:
            raise InvalidInstanceError(
                f"server ids must lie in [0, {m}); got max id {int(srv.max())}"
                f" and origin {self.origin}"
            )
        self.num_servers = m
        self.t = t
        self.srv = srv
        self.n = n
        self._pivots = PivotLookup(srv, m, mode=pivot_mode)
        # Vectorized pre-scan (repro.kernels.prescan): p, sigma, b, B in
        # a handful of whole-array numpy operations.
        self.p, self.sigma, self.b, self.B = prescan_arrays(
            t, srv, self.cost.mu, self.cost.lam
        )
        self._freeze()

    # -- construction helpers ------------------------------------------------

    @classmethod
    def from_arrays(
        cls,
        times: Sequence[float],
        servers: Sequence[int],
        num_servers: Optional[int] = None,
        cost: Optional[CostModel] = None,
        origin: int = 0,
        start_time: float = 0.0,
        pivot_mode: str = "auto",
    ) -> "ProblemInstance":
        """Build an instance from parallel ``times``/``servers`` arrays.

        This is the array-native construction path: the inputs are copied
        straight into the instance's ``t``/``srv`` arrays (read-only views
        such as shared-memory or memory-mapped columns are fine) and the
        per-request Python loop of ``__init__`` is skipped entirely.
        Values, validation, and the pre-scan are identical to the
        request-object path — only the construction cost differs.
        """
        times = np.asarray(times, dtype=np.float64)
        servers = np.asarray(servers, dtype=np.int64)
        if times.shape != servers.shape:
            raise InvalidInstanceError(
                f"times and servers must have equal length, got "
                f"{times.shape} vs {servers.shape}"
            )
        if times.ndim != 1:
            raise InvalidInstanceError(
                f"times and servers must be 1-D, got shape {times.shape}"
            )
        n = times.shape[0]
        t = np.empty(n + 1, dtype=np.float64)
        srv = np.empty(n + 1, dtype=np.int64)
        t[0], srv[0] = float(start_time), int(origin)
        t[1:] = times
        srv[1:] = servers
        self = cls.__new__(cls)
        self._init_arrays(t, srv, num_servers, cost, origin, pivot_mode)
        return self

    def _freeze(self) -> None:
        for arr in (self.t, self.srv, self.p, self.sigma, self.b, self.B):
            arr.setflags(write=False)

    # -- accessors -----------------------------------------------------------

    @property
    def horizon(self) -> float:
        """Service horizon length ``t_n - t_0``."""
        return float(self.t[-1] - self.t[0]) if self.n else 0.0

    @property
    def requests(self) -> List[Request]:
        """The request vector as :class:`Request` objects (excludes r_0)."""
        return [Request(float(self.t[i]), int(self.srv[i])) for i in range(1, self.n + 1)]

    def delta_t(self, i: int, j: int) -> float:
        """Time difference ``δt_{i,j} = t_j - t_i`` between request indices."""
        return float(self.t[j] - self.t[i])

    def requests_on(self, server: int) -> np.ndarray:
        """Sorted request indices on ``server`` (index 0 = r_0 included)."""
        return self._pivots.requests_on(server)

    def cover_set(self, i: int) -> List[int]:
        """Cover index set ``π(i)`` (Definition 8) for request ``i``."""
        return self._pivots.cover_set(i, int(self.p[i]))

    def running_bound(self) -> float:
        """The paper's lower bound ``B_n`` on the optimal cost."""
        return float(self.B[-1])

    def slice_requests(self, lo: int, hi: int) -> List[Request]:
        """Requests with indices in ``[lo, hi]`` (1-based, inclusive)."""
        lo, hi = max(lo, 1), min(hi, self.n)
        return [Request(float(self.t[i]), int(self.srv[i])) for i in range(lo, hi + 1)]

    def __len__(self) -> int:
        return self.n

    def __repr__(self) -> str:
        return (
            f"ProblemInstance(n={self.n}, m={self.num_servers}, "
            f"mu={self.cost.mu}, lam={self.cost.lam}, origin={self.origin}, "
            f"horizon={self.horizon:.4g})"
        )

    # -- equality (for cache keys in analysis sweeps) -------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ProblemInstance):
            return NotImplemented
        return (
            self.num_servers == other.num_servers
            and self.origin == other.origin
            and self.cost == other.cost
            and np.array_equal(self.t, other.t)
            and np.array_equal(self.srv, other.srv)
        )

    def __hash__(self) -> int:
        return hash(
            (
                self.num_servers,
                self.origin,
                self.cost,
                self.t.tobytes(),
                self.srv.tobytes(),
            )
        )


def _check_boundary_consistency(inst: ProblemInstance) -> None:
    """Internal sanity checks used by the test-suite (kept importable)."""
    assert inst.p[0] == -1
    assert inst.b[0] == 0.0
    assert math.isinf(inst.sigma[0])
    first_seen = set()
    for i in range(1, inst.n + 1):
        s = int(inst.srv[i])
        if s not in first_seen and s != inst.origin:
            assert inst.p[i] == -1, f"first request on server {s} must have p=-1"
        first_seen.add(s)
