"""repro — cost-driven data caching for mobile cloud services.

A full reproduction of *"Data Caching in Next Generation Mobile Cloud
Services, Online vs. Off-line"* (Wang, He, Fan, Xu, Culberson, Horton —
ICPP 2017): the optimal ``O(mn)`` off-line dynamic program, the
3-competitive online Speculative Caching algorithm, validation oracles,
workload substrates, and the analysis/benchmark harness that regenerates
every table and figure of the paper.

Quickstart
----------
>>> from repro import CostModel, ProblemInstance, solve_offline
>>> inst = ProblemInstance(
...     [(0.5, 1), (0.8, 2), (1.1, 3), (1.4, 0)],
...     num_servers=4,
...     cost=CostModel(mu=1.0, lam=1.0),
... )
>>> solve_offline(inst).optimal_cost
4.4
"""

from .core import (
    CacheInterval,
    CostModel,
    InvalidInstanceError,
    InvalidScheduleError,
    ProblemInstance,
    Request,
    Transfer,
)
from .offline import (
    OfflineResult,
    optimal_cost,
    reconstruct_schedule,
    solve_exact,
    solve_offline,
    solve_offline_bisect,
    solve_offline_naive,
)
from .emulator import EmulationReport, LatencyModel, emulate
from .faults import FaultContext, FaultPlan, FaultyRunResult, Outage
from .kernels import solve_offline_batch
from .offline import StreamingSolver
from .online import (
    AlwaysTransfer,
    MarkovPredictor,
    NeverDelete,
    OracleNextRequest,
    PredictiveCaching,
    RandomizedTTL,
    RecedingHorizonPlanner,
    SpeculativeCaching,
    SpeculativeCachingResilient,
    double_transfer,
    verify_theorem3,
)
from .service import (
    CacheServer,
    MultiItemInstance,
    MultiItemOnlineService,
    RetryPolicy,
    ServerConfig,
    ServicePool,
    multi_item_workload,
    plan_shards,
    solve_offline_multi,
)
from .workloads import (
    ColumnarTrace,
    CostEstimate,
    WorkloadStats,
    convert_csv,
    estimate_offline_cost,
    exact_offline_cost,
    mine_instance_columnar,
    profile_trace,
    sample_columnar,
    sample_trace,
)
from .schedule import (
    Schedule,
    render_schedule,
    validate_schedule,
)
from .runtime import RunBudget, RunJournal, RunSnapshot, SupervisedRun, Supervisor
from .sim import OnlineRunResult, ReplayDriver, run_online, run_online_faulty

__version__ = "1.0.0"

__all__ = [
    "AlwaysTransfer",
    "CacheInterval",
    "CacheServer",
    "CostModel",
    "InvalidInstanceError",
    "EmulationReport",
    "FaultContext",
    "FaultPlan",
    "FaultyRunResult",
    "InvalidScheduleError",
    "LatencyModel",
    "MarkovPredictor",
    "ColumnarTrace",
    "MultiItemInstance",
    "MultiItemOnlineService",
    "NeverDelete",
    "OfflineResult",
    "OnlineRunResult",
    "OracleNextRequest",
    "Outage",
    "PredictiveCaching",
    "ProblemInstance",
    "RandomizedTTL",
    "RecedingHorizonPlanner",
    "ReplayDriver",
    "RetryPolicy",
    "Request",
    "RunBudget",
    "RunJournal",
    "RunSnapshot",
    "Schedule",
    "ServerConfig",
    "ServicePool",
    "SupervisedRun",
    "Supervisor",
    "SpeculativeCaching",
    "SpeculativeCachingResilient",
    "StreamingSolver",
    "Transfer",
    "multi_item_workload",
    "plan_shards",
    "solve_offline_multi",
    "convert_csv",
    "mine_instance_columnar",
    "CostEstimate",
    "WorkloadStats",
    "estimate_offline_cost",
    "exact_offline_cost",
    "profile_trace",
    "sample_columnar",
    "sample_trace",
    "double_transfer",
    "emulate",
    "optimal_cost",
    "reconstruct_schedule",
    "render_schedule",
    "run_online",
    "run_online_faulty",
    "solve_exact",
    "solve_offline",
    "solve_offline_batch",
    "solve_offline_bisect",
    "solve_offline_naive",
    "validate_schedule",
    "verify_theorem3",
    "__version__",
]
