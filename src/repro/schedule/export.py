"""Schedule serialisation: JSON-able dicts and Graphviz DOT.

Provisioning systems downstream of the solver need schedules in a
machine-readable form; humans debugging them want the space-time tree.
Round-tripping through :func:`schedule_to_dict` / :func:`schedule_from_dict`
is lossless (asserted by tests), and :func:`schedule_to_dot` emits the
Definition-2 tree for ``dot -Tsvg``.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Optional

from ..core.instance import ProblemInstance
from ..core.types import CacheInterval, InvalidScheduleError, Transfer
from .schedule import Schedule

__all__ = [
    "schedule_to_dict",
    "schedule_from_dict",
    "schedule_to_json",
    "schedule_from_json",
    "schedule_to_dot",
]

_FORMAT_VERSION = 1


def schedule_to_dict(schedule: Schedule) -> Dict[str, Any]:
    """Canonical schedule as a plain JSON-able dict."""
    canon = schedule.canonical()
    return {
        "version": _FORMAT_VERSION,
        "intervals": [
            {"server": iv.server, "start": iv.start, "end": iv.end}
            for iv in canon.intervals
        ],
        "transfers": [
            {
                "time": tr.time,
                "src": tr.src,
                "dst": tr.dst,
                **({"weight": tr.weight} if tr.weight is not None else {}),
            }
            for tr in canon.transfers
        ],
    }


def schedule_from_dict(data: Dict[str, Any]) -> Schedule:
    """Rebuild a schedule from :func:`schedule_to_dict` output."""
    version = data.get("version")
    if version != _FORMAT_VERSION:
        raise InvalidScheduleError(
            f"unsupported schedule format version {version!r}"
        )
    try:
        intervals = [
            CacheInterval(int(d["server"]), float(d["start"]), float(d["end"]))
            for d in data["intervals"]
        ]
        transfers = [
            Transfer(
                float(d["time"]),
                int(d["src"]),
                int(d["dst"]),
                float(d["weight"]) if "weight" in d else None,
            )
            for d in data["transfers"]
        ]
    except (KeyError, TypeError, ValueError) as exc:
        raise InvalidScheduleError(f"malformed schedule payload: {exc}") from exc
    return Schedule(intervals, transfers)


def schedule_to_json(schedule: Schedule, indent: Optional[int] = None) -> str:
    """JSON text form of :func:`schedule_to_dict`."""
    return json.dumps(schedule_to_dict(schedule), indent=indent, sort_keys=True)


def schedule_from_json(text: str) -> Schedule:
    """Inverse of :func:`schedule_to_json`."""
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise InvalidScheduleError(f"invalid schedule JSON: {exc}") from exc
    return schedule_from_dict(data)


def schedule_to_dot(
    schedule: Schedule,
    instance: ProblemInstance,
    title: str = "schedule",
) -> str:
    """Graphviz DOT of the schedule's space-time tree.

    Nodes are ``(server, request column)`` points the schedule touches;
    solid edges are cache intervals (labelled with their ``μ``-cost),
    dashed edges are transfers (labelled ``λ`` or their DT weight).
    """
    from .spacetime import schedule_to_edges

    lines = [f'digraph "{title}" {{', "  rankdir=LR;", "  node [shape=point];"]
    model = instance.cost
    for u, v in schedule_to_edges(schedule, instance):
        (su, iu), (sv, iv_) = u, v
        if su == sv:
            w = model.mu * (float(instance.t[iv_]) - float(instance.t[iu]))
            style = f'[label="{w:.3g}"]'
        else:
            style = f'[style=dashed, label="{model.lam:.3g}"]'
        lines.append(f'  "s{su}@{iu}" -> "s{sv}@{iv_}" {style};')
    root = f"s{instance.origin}@0"
    lines.append(f'  "{root}" [shape=circle, label="origin", width=0.2];')
    lines.append("}")
    return "\n".join(lines)
