"""Space-time graph substrate (Definition 2 of the paper).

The paper views schedules as subgraphs of a weighted directed *space-time
graph* ``G = (V, E, W)``: one vertex per (server, request-instant) pair,
*cache edges* along each server's timeline weighted ``μ·δt``, and
*transfer edges* forming a bidirectional star centred on each request
vertex, weighted ``λ``.  Row 0 models the external storage of the paper
(only meaningful when the upload cost ``β`` is finite).

The graph is a substrate: the offline solvers do not need it (they run on
the flat arrays), but it powers

* independent cost re-derivation of a schedule as a sum of edge weights,
* visual/structural inspection (schedules are trees rooted at the origin
  — Observation 2),
* the migration-only shortest-path baseline used in the benchmarks.
"""

from __future__ import annotations

from typing import List, Tuple

import networkx as nx

from ..core.instance import ProblemInstance
from ..core.types import InvalidScheduleError
from .schedule import Schedule

__all__ = [
    "build_spacetime_graph",
    "schedule_edge_cost",
    "schedule_is_tree",
    "migration_only_cost",
]

Node = Tuple[int, int]  # (server row, request index column); row m = storage


def build_spacetime_graph(
    instance: ProblemInstance, include_storage: bool = False
) -> "nx.DiGraph":
    """Build the Definition-2 graph for ``instance``.

    Nodes are ``(server, i)`` for request columns ``i = 0..n``; when
    ``include_storage`` is true an extra row ``m`` models external storage
    with upload edges weighted ``β`` into each request vertex.

    Cache edges ``(j, i-1) -> (j, i)`` carry weight ``μ(t_i - t_{i-1})``;
    transfer edges between each request vertex ``(s_i, i)`` and every other
    server's column-``i`` vertex (both directions) carry weight ``λ``.
    """
    g = nx.DiGraph()
    m, n = instance.num_servers, instance.n
    cost = instance.cost
    for j in range(m):
        for i in range(n + 1):
            g.add_node((j, i), server=j, time=float(instance.t[i]))
    for j in range(m):
        for i in range(1, n + 1):
            g.add_edge(
                (j, i - 1),
                (j, i),
                weight=cost.mu * float(instance.t[i] - instance.t[i - 1]),
                kind="cache",
            )
    for i in range(1, n + 1):
        s_i = int(instance.srv[i])
        for j in range(m):
            if j == s_i:
                continue
            g.add_edge((j, i), (s_i, i), weight=cost.lam, kind="transfer")
            g.add_edge((s_i, i), (j, i), weight=cost.lam, kind="transfer")
    if include_storage:
        for i in range(n + 1):
            g.add_node((m, i), server=-1, time=float(instance.t[i]))
            if i:
                g.add_edge((m, i - 1), (m, i), weight=0.0, kind="cache")
                g.add_edge(
                    (m, i), (int(instance.srv[i]), i), weight=cost.beta, kind="upload"
                )
    return g


def _column_of_time(instance: ProblemInstance, t: float) -> int:
    """Request column whose instant equals ``t`` (within float identity)."""
    import numpy as np

    idx = int(np.searchsorted(instance.t, t))
    for cand in (idx - 1, idx, idx + 1):
        if 0 <= cand <= instance.n and abs(float(instance.t[cand]) - t) <= 1e-9:
            return cand
    raise InvalidScheduleError(f"time {t} is not a request instant")


def schedule_to_edges(
    schedule: Schedule, instance: ProblemInstance
) -> List[Tuple[Node, Node]]:
    """Map a standard-form schedule onto space-time graph edges.

    Cache intervals become runs of cache edges; transfers become single
    transfer edges at their column.  Requires every interval endpoint and
    transfer instant to be a request instant (standard form).
    """
    edges: List[Tuple[Node, Node]] = []
    canon = schedule.canonical()
    for iv in canon.intervals:
        c0 = _column_of_time(instance, iv.start)
        c1 = _column_of_time(instance, iv.end)
        for i in range(c0 + 1, c1 + 1):
            edges.append(((iv.server, i - 1), (iv.server, i)))
    for tr in canon.transfers:
        c = _column_of_time(instance, tr.time)
        edges.append(((tr.src, c), (tr.dst, c)))
    return edges


def schedule_edge_cost(schedule: Schedule, instance: ProblemInstance) -> float:
    """Re-derive ``Π(Ψ)`` as a sum of space-time edge weights.

    An independent accounting path used by tests to cross-check
    :meth:`Schedule.total_cost`.
    """
    g = build_spacetime_graph(instance)
    total = 0.0
    for u, v in schedule_to_edges(schedule, instance):
        if not g.has_edge(u, v):
            raise InvalidScheduleError(f"schedule uses non-graph edge {u} -> {v}")
        total += g.edges[u, v]["weight"]
    return total


def schedule_is_tree(schedule: Schedule, instance: ProblemInstance) -> bool:
    """True iff the schedule's edge set forms a tree rooted at the origin.

    Observation 2: any optimal schedule is a directed tree rooted at
    ``(origin, 0)``.  Contracting each server's consecutive cache edges,
    the check reduces to: the undirected edge-induced subgraph is acyclic
    and connected, with the origin start vertex included.
    """
    edges = schedule_to_edges(schedule, instance)
    if not edges:
        return True
    dg = nx.DiGraph()
    dg.add_edges_from(edges)
    root = (instance.origin, 0)
    if root not in dg:
        return False
    if dg.number_of_edges() != dg.number_of_nodes() - 1:
        return False
    reachable = nx.descendants(dg, root) | {root}
    return len(reachable) == dg.number_of_nodes()


def migration_only_cost(instance: ProblemInstance) -> float:
    """Cost of the single-copy (migration-only) baseline.

    With exactly one live copy at all times, the copy must sit on the
    requesting server at each request instant, so the schedule is forced:
    cache through every gap (``μ·horizon`` total) and transfer whenever
    consecutive requests hit different servers.  This is the natural lower
    baseline against which replication's benefit is measured in the
    benchmark suite.
    """
    cost = instance.cost.mu * instance.horizon
    moves = int((instance.srv[1:] != instance.srv[:-1]).sum())
    return cost + instance.cost.lam * moves
