"""Schedules: containers, validation, diagrams and the space-time graph."""

from .diagram import render_instance, render_schedule
from .export import (
    schedule_from_dict,
    schedule_from_json,
    schedule_to_dict,
    schedule_to_dot,
    schedule_to_json,
)
from .schedule import Schedule, coverage_gaps, merge_intervals
from .svg import render_svg, write_svg
from .spacetime import (
    build_spacetime_graph,
    migration_only_cost,
    schedule_edge_cost,
    schedule_is_tree,
)
from .validate import is_standard_form, validate_schedule

__all__ = [
    "Schedule",
    "build_spacetime_graph",
    "coverage_gaps",
    "is_standard_form",
    "merge_intervals",
    "migration_only_cost",
    "render_instance",
    "render_svg",
    "render_schedule",
    "schedule_edge_cost",
    "schedule_from_dict",
    "schedule_from_json",
    "schedule_is_tree",
    "schedule_to_dict",
    "schedule_to_dot",
    "schedule_to_json",
    "validate_schedule",
    "write_svg",
]
