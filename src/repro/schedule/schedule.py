"""Schedule containers: sets of cache intervals and transfers.

A *schedule* (Definition 1 of the paper) is a set of cache intervals
``H(s, x, y)`` and transfers ``Tr(s_j, s_k, t)`` that serves a request
sequence.  :class:`Schedule` is a mutable builder used by the off-line
reconstruction and the online engines; :meth:`Schedule.canonical` returns
the merged, per-server-sorted form on which costs are charged (merging
guarantees overlapping intervals on one server are never double-billed).
"""

from __future__ import annotations

import bisect
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..core.types import CacheInterval, CostModel, InvalidScheduleError, Transfer

__all__ = ["Schedule", "merge_intervals"]


def merge_intervals(intervals: Iterable[CacheInterval]) -> List[CacheInterval]:
    """Merge overlapping / touching intervals per server.

    Returns a list sorted by ``(server, start)`` where no two intervals on
    the same server overlap or touch.  Zero-length intervals swallowed by a
    neighbour disappear; isolated zero-length intervals survive (they model
    a copy that exists only at a single request instant, e.g. a transferred
    copy deleted immediately after use — the red squares of paper Fig. 1).
    """
    out: List[CacheInterval] = []
    for iv in sorted(intervals):
        if out and out[-1].server == iv.server and iv.start <= out[-1].end:
            if iv.end > out[-1].end:
                out[-1] = CacheInterval(iv.server, out[-1].start, iv.end)
        else:
            out.append(iv)
    return out


class Schedule:
    """A set of cache intervals and transfers with cost accounting.

    Parameters
    ----------
    intervals, transfers:
        Optional initial contents.

    Notes
    -----
    The container is deliberately dumb: feasibility w.r.t. an instance is
    the job of :func:`repro.schedule.validate.validate_schedule`, and
    optimality the job of the solvers.  Costs are charged on the canonical
    (merged) form so a builder may freely add overlapping fragments.
    """

    def __init__(
        self,
        intervals: Optional[Iterable[CacheInterval]] = None,
        transfers: Optional[Iterable[Transfer]] = None,
    ):
        self.intervals: List[CacheInterval] = list(intervals or [])
        self.transfers: List[Transfer] = list(transfers or [])

    # -- builder API ----------------------------------------------------------

    def hold(self, server: int, start: float, end: float) -> "Schedule":
        """Add cache interval ``H(server, start, end)``; returns self."""
        self.intervals.append(CacheInterval(server, start, end))
        return self

    def transfer(
        self, src: int, dst: int, time: float, weight: Optional[float] = None
    ) -> "Schedule":
        """Add transfer ``Tr(src, dst, time)``; returns self."""
        self.transfers.append(Transfer(time, src, dst, weight))
        return self

    def extend(self, other: "Schedule") -> "Schedule":
        """Absorb another schedule's intervals and transfers; returns self."""
        self.intervals.extend(other.intervals)
        self.transfers.extend(other.transfers)
        return self

    def copy(self) -> "Schedule":
        """Shallow copy (atoms are immutable)."""
        return Schedule(self.intervals, self.transfers)

    # -- canonical form ---------------------------------------------------------

    def canonical(self) -> "Schedule":
        """Merged, sorted, cost-equivalent form of this schedule."""
        return Schedule(merge_intervals(self.intervals), sorted(self.transfers))

    def intervals_on(self, server: int) -> List[CacheInterval]:
        """Merged intervals on ``server``, sorted by start."""
        return [iv for iv in merge_intervals(self.intervals) if iv.server == server]

    def per_server(self) -> Dict[int, List[CacheInterval]]:
        """Merged intervals grouped by server."""
        grouped: Dict[int, List[CacheInterval]] = {}
        for iv in merge_intervals(self.intervals):
            grouped.setdefault(iv.server, []).append(iv)
        return grouped

    # -- queries ----------------------------------------------------------------

    def servers_with_copy_at(self, t: float) -> List[int]:
        """Servers holding a live copy at instant ``t`` (closed intervals)."""
        return sorted(
            {iv.server for iv in merge_intervals(self.intervals) if iv.covers(t)}
        )

    def copy_count_at(self, t: float) -> int:
        """Number of live copies at instant ``t``."""
        return len(self.servers_with_copy_at(t))

    def covers(self, server: int, t: float) -> bool:
        """True iff ``server`` holds a live copy at instant ``t``."""
        ivs = self.intervals_on(server)
        pos = bisect.bisect_right([iv.start for iv in ivs], t) - 1
        return pos >= 0 and ivs[pos].covers(t)

    def gaps(self, start: float, end: float) -> List[Tuple[float, float]]:
        """Uncovered sub-intervals of ``[start, end]`` (no copy anywhere).

        The single source of truth for "is some server holding the item":
        the feasibility validator uses it for coverage (condition 1 of
        the problem statement) and the fault-injection engine uses it to
        detect *blackouts* — windows where every copy was lost.
        """
        return coverage_gaps(merge_intervals(self.intervals), start, end)

    def span(self) -> Tuple[float, float]:
        """Earliest interval start and latest interval end."""
        if not self.intervals:
            raise InvalidScheduleError("empty schedule has no span")
        return (
            min(iv.start for iv in self.intervals),
            max(iv.end for iv in self.intervals),
        )

    # -- costs --------------------------------------------------------------------

    def caching_cost(self, model: CostModel) -> float:
        """``μ ×`` total merged copy-time."""
        return model.mu * sum(iv.duration for iv in merge_intervals(self.intervals))

    def transfer_cost(self, model: CostModel) -> float:
        """Sum of transfer charges (DT weights where present, else ``λ``)."""
        return sum(tr.cost(model) for tr in self.transfers)

    def total_cost(self, model: CostModel) -> float:
        """``Π(Ψ)``: caching plus transfer cost of the canonical form."""
        return self.caching_cost(model) + self.transfer_cost(model)

    # -- misc -----------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.intervals) + len(self.transfers)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schedule):
            return NotImplemented
        a, b = self.canonical(), other.canonical()
        return a.intervals == b.intervals and a.transfers == b.transfers

    def __repr__(self) -> str:
        return (
            f"Schedule({len(self.intervals)} intervals, "
            f"{len(self.transfers)} transfers)"
        )

    def describe(self, model: Optional[CostModel] = None) -> str:
        """Human-readable multi-line listing (sorted, merged)."""
        c = self.canonical()
        lines = [repr(self)]
        for iv in c.intervals:
            lines.append(f"  H(s{iv.server}, {iv.start:.4g}, {iv.end:.4g})")
        for tr in c.transfers:
            w = "" if tr.weight is None else f", w={tr.weight:.4g}"
            lines.append(f"  Tr(s{tr.src} -> s{tr.dst}, t={tr.time:.4g}{w})")
        if model is not None:
            lines.append(
                f"  cost = {c.caching_cost(model):.6g} caching "
                f"+ {c.transfer_cost(model):.6g} transfer "
                f"= {c.total_cost(model):.6g}"
            )
        return "\n".join(lines)


def coverage_gaps(
    intervals: Sequence[CacheInterval], start: float, end: float
) -> List[Tuple[float, float]]:
    """Sub-intervals of ``[start, end]`` not covered by any interval.

    Used by the validator for condition 1 of the problem statement (at
    least one live copy at every instant of the horizon).
    """
    spans = sorted((iv.start, iv.end) for iv in intervals)
    gaps: List[Tuple[float, float]] = []
    cursor = start
    for s, e in spans:
        if s > cursor:
            gaps.append((cursor, min(s, end)))
        cursor = max(cursor, e)
        if cursor >= end:
            break
    if cursor < end:
        gaps.append((cursor, end))
    return [(a, b) for a, b in gaps if b > a]
