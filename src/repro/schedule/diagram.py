"""ASCII space-time diagrams in the style of the paper's Figs. 2, 6 and 7.

Each server gets one text row; time runs left to right.  Cache intervals
render as ``=`` runs, requests as ``*``, transfer arrivals as ``v`` and
transfer departures as ``^``.  A legend lists the exact transfer instants
because column quantisation loses precision.

These diagrams are used by the examples and by benchmark output so a human
can eyeball a schedule the way the paper's figures are read.
"""

from __future__ import annotations

from typing import List, Optional

from ..core.instance import ProblemInstance
from .schedule import Schedule

__all__ = ["render_schedule", "render_instance"]


def _column(t: float, t0: float, tn: float, width: int) -> int:
    if tn <= t0:
        return 0
    frac = (t - t0) / (tn - t0)
    return min(width - 1, max(0, int(round(frac * (width - 1)))))


def render_instance(instance: ProblemInstance, width: int = 72) -> str:
    """Render just the request pattern of an instance (no schedule)."""
    return render_schedule(Schedule(), instance, width=width, legend=False)


def render_schedule(
    schedule: Schedule,
    instance: ProblemInstance,
    width: int = 72,
    legend: bool = True,
    title: Optional[str] = None,
) -> str:
    """Render ``schedule`` over ``instance`` as a multi-line string.

    Parameters
    ----------
    schedule:
        The schedule to draw (may be empty to show only requests).
    instance:
        Supplies the time axis, server count and request marks.
    width:
        Number of character columns for the time axis.
    legend:
        Append exact transfer/interval listings below the grid.
    title:
        Optional heading line.
    """
    t0, tn = float(instance.t[0]), float(instance.t[-1])
    m = instance.num_servers
    canon = schedule.canonical()

    grid: List[List[str]] = [[" "] * width for _ in range(m)]

    for iv in canon.intervals:
        c0 = _column(iv.start, t0, tn, width)
        c1 = _column(iv.end, t0, tn, width)
        for c in range(c0, c1 + 1):
            grid[iv.server][c] = "="

    for tr in canon.transfers:
        c = _column(tr.time, t0, tn, width)
        grid[tr.src][c] = "^"
        grid[tr.dst][c] = "v"

    for i in range(0, instance.n + 1):
        c = _column(float(instance.t[i]), t0, tn, width)
        grid[int(instance.srv[i])][c] = "*" if i else "O"

    lines: List[str] = []
    if title:
        lines.append(title)
    label_w = len(f"s{m - 1}")
    for j in range(m):
        lines.append(f"s{j}".rjust(label_w) + " |" + "".join(grid[j]))
    axis = " " * label_w + " +" + "-" * width
    lines.append(axis)
    lines.append(
        " " * label_w + f"  t0={t0:.4g}" + f"tn={tn:.4g}".rjust(width - 8)
    )
    if legend and len(canon):
        lines.append("legend: O=origin  *=request  ==cache  v=transfer in  ^=out")
        for tr in canon.transfers:
            lines.append(f"  Tr(s{tr.src} -> s{tr.dst}) at t={tr.time:.6g}")
    return "\n".join(lines)
