"""Feasibility validation of schedules against problem instances.

Checks the three schedule obligations of Section III plus structural
sanity:

1. **Coverage** — at least one live copy at every instant of
   ``[t_0, t_n]``.
2. **Service** — every request is served by a local copy or by a transfer
   arriving exactly at its request time from a server that holds a copy.
3. **Chain of custody** — every (merged) cache interval is *grounded*:
   it either begins at ``(origin, t_0)`` or begins at the arrival time of a
   transfer whose source is itself grounded at that instant.  This rules
   out schedules that conjure copies out of thin air, including cyclic
   same-instant transfer chains.

Optionally, **standard form** (Observation 1: transfers end on requests)
and **minimality** (no dead-end caches) can be enforced.

Fault-injected runs relax the obligations through ``allowed_gaps``:
inside a declared *blackout* window (every copy lost to crashes) there is
legitimately no coverage, a request may go unserved (it was dropped with
an accounted penalty), and a copy re-seeded from the origin store at the
gap's edge starts a fresh custody chain.  Outside the allowed gaps the
full obligations apply unchanged.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..core.instance import ProblemInstance
from ..core.types import CacheInterval, InvalidScheduleError, Transfer
from .schedule import Schedule

__all__ = ["validate_schedule", "is_standard_form"]

#: Absolute tolerance for time comparisons.  Schedules are built from the
#: same float64 time stamps as the instance, so matches are normally exact;
#: the tolerance only absorbs benign round-off from cost arithmetic.
_TOL = 1e-9


def _near(a: float, b: float) -> bool:
    return abs(a - b) <= _TOL * max(1.0, abs(a), abs(b))


def validate_schedule(
    schedule: Schedule,
    instance: ProblemInstance,
    require_standard_form: bool = False,
    require_minimal: bool = False,
    allowed_gaps: Optional[Sequence[Tuple[float, float]]] = None,
    upto: Optional[float] = None,
    upto_request: Optional[int] = None,
) -> None:
    """Raise :class:`InvalidScheduleError` unless ``schedule`` is feasible.

    Parameters
    ----------
    schedule:
        The candidate schedule (any builder form; validated canonically).
    instance:
        The instance whose requests must be served.
    require_standard_form:
        Also require every transfer to end on a request (Observation 1).
    require_minimal:
        Also require no dead-end caches: each merged interval must end at a
        request on its server, at an outgoing-transfer instant, or at
        ``t_n``.
    allowed_gaps:
        Declared blackout windows ``(a, b)`` (``a == b`` marks a bare
        re-seed instant).  Coverage gaps contained in a window are
        excused, requests inside one may be unserved, and intervals
        starting inside one are custody-grounded (re-seeded from the
        origin store).
    upto:
        Validate only the run prefix up to this instant: coverage is
        required over ``[t_0, upto]`` and only requests with
        ``t_i <= upto`` must be served.  This is how degraded partial
        results from deadline-exhausted supervised runs
        (:mod:`repro.runtime`) are checked — the completed prefix obeys
        the full obligations, the unexecuted suffix imposes none.
    upto_request:
        Validate service only for requests ``r_1..r_{upto_request}``.
        A time horizon alone cannot express a run killed *between*
        equal-instant events (e.g. a recovery and a request sharing
        ``t_n``): the undelivered request sits exactly at ``upto``, so
        the engine reports the delivered-request count and partials are
        checked against it.
    """
    canon = schedule.canonical()
    intervals = canon.intervals
    transfers = canon.transfers
    t0, tn = float(instance.t[0]), float(instance.t[-1])
    if upto is not None:
        if upto < t0 - _TOL:
            raise InvalidScheduleError(
                f"prefix horizon upto={upto} precedes t_0={t0}"
            )
        tn = min(tn, upto)
    allowed = sorted(allowed_gaps) if allowed_gaps else []

    _check_bounds(intervals, transfers, instance)
    _check_coverage(canon, t0, tn, allowed)
    grounded = _check_custody(intervals, transfers, instance, allowed)
    _check_service(
        canon, instance, grounded, allowed, upto=upto, upto_request=upto_request
    )
    if require_standard_form and not is_standard_form(canon, instance):
        raise InvalidScheduleError("schedule is not in standard form")
    if require_minimal:
        _check_minimal(intervals, transfers, instance)


def _in_allowed_gap(t: float, allowed: List[Tuple[float, float]]) -> bool:
    """True iff ``t`` lies inside some declared gap (closed, with tol)."""
    return any(a - _TOL <= t <= b + _TOL for a, b in allowed)


def _gap_excused(
    a: float, b: float, allowed: List[Tuple[float, float]]
) -> bool:
    """True iff uncovered ``(a, b)`` is contained in a declared gap."""
    return any(ga - _TOL <= a and b <= gb + _TOL for ga, gb in allowed)


def _check_bounds(
    intervals: List[CacheInterval],
    transfers: List[Transfer],
    instance: ProblemInstance,
) -> None:
    m = instance.num_servers
    for iv in intervals:
        if iv.server >= m:
            raise InvalidScheduleError(f"interval on unknown server {iv.server}")
    for tr in transfers:
        if tr.src >= m or tr.dst >= m:
            raise InvalidScheduleError(f"transfer touches unknown server: {tr}")


def _check_coverage(
    canon: Schedule,
    t0: float,
    tn: float,
    allowed: List[Tuple[float, float]],
) -> None:
    gaps = canon.gaps(t0, tn)
    real = [
        (a, b)
        for a, b in gaps
        if b - a > _TOL and not _gap_excused(a, b, allowed)
    ]
    if real:
        raise InvalidScheduleError(
            f"no live copy during {real[:3]}{'...' if len(real) > 3 else ''}"
        )


def _check_custody(
    intervals: List[CacheInterval],
    transfers: List[Transfer],
    instance: ProblemInstance,
    allowed: Optional[List[Tuple[float, float]]] = None,
) -> Dict[Tuple[int, float], CacheInterval]:
    """Ground every interval; returns map ``(server, start) -> interval``.

    Grounding fixpoint: the origin interval starting at ``t_0`` is
    grounded; a transfer grounds its destination interval if its source
    holds a *grounded* interval covering the transfer instant.  Transfers
    are replayed in time order, iterating same-instant groups to a
    fixpoint so chains ``A->B->C`` at one instant pass but cycles fail.

    Intervals starting inside an ``allowed`` blackout gap are seeded as
    grounded too: they model a copy re-fetched from the origin store
    after every cached copy was lost.
    """
    allowed = allowed or []
    per_server: Dict[int, List[CacheInterval]] = {}
    for iv in intervals:
        per_server.setdefault(iv.server, []).append(iv)

    grounded: Dict[Tuple[int, float], CacheInterval] = {}

    def find_interval_at(server: int, t: float):
        for iv in per_server.get(server, []):
            if iv.start - _TOL <= t <= iv.end + _TOL:
                return iv
        # No interval: the transferred copy was used at instant t and
        # deleted immediately (the red squares of paper Fig. 1).  Legal.
        return None

    def is_grounded_at(server: int, t: float) -> bool:
        for (_, _), iv in list(grounded.items()):
            if iv.server == server and iv.start - _TOL <= t <= iv.end + _TOL:
                return True
        return False

    # Seed: origin interval starting at t_0.
    t0 = float(instance.t[0])
    seeded = False
    for iv in per_server.get(instance.origin, []):
        if _near(iv.start, t0):
            grounded[(iv.server, iv.start)] = iv
            seeded = True
    # Re-seeded copies: an interval starting inside a declared blackout
    # gap was re-fetched from the origin store and roots a fresh chain.
    for iv in intervals:
        if _in_allowed_gap(iv.start, allowed):
            grounded[(iv.server, iv.start)] = iv
            seeded = True
    if not seeded and intervals:
        raise InvalidScheduleError(
            f"no interval on origin server {instance.origin} starting at t_0={t0}"
        )

    # Replay transfers in time order with same-instant fixpoint.
    remaining = sorted(transfers, key=lambda tr: tr.time)
    i = 0
    while i < len(remaining):
        j = i
        while j < len(remaining) and _near(remaining[j].time, remaining[i].time):
            j += 1
        group = remaining[i:j]
        pending = list(group)
        progress = True
        while pending and progress:
            progress = False
            for tr in list(pending):
                if is_grounded_at(tr.src, tr.time):
                    dst_iv = find_interval_at(tr.dst, tr.time)
                    if dst_iv is not None:
                        grounded[(dst_iv.server, dst_iv.start)] = dst_iv
                    pending.remove(tr)
                    progress = True
        if pending:
            raise InvalidScheduleError(
                f"ungrounded transfers (source has no grounded copy): {pending[:3]}"
            )
        i = j

    for iv in intervals:
        if (iv.server, iv.start) not in grounded:
            # An interval may also be grounded by *containing* a grounded
            # start: merging already collapsed same-server overlaps, so any
            # leftover must have arrived via a transfer or t_0 — which we
            # recorded above keyed by (server, start).
            raise InvalidScheduleError(
                f"interval H(s{iv.server}, {iv.start:.6g}, {iv.end:.6g}) has no "
                f"custody chain (no transfer arrives at its start)"
            )
    return grounded


def _check_service(
    schedule: Schedule,
    instance: ProblemInstance,
    grounded: Dict[Tuple[int, float], CacheInterval],
    allowed: Optional[List[Tuple[float, float]]] = None,
    upto: Optional[float] = None,
    upto_request: Optional[int] = None,
) -> None:
    allowed = allowed or []
    transfers_by_dst: Dict[int, List[Transfer]] = {}
    for tr in schedule.transfers:
        transfers_by_dst.setdefault(tr.dst, []).append(tr)
    for i in range(1, instance.n + 1):
        s, t = int(instance.srv[i]), float(instance.t[i])
        if upto_request is not None and i > upto_request:
            continue  # never delivered to the algorithm: no obligation
        if upto is not None and t > upto + _TOL:
            continue  # past the validated prefix: no obligation
        if schedule.covers(s, t):
            continue
        if any(_near(tr.time, t) for tr in transfers_by_dst.get(s, [])):
            continue
        if _in_allowed_gap(t, allowed):
            # Dropped during a declared blackout — penalised, not served.
            continue
        raise InvalidScheduleError(
            f"request r_{i} = (s{s}, t={t:.6g}) is not served"
        )


def _check_minimal(
    intervals: List[CacheInterval],
    transfers: List[Transfer],
    instance: ProblemInstance,
) -> None:
    """No dead-end caches: every interval end must be 'useful'."""
    tn = float(instance.t[-1])
    out_times: Dict[int, List[float]] = {}
    for tr in transfers:
        out_times.setdefault(tr.src, []).append(tr.time)
    request_times: Dict[int, List[float]] = {}
    for i in range(1, instance.n + 1):
        request_times.setdefault(int(instance.srv[i]), []).append(float(instance.t[i]))
    for iv in intervals:
        ok = (
            _near(iv.end, tn)
            or any(_near(iv.end, t) for t in request_times.get(iv.server, []))
            or any(_near(iv.end, t) for t in out_times.get(iv.server, []))
        )
        if not ok:
            raise InvalidScheduleError(
                f"dead-end cache H(s{iv.server}, {iv.start:.6g}, {iv.end:.6g}): "
                f"its end serves no request or transfer"
            )


def is_standard_form(schedule: Schedule, instance: ProblemInstance) -> bool:
    """True iff every transfer ends on a request (Observation 1).

    Standard form means each transfer's destination and instant coincide
    with some request ``(s_i, t_i)``.
    """
    request_set = {
        (int(instance.srv[i]), float(instance.t[i])) for i in range(1, instance.n + 1)
    }
    for tr in schedule.transfers:
        if not any(
            s == tr.dst and _near(t, tr.time) for (s, t) in request_set
        ):
            return False
    return True
