"""SVG space-time diagrams — the paper's figures as graphics.

Dependency-free SVG writer rendering a schedule the way the paper draws
its space-time diagrams (Figs. 2, 6, 7): one horizontal lane per server,
thick bars for cache intervals, vertical arrows for transfers, dots for
requests, a ring for the origin.  Output is a standalone ``.svg`` any
browser renders; the test-suite checks the XML structurally.
"""

from __future__ import annotations

import html
from typing import List, Optional

from ..core.instance import ProblemInstance
from .schedule import Schedule

__all__ = ["render_svg", "write_svg"]

# Palette chosen for print/projector contrast.
_BAR = "#2c7fb8"
_BAR_EDGE = "#1d5d8a"
_TRANSFER = "#d95f0e"
_REQUEST = "#222222"
_GRID = "#cccccc"
_TEXT = "#333333"


def render_svg(
    schedule: Schedule,
    instance: ProblemInstance,
    width: int = 800,
    lane_height: int = 44,
    margin: int = 56,
    title: Optional[str] = None,
) -> str:
    """Render ``schedule`` over ``instance`` as an SVG document string.

    Parameters
    ----------
    width:
        Total image width in pixels.
    lane_height:
        Vertical space per server lane.
    margin:
        Left margin for lane labels / top margin for the title.
    title:
        Optional heading; defaults to the instance summary.
    """
    m = instance.num_servers
    t0, tn = float(instance.t[0]), float(instance.t[-1])
    span = max(tn - t0, 1e-9)
    plot_w = width - margin - 16
    height = margin // 2 + m * lane_height + 40

    def x(t: float) -> float:
        return margin + (t - t0) / span * plot_w

    def y(server: int) -> float:
        return margin // 2 + server * lane_height + lane_height / 2

    canon = schedule.canonical()
    parts: List[str] = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" viewBox="0 0 {width} {height}">',
        f'<rect width="{width}" height="{height}" fill="white"/>',
    ]
    heading = title if title is not None else html.escape(repr(instance))
    parts.append(
        f'<text x="{margin}" y="16" font-size="13" fill="{_TEXT}" '
        f'font-family="sans-serif">{html.escape(heading)}</text>'
    )

    # Lanes and labels.
    for j in range(m):
        yy = y(j)
        parts.append(
            f'<line x1="{margin}" y1="{yy:.1f}" x2="{margin + plot_w}" '
            f'y2="{yy:.1f}" stroke="{_GRID}" stroke-width="1"/>'
        )
        parts.append(
            f'<text x="8" y="{yy + 4:.1f}" font-size="12" fill="{_TEXT}" '
            f'font-family="monospace">s{j}</text>'
        )

    # Cache intervals.
    for iv in canon.intervals:
        x0, x1 = x(iv.start), x(iv.end)
        yy = y(iv.server)
        parts.append(
            f'<rect class="cache" x="{x0:.1f}" y="{yy - 6:.1f}" '
            f'width="{max(x1 - x0, 2.0):.1f}" height="12" rx="3" '
            f'fill="{_BAR}" stroke="{_BAR_EDGE}"/>'
        )

    # Transfers (arrows between lanes at one instant).
    for tr in canon.transfers:
        xx = x(tr.time)
        y1, y2 = y(tr.src), y(tr.dst)
        tip = 5 if y2 > y1 else -5
        parts.append(
            f'<line class="transfer" x1="{xx:.1f}" y1="{y1:.1f}" '
            f'x2="{xx:.1f}" y2="{y2 - tip:.1f}" stroke="{_TRANSFER}" '
            f'stroke-width="1.6" stroke-dasharray="4 2"/>'
        )
        parts.append(
            f'<path d="M {xx - 4:.1f} {y2 - tip:.1f} L {xx + 4:.1f} '
            f'{y2 - tip:.1f} L {xx:.1f} {y2:.1f} Z" fill="{_TRANSFER}"/>'
        )

    # Requests and the origin marker.
    parts.append(
        f'<circle class="origin" cx="{x(t0):.1f}" cy="{y(instance.origin):.1f}" '
        f'r="7" fill="none" stroke="{_REQUEST}" stroke-width="1.6"/>'
    )
    for i in range(1, instance.n + 1):
        parts.append(
            f'<circle class="request" cx="{x(float(instance.t[i])):.1f}" '
            f'cy="{y(int(instance.srv[i])):.1f}" r="3.4" fill="{_REQUEST}"/>'
        )

    # Time axis.
    axis_y = margin // 2 + m * lane_height + 14
    parts.append(
        f'<line x1="{margin}" y1="{axis_y}" x2="{margin + plot_w}" '
        f'y2="{axis_y}" stroke="{_TEXT}" stroke-width="1"/>'
    )
    for frac in (0.0, 0.25, 0.5, 0.75, 1.0):
        tt = t0 + frac * span
        xx = x(tt)
        parts.append(
            f'<line x1="{xx:.1f}" y1="{axis_y - 3}" x2="{xx:.1f}" '
            f'y2="{axis_y + 3}" stroke="{_TEXT}"/>'
        )
        parts.append(
            f'<text x="{xx:.1f}" y="{axis_y + 16}" font-size="10" '
            f'fill="{_TEXT}" text-anchor="middle" '
            f'font-family="monospace">{tt:.3g}</text>'
        )

    parts.append("</svg>")
    return "\n".join(parts)


def write_svg(
    schedule: Schedule,
    instance: ProblemInstance,
    path: str,
    **kwargs,
) -> None:
    """Render and write an SVG file."""
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(render_svg(schedule, instance, **kwargs))
