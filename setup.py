"""Shim for legacy editable installs (offline environments without the
``wheel`` package cannot do PEP 660 builds).  All metadata lives in
``pyproject.toml``."""

from setuptools import setup

setup()
