"""Classic paging policy tests (the Table I counterpart)."""

import numpy as np
import pytest

from repro.classic import FIFO, LFU, LRU, BeladyMIN, simulate_paging


class TestSimulator:
    def test_cold_misses_counted(self):
        r = simulate_paging([1, 2, 3], capacity=3)
        assert r.misses == 3 and r.hits == 0 and r.evictions == 0

    def test_hits_on_resident_pages(self):
        r = simulate_paging([1, 1, 1], capacity=1)
        assert r.hits == 2 and r.misses == 1

    def test_eviction_when_full(self):
        r = simulate_paging([1, 2, 1], capacity=1)
        assert r.evictions == 2 and r.misses == 3

    def test_hit_ratio(self):
        r = simulate_paging([1, 1, 2, 2], capacity=2)
        assert r.hit_ratio == pytest.approx(0.5)
        assert r.fault_rate == pytest.approx(0.5)

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            simulate_paging([1], capacity=0)

    def test_empty_stream(self):
        r = simulate_paging([], capacity=2)
        assert r.accesses == 0 and r.hit_ratio == 0.0


class TestLRU:
    def test_evicts_least_recent(self):
        # 1, 2, touch 1, insert 3 -> evict 2.
        r = simulate_paging([1, 2, 1, 3, 2], capacity=2, policy=LRU())
        # final access to 2 must be a miss (2 was evicted).
        assert r.misses == 4

    def test_sequential_scan_thrashes(self):
        r = simulate_paging(list(range(10)) * 2, capacity=3, policy=LRU())
        assert r.hits == 0


class TestFIFO:
    def test_evicts_oldest_resident(self):
        # 1, 2, touch 1 (no reorder for FIFO), insert 3 -> evict 1.
        r = simulate_paging([1, 2, 1, 3, 1], capacity=2, policy=FIFO())
        assert r.misses == 4  # the final 1 misses under FIFO


class TestLFU:
    def test_evicts_least_frequent(self):
        # 1 touched 3x, 2 once; inserting 3 evicts 2.
        r = simulate_paging([1, 1, 1, 2, 3, 1], capacity=2, policy=LFU())
        assert r.hits == 3  # two extra 1-hits plus the final 1


class TestBelady:
    def test_uses_future_knowledge(self):
        # stream: 1 2 3 1 2; capacity 2. Belady evicts the page whose next
        # use is farthest: at the miss on 3, evict... 1 reused at idx 3,
        # 2 at idx 4 -> evict 2; then 1 hits, 2 misses. 2 misses after
        # warmup vs LRU's 3.
        stream = [1, 2, 3, 1, 2]
        b = simulate_paging(stream, 2, BeladyMIN())
        l = simulate_paging(stream, 2, LRU())
        assert b.misses <= l.misses
        assert b.misses == 4

    def test_never_used_again_preferred_victim(self):
        stream = [1, 2, 3, 1, 1, 1]
        r = simulate_paging(stream, 2, BeladyMIN())
        assert r.hits == 3

    @pytest.mark.parametrize("seed", range(6))
    def test_belady_is_offline_optimal_among_policies(self, seed):
        rng = np.random.default_rng(seed)
        stream = rng.integers(0, 8, size=300).tolist()
        cap = int(rng.integers(2, 6))
        belady = simulate_paging(stream, cap, BeladyMIN()).misses
        for policy in (LRU(), FIFO(), LFU()):
            assert belady <= simulate_paging(stream, cap, policy).misses

    def test_belady_hit_ratio_monotone_in_capacity(self, rng):
        stream = rng.integers(0, 10, size=400).tolist()
        ratios = [
            simulate_paging(stream, k, BeladyMIN()).hit_ratio
            for k in (1, 2, 4, 8)
        ]
        assert all(a <= b + 1e-12 for a, b in zip(ratios, ratios[1:]))


class TestPolicyBookkeeping:
    def test_result_metadata(self):
        r = simulate_paging([1, 2], capacity=4, policy=LRU())
        assert r.policy == "LRU" and r.capacity == 4

    def test_policies_are_reusable_via_fresh_instances(self):
        stream = [1, 2, 3, 1]
        a = simulate_paging(stream, 2, LRU())
        b = simulate_paging(stream, 2, LRU())
        assert a.misses == b.misses
