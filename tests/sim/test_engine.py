"""Online engine driver tests."""

from typing import List, Tuple

from repro import run_online
from repro.online.base import OnlineAlgorithm

from ..conftest import make_instance


class Probe(OnlineAlgorithm):
    """Records the exact hook call sequence."""

    name = "probe"

    def _setup(self):
        self.calls: List[Tuple] = []
        self.rec.copy_created(self.origin, self.t0, created_by="initial")

    def advance(self, t):
        self.calls.append(("advance", t))

    def serve(self, i, t, server):
        self.calls.append(("serve", i, t, server))


class TestEngine:
    def test_requests_delivered_in_order(self):
        inst = make_instance([1.0, 2.0, 3.0], [1, 0, 1], m=2)
        algo = Probe()
        run_online(algo, inst)
        serves = [c for c in algo.calls if c[0] == "serve"]
        assert serves == [
            ("serve", 1, 1.0, 1),
            ("serve", 2, 2.0, 0),
            ("serve", 3, 3.0, 1),
        ]

    def test_advance_precedes_each_serve(self):
        inst = make_instance([1.0, 2.0], [0, 1], m=2)
        algo = Probe()
        run_online(algo, inst)
        kinds = [c[0] for c in algo.calls]
        assert kinds[:4] == ["advance", "serve", "advance", "serve"]

    def test_final_advance_at_horizon(self):
        inst = make_instance([1.0], [0], m=1)
        algo = Probe()
        run_online(algo, inst)
        assert algo.calls[-1] == ("advance", 1.0)

    def test_result_algorithm_name(self):
        inst = make_instance([1.0], [0], m=1)
        assert run_online(Probe(), inst).algorithm == "probe"

    def test_algorithm_reusable_across_instances(self):
        algo = Probe()
        a = run_online(algo, make_instance([1.0], [0], m=1))
        b = run_online(algo, make_instance([2.0], [0], m=1))
        assert a.cost != b.cost  # fresh recorder per run
