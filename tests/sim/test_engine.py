"""Online engine driver tests."""

from types import SimpleNamespace
from typing import List, Tuple

import pytest

from repro import run_online
from repro.online.base import OnlineAlgorithm

from ..conftest import make_instance


class Probe(OnlineAlgorithm):
    """Records the exact hook call sequence."""

    name = "probe"

    def _setup(self):
        self.calls: List[Tuple] = []
        self.rec.copy_created(self.origin, self.t0, created_by="initial")

    def advance(self, t):
        self.calls.append(("advance", t))

    def serve(self, i, t, server):
        self.calls.append(("serve", i, t, server))


class TestEngine:
    def test_requests_delivered_in_order(self):
        inst = make_instance([1.0, 2.0, 3.0], [1, 0, 1], m=2)
        algo = Probe()
        run_online(algo, inst)
        serves = [c for c in algo.calls if c[0] == "serve"]
        assert serves == [
            ("serve", 1, 1.0, 1),
            ("serve", 2, 2.0, 0),
            ("serve", 3, 3.0, 1),
        ]

    def test_advance_precedes_each_serve(self):
        inst = make_instance([1.0, 2.0], [0, 1], m=2)
        algo = Probe()
        run_online(algo, inst)
        kinds = [c[0] for c in algo.calls]
        assert kinds[:4] == ["advance", "serve", "advance", "serve"]

    def test_final_advance_at_horizon(self):
        inst = make_instance([1.0], [0], m=1)
        algo = Probe()
        run_online(algo, inst)
        assert algo.calls[-1] == ("advance", 1.0)

    def test_result_algorithm_name(self):
        inst = make_instance([1.0], [0], m=1)
        assert run_online(Probe(), inst).algorithm == "probe"

    def test_algorithm_reusable_across_instances(self):
        algo = Probe()
        a = run_online(algo, make_instance([1.0], [0], m=1))
        b = run_online(algo, make_instance([2.0], [0], m=1))
        assert a.cost != b.cost  # fresh recorder per run


class TestTimestampValidation:
    """The engine rejects out-of-order streams before touching state.

    ``ProblemInstance`` construction already enforces increasing times,
    so these use duck-typed instances — the path a trace adapter or test
    probe would take.
    """

    def test_decreasing_timestamps_rejected(self):
        bogus = SimpleNamespace(t=[0.0, 1.0, 0.5, 2.0], n=3)
        algo = Probe()
        with pytest.raises(ValueError, match=r"non-decreasing.*t\[2\]=0\.5"):
            run_online(algo, bogus)
        # Rejected before begin(): no recorder was created.
        assert not hasattr(algo, "calls")

    def test_equal_timestamps_allowed(self):
        # Non-decreasing, not strictly increasing: a duck-typed trace
        # with simultaneous requests must replay fine (ProblemInstance
        # itself is stricter, but adapters need not be).
        base = make_instance([1.0, 2.0, 3.0], [0, 1, 0], m=2)
        dup = SimpleNamespace(
            t=[0.0, 1.0, 1.0, 2.0],
            srv=[0, 0, 1, 0],
            n=3,
            cost=base.cost,
            num_servers=2,
            origin=0,
        )
        algo = Probe()
        run_online(algo, dup)
        assert len([c for c in algo.calls if c[0] == "serve"]) == 3

    def test_wrong_shape_rejected(self):
        bogus = SimpleNamespace(t=[[0.0, 1.0]], n=1)
        with pytest.raises(ValueError, match="flat array"):
            run_online(Probe(), bogus)
