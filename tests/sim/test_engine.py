"""Online engine driver tests."""

from types import SimpleNamespace
from typing import List, Tuple

import pytest

from repro import run_online
from repro.online.base import OnlineAlgorithm

from ..conftest import make_instance


class Probe(OnlineAlgorithm):
    """Records the exact hook call sequence."""

    name = "probe"

    def _setup(self):
        self.calls: List[Tuple] = []
        self.rec.copy_created(self.origin, self.t0, created_by="initial")

    def advance(self, t):
        self.calls.append(("advance", t))

    def serve(self, i, t, server):
        self.calls.append(("serve", i, t, server))


class TestEngine:
    def test_requests_delivered_in_order(self):
        inst = make_instance([1.0, 2.0, 3.0], [1, 0, 1], m=2)
        algo = Probe()
        run_online(algo, inst)
        serves = [c for c in algo.calls if c[0] == "serve"]
        assert serves == [
            ("serve", 1, 1.0, 1),
            ("serve", 2, 2.0, 0),
            ("serve", 3, 3.0, 1),
        ]

    def test_advance_precedes_each_serve(self):
        inst = make_instance([1.0, 2.0], [0, 1], m=2)
        algo = Probe()
        run_online(algo, inst)
        kinds = [c[0] for c in algo.calls]
        assert kinds[:4] == ["advance", "serve", "advance", "serve"]

    def test_final_advance_at_horizon(self):
        inst = make_instance([1.0], [0], m=1)
        algo = Probe()
        run_online(algo, inst)
        assert algo.calls[-1] == ("advance", 1.0)

    def test_result_algorithm_name(self):
        inst = make_instance([1.0], [0], m=1)
        assert run_online(Probe(), inst).algorithm == "probe"

    def test_algorithm_reusable_across_instances(self):
        algo = Probe()
        a = run_online(algo, make_instance([1.0], [0], m=1))
        b = run_online(algo, make_instance([2.0], [0], m=1))
        assert a.cost != b.cost  # fresh recorder per run


class TestTimestampValidation:
    """The engine rejects out-of-order streams before touching state.

    ``ProblemInstance`` construction already enforces increasing times,
    so these use duck-typed instances — the path a trace adapter or test
    probe would take.
    """

    def test_decreasing_timestamps_rejected(self):
        bogus = SimpleNamespace(t=[0.0, 1.0, 0.5, 2.0], n=3)
        algo = Probe()
        with pytest.raises(ValueError, match=r"non-decreasing.*t\[2\]=0\.5"):
            run_online(algo, bogus)
        # Rejected before begin(): no recorder was created.
        assert not hasattr(algo, "calls")

    def test_equal_timestamps_allowed(self):
        # Non-decreasing, not strictly increasing: a duck-typed trace
        # with simultaneous requests must replay fine (ProblemInstance
        # itself is stricter, but adapters need not be).
        base = make_instance([1.0, 2.0, 3.0], [0, 1, 0], m=2)
        dup = SimpleNamespace(
            t=[0.0, 1.0, 1.0, 2.0],
            srv=[0, 0, 1, 0],
            n=3,
            cost=base.cost,
            num_servers=2,
            origin=0,
        )
        algo = Probe()
        run_online(algo, dup)
        assert len([c for c in algo.calls if c[0] == "serve"]) == 3

    def test_wrong_shape_rejected(self):
        bogus = SimpleNamespace(t=[[0.0, 1.0]], n=1)
        with pytest.raises(ValueError, match="flat array"):
            run_online(Probe(), bogus)


class TestEqualInstantTieBreak:
    """Regression pin for the delivery order at equal instants.

    The contract (module docstring of ``repro.sim.engine``): at one
    instant, recoveries land first, then crashes, then requests — a
    crash coinciding with a request strikes *before* the request, and a
    server recovering at that instant is usable immediately.  Stable
    within kind: requests by index, fault events in plan order.
    """

    def _scenario(self):
        from repro import FaultPlan, Outage

        inst = make_instance([1.0, 2.0, 3.0, 4.0], [0, 1, 0, 2], m=3)
        # At t=2.0: server 2 recovers (outage ends) AND server 0 crashes
        # (outage starts), coinciding with request r_2 on server 1.
        plan = FaultPlan(
            outages=(Outage(2, 1.2, 2.0), Outage(0, 2.0, 2.5))
        )
        return inst, plan

    def test_merged_stream_orders_recover_crash_request(self):
        from repro.sim.engine import merged_event_stream

        inst, plan = self._scenario()
        at_t2 = [ev for ev in merged_event_stream(inst, plan) if ev.time == 2.0]
        assert [ev.kind for ev in at_t2] == ["recover", "crash", "request"]

    def test_fault_log_reflects_delivery_order(self):
        from repro import SpeculativeCachingResilient
        from repro.sim.engine import run_online_faulty

        inst, plan = self._scenario()
        res = run_online_faulty(
            SpeculativeCachingResilient(replicas=1, max_retries=2), inst, plan
        )
        at_t2 = [e for e in res.fault_log if e[1] == 2.0 and e[0] in ("crash", "recover")]
        assert [e[0] for e in at_t2] == ["recover", "crash"]

    def test_crash_at_request_time_beats_the_request(self):
        from repro import FaultPlan, Outage, SpeculativeCachingResilient
        from repro.sim.engine import run_online_faulty

        # The origin (server 0, sole copy holder) dies exactly when r_2
        # on server 1 arrives: the request must NOT be served from the
        # dead server — SC-R re-seeds or drops, never reads a corpse.
        inst = make_instance([1.0, 2.0, 3.0], [0, 1, 0], m=2)
        plan = FaultPlan(outages=(Outage(0, 2.0, 2.2),))
        res = run_online_faulty(
            SpeculativeCachingResilient(replicas=1, max_retries=1), inst, plan
        )
        assert not any(
            e[0] == "xfer-ok" and e[1] == 2.0 and e[2] == 0
            for e in res.fault_log
        )

    def test_same_kind_keeps_source_order(self):
        from repro import FaultPlan, Outage
        from repro.sim.engine import merged_event_stream

        inst = make_instance([1.0, 2.0, 3.0], [0, 1, 0], m=4)
        plan = FaultPlan(
            outages=(Outage(3, 2.0, 2.4), Outage(1, 2.0, 2.3))
        )
        crashes = [
            ev.server
            for ev in merged_event_stream(inst, plan)
            if ev.kind == "crash" and ev.time == 2.0
        ]
        # FaultPlan.events emits per-server in sorted order; the stable
        # sort must preserve it.
        assert crashes == sorted(crashes)


class _SpySlices(list):
    """List that counts slice reads (the old quadratic access pattern)."""

    def __init__(self, items):
        super().__init__(items)
        self.slice_reads = 0

    def __getitem__(self, key):
        if isinstance(key, slice):
            self.slice_reads += 1
        return super().__getitem__(key)


class TestRequestsDeliveredCounter:
    """Regression pin: budget polling must be O(1), not a prefix rescan.

    The historic property recounted ``stream[:pos]`` on every read, so a
    supervisor polling it per event paid O(n²) total.  The counter is
    now maintained incrementally; the rescan survives only as a fallback
    for drivers unpickled from pre-counter snapshots.
    """

    def _driver(self, n=200):
        from repro.sim.engine import ReplayDriver

        times = [float(i) for i in range(1, n + 1)]
        servers = [i % 3 for i in range(n)]
        return ReplayDriver(Probe(), make_instance(times, servers, m=3))

    def test_no_prefix_rescans_while_polling(self):
        driver = self._driver()
        spy = _SpySlices(driver.stream)
        driver.stream = spy
        seen = []
        while not driver.done:
            driver.step()
            seen.append(driver.requests_delivered)  # poll per event
        assert seen == list(range(1, len(spy) + 1))
        assert spy.slice_reads == 0

    def test_counter_matches_recount_at_every_step(self):
        driver = self._driver(n=50)
        while not driver.done:
            driver.step()
            recount = sum(
                1
                for ev in driver.stream[: driver.pos]
                if ev.kind == "request"
            )
            assert driver.requests_delivered == recount

    def test_legacy_snapshot_fallback_recounts_once(self):
        # A driver unpickled from an old snapshot has no counter yet:
        # the first read recounts the prefix, later reads reuse it.
        driver = self._driver(n=30)
        for _ in range(10):
            driver.step()
        driver._requests_delivered = None  # simulate pre-counter pickle
        spy = _SpySlices(driver.stream)
        driver.stream = spy
        assert driver.requests_delivered == 10
        assert spy.slice_reads == 1
        assert driver.requests_delivered == 10
        assert spy.slice_reads == 1  # cached, no second rescan
        driver.step()
        assert driver.requests_delivered == 11
        assert spy.slice_reads == 1


class TestReplayFastPath:
    """The array-backed fast path must be indistinguishable from the
    stepwise driver on fault-free runs."""

    def test_fast_equals_stepwise_for_policies(self):
        from repro import (
            AlwaysTransfer,
            SpeculativeCaching,
            SpeculativeCachingResilient,
        )

        times = [0.5 * i + 0.25 for i in range(1, 120)]
        servers = [(i * 7) % 5 for i in range(1, 120)]
        inst = make_instance(times, servers, m=5)
        for factory in (
            SpeculativeCaching,
            AlwaysTransfer,
            SpeculativeCachingResilient,
        ):
            fast = run_online(factory(), inst, fast=True)
            slow = run_online(factory(), inst, fast=False)
            assert fast.cost == slow.cost
            assert fast.counters == slow.counters
            assert fast.schedule.transfers == slow.schedule.transfers
            assert fast.schedule.intervals == slow.schedule.intervals

    def test_fast_path_hook_sequence_identical(self):
        inst = make_instance([1.0, 2.5, 4.0], [0, 1, 1], m=2)
        a, b = Probe(), Probe()
        run_online(a, inst, fast=True)
        run_online(b, inst, fast=False)
        assert a.calls == b.calls

    def test_fast_path_rejects_bad_times_like_driver(self):
        bogus = SimpleNamespace(t=[0.0, 1.0, 0.5], n=2)
        with pytest.raises(ValueError, match="non-decreasing"):
            run_online(Probe(), bogus, fast=True)
