"""Run recorder tests."""

import pytest

from repro import CostModel
from repro.sim import RunRecorder


def recorder(m=3):
    return RunRecorder(m, CostModel(mu=1.0, lam=1.0))


class TestLifetimes:
    def test_create_and_delete(self):
        rec = recorder()
        rec.copy_created(0, 0.0, created_by="initial")
        rec.copy_deleted(0, 2.0)
        life = rec.lifetimes[0]
        assert life.start == 0.0 and life.end == 2.0
        assert life.ended_by == "expire"

    def test_double_create_rejected(self):
        rec = recorder()
        rec.copy_created(0, 0.0)
        with pytest.raises(RuntimeError, match="already holds"):
            rec.copy_created(0, 1.0)

    def test_tail_accounting(self):
        rec = recorder()
        rec.copy_created(0, 0.0, created_by="initial")
        rec.copy_refreshed(0, 1.5)
        rec.copy_deleted(0, 2.5)
        assert rec.lifetimes[0].tail() == pytest.approx(1.0)

    def test_tail_of_alive_lifetime_raises(self):
        rec = recorder()
        life = rec.copy_created(0, 0.0)
        with pytest.raises(ValueError, match="alive"):
            life.tail()

    def test_holds_copy_and_open_servers(self):
        rec = recorder()
        rec.copy_created(2, 0.0)
        rec.copy_created(0, 0.5)
        assert rec.holds_copy(2) and not rec.holds_copy(1)
        assert rec.open_servers() == [0, 2]


class TestTransfersAndFinalize:
    def test_transfer_counter_and_index(self):
        rec = recorder()
        assert rec.transfer(0, 1, 1.0) == 0
        assert rec.transfer(1, 2, 2.0) == 1
        assert rec.counters["transfers"] == 2

    def test_transfer_index_recorded_on_lifetime(self):
        rec = recorder()
        rec.transfer(0, 1, 1.0)
        life = rec.copy_created(1, 1.0, created_by="transfer")
        assert life.transfer_index == 0

    def test_finalize_truncates_open_copies(self):
        rec = recorder()
        rec.copy_created(0, 0.0, created_by="initial")
        result = rec.finalize(4.0, algorithm="x")
        assert result.lifetimes[0].end == 4.0
        assert result.lifetimes[0].ended_by == "truncate"
        assert result.cost == pytest.approx(4.0)

    def test_finalize_builds_schedule_and_cost(self):
        rec = recorder()
        rec.copy_created(0, 0.0, created_by="initial")
        rec.transfer(0, 1, 1.0)
        rec.copy_created(1, 1.0, created_by="transfer")
        rec.copy_deleted(0, 2.0)
        result = rec.finalize(3.0, algorithm="demo")
        # caching: s0 [0,2] + s1 [1,3] = 4; transfers: 1.
        assert result.cost == pytest.approx(5.0)
        assert result.num_transfers == 1
        assert result.algorithm == "demo"

    def test_transfers_raw_preserves_creation_order(self):
        rec = recorder()
        rec.transfer(0, 2, 5.0)
        rec.transfer(0, 1, 1.0)
        rec.copy_created(0, 0.0, created_by="initial")
        result = rec.finalize(6.0, algorithm="x")
        assert result.transfers_raw() == [(5.0, 0, 2), (1.0, 0, 1)]

    def test_repr(self):
        rec = recorder()
        rec.copy_created(0, 0.0, created_by="initial")
        result = rec.finalize(1.0, algorithm="demo")
        assert "demo" in repr(result)
