"""Event queue tests."""

import pytest

from repro.sim import Event, EventQueue


class TestOrdering:
    def test_pops_in_time_order(self):
        q = EventQueue()
        q.push(3.0, server=0)
        q.push(1.0, server=1)
        q.push(2.0, server=2)
        assert [q.pop().time for _ in range(3)] == [1.0, 2.0, 3.0]

    def test_fifo_among_equal_times(self):
        q = EventQueue()
        a = q.push(1.0, server=0)
        b = q.push(1.0, server=1)
        assert q.pop() is a and q.pop() is b

    def test_peek_time(self):
        q = EventQueue()
        assert q.peek_time() is None
        q.push(5.0)
        assert q.peek_time() == 5.0

    def test_len_and_clear(self):
        q = EventQueue()
        q.push(1.0)
        q.push(2.0)
        assert len(q) == 2
        q.clear()
        assert len(q) == 0


class TestPopGroup:
    def test_groups_simultaneous_events(self):
        q = EventQueue()
        q.push(1.0, server=0)
        q.push(1.0, server=1)
        q.push(2.0, server=2)
        t, group = q.pop_group(5.0, lambda ev: True)
        assert t == 1.0 and {ev.server for ev in group} == {0, 1}

    def test_strictly_before_cutoff(self):
        q = EventQueue()
        q.push(2.0, server=0)
        assert q.pop_group(2.0, lambda ev: True) is None
        assert q.pop_group(2.0001, lambda ev: True) is not None

    def test_lazy_invalidation_skips_stale(self):
        q = EventQueue()
        q.push(1.0, server=0)
        q.push(3.0, server=1)
        t, group = q.pop_group(10.0, lambda ev: ev.server == 1)
        assert t == 3.0 and group[0].server == 1

    def test_none_when_empty(self):
        assert EventQueue().pop_group(10.0, lambda ev: True) is None

    def test_stale_within_group_filtered(self):
        q = EventQueue()
        q.push(1.0, server=0)
        q.push(1.0, server=1)
        t, group = q.pop_group(2.0, lambda ev: ev.server == 0)
        assert len(group) == 1 and group[0].server == 0


class TestEvent:
    def test_ordering_by_time_then_seq(self):
        assert Event(1.0, 0) < Event(1.0, 1) < Event(2.0, 0)

    def test_kind_and_server_not_compared(self):
        assert Event(1.0, 0, kind="a", server=5) < Event(1.0, 1, kind="z", server=0)
