"""Closed-form theory vs. solver outputs."""

import numpy as np
import pytest

from repro import CostModel, solve_offline
from repro.analysis import (
    cyclic_adversary,
    never_delete_cost,
    round_robin_envelope,
    single_server_optimal,
)
from repro.online import NeverDelete

from ..conftest import make_instance


class TestSingleServer:
    def test_on_origin(self):
        inst = make_instance([1.0, 3.0, 4.5], [0, 0, 0], m=2, mu=2.0)
        assert single_server_optimal(inst) == pytest.approx(9.0)
        assert solve_offline(inst).optimal_cost == pytest.approx(9.0)

    def test_off_origin_adds_one_transfer(self):
        inst = make_instance([1.0, 3.0], [1, 1], m=2, mu=1.0, lam=2.5)
        assert single_server_optimal(inst) == pytest.approx(3.0 + 2.5)
        assert solve_offline(inst).optimal_cost == pytest.approx(5.5)

    def test_multi_server_rejected(self, fig6):
        with pytest.raises(ValueError, match="several"):
            single_server_optimal(fig6)

    def test_empty(self):
        inst = make_instance([], [], m=2)
        assert single_server_optimal(inst) == 0.0

    @pytest.mark.parametrize("seed", range(5))
    def test_matches_dp_on_random_single_server_loads(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(1, 20))
        t = np.cumsum(rng.uniform(0.1, 3.0, size=n))
        srv = np.full(n, 1)
        inst = make_instance(t, srv, m=3, mu=float(rng.uniform(0.2, 2)), lam=float(rng.uniform(0.2, 2)))
        assert solve_offline(inst).optimal_cost == pytest.approx(
            single_server_optimal(inst)
        )


class TestNeverDeleteClosedForm:
    @pytest.mark.parametrize("seed", range(8))
    def test_matches_simulation(self, seed):
        from repro.workloads import poisson_zipf_instance

        inst = poisson_zipf_instance(60, 5, rate=1.0, rng=seed)
        run = NeverDelete().run(inst)
        assert run.cost == pytest.approx(never_delete_cost(inst))

    def test_origin_only(self):
        inst = make_instance([1.0, 2.0], [0, 0], m=3)
        assert never_delete_cost(inst) == pytest.approx(2.0)


class TestRoundRobinEnvelope:
    @pytest.mark.parametrize(
        "m,gap,rounds",
        [(2, 0.4, 10), (3, 0.5, 8), (4, 1.3, 6), (5, 0.2, 10)],
    )
    def test_brackets_the_optimum(self, m, gap, rounds):
        cost = CostModel(mu=1.0, lam=1.0)
        env = round_robin_envelope(m, gap, rounds, cost)
        inst = cyclic_adversary(m, rounds, gap / cost.speculative_window, cost=cost)
        opt = solve_offline(inst).optimal_cost
        assert env.lower - 1e-9 <= opt <= env.upper + 1e-9

    def test_strategy_formulas_are_feasible_costs(self):
        # Each pure-strategy formula must dominate the optimum.
        cost = CostModel(mu=2.0, lam=0.7)
        env = round_robin_envelope(3, 0.9, 5, cost)
        inst = cyclic_adversary(3, 5, 0.9 / cost.speculative_window, cost=cost)
        opt = solve_offline(inst).optimal_cost
        for value in (env.park, env.cache_all, env.migrate):
            assert value >= opt - 1e-9

    def test_regime_flip(self):
        cost = CostModel(mu=1.0, lam=1.0)
        dense = round_robin_envelope(3, 0.05, 10, cost)
        sparse = round_robin_envelope(3, 5.0, 10, cost)
        # Tiny gaps favour caching everywhere; huge gaps favour parking.
        assert dense.cache_all < dense.park
        assert sparse.park < sparse.cache_all

    def test_parameters_validated(self):
        with pytest.raises(ValueError):
            round_robin_envelope(1, 1.0, 5, CostModel())
        with pytest.raises(ValueError):
            round_robin_envelope(3, 0.0, 5, CostModel())
        with pytest.raises(ValueError):
            round_robin_envelope(3, 1.0, 0, CostModel())
