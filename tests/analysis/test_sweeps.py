"""Sweep harness tests."""

from repro.analysis import Sweep, sweep, timed


class TestSweep:
    def test_cartesian_product(self):
        out = sweep(
            {"a": [1, 2], "b": ["x", "y"]},
            lambda a, b: {"val": f"{a}{b}"},
        )
        assert len(out) == 4
        assert out.column("val") == ["1x", "1y", "2x", "2y"]

    def test_rows_merge_point_and_result(self):
        out = sweep({"n": [3]}, lambda n: {"double": 2 * n})
        assert out.rows[0] == {"n": 3, "double": 6}

    def test_table_rendering(self):
        out = sweep({"n": [1, 2]}, lambda n: {"sq": n * n})
        text = out.table()
        assert "sq" in text and "4" in text

    def test_manual_add(self):
        s = Sweep()
        s.add(x=1)
        s.add(x=2)
        assert s.column("x") == [1, 2]


class TestTimed:
    def test_returns_value_and_duration(self):
        out = timed(lambda: 42)
        assert out["value"] == 42
        assert out["seconds"] >= 0.0
