"""Per-epoch accounting tests."""

import pytest

from repro.analysis import epoch_report
from repro.online import SpeculativeCaching
from repro.workloads import poisson_zipf_instance


class TestEpochReport:
    def make(self, seed=0, n=120):
        return poisson_zipf_instance(n, 5, rate=1.0, rng=seed)

    def test_rows_partition_the_requests(self):
        inst = self.make()
        rows = epoch_report(inst, epoch_size=10)
        assert rows[0].first_request == 1
        assert rows[-1].last_request == inst.n
        for a, b in zip(rows, rows[1:]):
            assert b.first_request == a.last_request + 1

    def test_sc_costs_sum_to_total(self):
        inst = self.make(seed=1)
        rows = epoch_report(inst, epoch_size=10)
        total = SpeculativeCaching(epoch_size=10).run(inst).cost
        assert sum(r.sc_cost for r in rows) == pytest.approx(total, rel=1e-6)

    def test_per_epoch_ratios_bounded(self):
        for seed in range(4):
            inst = self.make(seed=seed)
            for row in epoch_report(inst, epoch_size=8):
                assert row.ratio <= 3.0 + 1e-6, row

    def test_max_epochs_truncates(self):
        inst = self.make(seed=2)
        rows = epoch_report(inst, epoch_size=5, max_epochs=2)
        assert len(rows) == 2

    def test_single_giant_epoch(self):
        inst = self.make(seed=3, n=40)
        rows = epoch_report(inst, epoch_size=10_000)
        assert len(rows) == 1
        assert rows[0].last_request == inst.n

    def test_bad_epoch_size(self):
        with pytest.raises(ValueError):
            epoch_report(self.make(), epoch_size=0)
