"""Competitive analysis harness tests."""

import pytest

from repro.analysis import (
    adversarial_gap_sweep,
    alternating_adversary,
    cyclic_adversary,
    empirical_ratio,
    ratio_statistics,
)
from repro.online import AlwaysTransfer
from repro.workloads import poisson_zipf_instance


class TestEmpiricalRatio:
    def test_ratio_at_least_one(self):
        inst = poisson_zipf_instance(40, 4, rng=0)
        assert empirical_ratio(inst) >= 1.0 - 1e-9

    def test_custom_algorithm(self):
        inst = poisson_zipf_instance(40, 4, rng=1)
        r = empirical_ratio(inst, AlwaysTransfer())
        assert r >= 1.0 - 1e-9

    def test_sc_bound(self):
        inst = poisson_zipf_instance(60, 5, rng=2)
        assert empirical_ratio(inst) <= 3.0 + 1e-9


class TestRatioStatistics:
    def test_summary_fields(self):
        insts = [poisson_zipf_instance(30, 4, rng=s) for s in range(5)]
        stats = ratio_statistics(insts)
        assert 1.0 - 1e-9 <= stats.mean <= stats.worst <= 3.0 + 1e-9
        assert stats.p95 <= stats.worst + 1e-12
        assert "worst" in repr(stats)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ratio_statistics([])


class TestAdversaries:
    def test_cyclic_shape(self):
        inst = cyclic_adversary(m=4, rounds=3, gap_factor=1.2)
        assert inst.n == 12
        # every request moves to the next server in the cycle
        assert all(inst.srv[i] != inst.srv[i - 1] for i in range(2, inst.n + 1))

    def test_alternating_is_two_server_cycle(self):
        inst = alternating_adversary(rounds=4, gap_factor=1.1)
        assert inst.num_servers == 2 and inst.n == 8

    def test_parameters_validated(self):
        with pytest.raises(ValueError):
            cyclic_adversary(1, 3, 1.0)
        with pytest.raises(ValueError):
            cyclic_adversary(3, 0, 1.0)
        with pytest.raises(ValueError):
            cyclic_adversary(3, 3, -1.0)

    def test_gap_sweep_rows(self):
        rows = adversarial_gap_sweep(m=3, rounds=5, gap_factors=[0.5, 1.2])
        assert len(rows) == 2
        for row in rows:
            assert set(row) == {"gap_factor", "sc_cost", "opt_cost", "ratio"}
            assert row["ratio"] <= 3.0 + 1e-9

    def test_worst_ratio_where_revisit_period_exceeds_window(self):
        # The painful spot: per-server revisit period (m * gap) just past
        # the speculative window, so every request pays transfer + a full
        # window of dead rent.
        m = 4
        rows = adversarial_gap_sweep(m=m, rounds=10)
        worst = max(rows, key=lambda r: r["ratio"])
        assert worst["gap_factor"] * m > 1.0
        assert worst["ratio"] > 1.5


class TestOptSolveCounts:
    """Pin the 'OPT solved once per instance' contract via a counting stub.

    Every harness entry point routes OPT through the single
    ``_opt_costs`` seam; stubbing it counts both the number of batched
    calls and the number of instances solved, so a regression back to
    per-algorithm (or per-γ) re-solving fails loudly here.
    """

    def _counting_stub(self, monkeypatch):
        from repro.analysis import competitive

        calls = {"batches": 0, "instances": 0}
        real = competitive._opt_costs

        def counting(instances):
            calls["batches"] += 1
            calls["instances"] += len(instances)
            return real(instances)

        monkeypatch.setattr(competitive, "_opt_costs", counting)
        return calls

    def test_ratio_statistics_solves_each_instance_once(self, monkeypatch):
        calls = self._counting_stub(monkeypatch)
        insts = [poisson_zipf_instance(25, 4, rng=s) for s in range(6)]
        ratio_statistics(insts)
        assert calls == {"batches": 1, "instances": 6}

    def test_ratio_grid_reuses_opt_across_algorithms(self, monkeypatch):
        from repro.analysis import ratio_grid
        from repro.online import NeverDelete, SpeculativeCaching

        calls = self._counting_stub(monkeypatch)
        insts = [poisson_zipf_instance(25, 4, rng=s) for s in range(5)]
        grid = ratio_grid(
            insts,
            {
                "sc": SpeculativeCaching,
                "always-transfer": AlwaysTransfer,
                "never-delete": NeverDelete,
            },
        )
        # Three algorithms over five instances: OPT still solved 5 times.
        assert calls == {"batches": 1, "instances": 5}
        assert set(grid) == {"sc", "always-transfer", "never-delete"}

    def test_gamma_sweep_reuses_opt_across_gammas(self, monkeypatch):
        from repro.analysis import ttl_gamma_sweep

        calls = self._counting_stub(monkeypatch)
        insts = [poisson_zipf_instance(25, 4, rng=s) for s in range(4)]
        rows = ttl_gamma_sweep(insts, gammas=[0.5, 1.0, 2.0, 4.0])
        assert calls == {"batches": 1, "instances": 4}
        assert [r["gamma"] for r in rows] == [0.5, 1.0, 2.0, 4.0]

    def test_gap_sweep_solves_each_factor_once(self, monkeypatch):
        calls = self._counting_stub(monkeypatch)
        adversarial_gap_sweep(m=3, rounds=5, gap_factors=[0.5, 1.0, 1.5])
        assert calls == {"batches": 1, "instances": 3}


class TestKernelIdentity:
    """The batched harness must reproduce the per-event loop exactly."""

    def test_ratio_statistics_kernels_agree(self):
        insts = [poisson_zipf_instance(30, 4, rng=s) for s in range(5)]
        vec = ratio_statistics(insts, kernel="vector")
        ev = ratio_statistics(insts, kernel="event")
        assert list(vec.ratios) == list(ev.ratios)

    def test_gamma_sweep_kernels_agree(self):
        from repro.analysis import ttl_gamma_sweep

        insts = [poisson_zipf_instance(30, 4, rng=s) for s in range(4)]
        vec = ttl_gamma_sweep(insts, gammas=[0.5, 2.0], epoch_size=3)
        ev = ttl_gamma_sweep(insts, gammas=[0.5, 2.0], epoch_size=3, kernel="event")
        for a, b in zip(vec, ev):
            assert a["ratios"] == b["ratios"]

    def test_vector_kernel_rejects_ineligible_policy(self):
        insts = [poisson_zipf_instance(20, 3, rng=0)]
        with pytest.raises(ValueError, match="vector"):
            ratio_statistics(insts, AlwaysTransfer, kernel="vector")
