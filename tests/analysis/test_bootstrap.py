"""Bootstrap CI tests."""

import numpy as np
import pytest

from repro.analysis import bootstrap_ci, bootstrap_mean_ratio
from repro.online import SpeculativeCaching
from repro.workloads import poisson_zipf_instance


def _workload(seed):
    return poisson_zipf_instance(40, 4, rate=1.0, rng=seed)


def _sc():
    return SpeculativeCaching()


class TestBootstrapCI:
    def test_contains_point_estimate(self):
        ci = bootstrap_ci([1.0, 2.0, 3.0, 4.0])
        assert ci.lo <= ci.estimate <= ci.hi
        assert ci.estimate == pytest.approx(2.5)

    def test_degenerate_sample_collapses(self):
        ci = bootstrap_ci([5.0] * 10)
        assert ci.lo == ci.hi == ci.estimate == 5.0

    def test_width_shrinks_with_sample_size(self):
        rng = np.random.default_rng(0)
        small = bootstrap_ci(rng.normal(0, 1, 10), rng=np.random.default_rng(1))
        large = bootstrap_ci(rng.normal(0, 1, 400), rng=np.random.default_rng(1))
        assert (large.hi - large.lo) < (small.hi - small.lo)

    def test_custom_statistic(self):
        ci = bootstrap_ci([1.0, 2.0, 100.0], statistic=np.median)
        assert ci.estimate == pytest.approx(2.0)

    def test_contains_operator(self):
        ci = bootstrap_ci([1.0, 2.0, 3.0])
        assert ci.estimate in ci
        assert 1e9 not in ci

    def test_str_format(self):
        assert "@95%" in str(bootstrap_ci([1.0, 2.0]))

    def test_validation(self):
        with pytest.raises(ValueError):
            bootstrap_ci([])
        with pytest.raises(ValueError):
            bootstrap_ci([1.0], confidence=1.5)
        with pytest.raises(ValueError):
            bootstrap_ci([1.0], resamples=0)

    def test_deterministic_default_rng(self):
        a = bootstrap_ci([1.0, 5.0, 2.0, 8.0])
        b = bootstrap_ci([1.0, 5.0, 2.0, 8.0])
        assert (a.lo, a.hi) == (b.lo, b.hi)


class TestBootstrapMeanRatio:
    def test_interval_brackets_known_regime(self):
        ci = bootstrap_mean_ratio(_workload, range(8), _sc, processes=1)
        assert 1.0 <= ci.lo <= ci.estimate <= ci.hi <= 3.0
