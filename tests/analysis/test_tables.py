"""Table formatting tests."""

import pytest

from repro.analysis import format_markdown, format_series, format_table


ROWS = [
    {"name": "sc", "cost": 12.5, "ok": True},
    {"name": "opt", "cost": 8.25, "ok": False},
]


class TestFormatTable:
    def test_header_and_rows(self):
        out = format_table(ROWS)
        lines = out.splitlines()
        assert "name" in lines[0] and "cost" in lines[0]
        assert len(lines) == 4  # header, rule, 2 rows

    def test_title(self):
        out = format_table(ROWS, title="Results")
        assert out.splitlines()[0] == "Results"

    def test_explicit_headers_subset(self):
        out = format_table(ROWS, headers=["cost"])
        assert "name" not in out

    def test_bool_rendering(self):
        out = format_table(ROWS)
        assert "yes" in out and "no" in out

    def test_precision(self):
        out = format_table([{"x": 1.23456789}], precision=3)
        assert "1.23" in out and "1.2345" not in out

    def test_missing_cells_blank(self):
        out = format_table([{"a": 1}, {"b": 2}])
        assert out  # must not raise

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            format_table([])


class TestFormatMarkdown:
    def test_pipe_structure(self):
        out = format_markdown(ROWS)
        lines = out.splitlines()
        assert lines[0].startswith("| name")
        assert set(lines[1].replace("|", "")) <= {"-"}
        assert len(lines) == 4


class TestFormatSeries:
    def test_two_columns(self):
        out = format_series([1, 2], [10.0, 20.0], x_label="n", y_label="t")
        assert "n" in out and "t" in out
        assert "10" in out and "20" in out
