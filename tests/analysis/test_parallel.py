"""Parallel execution utilities tests."""

import functools

import pytest

from repro.analysis.parallel import parallel_map, ratio_study, sweep_parallel
from repro.analysis.sweeps import sweep
from repro.online import SpeculativeCaching
from repro.workloads import poisson_zipf_instance

# Module-level work items (process pools require picklable callables).


def _square(x):
    return x * x


def _add(x, y):
    return x + y


class _Scaler:
    def __init__(self, k):
        self.k = k

    def apply(self, x):
        return self.k * x


def _measure(n, k):
    return {"prod": n * k}


def _workload(seed):
    return poisson_zipf_instance(40, 4, rate=1.0, rng=seed)


def _sc_factory():
    return SpeculativeCaching()


class TestParallelMap:
    def test_serial_path(self):
        assert parallel_map(_square, [(2,), (3,)], processes=1) == [4, 9]

    def test_pool_matches_serial(self):
        args = [(i,) for i in range(6)]
        assert parallel_map(_square, args, processes=2) == parallel_map(
            _square, args, processes=1
        )

    def test_empty(self):
        assert parallel_map(_square, [], processes=4) == []

    def test_lambda_rejected_for_pools(self):
        with pytest.raises(ValueError, match="module-level"):
            parallel_map(lambda x: x, [(1,)], processes=2)

    def test_lambda_fine_serially(self):
        assert parallel_map(lambda x: x + 1, [(1,)], processes=1) == [2]

    def test_bad_process_count(self):
        with pytest.raises(ValueError):
            parallel_map(_square, [(1,)], processes=0)

    def test_partial_over_lambda_fails_fast(self):
        # Regression: partials pickle by reference to .func, so a partial
        # over a lambda used to pass the check and kill the pool mid-run.
        with pytest.raises(ValueError, match="module-level"):
            parallel_map(functools.partial(lambda x: x, 1), [()], processes=2)

    def test_nested_partial_over_lambda_fails_fast(self):
        wrapped = functools.partial(functools.partial(lambda x, y: x + y, 1), 2)
        with pytest.raises(ValueError, match="module-level"):
            parallel_map(wrapped, [()], processes=2)

    def test_partial_over_module_function_works(self):
        add_one = functools.partial(_add, 1)
        assert parallel_map(add_one, [(2,), (3,)], processes=2) == [3, 4]

    def test_bound_method_of_local_class_fails_fast(self):
        class Doubler:
            def apply(self, x):
                return 2 * x

        with pytest.raises(ValueError, match="module-level"):
            parallel_map(Doubler().apply, [(1,)], processes=2)

    def test_bound_method_of_module_class_works(self):
        assert parallel_map(_Scaler(3).apply, [(2,)], processes=2) == [6]


class TestSweepParallel:
    def test_matches_serial_sweep(self):
        grid = {"n": [1, 2], "k": [10, 20]}
        serial = sweep(grid, _measure)
        par = sweep_parallel(grid, _measure, processes=2)
        assert par.rows == serial.rows

    def test_single_process(self):
        out = sweep_parallel({"n": [3], "k": [4]}, _measure, processes=1)
        assert out.rows == [{"n": 3, "k": 4, "prod": 12}]


class TestRatioStudy:
    def test_serial_matches_pool(self):
        serial = ratio_study(_workload, [0, 1], _sc_factory, processes=1)
        pooled = ratio_study(_workload, [0, 1], _sc_factory, processes=2)
        assert serial == pytest.approx(pooled)

    def test_ratios_bounded(self):
        ratios = ratio_study(_workload, range(3), _sc_factory, processes=1)
        assert all(1.0 - 1e-9 <= r <= 3.0 + 1e-6 for r in ratios)
