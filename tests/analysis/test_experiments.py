"""Experiment-registry tests."""

import pytest

from repro.analysis.experiments import (
    EXPERIMENTS,
    list_experiments,
    run_experiment,
)


class TestRegistry:
    def test_listing_is_sorted_and_complete(self):
        names = list_experiments()
        assert names == sorted(names)
        assert set(names) == set(EXPERIMENTS)

    def test_unknown_experiment_raises(self):
        with pytest.raises(KeyError, match="unknown experiment"):
            run_experiment("does-not-exist")

    @pytest.mark.parametrize("name", ["fig2", "fig6", "fig7"])
    def test_paper_experiments_run(self, name):
        out = run_experiment(name)
        assert isinstance(out, str) and len(out.splitlines()) >= 3

    def test_fig6_contains_paper_optimum(self):
        assert "8.9" in run_experiment("fig6")

    def test_fig2_contains_decomposition(self):
        out = run_experiment("fig2")
        assert "3.2" in out and "7.2" in out

    def test_dt_chain_holds_column(self):
        out = run_experiment("dt-chain")
        assert "holds" in out and "no" not in out.split("holds")[1]

    def test_table1_mentions_both_regimes(self):
        out = run_experiment("table1")
        assert "Belady" in out and "SC cost" in out

    def test_adversary_bounded(self):
        out = run_experiment("adversary")
        assert "gap_factor" in out

    def test_ladder_ends_at_opt(self):
        out = run_experiment("ladder")
        assert "OPT" in out and "MPC" in out

    def test_multi_item_runs(self):
        assert "SC/OPT" in run_experiment("multi-item")
