"""Cloud-pricing calibration tests."""

import pytest

from repro.analysis import PRICE_POINTS, PricingPlan, calibrate, describe_window


class TestPricingPlan:
    def test_catalog_entries_valid(self):
        assert set(PRICE_POINTS) == {
            "object-store-standard",
            "object-store-infrequent",
            "cdn-edge",
        }

    def test_free_transfers_rejected(self):
        with pytest.raises(ValueError, match="degenerate"):
            PricingPlan(0.02, 0.0, 0.0)

    def test_negative_prices_rejected(self):
        with pytest.raises(ValueError):
            PricingPlan(-1.0, 0.09)
        with pytest.raises(ValueError):
            PricingPlan(0.02, 0.09, request_fee=-1.0)


class TestCalibrate:
    def test_units(self):
        plan = PricingPlan(storage_per_gb_month=0.73, egress_per_gb=0.10)
        model = calibrate(plan, item_size_gb=10.0, time_unit_hours=1.0)
        # 0.73 $/GB-month == 0.001 $/GB-hour; 10 GB item -> mu = 0.01/h.
        assert model.mu == pytest.approx(0.01)
        assert model.lam == pytest.approx(1.0)
        assert model.speculative_window == pytest.approx(100.0)  # hours

    def test_window_scales_with_time_unit(self):
        plan = PricingPlan(0.73, 0.10)
        hourly = calibrate(plan, 10.0, time_unit_hours=1.0)
        daily = calibrate(plan, 10.0, time_unit_hours=24.0)
        # Same physical window regardless of the chosen unit.
        assert hourly.speculative_window == pytest.approx(
            daily.speculative_window * 24.0
        )

    def test_object_store_window_is_days(self):
        model = calibrate(PRICE_POINTS["object-store-standard"], 1.0)
        hours = model.speculative_window
        assert hours > 24 * 30  # cold-storage economics: keep for months

    def test_cdn_edge_window_is_much_shorter(self):
        cdn = calibrate(PRICE_POINTS["cdn-edge"], 1.0).speculative_window
        s3 = calibrate(
            PRICE_POINTS["object-store-standard"], 1.0
        ).speculative_window
        assert cdn < s3 / 10

    def test_invalid_inputs(self):
        plan = PricingPlan(0.02, 0.09)
        with pytest.raises(ValueError):
            calibrate(plan, 0.0)
        with pytest.raises(ValueError):
            calibrate(plan, 1.0, time_unit_hours=0.0)


class TestDescribeWindow:
    @pytest.mark.parametrize(
        "hours,expect",
        [
            (10.0 / 3600, "seconds"),
            (0.5, "minutes"),
            (10.0, "hours"),
            (24.0 * 10, "days"),
        ],
    )
    def test_unit_selection(self, hours, expect):
        from repro import CostModel

        model = CostModel(mu=1.0, lam=hours)
        assert expect in describe_window(model)
