"""Every example script must run clean and print its story."""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted(
    (Path(__file__).resolve().parent.parent / "examples").glob("*.py")
)

EXPECTED_SNIPPETS = {
    "quickstart": ["optimal service cost", "competitive ratio"],
    "mobile_trajectory": ["predictability", "factor-3"],
    "cost_explorer": ["transfer-cost sweep", "migrate-everywhere"],
    "online_service": ["online policies, best first", "factor-3"],
    "trace_mining": ["provisioning plan", "saves"],
    "predictive_service": ["information ladder", "regret"],
    "pricing_frontier": ["speculative window", "cost-latency frontier"],
}


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(path, capsys, monkeypatch):
    monkeypatch.setattr(sys, "argv", [str(path)])
    runpy.run_path(str(path), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), f"{path.stem} printed nothing"
    for snippet in EXPECTED_SNIPPETS.get(path.stem, []):
        assert snippet in out, f"{path.stem} output lacks {snippet!r}"


def test_all_examples_have_expectations():
    names = {p.stem for p in EXAMPLES}
    assert names == set(EXPECTED_SNIPPETS), (
        "keep EXPECTED_SNIPPETS in sync with examples/"
    )
