"""Cross-module integration tests: workload -> solvers -> analysis."""

import numpy as np
import pytest

from repro import (
    CostModel,
    double_transfer,
    solve_exact,
    solve_offline,
    validate_schedule,
)
from repro.analysis import empirical_ratio, format_table
from repro.network import Cluster
from repro.online import (
    AlwaysTransfer,
    NeverDelete,
    SpeculativeCaching,
    verify_theorem3,
)
from repro.schedule import migration_only_cost, render_schedule
from repro.workloads import (
    MarkovMobility,
    lz_entropy_rate,
    max_predictability,
    mine_instance,
    poisson_zipf_instance,
    write_trace,
    TraceRecord,
)


class TestWorkloadToSolvers:
    def test_poisson_zipf_end_to_end(self):
        inst = poisson_zipf_instance(80, 6, zipf_s=1.2, rng=0)
        res = solve_offline(inst)
        sched = res.schedule()
        validate_schedule(sched, inst, require_standard_form=True)
        run = SpeculativeCaching().run(inst)
        validate_schedule(run.schedule, inst)
        assert res.optimal_cost <= run.cost <= 3 * res.optimal_cost + 1e-6

    def test_trajectory_end_to_end(self):
        cluster = Cluster.grid(2, 3, cost=CostModel(mu=1.0, lam=2.0))
        mm = MarkovMobility(cluster, locality=0.9, request_rate=1.5)
        inst = mm.instance(num_users=2, duration=40.0, cost=cluster.cost, rng=1)
        rep = verify_theorem3(inst)
        assert rep.holds()

    def test_trace_roundtrip_to_solution(self, tmp_path):
        inst = poisson_zipf_instance(40, 4, rng=2)
        path = tmp_path / "t.csv"
        write_trace(
            [
                TraceRecord(float(inst.t[i]), int(inst.srv[i]))
                for i in range(1, inst.n + 1)
            ],
            path,
        )
        mined = mine_instance(path, num_servers=4, cost=inst.cost)
        assert solve_offline(mined).optimal_cost == pytest.approx(
            solve_offline(inst).optimal_cost
        )


class TestCostOrderings:
    def test_policy_sandwich(self):
        # OPT <= SC <= 3 OPT and OPT <= baselines, across workloads.
        for seed in range(5):
            inst = poisson_zipf_instance(60, 5, rate=1.5, rng=seed)
            opt = solve_offline(inst).optimal_cost
            for algo in (SpeculativeCaching(), AlwaysTransfer(), NeverDelete()):
                cost = algo.run(inst).cost
                assert cost >= opt - 1e-6
            assert SpeculativeCaching().run(inst).cost <= 3 * opt + 1e-6

    def test_exact_oracle_agrees_on_trajectory_workload(self):
        cluster = Cluster.grid(2, 2)
        mm = MarkovMobility(cluster, locality=0.8, request_rate=0.5)
        inst = mm.instance(num_users=1, duration=25.0, rng=3)
        if inst.n <= 18:
            assert solve_exact(inst, build_schedule=False).optimal_cost == (
                pytest.approx(solve_offline(inst).optimal_cost)
            )

    def test_migration_only_vs_always_transfer_identity(self):
        inst = poisson_zipf_instance(50, 4, rng=4)
        assert AlwaysTransfer().run(inst).cost == pytest.approx(
            migration_only_cost(inst)
        )


class TestAnalysisPipeline:
    def test_dt_chain_on_generated_workload(self):
        inst = poisson_zipf_instance(50, 4, rng=5)
        run = SpeculativeCaching().run(inst)
        dt = double_transfer(run, inst)
        assert dt.total_cost == pytest.approx(run.cost)

    def test_predictability_pipeline(self):
        cluster = Cluster.grid(2, 2)
        mm = MarkovMobility(cluster, locality=0.95, request_rate=2.0)
        inst = mm.instance(num_users=1, duration=120.0, rng=6)
        S = lz_entropy_rate(inst.srv[1:].tolist())
        assert max_predictability(S, cluster.num_servers) > 0.6

    def test_reporting_pipeline(self):
        inst = poisson_zipf_instance(30, 4, rng=7)
        rows = [
            {"policy": "sc", "ratio": empirical_ratio(inst)},
            {"policy": "at", "ratio": empirical_ratio(inst, AlwaysTransfer())},
        ]
        table = format_table(rows)
        assert "policy" in table

    def test_diagram_of_everything(self):
        inst = poisson_zipf_instance(15, 3, rng=8)
        res = solve_offline(inst)
        out = render_schedule(res.schedule(), inst, title="opt")
        assert out.startswith("opt")
