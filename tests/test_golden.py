"""Golden regression tests: pinned outputs for the paper's examples.

If any of these change, either a solver regressed or an intentional
behaviour change needs the goldens (and EXPERIMENTS.md) updated in the
same commit.
"""

import json

import pytest

from repro import solve_offline
from repro.online import SpeculativeCaching
from repro.paperdata import fig2_instance, fig6_instance, fig7_instance
from repro.schedule import schedule_to_dict

FIG6_GOLDEN_SCHEDULE = {
    "version": 1,
    "intervals": [
        {"server": 0, "start": 0.0, "end": 1.4},
        {"server": 1, "start": 0.5, "end": 4.0},
    ],
    "transfers": [
        {"time": 0.5, "src": 0, "dst": 1},
        {"time": 0.8, "src": 0, "dst": 2},
        {"time": 1.1, "src": 0, "dst": 3},
        {"time": 4.0, "src": 1, "dst": 2},
    ],
}

FIG2_GOLDEN_COSTS = {"caching": 3.2, "transfer": 4.0, "total": 7.2}

FIG7_GOLDEN_COUNTERS = {
    "transfers": 5,
    "local_hits": 1,
    "expirations": 3,
    "extensions": 2,
    "epochs": 1,
}


class TestGoldens:
    def test_fig6_schedule_atoms(self):
        sched = solve_offline(fig6_instance()).schedule()
        got = schedule_to_dict(sched)
        assert got == FIG6_GOLDEN_SCHEDULE

    def test_fig6_schedule_json_stable(self):
        from repro.schedule import schedule_to_json

        sched = solve_offline(fig6_instance()).schedule()
        # JSON form is sorted-keys deterministic.
        assert json.loads(schedule_to_json(sched)) == FIG6_GOLDEN_SCHEDULE

    def test_fig2_costs(self):
        inst = fig2_instance()
        sched = solve_offline(inst).schedule()
        assert sched.caching_cost(inst.cost) == pytest.approx(
            FIG2_GOLDEN_COSTS["caching"]
        )
        assert sched.transfer_cost(inst.cost) == pytest.approx(
            FIG2_GOLDEN_COSTS["transfer"]
        )
        assert sched.total_cost(inst.cost) == pytest.approx(
            FIG2_GOLDEN_COSTS["total"]
        )

    def test_fig7_counters(self):
        run = SpeculativeCaching(epoch_size=5).run(fig7_instance())
        assert run.counters == FIG7_GOLDEN_COUNTERS

    def test_fig7_cost(self):
        run = SpeculativeCaching(epoch_size=5).run(fig7_instance())
        assert run.cost == pytest.approx(13.0)
