"""Hash-sampled trace solving tests: determinism, round-trips, coverage.

The two load-bearing properties:

* **byte-determinism** — the sampled container's bytes depend only on
  the row *set* and ``(rate, seed, window)``, never on row order,
  interning order, chunking, or the host process;
* **calibration** — ``estimate_offline_cost``'s interval covers the
  exact full-trace solve at (close to) the stated level on traces small
  enough to solve exactly.
"""

import hashlib
import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

import repro
from repro import InvalidInstanceError, MultiItemInstance, solve_offline_multi
from repro.workloads import (
    ColumnarTrace,
    TraceRecord,
    estimate_offline_cost,
    exact_offline_cost,
    item_hash,
    mine_instance_columnar,
    sample_columnar,
    sample_trace,
    sampled_items,
    solve_trace_costs,
    zipf_weights,
)
from repro.workloads.sampling import HASH_SPACE, SampleStats

_SETTINGS = dict(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def make_trace(rows=4000, items=60, m=5, seed=0, user=-1):
    rng = np.random.default_rng(seed)
    ids = rng.choice(items, size=rows, p=zipf_weights(items, 1.0))
    return ColumnarTrace(
        np.cumsum(rng.exponential(0.01, size=rows)),
        rng.integers(0, m, size=rows),
        np.full(rows, user),
        ids,
        tuple(f"item-{k:03d}" for k in range(items)),
    )


def permuted_copy(trace, seed=0):
    """Same row set, different row order AND different interning order."""
    rng = np.random.default_rng(seed)
    perm = rng.permutation(trace.rows)
    n_items = len(trace.item_table)
    reorder = rng.permutation(n_items)  # new id -> old id
    old_to_new = np.empty(n_items, dtype=np.int64)
    old_to_new[reorder] = np.arange(n_items)
    return ColumnarTrace(
        np.asarray(trace.times)[perm],
        np.asarray(trace.servers)[perm],
        np.asarray(trace.users)[perm],
        old_to_new[np.asarray(trace.item_ids)[perm]],
        tuple(trace.item_table[int(i)] for i in reorder),
    )


def sha(path):
    return hashlib.sha256(Path(path).read_bytes()).hexdigest()


class TestItemHash:
    def test_stable_known_properties(self):
        h = item_hash("item-000")
        assert h == item_hash("item-000")  # deterministic
        assert 0 <= h < HASH_SPACE
        assert item_hash("item-000") != item_hash("item-001")
        assert item_hash("item-000", seed=1) != item_hash("item-000", seed=2)

    def test_negative_seed_rejected(self):
        with pytest.raises(ValueError, match="seed"):
            item_hash("x", seed=-1)

    def test_mask_edges(self):
        table = tuple(f"i{k}" for k in range(50))
        assert sampled_items(table, 1.0).all()
        assert not sampled_items(table, 0.0).any()
        assert sampled_items((), 0.5).shape == (0,)
        with pytest.raises(ValueError, match="rate"):
            sampled_items(table, 1.5)

    def test_rate_monotone_nested(self):
        table = tuple(f"i{k}" for k in range(300))
        prev = np.zeros(len(table), dtype=bool)
        for rate in (0.05, 0.1, 0.3, 0.7, 1.0):
            mask = sampled_items(table, rate, seed=3)
            assert (prev <= mask).all()  # lower-rate sample is a subset
            prev = mask

    def test_rate_hits_expected_fraction(self):
        table = tuple(f"i{k}" for k in range(4000))
        frac = sampled_items(table, 0.25, seed=0).mean()
        assert 0.2 < frac < 0.3


class TestSampleTrace:
    def test_sampled_item_set_matches_mask(self):
        trace = make_trace()
        out = sample_trace(trace, 0.3, seed=5)
        expect = {
            name
            for name, keep in zip(
                trace.item_table, sampled_items(trace.item_table, 0.3, 5)
            )
            if keep
        }
        assert set(out.item_table) == expect
        assert out.rows == sum(
            int((np.asarray(trace.item_ids) == i).sum())
            for i, name in enumerate(trace.item_table)
            if name in expect
        )

    def test_window_filters_rows(self):
        trace = make_trace()
        t = np.asarray(trace.times)
        t0, t1 = float(t[100]), float(t[900])
        out = sample_trace(trace, 1.0, window=(t0, t1))
        ot = np.asarray(out.times)
        assert ot.min() >= t0 and ot.max() < t1
        assert out.rows == int(((t >= t0) & (t < t1)).sum())
        with pytest.raises(ValueError, match="window"):
            sample_trace(trace, 1.0, window=(t1, t0))

    def test_canonical_order_sorted_by_time(self):
        out = sample_trace(make_trace(), 0.5, seed=1)
        t = np.asarray(out.times)
        assert (np.diff(t) >= 0).all()

    def test_empty_sample_is_valid_trace(self):
        out = sample_trace(make_trace(rows=50, items=4), 0.0)
        assert out.rows == 0 and out.item_table == ()

    def test_stats_payload(self, tmp_path):
        trace = make_trace()
        stats = sample_columnar(trace, tmp_path / "s.col", 0.3, seed=5)
        assert isinstance(stats, SampleStats)
        assert stats.rows_in == trace.rows
        assert stats.items_in == len(trace.item_table)
        assert 0 < stats.row_fraction < 1
        out = ColumnarTrace.open(tmp_path / "s.col")
        assert out.rows == stats.rows_kept
        assert len(out.item_table) == stats.items_kept

    def test_sampled_trace_round_trips_through_solvers(self):
        """A sampled trace is a perfectly ordinary columnar trace."""
        out = sample_trace(make_trace(), 0.2, seed=2)
        inst = mine_instance_columnar(out, item=out.item_table[0])
        assert inst.n >= 1
        svc = MultiItemInstance.from_columnar(out)
        res = solve_offline_multi(svc)
        assert res.total_cost > 0
        # and per-item costs agree with the direct columnar solve
        costs = solve_trace_costs(out)
        for name, r in res.per_item.items():
            assert costs[name] == r.optimal_cost


class TestByteDeterminism:
    @given(data=st.data())
    @settings(**_SETTINGS)
    def test_permutation_and_chunking_invariance(
        self, data, tmp_path_factory
    ):
        tmp = tmp_path_factory.mktemp("det")
        n = data.draw(st.integers(min_value=1, max_value=120), label="rows")
        rate = data.draw(
            st.sampled_from([0.1, 0.3, 0.6, 1.0]), label="rate"
        )
        seed = data.draw(st.integers(min_value=0, max_value=5), label="seed")
        pseed = data.draw(
            st.integers(min_value=0, max_value=2**31), label="perm"
        )
        chunk = data.draw(
            st.sampled_from([1, 3, 7, 1 << 20]), label="chunk"
        )
        trace = make_trace(rows=n, items=13, m=4, seed=seed)
        other = permuted_copy(trace, seed=pseed)
        sample_columnar(trace, tmp / "a.col", rate, seed=1)
        sample_columnar(other, tmp / "b.col", rate, seed=1, chunk_rows=chunk)
        assert sha(tmp / "a.col") == sha(tmp / "b.col")

    def test_tied_timestamps_still_deterministic(self, tmp_path):
        recs = [
            TraceRecord(1.0, s, user=u, item=i)
            for i in ("a", "b", "c")
            for s in (0, 1)
            for u in (3, 4)
        ]
        a = ColumnarTrace.from_records(recs)
        b = ColumnarTrace.from_records(recs[::-1])
        sample_columnar(a, tmp_path / "a.col", 1.0, seed=0)
        sample_columnar(b, tmp_path / "b.col", 1.0, seed=0)
        assert sha(tmp_path / "a.col") == sha(tmp_path / "b.col")

    def test_subprocess_boundary(self, tmp_path):
        """A different process (fresh hash salt, CLI path) produces the
        byte-identical sampled container."""
        trace = make_trace(rows=600, items=20)
        src = tmp_path / "src.col"
        permuted_copy(trace, seed=9).save(src)
        sample_columnar(trace, tmp_path / "local.col", 0.4, seed=7)
        env = dict(os.environ)
        env["PYTHONPATH"] = str(Path(repro.__file__).resolve().parents[1])
        proc = subprocess.run(
            [
                sys.executable,
                "-m",
                "repro.cli",
                "sample",
                str(src),
                str(tmp_path / "remote.col"),
                "--rate",
                "0.4",
                "--seed",
                "7",
            ],
            env=env,
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 0, proc.stderr
        assert sha(tmp_path / "local.col") == sha(tmp_path / "remote.col")

    def test_window_part_of_the_key(self, tmp_path):
        trace = make_trace()
        t = np.asarray(trace.times)
        sample_columnar(trace, tmp_path / "a.col", 0.5, seed=1)
        sample_columnar(
            trace,
            tmp_path / "b.col",
            0.5,
            seed=1,
            window=(float(t[0]), float(t[-1]) + 1.0),
        )
        # full-covering window keeps every row -> identical bytes
        assert sha(tmp_path / "a.col") == sha(tmp_path / "b.col")


class TestSolveTraceCosts:
    def test_bit_identical_to_service_layer(self):
        trace = make_trace(rows=3000, items=40)
        svc = MultiItemInstance.from_columnar(trace)
        res = solve_offline_multi(svc)
        costs = solve_trace_costs(trace)
        assert set(costs) == set(res.per_item)
        for name, r in res.per_item.items():
            assert costs[name] == r.optimal_cost
        assert exact_offline_cost(trace) == res.total_cost

    def test_mask_selects_items(self):
        trace = make_trace(rows=800, items=12)
        mask = np.zeros(12, dtype=bool)
        mask[[2, 5]] = True
        costs = solve_trace_costs(trace, items=mask)
        assert set(costs) == {"item-002", "item-005"}

    def test_masked_solve_keeps_full_fleet(self):
        """num_servers defaults to the *full-trace* fleet so masked
        costs stay comparable to the unmasked solve."""
        trace = make_trace(rows=800, items=12, m=6)
        full = solve_trace_costs(trace)
        mask = np.zeros(12, dtype=bool)
        mask[3] = True
        part = solve_trace_costs(trace, items=mask)
        assert part["item-003"] == full["item-003"]

    def test_empty_trace(self):
        empty = ColumnarTrace(
            np.empty(0), np.empty(0, "<i4"), np.empty(0, "<i4"),
            np.empty(0, "<i4"), (),
        )
        assert solve_trace_costs(empty) == {}


class TestEstimateOfflineCost:
    def test_rate_one_is_exact(self):
        trace = make_trace(rows=2000, items=30)
        exact = exact_offline_cost(trace)
        est = estimate_offline_cost(trace, rate=1.0, top_exact=4)
        assert est.estimate == pytest.approx(exact, rel=1e-12)
        assert est.ci_lo == est.ci_hi == est.estimate
        assert est.solve_fraction == 1.0

    def test_all_head_is_exact(self):
        trace = make_trace(rows=2000, items=30)
        exact = exact_offline_cost(trace)
        est = estimate_offline_cost(trace, rate=0.5, top_exact=30)
        assert est.estimate == pytest.approx(exact, rel=1e-12)
        assert est.ci_lo == est.ci_hi == est.estimate

    def test_tuple_unpacking_contract(self):
        est = estimate_offline_cost(make_trace(), rate=0.5, top_exact=8)
        e, lo, hi, frac = est
        assert (e, lo, hi, frac) == (
            est.estimate, est.ci_lo, est.ci_hi, est.solve_fraction
        )
        assert lo <= e <= hi
        assert 0 < frac <= 1

    def test_validation_errors(self):
        trace = make_trace(rows=100, items=10)
        with pytest.raises(ValueError, match="rate"):
            estimate_offline_cost(trace, rate=0.0)
        with pytest.raises(ValueError, match="confidence"):
            estimate_offline_cost(trace, rate=0.5, confidence=1.5)
        with pytest.raises(ValueError, match="top_exact"):
            estimate_offline_cost(trace, rate=0.5, top_exact=-1)
        empty = ColumnarTrace(
            np.empty(0), np.empty(0, "<i4"), np.empty(0, "<i4"),
            np.empty(0, "<i4"), (),
        )
        with pytest.raises(InvalidInstanceError, match="empty"):
            estimate_offline_cost(empty, rate=0.5)

    def test_empty_tail_sample_raises(self):
        # One tail item whose hash is above the tiny rate threshold.
        trace = make_trace(rows=400, items=6)
        with pytest.raises(ValueError, match="selected none"):
            estimate_offline_cost(trace, rate=1e-12, seed=0, top_exact=2)

    def test_estimate_deterministic(self):
        trace = make_trace(rows=1500, items=40)
        a = estimate_offline_cost(trace, rate=0.3, seed=4, top_exact=8)
        b = estimate_offline_cost(trace, rate=0.3, seed=4, top_exact=8)
        assert (a.estimate, a.ci_lo, a.ci_hi) == (b.estimate, b.ci_lo, b.ci_hi)

    def test_solve_fraction_shrinks_with_rate(self):
        trace = make_trace(rows=4000, items=80)
        fr = [
            estimate_offline_cost(
                trace, rate=r, seed=1, top_exact=8
            ).solve_fraction
            for r in (0.1, 0.4, 1.0)
        ]
        assert fr[0] < fr[2] and fr[1] <= fr[2]

    def test_ci_covers_exact_at_stated_level(self):
        """Empirical coverage over many hash seeds stays near nominal.

        95% nominal; the union percentile/bootstrap-t interval measures
        ~90-96% on Zipf tails with >= 10 sampled items, so gate at 80%
        to stay flake-free while still catching calibration regressions
        (the broken pure scale-up interval measured ~10-20%).
        """
        trace = make_trace(rows=6000, items=120, m=5, seed=11)
        exact = exact_offline_cost(trace)
        covered = total = 0
        for seed in range(30):
            try:
                est = estimate_offline_cost(
                    trace, rate=0.25, seed=seed, top_exact=24
                )
            except ValueError:
                continue
            total += 1
            covered += est.covers(exact)
            assert abs(est.estimate - exact) / exact < 0.5
        assert total >= 25
        assert covered / total >= 0.8

    def test_estimate_close_on_zipf_trace(self):
        trace = make_trace(rows=8000, items=100, seed=3)
        exact = exact_offline_cost(trace)
        est = estimate_offline_cost(trace, rate=0.3, seed=0, top_exact=32)
        assert abs(est.estimate - exact) / exact < 0.1
        assert est.rows_solved < trace.rows
