"""Synthetic workload generator tests."""

import numpy as np
import pytest

from repro import CostModel
from repro.workloads import (
    arrival_gaps,
    choose_servers,
    mmpp_instance,
    poisson_zipf_instance,
    random_instance,
    renewal_instance,
    zipf_weights,
)


class TestZipfWeights:
    def test_normalised(self):
        assert zipf_weights(7, 1.2).sum() == pytest.approx(1.0)

    def test_monotone_decreasing(self):
        w = zipf_weights(10, 1.0)
        assert np.all(np.diff(w) < 0)

    def test_zero_skew_is_uniform(self):
        assert np.allclose(zipf_weights(5, 0.0), 0.2)

    def test_requires_positive_m(self):
        with pytest.raises(ValueError):
            zipf_weights(0)


class TestArrivalGaps:
    @pytest.mark.parametrize("process", ["poisson", "pareto", "lognormal", "constant"])
    def test_positive_gaps(self, process):
        gaps = arrival_gaps(500, process, rate=2.0, rng=0)
        assert gaps.shape == (500,)
        assert np.all(gaps > 0)

    @pytest.mark.parametrize("process", ["poisson", "pareto", "lognormal", "constant"])
    def test_mean_close_to_inverse_rate(self, process):
        gaps = arrival_gaps(20000, process, rate=2.0, rng=1)
        assert gaps.mean() == pytest.approx(0.5, rel=0.15)

    def test_pareto_heavier_tail_than_poisson(self):
        pareto = arrival_gaps(20000, "pareto", rng=2, pareto_alpha=1.3)
        poisson = arrival_gaps(20000, "poisson", rng=2)
        assert pareto.max() > poisson.max()

    def test_unknown_process_rejected(self):
        with pytest.raises(ValueError, match="unknown"):
            arrival_gaps(10, "weibull")

    def test_bad_rate_rejected(self):
        with pytest.raises(ValueError):
            arrival_gaps(10, rate=0.0)

    def test_pareto_alpha_validated(self):
        with pytest.raises(ValueError, match="alpha"):
            arrival_gaps(10, "pareto", pareto_alpha=0.9)


class TestChooseServers:
    def test_in_range(self):
        srv = choose_servers(1000, 6, rng=3)
        assert srv.min() >= 0 and srv.max() < 6

    def test_zipf_concentrates_on_rank_zero(self):
        srv = choose_servers(5000, 6, popularity="zipf", zipf_s=2.0, rng=4)
        counts = np.bincount(srv, minlength=6)
        assert counts[0] == counts.max()

    def test_explicit_weights(self):
        srv = choose_servers(500, 3, popularity=[0.0, 1.0, 0.0], rng=5)
        assert set(srv.tolist()) == {1}

    def test_bad_weights_rejected(self):
        with pytest.raises(ValueError):
            choose_servers(10, 3, popularity=[1.0, 2.0])

    def test_unknown_popularity_rejected(self):
        with pytest.raises(ValueError, match="unknown"):
            choose_servers(10, 3, popularity="powerlaw")


class TestInstanceFactories:
    def test_poisson_zipf_shape(self):
        inst = poisson_zipf_instance(100, 8, rng=6)
        assert inst.n == 100 and inst.num_servers == 8

    def test_deterministic_given_seed(self):
        a = poisson_zipf_instance(50, 4, rng=7)
        b = poisson_zipf_instance(50, 4, rng=7)
        assert a == b

    def test_cost_model_passed_through(self):
        inst = poisson_zipf_instance(10, 3, cost=CostModel(mu=2.0, lam=3.0), rng=8)
        assert inst.cost == CostModel(mu=2.0, lam=3.0)

    def test_renewal_with_pareto(self):
        inst = renewal_instance(60, 5, process="pareto", rng=9)
        assert inst.n == 60

    def test_mmpp_produces_bursts(self):
        inst = mmpp_instance(
            600, 4, rate_low=0.1, rate_high=20.0, switch_prob=0.05, rng=10
        )
        gaps = np.diff(inst.t)
        # Bursty: the gap distribution must be much wider than its median.
        assert gaps.max() / np.median(gaps) > 10

    def test_mmpp_switch_prob_validated(self):
        with pytest.raises(ValueError):
            mmpp_instance(10, 2, switch_prob=1.5)

    def test_random_instance_fuzzer(self):
        for seed in range(10):
            inst = random_instance(seed)
            assert 1 <= inst.num_servers <= 6
            assert 1 <= inst.n <= 40
