"""Mobility trajectory workload tests."""

import numpy as np
import pytest

from repro.network import Cluster
from repro.workloads import MarkovMobility, RandomWaypoint, merge_streams


class TestMerge:
    def test_streams_merged_in_time_order(self):
        a = (np.array([1.0, 3.0]), np.array([0, 1]))
        b = (np.array([2.0]), np.array([2]))
        inst = merge_streams([a, b], m=3)
        assert list(inst.srv[1:]) == [0, 2, 1]

    def test_simultaneous_requests_jittered(self):
        a = (np.array([1.0]), np.array([0]))
        b = (np.array([1.0]), np.array([1]))
        inst = merge_streams([a, b], m=2)
        assert inst.n == 2
        assert inst.t[2] > inst.t[1]

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            merge_streams([], m=2)


class TestMarkovMobility:
    def cluster(self):
        return Cluster.grid(2, 2)

    def test_high_locality_produces_runs(self):
        mm = MarkovMobility(self.cluster(), locality=0.95, request_rate=2.0)
        t, s = mm.user_stream(duration=200.0, start_server=0, rng=0)
        stays = np.mean(s[1:] == s[:-1])
        assert stays > 0.8

    def test_zero_locality_moves_every_step(self):
        mm = MarkovMobility(self.cluster(), locality=0.0, request_rate=2.0)
        t, s = mm.user_stream(duration=100.0, start_server=0, rng=1)
        assert np.mean(s[1:] == s[:-1]) < 0.2

    def test_layout_moves_are_neighbours(self):
        c = Cluster.grid(1, 4, spacing=1.0)
        mm = MarkovMobility(c, locality=0.0, request_rate=2.0, neighbors=1)
        t, s = mm.user_stream(duration=100.0, start_server=0, rng=2)
        for a, b in zip(s, s[1:]):
            if a != b:
                assert abs(int(a) - int(b)) == 1  # nearest site only

    def test_instance_merges_users(self):
        mm = MarkovMobility(self.cluster(), request_rate=1.0)
        inst = mm.instance(num_users=3, duration=30.0, rng=3)
        assert inst.num_servers == 4
        assert inst.n > 10

    def test_locality_validated(self):
        with pytest.raises(ValueError):
            MarkovMobility(self.cluster(), locality=1.5)

    def test_rate_validated(self):
        with pytest.raises(ValueError):
            MarkovMobility(self.cluster(), request_rate=0.0)

    def test_no_layout_falls_back_to_uniform_moves(self):
        c = Cluster(5)
        mm = MarkovMobility(c, locality=0.0, request_rate=1.0)
        t, s = mm.user_stream(duration=100.0, start_server=0, rng=4)
        assert len(set(s.tolist())) > 2


class TestRandomWaypoint:
    def cluster(self):
        return Cluster.grid(3, 3, spacing=2.0)

    def test_requires_layout(self):
        with pytest.raises(ValueError, match="layout"):
            RandomWaypoint(Cluster(4))

    def test_stream_serves_valid_servers(self):
        rw = RandomWaypoint(self.cluster(), speed=1.0, request_rate=1.0)
        t, s = rw.user_stream(duration=50.0, rng=5)
        assert t.shape == s.shape
        assert np.all((0 <= s) & (s < 9))
        assert np.all(np.diff(t) > 0)

    def test_slow_walker_stays_local(self):
        rw = RandomWaypoint(self.cluster(), speed=0.01, request_rate=5.0)
        t, s = rw.user_stream(duration=20.0, rng=6)
        # A nearly static user should hit very few distinct servers.
        assert len(set(s.tolist())) <= 3

    def test_instance_builds(self):
        rw = RandomWaypoint(self.cluster(), request_rate=0.5)
        inst = rw.instance(num_users=4, duration=40.0, rng=7)
        assert inst.num_servers == 9 and inst.n > 5

    def test_parameters_validated(self):
        with pytest.raises(ValueError):
            RandomWaypoint(self.cluster(), speed=0.0)
