"""Predictability estimator tests (Song et al. motivation)."""

import math

import numpy as np
import pytest

from repro.network import Cluster
from repro.workloads import (
    MarkovMobility,
    empirical_entropy,
    lz_entropy_rate,
    max_predictability,
)


class TestEntropyEstimators:
    def test_constant_sequence_zero_entropy(self):
        assert lz_entropy_rate([3] * 50) == 0.0
        assert empirical_entropy([3] * 50) == 0.0

    def test_alternating_sequence_low_lz_entropy(self):
        seq = [0, 1] * 100
        lz = lz_entropy_rate(seq)
        zeroth = empirical_entropy(seq)
        assert zeroth == pytest.approx(1.0)
        assert lz < 0.5  # structure detected far below frequency entropy

    def test_random_sequence_near_log2N(self, rng):
        seq = rng.integers(0, 4, size=400).tolist()
        lz = lz_entropy_rate(seq)
        assert 1.0 < lz  # well above any deterministic structure

    def test_short_inputs_degenerate(self):
        assert lz_entropy_rate([1]) == 0.0
        assert lz_entropy_rate([]) == 0.0

    def test_empirical_entropy_uniform(self):
        seq = list(range(8)) * 50
        assert empirical_entropy(seq) == pytest.approx(3.0)


class TestVectorizedBitIdentity:
    """The whole-array entropy estimators must match their scalar twins
    bit for bit — the profiler calls them per item, so the vectorized
    forms are the production path and the scalar scans the oracle."""

    def test_lz_matches_reference_random(self, rng):
        from repro.workloads.predictability import _lz_entropy_rate_reference

        for _ in range(25):
            n = int(rng.integers(2, 80))
            m = int(rng.integers(2, 7))
            seq = rng.integers(0, m, size=n)
            assert lz_entropy_rate(seq) == _lz_entropy_rate_reference(seq)

    def test_lz_matches_reference_structured(self):
        from repro.workloads.predictability import _lz_entropy_rate_reference

        cases = [
            [0, 1] * 30,
            [0, 0, 1, 1] * 20,
            list(range(10)) * 8,
            [5] * 10 + [7] * 10,
            [1, 2, 1, 2, 1, 3],
            [0, 1],
            [1, 0, 0, 0, 0, 0],
        ]
        for seq in cases:
            assert lz_entropy_rate(seq) == _lz_entropy_rate_reference(seq)

    def test_empirical_matches_reference(self, rng):
        from repro.workloads.predictability import (
            _empirical_entropy_reference,
        )

        for _ in range(25):
            n = int(rng.integers(1, 200))
            lo = int(rng.integers(-50, 0))
            hi = int(rng.integers(1, 50))
            seq = rng.integers(lo, hi, size=n)
            assert empirical_entropy(seq) == _empirical_entropy_reference(seq)

    def test_empirical_sparse_values_fall_back_to_sort(self):
        from repro.workloads.predictability import (
            _empirical_entropy_reference,
        )

        seq = [0, 10**12, 0, 10**12, 5]  # dense bincount would be absurd
        assert empirical_entropy(seq) == _empirical_entropy_reference(seq)

    def test_lz_accepts_ndarray_and_list(self):
        seq = [0, 1, 0, 1, 1, 0, 2]
        assert lz_entropy_rate(seq) == lz_entropy_rate(np.asarray(seq))


class TestMaxPredictability:
    def test_zero_entropy_fully_predictable(self):
        assert max_predictability(0.0, 5) == 1.0

    def test_uniform_entropy_floor(self):
        assert max_predictability(math.log2(6), 6) == pytest.approx(1 / 6)

    def test_monotone_decreasing_in_entropy(self):
        vals = [max_predictability(s, 8) for s in (0.5, 1.0, 2.0, 2.9)]
        assert all(a > b for a, b in zip(vals, vals[1:]))

    def test_fano_equation_satisfied(self):
        N, S = 10, 1.5
        pi = max_predictability(S, N)
        h = -pi * math.log2(pi) - (1 - pi) * math.log2(1 - pi)
        assert h + (1 - pi) * math.log2(N - 1) == pytest.approx(S, abs=1e-6)

    def test_single_symbol_alphabet(self):
        assert max_predictability(0.0, 1) == 1.0


class TestPaperPremise:
    def test_high_locality_trajectories_are_highly_predictable(self):
        # The paper's premise: mobile trajectories are ~93% predictable.
        # A high-locality Markov walker should land in that regime.
        c = Cluster.grid(3, 3)
        mm = MarkovMobility(c, locality=0.93, request_rate=2.0)
        _, servers = mm.user_stream(duration=250.0, start_server=4, rng=0)
        S = lz_entropy_rate(servers.tolist())
        pi = max_predictability(S, c.num_servers)
        assert pi > 0.85

    def test_uniform_hopping_is_unpredictable(self, rng):
        servers = rng.integers(0, 9, size=400).tolist()
        S = lz_entropy_rate(servers)
        pi = max_predictability(S, 9)
        assert pi < 0.6
