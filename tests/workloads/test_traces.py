"""Trace writing / reading / mining tests."""

import io

import pytest

from repro import InvalidInstanceError
from repro.workloads import TraceRecord, mine_instance, read_trace, write_trace


def sample_records():
    return [
        TraceRecord(0.5, 1, user=7, item="A"),
        TraceRecord(0.8, 2, user=7, item="A"),
        TraceRecord(0.9, 0, user=3, item="B"),
        TraceRecord(1.4, 0, user=3, item="A"),
    ]


class TestRoundTrip:
    def test_file_roundtrip(self, tmp_path):
        path = tmp_path / "trace.csv"
        write_trace(sample_records(), path)
        back = read_trace(path)
        assert back == sample_records()

    def test_stream_roundtrip(self):
        buf = io.StringIO()
        write_trace(sample_records(), buf)
        buf.seek(0)
        assert read_trace(buf) == sample_records()

    def test_times_survive_exactly(self, tmp_path):
        recs = [TraceRecord(0.1 + 0.2, 0)]  # classic float artefact
        path = tmp_path / "t.csv"
        write_trace(recs, path)
        assert read_trace(path)[0].time == 0.1 + 0.2


class TestReadValidation:
    def test_missing_header(self):
        with pytest.raises(InvalidInstanceError, match="header"):
            read_trace(io.StringIO("0.5,1\n"))

    def test_missing_server_column(self):
        with pytest.raises(InvalidInstanceError, match="server"):
            read_trace(io.StringIO("time,user\n0.5,1\n"))

    def test_bad_line_reported_with_number(self):
        data = "time,server\n0.5,1\nnot-a-number,2\n"
        with pytest.raises(InvalidInstanceError, match="line 3"):
            read_trace(io.StringIO(data))

    def test_optional_columns_defaulted(self):
        recs = read_trace(io.StringIO("time,server\n1.5,2\n"))
        assert recs[0].user == -1 and recs[0].item == ""


class TestMining:
    def test_mine_selects_item(self):
        inst = mine_instance(sample_records(), item="A", num_servers=3)
        assert inst.n == 3
        assert list(inst.srv[1:]) == [1, 2, 0]

    def test_mine_all_rows_when_item_none(self):
        inst = mine_instance(sample_records(), num_servers=3)
        assert inst.n == 4

    def test_mine_empty_selection_rejected(self):
        with pytest.raises(InvalidInstanceError, match="no rows"):
            mine_instance(sample_records(), item="C")

    def test_mine_sorts_and_dedups_clock_skew(self):
        recs = [
            TraceRecord(2.0, 0),
            TraceRecord(1.0, 1),
            TraceRecord(1.0, 2),  # duplicate stamp from another shard
        ]
        inst = mine_instance(recs, num_servers=3)
        assert inst.n == 3
        assert list(inst.srv[1:]) == [1, 2, 0]

    def test_mine_from_path(self, tmp_path):
        path = tmp_path / "trace.csv"
        write_trace(sample_records(), path)
        inst = mine_instance(path, item="A")
        assert inst.n == 3

    def test_mine_handles_nonpositive_first_time(self):
        recs = [TraceRecord(-3.0, 1), TraceRecord(1.0, 0)]
        inst = mine_instance(recs, num_servers=2)
        assert inst.t[0] < -3.0
