"""Diurnal workload generator tests."""

import numpy as np
import pytest

from repro.workloads import diurnal_instance, diurnal_rate


class TestDiurnalRate:
    def test_mean_is_base_rate(self):
        t = np.linspace(0, 24, 1000)
        assert diurnal_rate(t, base_rate=2.0).mean() == pytest.approx(2.0, rel=0.01)

    def test_peak_and_trough(self):
        assert diurnal_rate(6.0, base_rate=1.0, amplitude=0.8) == pytest.approx(1.8)
        assert diurnal_rate(18.0, base_rate=1.0, amplitude=0.8) == pytest.approx(
            0.2, abs=1e-9
        )

    def test_phase_shifts_peak(self):
        assert diurnal_rate(0.0, phase=6.0) == pytest.approx(
            diurnal_rate(6.0, phase=0.0)
        )

    def test_parameters_validated(self):
        with pytest.raises(ValueError):
            diurnal_rate(0.0, base_rate=0.0)
        with pytest.raises(ValueError):
            diurnal_rate(0.0, amplitude=1.5)
        with pytest.raises(ValueError):
            diurnal_rate(0.0, period=0.0)


class TestDiurnalInstance:
    def test_generates_valid_instance(self):
        inst = diurnal_instance(96.0, 6, base_rate=2.0, rng=0)
        assert inst.num_servers == 6
        assert inst.n > 50
        assert np.all(np.diff(inst.t) > 0)

    def test_day_concentration(self):
        # Requests should pile into the high-rate half of each cycle.
        inst = diurnal_instance(240.0, 4, base_rate=2.0, amplitude=1.0, rng=1)
        phase = np.sin(2 * np.pi * inst.t[1:] / 24.0)
        assert np.mean(phase > 0) > 0.7

    def test_commuter_split(self):
        inst = diurnal_instance(
            240.0,
            6,
            base_rate=2.0,
            day_servers=[0, 1, 2],
            night_servers=[3, 4, 5],
            rng=2,
        )
        phase = np.sin(2 * np.pi * inst.t[1:] / 24.0)
        day_mask = phase >= 0
        assert np.all(inst.srv[1:][day_mask] <= 2)
        assert np.all(inst.srv[1:][~day_mask] >= 3)

    def test_split_requires_both_sides(self):
        with pytest.raises(ValueError, match="both"):
            diurnal_instance(24.0, 4, day_servers=[0, 1], rng=3)

    def test_empty_sides_rejected(self):
        with pytest.raises(ValueError, match="non-empty"):
            diurnal_instance(
                24.0, 4, day_servers=[], night_servers=[1], rng=4
            )

    def test_deterministic(self):
        a = diurnal_instance(48.0, 4, rng=5)
        b = diurnal_instance(48.0, 4, rng=5)
        assert a == b

    def test_duration_validated(self):
        with pytest.raises(ValueError):
            diurnal_instance(0.0, 4)
