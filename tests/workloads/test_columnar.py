"""Columnar trace container tests: round-trips, laziness, bit-identity.

The load-bearing property (hypothesis-driven below): for *any* record
list, ``CSV -> convert_csv -> columnar -> mine`` produces exactly the
same :class:`ProblemInstance` as mining the CSV directly — same floats,
same de-dup nudges, same sort tie-breaking, same arrays bit for bit.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import InvalidInstanceError, MultiItemInstance
from repro.workloads import (
    ColumnarTrace,
    TraceRecord,
    convert_csv,
    is_columnar,
    mine_instance,
    mine_instance_columnar,
    read_columnar,
    read_trace,
    write_columnar,
    write_trace,
)

_SETTINGS = dict(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def sample_records():
    return [
        TraceRecord(0.5, 1, user=7, item="A"),
        TraceRecord(0.8, 2, user=7, item="A"),
        TraceRecord(0.9, 0, user=3, item="B"),
        TraceRecord(1.4, 0, user=3, item="A"),
        TraceRecord(1.4, 2, user=-1, item=""),
    ]


@st.composite
def record_lists(draw):
    """Adversarial logs: ties, out-of-order stamps, odd item names."""
    n = draw(st.integers(min_value=1, max_value=30))
    base_times = draw(
        st.lists(
            st.floats(
                min_value=-100.0,
                max_value=1e6,
                allow_nan=False,
                allow_infinity=False,
            ),
            min_size=n,
            max_size=n,
        )
    )
    items = st.sampled_from(["", "A", "B", "name,with \"quotes\"", "日本"])
    return [
        TraceRecord(
            time=base_times[i],
            server=draw(st.integers(min_value=0, max_value=4)),
            user=draw(st.integers(min_value=-1, max_value=9)),
            item=draw(items),
        )
        for i in range(n)
    ]


class TestRoundTrip:
    def test_file_roundtrip(self, tmp_path):
        path = tmp_path / "t.col"
        write_columnar(sample_records(), path)
        assert is_columnar(path)
        assert read_columnar(path).to_records() == sample_records()

    def test_from_records_interns_first_appearance(self):
        ct = ColumnarTrace.from_records(sample_records())
        assert ct.item_table == ("A", "B", "")
        assert list(ct.item_ids) == [0, 0, 1, 0, 2]
        assert ct.items_in_order() == ["A", "B", ""]

    def test_times_survive_exactly(self, tmp_path):
        recs = [TraceRecord(0.1 + 0.2, 0)]  # classic float artefact
        path = tmp_path / "t.col"
        write_columnar(recs, path)
        assert read_columnar(path).to_records()[0].time == 0.1 + 0.2

    def test_length_mismatch_rejected(self):
        with pytest.raises(InvalidInstanceError, match="length"):
            ColumnarTrace([0.5], [1, 2], [0, 0], [0, 0], [""])


class TestLazyReader:
    def test_open_reads_only_header(self, tmp_path):
        path = tmp_path / "t.col"
        write_columnar(sample_records(), path)
        ct = read_columnar(path)
        assert ct._columns == {}  # nothing mapped yet
        assert ct.rows == len(sample_records())
        _ = ct.times
        assert set(ct._columns) == {"time"}  # only the touched column
        assert isinstance(ct._columns["time"], np.memmap)

    def test_bad_magic_rejected(self, tmp_path):
        path = tmp_path / "t.csv"
        write_trace(sample_records(), path)
        with pytest.raises(InvalidInstanceError, match="bad magic"):
            ColumnarTrace.open(path)

    def test_corrupt_header_rejected(self, tmp_path):
        path = tmp_path / "t.col"
        write_columnar(sample_records(), path)
        raw = bytearray(path.read_bytes())
        raw[20] = 0xFF  # stomp inside the JSON header
        path.write_bytes(bytes(raw))
        with pytest.raises(InvalidInstanceError, match="corrupt"):
            ColumnarTrace.open(path)


class TestConverter:
    def test_convert_matches_from_records(self, tmp_path):
        csv_path, col_path = tmp_path / "t.csv", tmp_path / "t.col"
        write_trace(sample_records(), csv_path)
        rows = convert_csv(csv_path, col_path)
        assert rows == len(sample_records())
        assert read_columnar(col_path).to_records() == sample_records()

    def test_tiny_chunks_equal_one_shot(self, tmp_path):
        recs = [
            TraceRecord(float(i) / 7, i % 3, item=f"it-{i % 5}")
            for i in range(101)
        ]
        csv_path = tmp_path / "t.csv"
        write_trace(recs, csv_path)
        convert_csv(csv_path, tmp_path / "a.col", chunk_rows=1)
        convert_csv(csv_path, tmp_path / "b.col", chunk_rows=1 << 16)
        assert (tmp_path / "a.col").read_bytes() == (
            tmp_path / "b.col"
        ).read_bytes()

    def test_no_spill_files_left(self, tmp_path):
        csv_path = tmp_path / "t.csv"
        write_trace(sample_records(), csv_path)
        convert_csv(csv_path, tmp_path / "t.col")
        assert not list(tmp_path.glob("*.spill"))

    def test_bad_line_reported_and_spills_cleaned(self, tmp_path):
        csv_path = tmp_path / "t.csv"
        csv_path.write_text("time,server\n1.0,0\nnope,1\n")
        with pytest.raises(InvalidInstanceError, match="bad trace line 3"):
            convert_csv(csv_path, tmp_path / "t.col")
        assert not list(tmp_path.glob("*.spill"))

    def test_missing_header_rejected(self, tmp_path):
        csv_path = tmp_path / "t.csv"
        csv_path.write_text("a,b\n1,2\n")
        with pytest.raises(InvalidInstanceError, match="header"):
            convert_csv(csv_path, tmp_path / "t.col")

    def test_bad_chunk_rows(self, tmp_path):
        with pytest.raises(ValueError, match="chunk_rows"):
            convert_csv(tmp_path / "t.csv", tmp_path / "t.col", chunk_rows=0)


class TestMiningIdentity:
    def test_item_filter_and_errors(self, tmp_path):
        path = tmp_path / "t.col"
        write_columnar(sample_records(), path)
        inst = mine_instance_columnar(path, item="A", num_servers=3)
        assert inst.n == 3
        with pytest.raises(InvalidInstanceError, match="no rows for item"):
            mine_instance_columnar(path, item="missing")

    @given(recs=record_lists())
    @settings(**_SETTINGS)
    def test_csv_and_columnar_mining_bit_identical(self, recs, tmp_path_factory):
        """CSV -> convert -> columnar mine == direct CSV mine, exactly."""
        tmp = tmp_path_factory.mktemp("prop")
        csv_path, col_path = tmp / "t.csv", tmp / "t.col"
        write_trace(recs, csv_path)
        convert_csv(csv_path, col_path, chunk_rows=7)
        for item in {None} | {r.item for r in recs}:
            a = mine_instance(csv_path, item=item, num_servers=5)
            b = mine_instance_columnar(col_path, item=item, num_servers=5)
            assert a == b  # covers t/srv/cost/origin equality
            for fa, fb in zip(
                (a.t, a.srv, a.p, a.sigma, a.b, a.B),
                (b.t, b.srv, b.p, b.sigma, b.b, b.B),
            ):
                assert fa.tobytes() == fb.tobytes()

    @given(recs=record_lists())
    @settings(**_SETTINGS)
    def test_service_construction_bit_identical(self, recs, tmp_path_factory):
        tmp = tmp_path_factory.mktemp("svc")
        csv_path, col_path = tmp / "t.csv", tmp / "t.col"
        write_trace(recs, csv_path)
        convert_csv(csv_path, col_path)
        sa = MultiItemInstance.from_records(read_trace(csv_path))
        sb = MultiItemInstance.from_columnar(col_path)
        assert list(sa.items) == list(sb.items)
        for k in sa.items:
            assert sa.items[k] == sb.items[k]
            assert sa.items[k].t.tobytes() == sb.items[k].t.tobytes()


class TestCloseLifecycle:
    def test_close_releases_and_raises(self, tmp_path):
        path = tmp_path / "t.col"
        write_columnar(sample_records(), path)
        trace = read_columnar(path)
        assert trace.times.shape[0] == len(sample_records())  # map a column
        trace.close()
        assert trace.closed
        for attr in ("times", "servers", "users", "item_ids"):
            with pytest.raises(ValueError, match="closed ColumnarTrace"):
                getattr(trace, attr)
        with pytest.raises(ValueError, match="closed ColumnarTrace"):
            trace.to_records()

    def test_close_is_idempotent(self, tmp_path):
        path = tmp_path / "t.col"
        write_columnar(sample_records(), path)
        trace = read_columnar(path)
        trace.close()
        trace.close()
        assert trace.closed

    def test_context_manager_closes(self, tmp_path):
        path = tmp_path / "t.col"
        write_columnar(sample_records(), path)
        with read_columnar(path) as trace:
            assert not trace.closed
            assert trace.rows == len(sample_records())
        assert trace.closed
        with pytest.raises(ValueError, match="closed ColumnarTrace"):
            trace.times

    def test_context_manager_propagates_exceptions(self, tmp_path):
        path = tmp_path / "t.col"
        write_columnar(sample_records(), path)
        with pytest.raises(RuntimeError, match="boom"):
            with read_columnar(path) as trace:
                raise RuntimeError("boom")
        assert trace.closed

    def test_in_memory_trace_closes_too(self):
        trace = ColumnarTrace.from_records(sample_records())
        with trace:
            assert trace.rows == len(sample_records())
        with pytest.raises(ValueError, match="closed ColumnarTrace"):
            trace.item_ids

    def test_rows_and_metadata_survive_close(self, tmp_path):
        path = tmp_path / "t.col"
        write_columnar(sample_records(), path)
        trace = read_columnar(path)
        trace.close()
        assert trace.rows == len(sample_records())
        assert trace.item_table  # header metadata stays readable


class TestConverterFailureCleanup:
    def test_mid_conversion_failure_leaves_nothing(self, tmp_path):
        """A parse failure after spill flushes leaves no spills, no
        partial container, and no temp file behind."""
        csv_path = tmp_path / "t.csv"
        lines = ["time,server"]
        lines += [f"{i / 10}, {i % 3}" for i in range(10)]
        lines.append("broken,xx")
        csv_path.write_text("\n".join(lines) + "\n")
        dest = tmp_path / "t.col"
        with pytest.raises(InvalidInstanceError, match="bad trace line 12"):
            convert_csv(csv_path, dest, chunk_rows=2)  # several flushes first
        assert not list(tmp_path.glob("*.spill"))
        assert not list(tmp_path.glob("*.tmp"))
        assert not dest.exists()

    def test_failure_does_not_clobber_existing_dest(self, tmp_path):
        """Re-converting onto an existing container atomically: a failed
        run must leave the old container untouched."""
        csv_path = tmp_path / "t.csv"
        write_trace(sample_records(), csv_path)
        dest = tmp_path / "t.col"
        convert_csv(csv_path, dest)
        good = dest.read_bytes()
        bad_csv = tmp_path / "bad.csv"
        bad_csv.write_text("time,server\n1.0,0\nnope,1\n")
        with pytest.raises(InvalidInstanceError):
            convert_csv(bad_csv, dest)
        assert dest.read_bytes() == good
        assert not list(tmp_path.glob("*.spill"))
        assert not list(tmp_path.glob("*.tmp"))

    def test_unreadable_source_leaves_nothing(self, tmp_path):
        with pytest.raises(OSError):
            convert_csv(tmp_path / "missing.csv", tmp_path / "t.col")
        assert not list(tmp_path.glob("*"))
