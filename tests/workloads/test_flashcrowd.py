"""Flash-crowd workload tests."""

import numpy as np
import pytest

from repro import solve_offline
from repro.online import SpeculativeCaching
from repro.workloads import flash_crowd_instance


class TestGeneration:
    def test_shape_and_ordering(self):
        inst = flash_crowd_instance(200, 5, rng=0)
        assert inst.n == 200 and inst.num_servers == 5
        assert np.all(np.diff(inst.t) > 0)

    def test_hotspot_concentration(self):
        inst = flash_crowd_instance(400, 6, dwell=50.0, leak=0.05, rng=1)
        counts = np.bincount(inst.srv[1:], minlength=6)
        # With long dwells and low leak, the top servers dominate.
        assert counts.max() / inst.n > 0.3

    def test_zero_leak_pure_hotspots(self):
        inst = flash_crowd_instance(300, 4, leak=0.0, dwell=5.0, rng=2)
        # Runs of identical servers with occasional jumps.
        changes = int((inst.srv[2:] != inst.srv[1:-1]).sum())
        assert changes < inst.n * 0.5

    def test_deterministic(self):
        a = flash_crowd_instance(100, 4, rng=3)
        b = flash_crowd_instance(100, 4, rng=3)
        assert a == b

    def test_parameters_validated(self):
        with pytest.raises(ValueError):
            flash_crowd_instance(10, 1)
        with pytest.raises(ValueError):
            flash_crowd_instance(10, 3, leak=1.0)
        with pytest.raises(ValueError):
            flash_crowd_instance(10, 3, dwell=0.0)


class TestPolicyBehaviour:
    def test_sc_within_bound(self):
        for seed in range(5):
            inst = flash_crowd_instance(150, 5, rng=seed)
            opt = solve_offline(inst).optimal_cost
            assert SpeculativeCaching().run(inst).cost <= 3 * opt + 1e-6

    def test_optimal_parks_at_hotspots(self):
        inst = flash_crowd_instance(200, 4, dwell=30.0, leak=0.05, rng=7)
        sched = solve_offline(inst).schedule()
        # Parked copies mean long intervals: mean merged-interval length
        # far exceeds the mean request gap.
        durations = [iv.duration for iv in sched.canonical().intervals]
        assert np.mean(durations) > 3 * np.mean(np.diff(inst.t))
