"""Workload profiler tests: counts, histograms, burstiness, predictability.

The structural guarantee under test: one memmap-native sweep, never a
``TraceRecord`` materialisation, and per-item statistics that match
their brute-force definitions.
"""

import json
import math

import numpy as np
import pytest

from repro import InvalidInstanceError
from repro.workloads import (
    ColumnarTrace,
    TraceRecord,
    WorkloadStats,
    profile_trace,
    write_columnar,
    zipf_weights,
)


def make_trace(rows=5000, items=50, m=6, seed=0):
    rng = np.random.default_rng(seed)
    ids = rng.choice(items, size=rows, p=zipf_weights(items, 1.0))
    return ColumnarTrace(
        np.cumsum(rng.exponential(0.01, size=rows)),
        rng.integers(0, m, size=rows),
        np.full(rows, -1),
        ids,
        tuple(f"item-{k:03d}" for k in range(items)),
    )


class TestCountsAndShape:
    def test_counts_match_bincount(self):
        trace = make_trace()
        stats = profile_trace(trace)
        np.testing.assert_array_equal(
            stats.item_counts,
            np.bincount(np.asarray(trace.item_ids), minlength=50),
        )
        np.testing.assert_array_equal(
            stats.server_counts, np.bincount(np.asarray(trace.servers))
        )
        assert stats.rows == trace.rows
        assert stats.num_items == 50
        assert stats.num_servers == 6

    def test_time_range(self):
        trace = make_trace()
        t = np.asarray(trace.times)
        stats = profile_trace(trace)
        assert stats.t_start == float(t.min())
        assert stats.t_end == float(t.max())
        assert stats.duration == pytest.approx(float(t.max() - t.min()))

    def test_chunked_sweep_matches_one_shot(self, tmp_path):
        trace = make_trace(rows=1000, items=20)
        path = tmp_path / "t.col"
        trace.save(path)
        a = profile_trace(trace, chunk_rows=64)
        b = profile_trace(path)
        np.testing.assert_array_equal(a.item_counts, b.item_counts)
        np.testing.assert_array_equal(
            a.interarrival_hist, b.interarrival_hist
        )
        assert a.interarrival_mean == b.interarrival_mean
        assert a.zipf_exponent == b.zipf_exponent

    def test_empty_trace_rejected(self):
        empty = ColumnarTrace(
            np.empty(0), np.empty(0, "<i4"), np.empty(0, "<i4"),
            np.empty(0, "<i4"), (),
        )
        with pytest.raises(InvalidInstanceError, match="empty"):
            profile_trace(empty)


class TestInterarrivals:
    def test_hist_counts_every_same_item_gap(self):
        trace = make_trace()
        stats = profile_trace(trace)
        ids = np.asarray(trace.item_ids)
        present = np.unique(ids).size
        assert int(stats.interarrival_hist.sum()) == trace.rows - present

    def test_mean_matches_bruteforce(self):
        trace = make_trace(rows=800, items=10)
        stats = profile_trace(trace)
        t = np.asarray(trace.times)
        ids = np.asarray(trace.item_ids)
        gaps = []
        for i in np.unique(ids):
            ti = np.sort(t[ids == i])
            gaps.extend(np.diff(ti))
        assert stats.interarrival_mean == pytest.approx(np.mean(gaps))

    def test_single_request_items_no_gaps(self):
        recs = [TraceRecord(float(i), 0, item=f"it{i}") for i in range(5)]
        stats = profile_trace(ColumnarTrace.from_records(recs))
        assert int(stats.interarrival_hist.sum()) == 0
        assert math.isnan(stats.interarrival_mean)


class TestBurstiness:
    def test_periodic_item_near_minus_one(self):
        recs = [TraceRecord(float(i), 0, item="tick") for i in range(200)]
        stats = profile_trace(ColumnarTrace.from_records(recs))
        assert stats.burstiness[0] == pytest.approx(-1.0, abs=1e-9)

    def test_poisson_near_zero(self):
        rng = np.random.default_rng(0)
        times = np.cumsum(rng.exponential(1.0, size=4000))
        trace = ColumnarTrace(
            times,
            np.zeros(4000, "<i4"),
            np.full(4000, -1, "<i4"),
            np.zeros(4000, "<i4"),
            ("only",),
        )
        stats = profile_trace(trace)
        assert abs(stats.burstiness[0]) < 0.1

    def test_undefined_for_sparse_items(self):
        recs = [
            TraceRecord(0.0, 0, item="once"),
            TraceRecord(1.0, 0, item="twice"),
            TraceRecord(2.0, 0, item="twice"),
        ]
        stats = profile_trace(ColumnarTrace.from_records(recs))
        by = dict(zip(stats.item_table, stats.burstiness))
        assert math.isnan(by["once"])  # no gaps at all
        assert math.isnan(by["twice"])  # one gap: no variance estimate


class TestPopularity:
    def test_zipf_exponent_recovered(self):
        stats = profile_trace(make_trace(rows=20000, items=100))
        assert 0.7 < stats.zipf_exponent < 1.3

    def test_top_shares(self):
        trace = make_trace()
        stats = profile_trace(trace)
        counts = np.sort(np.bincount(np.asarray(trace.item_ids)))[::-1]
        assert stats.top1_share == pytest.approx(counts[0] / counts.sum())
        assert stats.top10_share == pytest.approx(
            counts[:10].sum() / counts.sum()
        )
        assert stats.top1_share <= stats.top10_share <= 1.0

    def test_top_items_sorted_by_count(self):
        stats = profile_trace(make_trace(), top_items=8)
        reqs = [it.requests for it in stats.top_items]
        assert reqs == sorted(reqs, reverse=True)
        assert len(stats.top_items) == 8


class TestPredictabilityHookup:
    def test_constant_server_fully_predictable(self):
        recs = [TraceRecord(float(i), 2, item="loyal") for i in range(100)]
        recs += [TraceRecord(float(i) + 0.5, i % 4, item="other") for i in range(100)]
        stats = profile_trace(
            ColumnarTrace.from_records(recs), predictability_items=2
        )
        by = {it.name: it for it in stats.top_items}
        assert by["loyal"].entropy_rate == 0.0
        assert by["loyal"].max_predictability == 1.0
        assert by["other"].max_predictability < 1.0

    def test_only_requested_items_profiled(self):
        stats = profile_trace(make_trace(), predictability_items=3, top_items=6)
        profiled = [
            it for it in stats.top_items if it.max_predictability is not None
        ]
        assert len(profiled) == 3
        assert not math.isnan(stats.mean_max_predictability)

    def test_cap_limits_sequence_length(self):
        # A cap far below the item's request count must still work.
        stats = profile_trace(
            make_trace(rows=3000, items=5),
            predictability_items=2,
            predictability_cap=50,
        )
        assert stats.top_items[0].entropy_rate is not None


class TestNoRecordMaterialisation:
    def test_to_records_never_called(self, monkeypatch):
        def boom(self):
            raise AssertionError("profiler must not materialise records")

        monkeypatch.setattr(ColumnarTrace, "to_records", boom)
        stats = profile_trace(make_trace(rows=500, items=10))
        assert stats.rows == 500

    def test_trace_record_never_constructed(self, monkeypatch):
        import repro.workloads.profiler as profiler_mod

        assert not hasattr(profiler_mod, "TraceRecord")


class TestSerialisation:
    def test_to_dict_json_safe(self):
        stats = profile_trace(make_trace())
        payload = json.dumps(stats.to_dict())
        back = json.loads(payload)
        assert back["rows"] == stats.rows
        assert len(back["interarrival"]["hist"]) == 48

    def test_nan_becomes_null(self):
        recs = [TraceRecord(float(i), 0, item=f"it{i}") for i in range(4)]
        stats = profile_trace(ColumnarTrace.from_records(recs))
        back = json.loads(json.dumps(stats.to_dict()))
        assert back["interarrival"]["mean"] is None

    def test_describe_renders(self):
        text = profile_trace(make_trace()).describe(top=5)
        assert "zipf_exponent" in text
        assert "item-0" in text

    def test_path_input(self, tmp_path):
        path = tmp_path / "t.col"
        write_columnar(
            [TraceRecord(float(i), i % 2, item="x") for i in range(10)], path
        )
        stats = profile_trace(path)
        assert isinstance(stats, WorkloadStats)
        assert stats.rows == 10

    def test_closed_trace_rejected(self, tmp_path):
        path = tmp_path / "t.col"
        make_trace(rows=100, items=5).save(path)
        trace = ColumnarTrace.open(path)
        trace.close()
        with pytest.raises(ValueError, match="closed"):
            profile_trace(trace)
