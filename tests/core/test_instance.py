"""Unit tests for ProblemInstance and its O(mn) pre-scan."""

import math

import numpy as np
import pytest
from hypothesis import given, settings

from repro import CostModel, ProblemInstance, Request
from repro.core.instance import PivotLookup, _check_boundary_consistency

from ..conftest import instances, make_instance


class TestConstruction:
    def test_boundary_request_prepended(self):
        inst = make_instance([1.0, 2.0], [1, 0], m=2)
        assert inst.n == 2
        assert inst.t[0] == 0.0 and inst.srv[0] == 0

    def test_accepts_request_objects(self):
        inst = ProblemInstance([Request(1.0, 1), Request(2.0, 0)], num_servers=2)
        assert inst.n == 2

    def test_accepts_tuples(self):
        inst = ProblemInstance([(1.0, 1)], num_servers=2)
        assert inst.srv[1] == 1

    def test_num_servers_inferred(self):
        inst = ProblemInstance([(1.0, 4)])
        assert inst.num_servers == 5

    def test_nonincreasing_times_rejected(self):
        with pytest.raises(Exception, match="strictly increasing"):
            make_instance([1.0, 1.0], [0, 1], m=2)

    def test_time_before_start_rejected(self):
        with pytest.raises(Exception, match="strictly increasing"):
            make_instance([-1.0, 2.0], [0, 1], m=2)

    def test_custom_start_time(self):
        inst = ProblemInstance([(1.0, 0)], num_servers=1, start_time=-5.0)
        assert inst.t[0] == -5.0

    def test_server_out_of_range_rejected(self):
        with pytest.raises(Exception, match="server ids"):
            make_instance([1.0], [3], m=2)

    def test_bad_origin_rejected(self):
        with pytest.raises(Exception, match="server ids|origin"):
            ProblemInstance([(1.0, 0)], num_servers=2, origin=5)

    def test_zero_servers_rejected(self):
        with pytest.raises(Exception):
            ProblemInstance([], num_servers=0)

    def test_empty_sequence_allowed(self):
        inst = ProblemInstance([], num_servers=3)
        assert inst.n == 0 and inst.horizon == 0.0

    def test_from_arrays_shape_mismatch(self):
        with pytest.raises(Exception, match="equal length"):
            ProblemInstance.from_arrays([1.0, 2.0], [0])

    def test_arrays_are_frozen(self):
        inst = make_instance([1.0], [0], m=1)
        with pytest.raises(ValueError):
            inst.t[0] = 99.0


class TestPreScan:
    def test_p_of_first_request_on_new_server(self):
        inst = make_instance([1.0, 2.0], [1, 1], m=2)
        assert inst.p[1] == -1  # dummy r_{-j}
        assert inst.p[2] == 1

    def test_p_links_to_origin_boundary(self):
        inst = make_instance([1.0], [0], m=1)
        assert inst.p[1] == 0  # r_0 is a request on the origin

    def test_sigma(self):
        inst = make_instance([1.0, 3.0], [0, 0], m=1)
        assert inst.sigma[1] == 1.0
        assert inst.sigma[2] == 2.0

    def test_sigma_infinite_for_fresh_server(self):
        inst = make_instance([1.0], [1], m=2)
        assert math.isinf(inst.sigma[1])

    def test_marginal_bounds_match_definition(self, fig6):
        mu, lam = fig6.cost.mu, fig6.cost.lam
        for i in range(1, fig6.n + 1):
            assert fig6.b[i] == pytest.approx(min(lam, mu * fig6.sigma[i]))

    def test_running_bound_is_cumsum(self, fig6):
        assert np.allclose(fig6.B, np.cumsum(fig6.b))

    def test_fig6_prescan_values(self, fig6):
        assert list(fig6.b.round(4)) == [0.0, 1.0, 1.0, 1.0, 1.0, 1.0, 0.6, 1.0]
        assert list(fig6.B.round(4)) == [0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 5.6, 6.6]

    def test_boundary_consistency_helper(self, fig6):
        _check_boundary_consistency(fig6)

    def test_requests_property_roundtrip(self, fig6):
        reqs = fig6.requests
        rebuilt = ProblemInstance(
            reqs, num_servers=fig6.num_servers, cost=fig6.cost, origin=fig6.origin
        )
        assert rebuilt == fig6

    def test_delta_t(self, fig6):
        assert fig6.delta_t(1, 2) == pytest.approx(0.3)

    def test_slice_requests(self, fig6):
        part = fig6.slice_requests(2, 4)
        assert [r.server for r in part] == [2, 3, 0]

    def test_len(self, fig6):
        assert len(fig6) == 7

    def test_repr_mentions_shape(self, fig6):
        assert "n=7" in repr(fig6) and "m=4" in repr(fig6)


class TestPivotLookup:
    def brute_cover_set(self, inst, i):
        q = int(inst.p[i])
        if q < 0:
            return []
        return sorted(k for k in range(0, i) if inst.p[k] < q <= k)

    @pytest.mark.parametrize("mode", ["matrix", "bisect"])
    def test_cover_set_matches_bruteforce(self, mode, rng):
        for _ in range(30):
            m = int(rng.integers(1, 6))
            n = int(rng.integers(1, 25))
            t = np.cumsum(rng.uniform(0.05, 2.0, size=n))
            srv = rng.integers(0, m, size=n)
            inst = ProblemInstance.from_arrays(
                t, srv, num_servers=m, pivot_mode=mode
            )
            for i in range(1, n + 1):
                assert sorted(inst.cover_set(i)) == self.brute_cover_set(inst, i)

    def test_modes_agree(self, rng):
        t = np.cumsum(rng.uniform(0.05, 2.0, size=40))
        srv = rng.integers(0, 4, size=40)
        a = ProblemInstance.from_arrays(t, srv, num_servers=4, pivot_mode="matrix")
        b = ProblemInstance.from_arrays(t, srv, num_servers=4, pivot_mode="bisect")
        for i in range(1, 41):
            assert sorted(a.cover_set(i)) == sorted(b.cover_set(i))

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="unknown pivot"):
            PivotLookup(np.array([0, 1]), 2, mode="nope")

    def test_requests_on(self, fig6):
        assert list(fig6.requests_on(1)) == [1, 5, 6]
        assert list(fig6.requests_on(0)) == [0, 4]

    def test_first_at_or_after(self, fig6):
        lk = PivotLookup(fig6.srv, fig6.num_servers, mode="matrix")
        assert lk.first_at_or_after(1, 2) == 5
        assert lk.first_at_or_after(3, 4) == -1

    def test_fig6_pivot_for_r7_includes_kappa4(self, fig6):
        # The paper's worked D(7): pivots include κ=4 (interval [0,1.4] on
        # s^1) and κ=5 (interval [0.5,2.6] on s^2).
        assert set(fig6.cover_set(7)) >= {4, 5}


class TestEqualityHash:
    def test_equal_instances(self):
        a = make_instance([1.0, 2.0], [0, 1], m=2)
        b = make_instance([1.0, 2.0], [0, 1], m=2)
        assert a == b and hash(a) == hash(b)

    def test_different_costs_not_equal(self):
        a = make_instance([1.0], [0], m=1, mu=1.0)
        b = make_instance([1.0], [0], m=1, mu=2.0)
        assert a != b

    def test_not_equal_to_other_types(self):
        assert make_instance([1.0], [0], m=1) != 42


class TestPropertyBased:
    @given(instances())
    @settings(max_examples=60, deadline=None)
    def test_prescan_invariants(self, inst):
        assert inst.b[0] == 0.0
        assert np.all(inst.b[1:] <= inst.cost.lam + 1e-12)
        assert np.all(np.diff(inst.B) >= -1e-12)
        # p is strictly decreasing chain per server and self-consistent.
        for i in range(1, inst.n + 1):
            q = int(inst.p[i])
            if q >= 0:
                assert inst.srv[q] == inst.srv[i]
                assert q < i

    @given(instances())
    @settings(max_examples=40, deadline=None)
    def test_cover_set_bounded_by_m(self, inst):
        for i in range(1, inst.n + 1):
            ks = inst.cover_set(i)
            assert len(ks) <= inst.num_servers
            assert len(set(ks)) == len(ks)
