"""Unit tests for the core value types."""

import math

import pytest

from repro.core.types import (
    CacheInterval,
    CostModel,
    InvalidInstanceError,
    InvalidScheduleError,
    Request,
    Transfer,
    iter_pairs,
    sort_requests,
)


class TestRequest:
    def test_fields(self):
        r = Request(1.5, 3)
        assert r.time == 1.5
        assert r.server == 3

    def test_ordering_is_by_time(self):
        assert Request(1.0, 5) < Request(2.0, 0)

    def test_as_tuple(self):
        assert Request(0.25, 2).as_tuple() == (0.25, 2)

    def test_negative_server_rejected(self):
        with pytest.raises(InvalidInstanceError):
            Request(1.0, -1)

    def test_nonfinite_time_rejected(self):
        with pytest.raises(InvalidInstanceError):
            Request(math.inf, 0)
        with pytest.raises(InvalidInstanceError):
            Request(math.nan, 0)

    def test_frozen(self):
        r = Request(1.0, 0)
        with pytest.raises(AttributeError):
            r.time = 2.0


class TestCostModel:
    def test_defaults(self):
        c = CostModel()
        assert c.mu == 1.0 and c.lam == 1.0 and math.isinf(c.beta)

    def test_speculative_window(self):
        assert CostModel(mu=2.0, lam=5.0).speculative_window == 2.5

    def test_caching_cost(self):
        assert CostModel(mu=3.0).caching_cost(2.0) == 6.0

    def test_caching_cost_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            CostModel().caching_cost(-1.0)

    def test_marginal_bound_transfer_side(self):
        assert CostModel(mu=1.0, lam=2.0).marginal_bound(5.0) == 2.0

    def test_marginal_bound_cache_side(self):
        assert CostModel(mu=1.0, lam=2.0).marginal_bound(0.5) == 0.5

    def test_marginal_bound_infinite_sigma(self):
        assert CostModel(mu=1.0, lam=2.0).marginal_bound(math.inf) == 2.0

    @pytest.mark.parametrize("mu", [0.0, -1.0, math.inf])
    def test_bad_mu_rejected(self, mu):
        with pytest.raises(ValueError):
            CostModel(mu=mu)

    @pytest.mark.parametrize("lam", [0.0, -2.0, math.inf])
    def test_bad_lam_rejected(self, lam):
        with pytest.raises(ValueError):
            CostModel(lam=lam)

    def test_bad_beta_rejected(self):
        with pytest.raises(ValueError):
            CostModel(beta=0.0)

    def test_finite_beta_allowed(self):
        assert CostModel(beta=3.0).beta == 3.0


class TestCacheInterval:
    def test_duration(self):
        assert CacheInterval(0, 1.0, 3.5).duration == 2.5

    def test_zero_length_allowed(self):
        assert CacheInterval(1, 2.0, 2.0).duration == 0.0

    def test_backwards_rejected(self):
        with pytest.raises(InvalidScheduleError):
            CacheInterval(0, 3.0, 1.0)

    def test_negative_server_rejected(self):
        with pytest.raises(InvalidScheduleError):
            CacheInterval(-2, 0.0, 1.0)

    def test_covers_closed_interval(self):
        iv = CacheInterval(0, 1.0, 2.0)
        assert iv.covers(1.0) and iv.covers(2.0) and iv.covers(1.5)
        assert not iv.covers(0.999) and not iv.covers(2.001)

    def test_overlaps_same_server(self):
        a = CacheInterval(0, 0.0, 2.0)
        assert a.overlaps(CacheInterval(0, 1.0, 3.0))
        assert a.overlaps(CacheInterval(0, 2.0, 3.0))  # touching counts
        assert not a.overlaps(CacheInterval(0, 2.5, 3.0))

    def test_overlaps_requires_same_server(self):
        assert not CacheInterval(0, 0.0, 2.0).overlaps(CacheInterval(1, 0.0, 2.0))

    def test_ordering_groups_by_server(self):
        ivs = sorted(
            [CacheInterval(1, 0.0, 1.0), CacheInterval(0, 5.0, 6.0)]
        )
        assert ivs[0].server == 0


class TestTransfer:
    def test_fields(self):
        tr = Transfer(1.0, 0, 2)
        assert (tr.time, tr.src, tr.dst) == (1.0, 0, 2)

    def test_self_transfer_rejected(self):
        with pytest.raises(InvalidScheduleError):
            Transfer(1.0, 3, 3)

    def test_negative_server_rejected(self):
        with pytest.raises(InvalidScheduleError):
            Transfer(1.0, -1, 0)

    def test_default_cost_is_lambda(self):
        assert Transfer(0.0, 0, 1).cost(CostModel(lam=2.5)) == 2.5

    def test_weighted_cost_overrides_lambda(self):
        assert Transfer(0.0, 0, 1, weight=4.0).cost(CostModel(lam=2.5)) == 4.0

    def test_ordering_by_time(self):
        assert Transfer(1.0, 0, 1) < Transfer(2.0, 1, 0)


class TestHelpers:
    def test_sort_requests(self):
        out = sort_requests([Request(2.0, 0), Request(1.0, 1)])
        assert [r.time for r in out] == [1.0, 2.0]

    def test_sort_requests_rejects_ties(self):
        with pytest.raises(InvalidInstanceError):
            sort_requests([Request(1.0, 0), Request(1.0, 1)])

    def test_iter_pairs(self):
        reqs = [Request(1.0, 0), Request(2.0, 1), Request(3.0, 0)]
        pairs = list(iter_pairs(reqs))
        assert len(pairs) == 2
        assert pairs[0] == (reqs[0], reqs[1])
