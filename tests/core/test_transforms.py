"""Instance transformation tests — each claimed invariance, enforced."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import CostModel, solve_offline
from repro.core.transforms import (
    concat,
    permute_servers,
    scale_costs,
    split_at,
    time_scale,
    time_shift,
    with_cost,
)

from ..conftest import instances, make_instance

_SETTINGS = dict(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class TestTimeShift:
    def test_requests_shifted(self, fig6):
        shifted = time_shift(fig6, 3.0)
        assert shifted.t[0] == 3.0
        assert shifted.t[-1] == pytest.approx(7.0)

    @given(instances(), st.floats(-50, 50, allow_nan=False))
    @settings(**_SETTINGS)
    def test_cost_invariant(self, inst, delta):
        assert solve_offline(time_shift(inst, delta)).optimal_cost == (
            pytest.approx(solve_offline(inst).optimal_cost, rel=1e-9, abs=1e-9)
        )


class TestTimeScale:
    def test_gaps_scaled(self, fig6):
        scaled = time_scale(fig6, 2.0)
        assert np.allclose(np.diff(scaled.t), 2.0 * np.diff(fig6.t))

    @given(instances(), st.floats(0.1, 10, allow_nan=False))
    @settings(**_SETTINGS)
    def test_invariant_with_mu_rescale(self, inst, factor):
        scaled = time_scale(inst, factor, rescale_mu=True)
        assert solve_offline(scaled).optimal_cost == pytest.approx(
            solve_offline(inst).optimal_cost, rel=1e-9, abs=1e-9
        )

    def test_nonpositive_factor_rejected(self, fig6):
        with pytest.raises(Exception):
            time_scale(fig6, 0.0)


class TestScaleCosts:
    @given(instances(), st.floats(0.1, 10, allow_nan=False))
    @settings(**_SETTINGS)
    def test_cost_scales_linearly(self, inst, factor):
        assert solve_offline(scale_costs(inst, factor)).optimal_cost == (
            pytest.approx(
                factor * solve_offline(inst).optimal_cost, rel=1e-9, abs=1e-9
            )
        )

    def test_finite_beta_scaled(self):
        inst = make_instance([1.0], [0], m=1)
        inst = with_cost(inst, CostModel(mu=1.0, lam=1.0, beta=2.0))
        assert scale_costs(inst, 3.0).cost.beta == pytest.approx(6.0)


class TestPermuteServers:
    @given(instances(max_m=5), st.randoms(use_true_random=False))
    @settings(**_SETTINGS)
    def test_cost_invariant_under_relabelling(self, inst, rnd):
        perm = list(range(inst.num_servers))
        rnd.shuffle(perm)
        permuted = permute_servers(inst, perm)
        assert solve_offline(permuted).optimal_cost == pytest.approx(
            solve_offline(inst).optimal_cost, rel=1e-9, abs=1e-9
        )

    def test_origin_mapped(self, fig6):
        permuted = permute_servers(fig6, [3, 2, 1, 0])
        assert permuted.origin == 3

    def test_invalid_permutation_rejected(self, fig6):
        with pytest.raises(Exception, match="permutation"):
            permute_servers(fig6, [0, 0, 1, 2])


class TestSplitConcat:
    def test_split_sizes(self, fig6):
        head, tail = split_at(fig6, 3)
        assert head.n == 3 and tail.n == 4

    def test_tail_reanchored_at_boundary(self, fig6):
        head, tail = split_at(fig6, 3)
        assert tail.origin == int(fig6.srv[3])
        assert tail.t[0] == pytest.approx(float(fig6.t[3]))

    def test_split_bounds_checked(self, fig6):
        with pytest.raises(Exception):
            split_at(fig6, 99)

    def test_split_costs_upper_bound_whole(self, fig6):
        # A feasible whole-sequence schedule can be assembled from the
        # two halves plus at most one bridging transfer.
        whole = solve_offline(fig6).optimal_cost
        head, tail = split_at(fig6, 4)
        parts = (
            solve_offline(head).optimal_cost + solve_offline(tail).optimal_cost
        )
        assert whole <= parts + fig6.cost.lam + 1e-9

    @given(instances(max_m=4, max_n=12), st.integers(0, 12))
    @settings(**_SETTINGS)
    def test_split_concat_roundtrip(self, inst, k):
        k = min(k, inst.n)
        head, tail = split_at(inst, k)
        glued = concat(head, tail)
        assert glued.n == inst.n
        assert np.allclose(glued.t, inst.t)
        assert np.array_equal(glued.srv, inst.srv)
        assert solve_offline(glued).optimal_cost == pytest.approx(
            solve_offline(inst).optimal_cost, rel=1e-9, abs=1e-9
        )

    @given(instances(max_m=4, max_n=12), st.integers(0, 12))
    @settings(**_SETTINGS)
    def test_split_pieces_upper_bound_whole(self, inst, k):
        # The tail's origin is the head's final request server, so the
        # two optima compose into a feasible whole-sequence schedule:
        # C(whole) <= C(head) + C(tail).
        k = min(k, inst.n)
        head, tail = split_at(inst, k)
        whole = solve_offline(inst).optimal_cost
        parts = (
            solve_offline(head).optimal_cost + solve_offline(tail).optimal_cost
        )
        assert whole <= parts + 1e-6

    def test_concat_requires_same_cost(self, fig6):
        other = with_cost(fig6, CostModel(mu=2.0))
        with pytest.raises(Exception, match="cost"):
            concat(fig6, other)


class TestWithCost:
    def test_swaps_model_only(self, fig6):
        swapped = with_cost(fig6, CostModel(mu=3.0, lam=0.5))
        assert swapped.cost.mu == 3.0
        assert np.array_equal(swapped.t, fig6.t)
