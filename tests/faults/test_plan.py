"""FaultPlan construction, normalisation and event emission."""

import pytest

from repro.faults import FaultEvent, FaultPlan, Outage


class TestOutage:
    def test_half_open_coverage(self):
        o = Outage(0, 1.0, 2.0)
        assert o.covers(1.0)
        assert o.covers(1.5)
        assert not o.covers(2.0)  # recovery instant: up again
        assert not o.covers(0.5)

    def test_rejects_negative_server(self):
        with pytest.raises(ValueError):
            Outage(-1, 0.0, 1.0)

    def test_rejects_inverted_window(self):
        with pytest.raises(ValueError):
            Outage(0, 2.0, 1.0)


class TestPlanNormalisation:
    def test_overlapping_outages_merge(self):
        plan = FaultPlan(
            outages=(Outage(0, 0.0, 2.0), Outage(0, 1.0, 3.0))
        )
        assert plan.outages == (Outage(0, 0.0, 3.0),)

    def test_touching_outages_merge(self):
        plan = FaultPlan(
            outages=(Outage(1, 0.0, 1.0), Outage(1, 1.0, 2.0))
        )
        assert plan.outages == (Outage(1, 0.0, 2.0),)

    def test_distinct_servers_stay_separate(self):
        plan = FaultPlan(
            outages=(Outage(0, 0.0, 1.0), Outage(1, 0.0, 1.0))
        )
        assert len(plan.outages) == 2

    def test_empty_flag(self):
        assert FaultPlan().empty
        assert not FaultPlan(outages=(Outage(0, 0.0, 1.0),)).empty
        assert not FaultPlan(loss_rate=0.1).empty

    def test_rejects_bad_rates(self):
        with pytest.raises(ValueError):
            FaultPlan(loss_rate=1.0)
        with pytest.raises(ValueError):
            FaultPlan(loss_rate=-0.1)
        with pytest.raises(ValueError):
            FaultPlan(slow_latency=-1.0)


class TestLiveness:
    def test_is_up(self):
        plan = FaultPlan(outages=(Outage(0, 1.0, 2.0),))
        assert plan.is_up(0, 0.5)
        assert not plan.is_up(0, 1.0)
        assert not plan.is_up(0, 1.9)
        assert plan.is_up(0, 2.0)
        assert plan.is_up(1, 1.5)


class TestEvents:
    def test_alternating_pairs_in_time_order(self):
        plan = FaultPlan(
            outages=(Outage(0, 1.0, 2.0), Outage(1, 0.5, 3.0))
        )
        evs = plan.events(0.0, 10.0)
        assert [(e.time, e.kind, e.server) for e in evs] == [
            (0.5, "crash", 1),
            (1.0, "crash", 0),
            (2.0, "recover", 0),
            (3.0, "recover", 1),
        ]

    def test_recover_sorts_before_crash_at_equal_instant(self):
        plan = FaultPlan(
            outages=(Outage(0, 0.5, 1.0), Outage(1, 1.0, 2.0))
        )
        evs = plan.events(0.0, 10.0)
        kinds_at_1 = [e.kind for e in evs if e.time == 1.0]
        assert kinds_at_1 == ["recover", "crash"]

    def test_straddling_start_clips_crash_time(self):
        plan = FaultPlan(outages=(Outage(0, -1.0, 2.0),))
        evs = plan.events(0.0, 10.0)
        assert evs[0] == FaultEvent(0.0, "crash", 0)

    def test_outage_past_end_emits_no_recovery(self):
        plan = FaultPlan(outages=(Outage(0, 1.0, 99.0),))
        evs = plan.events(0.0, 10.0)
        assert [e.kind for e in evs] == ["crash"]

    def test_outage_entirely_outside_horizon_dropped(self):
        plan = FaultPlan(outages=(Outage(0, 20.0, 30.0),))
        assert plan.events(0.0, 10.0) == []


class TestAllDownWindows:
    def test_intersection_of_all_servers(self):
        plan = FaultPlan(
            outages=(Outage(0, 0.0, 2.0), Outage(1, 1.0, 3.0))
        )
        assert plan.down_intervals_all(2, 0.0, 10.0) == [(1.0, 2.0)]

    def test_no_window_when_one_server_never_fails(self):
        plan = FaultPlan(outages=(Outage(0, 0.0, 10.0),))
        assert plan.down_intervals_all(2, 0.0, 10.0) == []


class TestGenerate:
    def test_deterministic_per_seed(self):
        a = FaultPlan.generate(7, num_servers=5, start=0.0, end=10.0)
        b = FaultPlan.generate(7, num_servers=5, start=0.0, end=10.0)
        assert a == b

    def test_different_seeds_differ(self):
        a = FaultPlan.generate(1, 5, 0.0, 10.0, crash_rate=3.0)
        b = FaultPlan.generate(2, 5, 0.0, 10.0, crash_rate=3.0)
        assert a != b

    def test_outages_clipped_to_horizon(self):
        plan = FaultPlan.generate(3, 4, 0.0, 10.0, crash_rate=4.0, mean_outage=0.5)
        for o in plan.outages:
            assert 0.0 <= o.start <= 10.0
            assert o.end <= 10.0

    def test_spare_server_never_fails(self):
        plan = FaultPlan.generate(
            11, 4, 0.0, 10.0, crash_rate=5.0, spare_server=2
        )
        assert all(o.server != 2 for o in plan.outages)

    def test_rejects_empty_horizon(self):
        with pytest.raises(ValueError):
            FaultPlan.generate(0, 2, 5.0, 5.0)
